//! Integration tests spanning several workspace crates: indices computed in
//! one crate drive simulators or exact evaluations in another.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use stochastic_scheduling::bandits::exact::MultiArmedBandit;
use stochastic_scheduling::bandits::gittins::gittins_indices_vwb;
use stochastic_scheduling::bandits::instances::maintenance_project;
use stochastic_scheduling::bandits::instances::random_project;
use stochastic_scheduling::bandits::restless::{relaxation_bound_identical, whittle_indices};
use stochastic_scheduling::batch::exact_exp::{
    list_policy_flowtime, sept_order_exp, ExpParallelInstance,
};
use stochastic_scheduling::batch::parallel::{evaluate_list_policy, ParallelMetric};
use stochastic_scheduling::batch::policies::wsept_order;
use stochastic_scheduling::batch::single_machine::expected_weighted_flowtime;
use stochastic_scheduling::core::instance::{BatchInstance, InstanceFamily, InstanceGenerator};
use stochastic_scheduling::core::job::JobClass;
use stochastic_scheduling::distributions::{dyn_dist, Exponential};
use stochastic_scheduling::queueing::cmu::cmu_order;
use stochastic_scheduling::queueing::cobham::mg1_nonpreemptive_priority;
use stochastic_scheduling::queueing::mg1::{simulate_mg1, Discipline, Mg1Config};

/// The WSEPT value of an exponential instance computed by the closed form
/// in `ss-batch` must equal the single-machine exact DP of `exact_exp` and
/// be reproduced by the Monte-Carlo list scheduler within its CI.
#[test]
fn single_machine_values_agree_across_methods() {
    let rates = [1.0, 0.4, 2.5, 1.7];
    let mut builder = BatchInstance::builder();
    for &r in &rates {
        builder = builder.unweighted_job(dyn_dist(Exponential::new(r)));
    }
    let inst = builder.build();
    let order = wsept_order(&inst);
    let closed_form = expected_weighted_flowtime(&inst, &order);

    let exp_inst = ExpParallelInstance::unweighted(rates.to_vec());
    let dp = list_policy_flowtime(&exp_inst, &sept_order_exp(&exp_inst), 1);
    assert!(
        (closed_form - dp).abs() < 1e-9,
        "closed form {closed_form} vs DP {dp}"
    );

    let sim = evaluate_list_policy(
        &inst,
        &order,
        1,
        ParallelMetric::WeightedFlowtime,
        20_000,
        3,
    );
    assert!(
        (sim.mean - closed_form).abs() < 3.0 * sim.ci95 + 1e-6,
        "simulated {} ± {} vs exact {closed_form}",
        sim.mean,
        sim.ci95
    );
}

/// Gittins indices computed by `ss-bandits` produce a policy whose exact
/// value (evaluated through the `ss-mdp` joint DP) matches the optimum.
#[test]
fn gittins_indices_drive_an_optimal_policy() {
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let projects = vec![random_project(4, &mut rng), random_project(3, &mut rng)];
    // Index sanity: within reward bounds.
    for p in &projects {
        let idx = gittins_indices_vwb(p, 0.9);
        assert_eq!(idx.len(), p.num_states());
    }
    let mab = MultiArmedBandit::new(projects, 0.9);
    let init = vec![0usize, 0];
    let opt = mab.optimal_value(&init);
    let git = mab.gittins_policy_value(&init);
    assert!((opt - git).abs() < 1e-6);
}

/// The cµ priority order computed in `ss-core`/`ss-queueing` must give the
/// same holding cost whether evaluated by the exact Cobham formulas or the
/// event-driven simulator built on `ss-sim` primitives.
#[test]
fn cobham_formulas_and_simulator_agree_on_cmu() {
    let classes = vec![
        JobClass::new(0, 0.3, dyn_dist(Exponential::with_mean(1.0)), 1.0),
        JobClass::new(1, 0.25, dyn_dist(Exponential::with_mean(0.6)), 4.0),
    ];
    let order = cmu_order(&classes);
    let exact = mg1_nonpreemptive_priority(&classes, &order);
    let config = Mg1Config {
        classes: classes.clone(),
        discipline: Discipline::NonpreemptivePriority(order),
        horizon: 150_000.0,
        warmup: 5_000.0,
    };
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let sim = simulate_mg1(&config, &mut rng);
    assert!(
        (sim.holding_cost_rate - exact.holding_cost_rate).abs() / exact.holding_cost_rate < 0.08,
        "simulated {} vs exact {}",
        sim.holding_cost_rate,
        exact.holding_cost_rate
    );
}

/// Whittle indices (computed through `ss-mdp` subsidy problems) and the LP
/// relaxation bound (computed through `ss-lp`) are mutually consistent: the
/// states the relaxation activates are those with the largest indices, and
/// the bound is attainable only from above.
#[test]
fn whittle_indices_and_lp_relaxation_are_consistent() {
    let project = maintenance_project(5, 0.35, 0.4, 0.95);
    let indices = whittle_indices(&project);
    // With no repair activity allowed the fleet decays to the unproductive
    // worst state; a moderate activity fraction must do strictly better.
    let bound_none = relaxation_bound_identical(&project, 0.0);
    let bound_some = relaxation_bound_identical(&project, 0.3);
    assert!(
        bound_some > bound_none + 1e-6,
        "{bound_some} vs {bound_none}"
    );
    // Indices increase with wear (exploited by the experiments).
    assert!(indices[4] > indices[1]);
}

/// Instance generators from `ss-core` feed every other crate: sanity-check
/// the WSEPT-optimality property on generated instances end to end.
#[test]
fn generated_instances_respect_wsept_optimality() {
    let gen = InstanceGenerator::with_family(InstanceFamily::Mixed);
    let mut rng = ChaCha8Rng::seed_from_u64(2024);
    for _ in 0..5 {
        let inst = gen.generate(7, &mut rng);
        let wsept = expected_weighted_flowtime(&inst, &wsept_order(&inst));
        let (_, best) =
            stochastic_scheduling::batch::single_machine::exhaustive_optimal_order(&inst);
        assert!((wsept - best).abs() < 1e-9);
    }
}

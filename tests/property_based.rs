//! Property-based tests (proptest) of the core invariants claimed by the
//! survey and relied on throughout the workspace.

use proptest::prelude::*;
use stochastic_scheduling::batch::policies::wsept_order;
use stochastic_scheduling::batch::single_machine::{
    adjacent_interchange_delta, expected_weighted_flowtime,
};
use stochastic_scheduling::core::instance::BatchInstance;
use stochastic_scheduling::core::job::JobClass;
use stochastic_scheduling::distributions::ordering::{
    hazard_rate_order, is_stochastically_ordered_chain, likelihood_ratio_order, stochastic_order,
    OrderCheck,
};
use stochastic_scheduling::distributions::{
    dyn_dist, Erlang, Exponential, ServiceDistribution, TwoPoint, Uniform, Weibull,
};
use stochastic_scheduling::lp::{LinearProgram, Relation};
use stochastic_scheduling::queueing::cmu::cmu_order;
use stochastic_scheduling::queueing::cobham::mg1_nonpreemptive_priority;
use stochastic_scheduling::queueing::conservation::{conserved_work, weighted_wait_sum};
use stochastic_scheduling::sim::events::EventQueue;
use stochastic_scheduling::sim::stats::OnlineStats;

fn batch_instance_from(weights: &[f64], means: &[f64]) -> BatchInstance {
    let mut b = BatchInstance::builder();
    for (w, m) in weights.iter().zip(means) {
        b = b.job(*w, dyn_dist(Exponential::with_mean(*m)));
    }
    b.build()
}

proptest! {
    /// The WSEPT order is never beaten by any adjacent interchange, and is
    /// never worse than the identity or the reversed order (the exchange
    /// argument behind Smith's rule).
    #[test]
    fn wsept_is_locally_and_globally_consistent(
        weights in prop::collection::vec(0.1f64..5.0, 2..8),
        means_seed in prop::collection::vec(0.1f64..5.0, 2..8),
    ) {
        let n = weights.len().min(means_seed.len());
        let weights = &weights[..n];
        let means = &means_seed[..n];
        let inst = batch_instance_from(weights, means);
        let order = wsept_order(&inst);
        let wsept_value = expected_weighted_flowtime(&inst, &order);
        for pos in 0..n - 1 {
            prop_assert!(adjacent_interchange_delta(&inst, &order, pos) >= -1e-9);
        }
        let identity: Vec<usize> = (0..n).collect();
        let reversed: Vec<usize> = (0..n).rev().collect();
        prop_assert!(wsept_value <= expected_weighted_flowtime(&inst, &identity) + 1e-9);
        prop_assert!(wsept_value <= expected_weighted_flowtime(&inst, &reversed) + 1e-9);
    }

    /// Distribution invariants: sampled values are nonnegative, the CDF is
    /// monotone, and the survival function complements it.
    #[test]
    fn distribution_cdf_monotone_and_consistent(
        mean in 0.2f64..5.0,
        shape in 0.6f64..3.0,
        x1 in 0.0f64..10.0,
        x2 in 0.0f64..10.0,
    ) {
        let dists: Vec<Box<dyn ServiceDistribution>> = vec![
            Box::new(Exponential::with_mean(mean)),
            Box::new(Weibull::with_mean(shape, mean)),
            Box::new(Uniform::new(0.5 * mean, 1.5 * mean)),
            Box::new(TwoPoint::new(0.3, 0.5 * mean, 2.0 * mean)),
        ];
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        for d in &dists {
            prop_assert!(d.mean() > 0.0);
            prop_assert!(d.cdf(lo) <= d.cdf(hi) + 1e-12);
            prop_assert!((d.cdf(hi) + d.sf(hi) - 1.0).abs() < 1e-9);
            prop_assert!(d.second_moment() + 1e-12 >= d.mean() * d.mean());
        }
    }

    /// Work conservation: `Σ ρ_j W_j` is the same for every static priority
    /// order of a stable multiclass M/G/1 queue, and the cµ order minimises
    /// the holding-cost rate among the sampled orders.
    #[test]
    fn conservation_law_and_cmu_optimality(
        rates in prop::collection::vec(0.05f64..0.3, 3),
        means in prop::collection::vec(0.2f64..1.2, 3),
        costs in prop::collection::vec(0.1f64..5.0, 3),
    ) {
        let classes: Vec<JobClass> = (0..3)
            .map(|i| JobClass::new(i, rates[i], dyn_dist(Exponential::with_mean(means[i])), costs[i]))
            .collect();
        let rho: f64 = classes.iter().map(|c| c.load()).sum();
        prop_assume!(rho < 0.95);
        let target = conserved_work(&classes);
        let orders = [[0usize, 1, 2], [2, 1, 0], [1, 0, 2], [1, 2, 0], [0, 2, 1], [2, 0, 1]];
        let cmu = cmu_order(&classes);
        let cmu_cost = mg1_nonpreemptive_priority(&classes, &cmu).holding_cost_rate;
        for order in orders {
            let s = weighted_wait_sum(&classes, &order);
            prop_assert!((s - target).abs() / target < 1e-6, "{s} vs {target}");
            let cost = mg1_nonpreemptive_priority(&classes, &order).holding_cost_rate;
            prop_assert!(cmu_cost <= cost + 1e-9);
        }
    }

    /// The event calendar returns events in nondecreasing time order no
    /// matter how they were inserted.
    #[test]
    fn event_queue_is_a_priority_queue(times in prop::collection::vec(0.0f64..1e6, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i);
        }
        let mut prev = f64::NEG_INFINITY;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= prev);
            prev = t;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    /// Welford statistics agree with the naive two-pass computation.
    #[test]
    fn online_stats_match_naive(xs in prop::collection::vec(-1e3f64..1e3, 2..300)) {
        let mut stats = OnlineStats::new();
        for &x in &xs {
            stats.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((stats.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0));
        prop_assert!((stats.variance() - var).abs() < 1e-6 * var.abs().max(1.0));
    }

    /// The classical implication chain between stochastic orders
    /// (Shaked–Shanthikumar): likelihood-ratio order implies hazard-rate
    /// order implies the usual stochastic order.  Checked numerically on
    /// random same-family pairs (exponential, Erlang with common shape,
    /// Weibull with common shape), which are always lr-comparable.
    #[test]
    fn likelihood_ratio_implies_hazard_rate_implies_stochastic(
        rate_a in 0.4f64..3.0,
        rate_b in 0.4f64..3.0,
        family in 0usize..3,
    ) {
        let (a, b): (Box<dyn ServiceDistribution>, Box<dyn ServiceDistribution>) = match family {
            0 => (
                Box::new(Exponential::new(rate_a)),
                Box::new(Exponential::new(rate_b)),
            ),
            1 => (
                Box::new(Erlang::new(3, rate_a)),
                Box::new(Erlang::new(3, rate_b)),
            ),
            _ => (
                Box::new(Weibull::new(1.5, 1.0 / rate_a)),
                Box::new(Weibull::new(1.5, 1.0 / rate_b)),
            ),
        };
        let horizon = 8.0 * a.mean().max(b.mean());
        let points = 400;
        let lr = likelihood_ratio_order(a.as_ref(), b.as_ref(), horizon, points);
        let hr = hazard_rate_order(a.as_ref(), b.as_ref(), horizon, points);
        let st = stochastic_order(a.as_ref(), b.as_ref(), horizon, points);
        // Nearly identical parameters can round to Equal/Incomparable on
        // the grid; the implication is only claimed for a strict lr order.
        prop_assume!(lr == OrderCheck::ABeforeB || lr == OrderCheck::BBeforeA);
        if lr == OrderCheck::ABeforeB {
            prop_assert!(
                hr == OrderCheck::ABeforeB || hr == OrderCheck::Equal,
                "lr says A<B but hr = {hr:?}"
            );
            prop_assert!(
                st == OrderCheck::ABeforeB || st == OrderCheck::Equal,
                "lr says A<B but st = {st:?}"
            );
        } else {
            prop_assert!(hr == OrderCheck::BBeforeA || hr == OrderCheck::Equal);
            prop_assert!(st == OrderCheck::BBeforeA || st == OrderCheck::Equal);
        }
        // hr => st independently of lr (the middle link of the chain).
        if hr == OrderCheck::ABeforeB {
            prop_assert!(st == OrderCheck::ABeforeB || st == OrderCheck::Equal);
        }
        // The stochastic order must agree with the means when strict.
        if st == OrderCheck::ABeforeB {
            prop_assert!(a.mean() <= b.mean() + 1e-9);
        }
    }

    /// Sorting exponentials by decreasing rate yields a stochastically
    /// ordered chain (the hypothesis of the Weber–Varaiya–Walrand SEPT
    /// optimality theorem), and a deliberately broken permutation does not.
    #[test]
    fn sorted_exponentials_form_a_stochastic_chain(
        rates_raw in prop::collection::vec(0.3f64..4.0, 3..6),
    ) {
        let mut rates = rates_raw.clone();
        rates.sort_by(|x, y| y.partial_cmp(x).unwrap()); // decreasing rate
        let dists: Vec<Exponential> = rates.iter().map(|&r| Exponential::new(r)).collect();
        let refs: Vec<&dyn ServiceDistribution> =
            dists.iter().map(|d| d as &dyn ServiceDistribution).collect();
        prop_assert!(is_stochastically_ordered_chain(&refs, 12.0, 200));
        // Swap the extremes: the chain property must break unless the
        // rates are (numerically) equal.
        prop_assume!(rates[0] > rates[rates.len() - 1] + 1e-6);
        let mut broken = refs.clone();
        broken.swap(0, rates.len() - 1);
        prop_assert!(!is_stochastically_ordered_chain(&broken, 12.0, 200));
    }

    /// LP solver invariants on random feasible problems: the reported
    /// solution is feasible and its objective matches c·x.
    #[test]
    fn simplex_solutions_are_feasible(
        costs in prop::collection::vec(-2.0f64..2.0, 2..6),
        rows in prop::collection::vec(prop::collection::vec(0.0f64..1.0, 2..6), 1..5),
        rhs in prop::collection::vec(0.5f64..4.0, 1..5),
    ) {
        let n = costs.len();
        let mut lp = LinearProgram::minimize(costs.clone());
        let m = rows.len().min(rhs.len());
        for i in 0..m {
            let mut coeffs = rows[i].clone();
            coeffs.resize(n, 0.0);
            lp.add_constraint(coeffs, Relation::Le, rhs[i]);
        }
        // x = 0 is always feasible, so the LP is feasible; it may be
        // unbounded when some cost is negative and unconstrained, which the
        // solver must report as an error rather than a bogus solution.
        match lp.solve() {
            Ok(sol) => {
                let recomputed: f64 = costs.iter().zip(&sol.x).map(|(c, x)| c * x).sum();
                prop_assert!((recomputed - sol.objective).abs() < 1e-6);
                prop_assert!(sol.x.iter().all(|&x| x >= -1e-9));
                for i in 0..m {
                    let lhs: f64 = rows[i].iter().zip(&sol.x).map(|(a, x)| a * x).sum();
                    prop_assert!(lhs <= rhs[i] + 1e-6);
                }
                prop_assert!(sol.objective <= 1e-9); // x = 0 gives 0, optimum cannot be worse
            }
            Err(e) => {
                prop_assert_eq!(e, stochastic_scheduling::lp::LpError::Unbounded);
            }
        }
    }
}

//! Cross-crate tests of the conservation-law / achievable-region framework
//! added on top of the three model families: the generic adaptive-greedy
//! algorithm (`ss-core`), the achievable-region LP and Klimov work measure
//! (`ss-queueing`), branching bandits and marginal productivity indices
//! (`ss-bandits`), and the setup-threshold policies (`ss-queueing`).
//!
//! The survey's unifying claim is that one index mechanism underlies the
//! cµ-rule, Klimov's algorithm, the Gittins index and the branching-bandit
//! index; these tests check the corresponding identities numerically across
//! crate boundaries.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use stochastic_scheduling::bandits::branching::offspring::OffspringDist;
use stochastic_scheduling::bandits::branching::BranchingBandit;
use stochastic_scheduling::bandits::instances::maintenance_project;
use stochastic_scheduling::bandits::mpi::marginal_productivity_indices;
use stochastic_scheduling::bandits::restless::{
    simulate_restless, whittle_indices, RestlessPolicy,
};
use stochastic_scheduling::core::adaptive_greedy::{adaptive_greedy, IsolatedJobs};
use stochastic_scheduling::core::job::JobClass;
use stochastic_scheduling::distributions::Deterministic;
use stochastic_scheduling::distributions::{dyn_dist, Erlang, Exponential};
use stochastic_scheduling::queueing::achievable_region::{
    klimov_via_adaptive_greedy, region_lp, vertex_performance,
};
use stochastic_scheduling::queueing::cmu::cmu_order;
use stochastic_scheduling::queueing::cobham::{
    best_nonpreemptive_order, mg1_nonpreemptive_priority,
};
use stochastic_scheduling::queueing::klimov::{klimov_indices, KlimovNetwork};
use stochastic_scheduling::queueing::setups::{
    simulate_setup_policy, sqrt_rule_thresholds, SetupPolicy,
};

/// Build a stable multiclass M/G/1 instance from raw parameters, scaling the
/// arrival rates so the total load is `target_load`.
fn stable_classes(costs: &[f64], means: &[f64], target_load: f64) -> Vec<JobClass> {
    assert_eq!(costs.len(), means.len());
    let raw_load: f64 = means.iter().sum::<f64>();
    let rate = target_load / raw_load;
    costs
        .iter()
        .zip(means)
        .enumerate()
        .map(|(j, (&c, &m))| {
            let dist = if j % 2 == 0 {
                dyn_dist(Exponential::with_mean(m))
            } else {
                dyn_dist(Erlang::with_mean(2, m))
            };
            JobClass::new(j, rate, dist, c)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The generic adaptive-greedy algorithm with the trivial work measure
    /// is exactly the cµ-rule, for arbitrary costs and means.
    #[test]
    fn adaptive_greedy_is_cmu_for_isolated_jobs(
        costs in prop::collection::vec(0.1f64..8.0, 2..6),
        means in prop::collection::vec(0.2f64..4.0, 2..6),
    ) {
        let n = costs.len().min(means.len());
        let costs = &costs[..n];
        let means = &means[..n];
        let oracle = IsolatedJobs::new(means.to_vec());
        let result = adaptive_greedy(costs, &oracle);
        for j in 0..n {
            prop_assert!((result.indices[j] - costs[j] / means[j]).abs() < 1e-12);
        }
        prop_assert!(result.rates_non_increasing(1e-9));
    }

    /// Polymatroid vertices computed from nested set-function differences
    /// equal Cobham's exact per-class `rho_j W_j` for every priority order.
    #[test]
    fn vertices_equal_cobham(
        costs in prop::collection::vec(0.2f64..5.0, 3..5),
        means in prop::collection::vec(0.3f64..2.0, 3..5),
        load in 0.3f64..0.9,
        perm_seed in 0usize..6,
    ) {
        let n = costs.len().min(means.len()).min(3);
        let classes = stable_classes(&costs[..n], &means[..n], load);
        let mut order: Vec<usize> = (0..n).collect();
        // A deterministic permutation chosen by the seed.
        order.rotate_left(perm_seed % n);
        if perm_seed % 2 == 1 {
            order.reverse();
        }
        let vertex = vertex_performance(&classes, &order);
        let exact = mg1_nonpreemptive_priority(&classes, &order);
        for j in 0..n {
            prop_assert!(
                (vertex[j] - classes[j].load() * exact.wait[j]).abs() < 1e-8,
                "class {}: {} vs {}", j, vertex[j], classes[j].load() * exact.wait[j]
            );
        }
    }

    /// The achievable-region LP optimum equals the exhaustive best static
    /// priority cost (and therefore the cµ cost) on random stable instances.
    #[test]
    fn region_lp_equals_exhaustive_best(
        costs in prop::collection::vec(0.2f64..5.0, 3..5),
        means in prop::collection::vec(0.3f64..2.0, 3..5),
        load in 0.3f64..0.85,
    ) {
        let n = costs.len().min(means.len());
        let classes = stable_classes(&costs[..n], &means[..n], load);
        let lp = region_lp(&classes);
        let (_, best) = best_nonpreemptive_order(&classes);
        let cmu = cmu_order(&classes);
        let cmu_cost = mg1_nonpreemptive_priority(&classes, &cmu).holding_cost_rate;
        prop_assert!((lp.holding_cost_rate - best).abs() < 1e-5 * best.max(1.0));
        prop_assert!((lp.holding_cost_rate - cmu_cost).abs() < 1e-5 * cmu_cost.max(1.0));
    }

    /// A branching bandit with no offspring is the static batch problem: its
    /// indices are the WSEPT indices `c_i / E[S_i]`.
    #[test]
    fn branching_without_offspring_is_wsept(
        costs in prop::collection::vec(0.1f64..5.0, 2..6),
        means in prop::collection::vec(0.2f64..4.0, 2..6),
    ) {
        let n = costs.len().min(means.len());
        let services = means[..n].iter().map(|&m| dyn_dist(Exponential::with_mean(m))).collect();
        let bandit = BranchingBandit::new(
            services,
            costs[..n].to_vec(),
            vec![OffspringDist::none(n); n],
        );
        let result = bandit.indices();
        for j in 0..n {
            prop_assert!((result.indices[j] - costs[j] / means[j]).abs() < 1e-10);
        }
    }

    /// The generic adaptive greedy with the Klimov work measure reproduces
    /// the dedicated Klimov algorithm on random chain-feedback networks.
    #[test]
    fn adaptive_greedy_matches_klimov(
        costs in prop::collection::vec(0.2f64..5.0, 3..5),
        means in prop::collection::vec(0.2f64..1.5, 3..5),
        feedback in prop::collection::vec(0.0f64..0.7, 3..5),
    ) {
        let n = costs.len().min(means.len()).min(feedback.len());
        let services: Vec<_> = means[..n].iter().map(|&m| dyn_dist(Exponential::with_mean(m))).collect();
        // Chain routing i -> i+1 with probability feedback[i]; last class leaves.
        let mut routing = vec![vec![0.0; n]; n];
        for i in 0..n - 1 {
            routing[i][i + 1] = feedback[i];
        }
        let network = KlimovNetwork::new(vec![0.05; n], services, costs[..n].to_vec(), routing);
        let generic = klimov_via_adaptive_greedy(&network);
        let dedicated = klimov_indices(&network);
        for j in 0..n {
            prop_assert!(
                (generic.indices[j] - dedicated[j]).abs() < 1e-8,
                "class {}: {} vs {}", j, generic.indices[j], dedicated[j]
            );
        }
    }

    /// Square-root thresholds are nonnegative, zero exactly when the setup is
    /// zero, and monotone in the setup time.
    #[test]
    fn sqrt_thresholds_are_monotone_in_the_setup(
        setup in 0.01f64..1.5,
        load in 0.3f64..0.85,
    ) {
        let classes = stable_classes(&[1.0, 2.0], &[1.0, 0.8], load);
        let zero = sqrt_rule_thresholds(&classes, &[0.0, 0.0]);
        prop_assert!(zero.iter().all(|&t| t == 0.0));
        let small = sqrt_rule_thresholds(&classes, &[setup, setup]);
        let large = sqrt_rule_thresholds(&classes, &[2.0 * setup, 2.0 * setup]);
        for j in 0..2 {
            prop_assert!(small[j] > 0.0);
            prop_assert!(large[j] >= small[j] - 1e-9);
        }
    }
}

/// A branching bandit whose offspring are Bernoulli single-child "routings"
/// is Klimov's network without external arrivals: the two crates must assign
/// identical indices.
#[test]
fn branching_bandit_and_klimov_network_assign_identical_indices() {
    let means = [0.8, 0.6, 1.2, 0.9];
    let costs = [1.0, 2.0, 4.0, 1.5];
    let route = [(0usize, 1usize, 0.6), (1, 2, 0.3), (2, 3, 0.5)];

    let services_q: Vec<_> = means
        .iter()
        .map(|&m| dyn_dist(Exponential::with_mean(m)))
        .collect();
    let mut routing = vec![vec![0.0; 4]; 4];
    for &(from, to, p) in &route {
        routing[from][to] = p;
    }
    let network = KlimovNetwork::new(vec![0.05; 4], services_q, costs.to_vec(), routing);

    let services_b: Vec<_> = means
        .iter()
        .map(|&m| dyn_dist(Exponential::with_mean(m)))
        .collect();
    let offspring: Vec<OffspringDist> = (0..4)
        .map(|i| {
            route
                .iter()
                .find(|&&(from, _, _)| from == i)
                .map(|&(_, to, p)| OffspringDist::feedback(4, to, p))
                .unwrap_or_else(|| OffspringDist::none(4))
        })
        .collect();
    let bandit = BranchingBandit::new(services_b, costs.to_vec(), offspring);

    let klimov = klimov_indices(&network);
    let branching = bandit.indices();
    for j in 0..4 {
        assert!(
            (klimov[j] - branching.indices[j]).abs() < 1e-9,
            "class {j}: Klimov {} vs branching {}",
            klimov[j],
            branching.indices[j]
        );
    }
    assert_eq!(
        bandit.index_order(),
        stochastic_scheduling::queueing::klimov::klimov_order(&network)
    );
}

/// The marginal productivity indices drive the restless-bandit simulator to
/// the same long-run reward as the Whittle indices they replicate.
#[test]
fn mpi_policy_matches_whittle_policy_in_simulation() {
    let project = maintenance_project(5, 0.35, 0.4, 0.95);
    let whittle = whittle_indices(&project);
    let mpi = marginal_productivity_indices(&project, 1e-9);
    assert!(mpi.pcl_indexable);

    let n = 12;
    let m = 4;
    let projects: Vec<_> = (0..n).map(|_| project.clone()).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    let reward_whittle = simulate_restless(
        &projects,
        m,
        &RestlessPolicy::WhittleIndex(vec![whittle.clone(); n]),
        30_000,
        &mut rng,
    );
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    let reward_mpi = simulate_restless(
        &projects,
        m,
        &RestlessPolicy::WhittleIndex(vec![mpi.indices.clone(); n]),
        30_000,
        &mut rng,
    );
    // Identical index *ordering* means identical decisions and rewards under
    // the same random stream.
    assert!(
        (reward_whittle - reward_mpi).abs() < 1e-9,
        "Whittle policy {reward_whittle} vs MPI policy {reward_mpi}"
    );
}

/// With asymmetric holding costs and a substantial setup, the square-root
/// interrupt-threshold policy beats both never interrupting (exhaustive
/// polling, which lets expensive work pile up) and switching on every job
/// (which wastes capacity on changeovers).
#[test]
fn threshold_policy_beats_exhaustive_and_myopic_with_asymmetric_costs() {
    let classes = vec![
        JobClass::new(0, 0.50, dyn_dist(Exponential::with_mean(1.0)), 1.0),
        JobClass::new(1, 0.15, dyn_dist(Exponential::with_mean(0.8)), 6.0),
    ];
    let setup_time = 1.0;
    let setup: Vec<_> = (0..2)
        .map(|_| dyn_dist(Deterministic::new(setup_time)))
        .collect();
    let thresholds = sqrt_rule_thresholds(&classes, &[setup_time, setup_time]);

    let run = |policy: &SetupPolicy, seed: u64| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        simulate_setup_policy(&classes, &setup, policy, 150_000.0, 5_000.0, &mut rng)
    };
    let threshold = run(&SetupPolicy::Threshold { thresholds }, 17);
    let exhaustive = run(&SetupPolicy::Exhaustive, 17);
    let myopic = run(&SetupPolicy::CmuEveryJob, 17);

    assert!(
        threshold.holding_cost_rate < exhaustive.holding_cost_rate,
        "threshold {} should beat exhaustive {}",
        threshold.holding_cost_rate,
        exhaustive.holding_cost_rate
    );
    assert!(
        threshold.holding_cost_rate < myopic.holding_cost_rate,
        "threshold {} should beat cmu-every-job {}",
        threshold.holding_cost_rate,
        myopic.holding_cost_rate
    );
}

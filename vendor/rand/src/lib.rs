//! Minimal offline shim of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the narrow slice of `rand` it actually uses (see `vendor/README.md`):
//!
//! * [`RngCore`] / [`SeedableRng`] — the core generator traits, with a
//!   `seed_from_u64` that reproduces `rand_core` 0.6 exactly (PCG32 seed
//!   expansion), so seeds recorded in EXPERIMENTS.md stay meaningful if the
//!   shim is ever swapped for the real crate;
//! * [`Rng`] — the extension trait: `gen`, `gen_range`, `gen_bool`, `sample`;
//! * [`distributions`] — [`distributions::Standard`] for `f64`/`u64`/`u32`/
//!   `bool` (the `f64` conversion is bit-identical to `rand` 0.8: 53 random
//!   mantissa bits scaled into `[0, 1)`);
//! * [`seq::SliceRandom`] — Fisher–Yates `shuffle` and `choose`.
//!
//! Integer `gen_range` uses Lemire's widening-multiply rejection method, so
//! it is unbiased (though not bit-identical to `rand` 0.8's `Uniform`).

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of `u32`/`u64` words.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with the same PCG32-based scheme as
    /// `rand_core` 0.6, so `seed_from_u64(s)` produces the same generator
    /// state as the real crates would.
    fn seed_from_u64(mut state: u64) -> Self {
        fn pcg32(state: &mut u64) -> [u8; 4] {
            const MUL: u64 = 6364136223846793005;
            const INC: u64 = 11634580027462260723;
            // Advance the state first, in case the input has low Hamming weight.
            *state = state.wrapping_mul(MUL).wrapping_add(INC);
            let s = *state;
            let xorshifted = (((s >> 18) ^ s) >> 27) as u32;
            let rot = (s >> 59) as u32;
            xorshifted.rotate_right(rot).to_le_bytes()
        }
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            let bytes = pcg32(&mut state);
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }

    /// Seed from another generator.
    fn from_rng<R: RngCore>(rng: &mut R) -> Result<Self, Error> {
        let mut seed = Self::Seed::default();
        rng.fill_bytes(seed.as_mut());
        Ok(Self::from_seed(seed))
    }
}

/// Error type for fallible seeding (always succeeds in this shim).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

pub mod distributions {
    use super::{Rng, RngCore};

    /// A sampling distribution over `T`.
    pub trait Distribution<T> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution of each primitive type: uniform over all
    /// values (integers, `bool`) or uniform on `[0, 1)` (floats).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // Identical to rand 0.8: 53 mantissa bits scaled into [0, 1).
            const SCALE: f64 = 1.0 / ((1u64 << 53) as f64);
            (rng.next_u64() >> 11) as f64 * SCALE
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            const SCALE: f32 = 1.0 / ((1u32 << 24) as f32);
            (rng.next_u32() >> 8) as f32 * SCALE
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<usize> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Unbiased uniform integer in `[0, range)` via Lemire's widening-multiply
    /// rejection method. `range` must be nonzero.
    pub(crate) fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, range: u64) -> u64 {
        debug_assert!(range > 0);
        let mut m = (rng.next_u64() as u128) * (range as u128);
        let mut lo = m as u64;
        if lo < range {
            let t = range.wrapping_neg() % range;
            while lo < t {
                m = (rng.next_u64() as u128) * (range as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

use distributions::{uniform_below, Distribution, Standard};

/// A half-open or inclusive range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u: f64 = Standard.sample(&mut RngRef(rng));
                let v = self.start as f64 + u * (self.end as f64 - self.start as f64);
                let v = v as $t;
                // Guard against rounding up to the excluded endpoint. Since
                // start < end, the largest float below end is always >= start.
                if v >= self.end { self.end.next_down() } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u: f64 = Standard.sample(&mut RngRef(rng));
                let v = (lo as f64 + u * (hi as f64 - lo as f64)) as $t;
                v.min(hi)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Adapter so `SampleRange` impls can call `Distribution::sample` on a
/// `&mut (dyn) RngCore`.
struct RngRef<'a, R: RngCore + ?Sized>(&'a mut R);

impl<R: RngCore + ?Sized> RngCore for RngRef<'_, R> {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        let u: f64 = self.gen();
        u < p
    }

    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }

    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::{distributions::uniform_below, Rng};

    /// Slice extensions: in-place Fisher–Yates shuffle and random choice.
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

/// `rand_core` compatibility alias: the real `rand` re-exports its core
/// traits under `rand::rand_core` as well.
pub mod rand_core {
    pub use super::{Error, RngCore, SeedableRng};
}

pub mod rngs {
    /// Mock generators for deterministic unit tests.
    pub mod mock {
        use crate::RngCore;

        /// Arithmetic-progression generator, as in `rand` 0.8: yields
        /// `initial`, `initial + increment`, ... from `next_u64`.
        #[derive(Debug, Clone)]
        pub struct StepRng {
            value: u64,
            increment: u64,
        }

        impl StepRng {
            pub fn new(initial: u64, increment: u64) -> Self {
                Self {
                    value: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }
            fn next_u64(&mut self) -> u64 {
                let v = self.value;
                self.value = self.value.wrapping_add(self.increment);
                v
            }
            fn fill_bytes(&mut self, dest: &mut [u8]) {
                for chunk in dest.chunks_mut(8) {
                    let bytes = self.next_u64().to_le_bytes();
                    let n = chunk.len();
                    chunk.copy_from_slice(&bytes[..n]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let b = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&b[..n]);
            }
        }
    }

    #[test]
    fn standard_f64_is_in_unit_interval() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Counter(11);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(2u32..=4);
            assert!((2..=4).contains(&y));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn float_gen_range_excludes_nonpositive_upper_endpoint() {
        // Ranges so tight that rounding hits the excluded endpoint; the
        // guard must step toward start, never produce NaN or >= end.
        let mut rng = Counter(5);
        for _ in 0..2000 {
            let v = rng.gen_range(-f64::EPSILON..0.0);
            assert!(
                v.is_finite() && (-f64::EPSILON..0.0).contains(&v),
                "got {v}"
            );
            let w = rng.gen_range(-1.0000000000000002f64..-1.0);
            assert!(w < -1.0, "got {w}");
            let z = rng.gen_range(-2.0f64..=-1.0);
            assert!((-2.0..=-1.0).contains(&z), "got {z}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<usize> = (0..50).collect();
        let mut rng = Counter(3);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}

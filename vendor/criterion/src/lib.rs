//! Minimal offline shim of the `criterion` benchmarking API.
//!
//! Implements the subset the `ss-bench` targets use — `criterion_group!` /
//! `criterion_main!`, `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`, `black_box` — with a
//! simple wall-clock measurement loop instead of criterion's statistical
//! machinery. Each benchmark prints `name: median time/iter over N samples`.
//! Good enough to (a) compile all bench targets and (b) give order-of-
//! magnitude timings; swap in the real crate when the registry is reachable
//! for publication-grade statistics.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: fmt::Display>(function_id: S, parameter: P) -> Self {
        Self {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    warm_up: Duration,
    measurement: Duration,
    /// Median seconds/iteration of the last `iter` call.
    last_estimate: Option<f64>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: also estimates the per-iteration cost.
        let warm_start = Instant::now();
        let mut iters_done = 0u64;
        while warm_start.elapsed() < self.warm_up || iters_done == 0 {
            black_box(routine());
            iters_done += 1;
            if iters_done >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters_done as f64;

        // Size each sample so that all samples fit the measurement window.
        let sample_budget = self.measurement.as_secs_f64() / self.samples as f64;
        let iters_per_sample = (sample_budget / per_iter.max(1e-9)).ceil().max(1.0) as u64;

        let mut estimates: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            estimates.push(start.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
        estimates.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.last_estimate = Some(estimates[estimates.len() / 2]);
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// A named collection of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        let (sample_size, warm_up, measurement) =
            (self.sample_size, self.warm_up, self.measurement);
        self.criterion
            .run_one(&full, sample_size, warm_up, measurement, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        let (sample_size, warm_up, measurement) =
            (self.sample_size, self.warm_up, self.measurement);
        self.criterion
            .run_one(&full, sample_size, warm_up, measurement, &mut |b| {
                f(b, input)
            });
        self
    }

    pub fn finish(&mut self) {}
}

/// Throughput declaration (accepted and ignored by the shim).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Honour the benchmark-name filter that `cargo bench <filter>` (and
        // the libtest-compatible `--bench` flag soup) passes through.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Self { filter }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(
            name,
            10,
            Duration::from_millis(300),
            Duration::from_secs(1),
            &mut f,
        );
        self
    }

    fn run_one(
        &mut self,
        name: &str,
        sample_size: usize,
        warm_up: Duration,
        measurement: Duration,
        f: &mut dyn FnMut(&mut Bencher),
    ) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples: sample_size,
            warm_up,
            measurement,
            last_estimate: None,
        };
        f(&mut bencher);
        match bencher.last_estimate {
            Some(est) => println!("{name}: {} /iter ({sample_size} samples)", format_time(est)),
            None => println!("{name}: no measurement (closure never called iter)"),
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_produces_an_estimate() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(5));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("vwb", 5).to_string(), "vwb/5");
        assert_eq!(BenchmarkId::from_parameter(40).to_string(), "40");
    }
}

//! Minimal offline shim of `rand_chacha`: [`ChaCha8Rng`], a genuine ChaCha
//! stream cipher with 8 rounds used as a deterministic, seedable RNG.
//!
//! The block function is the real RFC-8439 ChaCha quarter-round network (with
//! 8 instead of 20 rounds, as in the upstream crate), so the generator has
//! the statistical quality the simulators rely on. Stream layout details
//! (word consumption order across `next_u32`/`next_u64`) are chosen for
//! simplicity and are not guaranteed bit-identical to upstream
//! `rand_chacha`; within this workspace everything is self-consistent and
//! reproducible from the seed.

pub use rand::rand_core;
use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

/// "expand 32-byte k" — the ChaCha constant words.
const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One ChaCha block: 4 double-rounds (8 rounds) plus the feed-forward add.
fn chacha8_block(input: &[u32; BLOCK_WORDS]) -> [u32; BLOCK_WORDS] {
    let mut x = *input;
    for _ in 0..4 {
        // Column round.
        quarter_round(&mut x, 0, 4, 8, 12);
        quarter_round(&mut x, 1, 5, 9, 13);
        quarter_round(&mut x, 2, 6, 10, 14);
        quarter_round(&mut x, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut x, 0, 5, 10, 15);
        quarter_round(&mut x, 1, 6, 11, 12);
        quarter_round(&mut x, 2, 7, 8, 13);
        quarter_round(&mut x, 3, 4, 9, 14);
    }
    for (out, inp) in x.iter_mut().zip(input) {
        *out = out.wrapping_add(*inp);
    }
    x
}

/// A ChaCha RNG with 8 rounds, seeded from 32 bytes (or a `u64` via
/// [`SeedableRng::seed_from_u64`]). 64-bit block counter + 64-bit stream id.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// The cipher input block: constants, 8 key words, counter, stream id.
    state: [u32; BLOCK_WORDS],
    /// The current output block.
    buf: [u32; BLOCK_WORDS],
    /// Next unread word in `buf`; `BLOCK_WORDS` means "refill needed".
    idx: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        self.buf = chacha8_block(&self.state);
        // Increment the 64-bit block counter (words 12..14).
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.idx = 0;
    }

    /// Select an independent stream (distinct keystreams for equal seeds).
    pub fn set_stream(&mut self, stream: u64) {
        self.state[14] = stream as u32;
        self.state[15] = (stream >> 32) as u32;
        self.idx = BLOCK_WORDS; // discard any buffered output
    }

    /// The current stream id.
    pub fn get_stream(&self) -> u64 {
        self.state[14] as u64 | ((self.state[15] as u64) << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; BLOCK_WORDS];
        state[..4].copy_from_slice(&CONSTANTS);
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        // Words 12..16 (counter and stream id) start at zero.
        Self {
            state,
            buf: [0; BLOCK_WORDS],
            idx: BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= BLOCK_WORDS {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let bytes = self.next_u32().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// RFC 8439 §2.3.2 test vector, adapted to 8 rounds by checking the
    /// structural properties instead of the 20-round keystream: determinism,
    /// seed sensitivity and counter advancement.
    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn quarter_round_matches_rfc_vector() {
        // RFC 8439 §2.1.1 quarter-round test vector.
        let mut s = [0u32; 16];
        s[0] = 0x1111_1111;
        s[1] = 0x0102_0304;
        s[2] = 0x9b8d_6f43;
        s[3] = 0x0123_4567;
        quarter_round(&mut s, 0, 1, 2, 3);
        assert_eq!(s[0], 0xea2a_92f4);
        assert_eq!(s[1], 0xcb1c_f8ce);
        assert_eq!(s[2], 0x4581_472e);
        assert_eq!(s[3], 0x5881_c4bb);
    }

    #[test]
    fn streams_decorrelate() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        b.set_stream(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_uniform_mean_is_half() {
        let mut rng = ChaCha8Rng::seed_from_u64(2024);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }
}

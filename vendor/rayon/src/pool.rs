//! A real `std::thread` work-sharing pool with deterministic, order-preserving
//! bulk execution.
//!
//! The pool executes *bulk tasks*: a half-open index range `0..n` split into
//! fixed-size chunks that worker threads claim with an atomic counter
//! (chunked self-scheduling — the lock-free cousin of work stealing for the
//! indexed workloads this workspace runs).  The submitting thread always
//! participates, so a pool configured with one thread degenerates to plain
//! serial execution on the caller and a pool is never required to make
//! progress on its own.
//!
//! ## Determinism contract
//!
//! Scheduling decides only *which thread* computes each index, never what is
//! computed or how results are ordered: callers receive chunk boundaries
//! `(start, end)` and are responsible for writing results keyed by index (the
//! iterator layer in [`crate::iter`] reassembles chunk buffers in index
//! order).  Combined with per-index RNG streams at the call sites, parallel
//! results are bit-for-bit identical to serial results for any thread count.
//!
//! ## Panic contract
//!
//! A panic in any chunk is caught in the worker, recorded, and re-raised on
//! the submitting thread via [`std::panic::resume_unwind`] after every
//! claimed chunk has finished (so borrowed data is never used after the
//! submitting frame unwinds).  Remaining unclaimed chunks are skipped once a
//! panic is recorded.
//!
//! ## Configuration
//!
//! The global pool sizes itself from the `SS_THREADS` environment variable
//! when set (clamped to `1..=512`), otherwise from
//! [`std::thread::available_parallelism`].  Explicit pools are built with
//! [`ThreadPool::new`] and scoped onto the current thread with
//! [`ThreadPool::install`].

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;

/// Type-erased chunk callback: invoked as `f(start, end)` for disjoint
/// sub-ranges of `0..n` covering every index exactly once.
type DynChunkFn = dyn Fn(usize, usize) + Sync + 'static;

/// One in-flight bulk task.
///
/// `func` points into the submitting stack frame; the lifetime was erased
/// when the task was published.  Soundness rests on two invariants: `func`
/// is only dereferenced for claimed chunks (`start < n`), and the submitter
/// does not return before `remaining` hits zero, so the pointee outlives
/// every dereference.
struct Bulk {
    func: *const DynChunkFn,
    n: usize,
    chunk: usize,
    /// Next index to claim (chunks are `[next, next + chunk)`).
    next: AtomicUsize,
    /// Indices claimed but whose completion has not yet been counted.
    remaining: AtomicUsize,
    panicked: AtomicBool,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    done: Mutex<bool>,
    done_cv: Condvar,
}

// SAFETY: `func` is only dereferenced while the submitting frame is alive
// (see the invariants on [`Bulk`]); the pointee is `Sync`, so shared calls
// from several workers are allowed. Everything else in the struct is
// thread-safe by construction.
unsafe impl Send for Bulk {}
unsafe impl Sync for Bulk {}

struct State {
    /// Bumped on every published task so sleeping workers can tell a fresh
    /// task from one they already drained.
    epoch: u64,
    task: Option<Arc<Bulk>>,
    shutdown: bool,
}

pub(crate) struct Inner {
    state: Mutex<State>,
    work_cv: Condvar,
    /// Workers in addition to the participating submitter.
    extra_workers: usize,
    /// Serializes concurrent bulk submissions from different threads.
    submit_lock: Mutex<()>,
}

thread_local! {
    /// Stack of pools installed on this thread via [`ThreadPool::install`].
    static CURRENT: RefCell<Vec<Arc<Inner>>> = const { RefCell::new(Vec::new()) };
    /// Whether this thread is currently executing a bulk chunk; nested
    /// parallel calls fall back to serial execution to avoid deadlocking the
    /// pool on itself.
    static IN_TASK: Cell<bool> = const { Cell::new(false) };
}

/// Upper bound honoured when reading `SS_THREADS`.
const MAX_THREADS: usize = 512;

/// Thread count of the global pool: `SS_THREADS` if set and valid, otherwise
/// [`std::thread::available_parallelism`], clamped to `1..=512`.
pub fn default_threads() -> usize {
    let configured = std::env::var("SS_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&t| t >= 1);
    let threads = configured.unwrap_or_else(|| {
        thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    });
    threads.min(MAX_THREADS)
}

/// A pool of `threads` compute lanes: the submitting thread plus
/// `threads - 1` background workers.
pub struct ThreadPool {
    inner: Arc<Inner>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Build a pool with `threads` compute lanes (`threads - 1` background
    /// workers; the submitter is always the remaining lane).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "a thread pool needs at least one thread");
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                epoch: 0,
                task: None,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            extra_workers: threads - 1,
            submit_lock: Mutex::new(()),
        });
        let workers = (0..threads - 1)
            .map(|i| {
                let inner = Arc::clone(&inner);
                thread::Builder::new()
                    .name(format!("ss-pool-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Self { inner, workers }
    }

    /// Total compute lanes (background workers + the submitting thread).
    pub fn num_threads(&self) -> usize {
        self.inner.extra_workers + 1
    }

    /// Run `f` with this pool installed as the current pool of the calling
    /// thread: every parallel-iterator call inside `f` is scheduled here
    /// instead of on the global pool.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        CURRENT.with(|c| c.borrow_mut().push(Arc::clone(&self.inner)));
        // Pop on all exits, including unwinding out of `f`.
        struct PopGuard;
        impl Drop for PopGuard {
            fn drop(&mut self) {
                CURRENT.with(|c| {
                    c.borrow_mut().pop();
                });
            }
        }
        let _guard = PopGuard;
        f()
    }

    /// Execute `f(start, end)` over disjoint chunks covering `0..n`, in
    /// parallel across the pool's lanes. Blocks until every index has been
    /// processed; re-raises the first panic observed in any chunk.
    pub fn run_chunks(&self, n: usize, chunk: usize, f: &(dyn Fn(usize, usize) + Sync)) {
        self.inner.run_chunks(n, chunk, f);
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.inner.state.lock().unwrap();
            st.shutdown = true;
        }
        self.inner.work_cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Inner {
    pub(crate) fn run_chunks(&self, n: usize, chunk: usize, f: &(dyn Fn(usize, usize) + Sync)) {
        if n == 0 {
            return;
        }
        // Serial fast path: single-lane pool, or already inside a pool task
        // (nested parallelism would deadlock on `submit_lock`; serial
        // execution is identical by the determinism contract).
        if self.extra_workers == 0 || IN_TASK.with(Cell::get) {
            f(0, n);
            return;
        }

        // SAFETY: `task.func` is dereferenced only until `remaining` reaches
        // zero, and this frame blocks on `done` (which is signalled by the
        // thread that completes the final chunk) before returning, so the
        // erased borrow of `f` never outlives `f` itself.
        let erased: &DynChunkFn =
            unsafe { std::mem::transmute::<&(dyn Fn(usize, usize) + Sync), &DynChunkFn>(f) };
        let task = Arc::new(Bulk {
            func: erased as *const DynChunkFn,
            n,
            chunk: chunk.max(1),
            next: AtomicUsize::new(0),
            remaining: AtomicUsize::new(n),
            panicked: AtomicBool::new(false),
            panic: Mutex::new(None),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        {
            // Scoped so the submit lock is released before a recorded panic
            // is re-raised (resuming while holding it would poison the pool
            // for every later submission).
            let _submit = self.submit_lock.lock().unwrap_or_else(|e| e.into_inner());
            {
                let mut st = self.state.lock().unwrap();
                st.epoch += 1;
                st.task = Some(Arc::clone(&task));
            }
            self.work_cv.notify_all();

            // The submitter is a full compute lane.
            execute(&task);

            {
                let mut done = task.done.lock().unwrap();
                while !*done {
                    done = task.done_cv.wait(done).unwrap();
                }
            }
            {
                let mut st = self.state.lock().unwrap();
                st.task = None;
            }
        }
        if task.panicked.load(Ordering::SeqCst) {
            let payload = task.panic.lock().unwrap().take();
            panic::resume_unwind(
                payload.unwrap_or_else(|| Box::new("pool task panicked".to_string())),
            );
        }
    }
}

fn worker_loop(inner: &Inner) {
    let mut last_epoch = 0u64;
    loop {
        let task = {
            let mut st = inner.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != last_epoch {
                    last_epoch = st.epoch;
                    if let Some(t) = &st.task {
                        break Arc::clone(t);
                    }
                    // Task already completed and cleared; keep waiting.
                    continue;
                }
                st = inner.work_cv.wait(st).unwrap();
            }
        };
        execute(&task);
    }
}

/// Claim and run chunks of `task` until the index space is exhausted.
fn execute(task: &Bulk) {
    struct TaskGuard(bool);
    impl Drop for TaskGuard {
        fn drop(&mut self) {
            IN_TASK.with(|f| f.set(self.0));
        }
    }
    let _guard = TaskGuard(IN_TASK.with(|f| f.replace(true)));

    loop {
        let start = task.next.fetch_add(task.chunk, Ordering::SeqCst);
        if start >= task.n {
            break;
        }
        let end = (start + task.chunk).min(task.n);
        // Once a panic is recorded the remaining chunks are skipped (their
        // results would be discarded by the unwinding submitter anyway).
        if !task.panicked.load(Ordering::SeqCst) {
            // SAFETY: see the invariants on `Bulk` — `start < n` implies the
            // submitter is still blocked in `run_chunks`, so the pointee of
            // `func` is alive.
            let f = unsafe { &*task.func };
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| f(start, end))) {
                if !task.panicked.swap(true, Ordering::SeqCst) {
                    *task.panic.lock().unwrap() = Some(payload);
                }
            }
        }
        let prev = task.remaining.fetch_sub(end - start, Ordering::SeqCst);
        if prev == end - start {
            let mut done = task.done.lock().unwrap();
            *done = true;
            task.done_cv.notify_all();
        }
    }
}

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

/// The process-wide pool, built on first use from [`default_threads`].
pub fn global() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| ThreadPool::new(default_threads()))
}

/// The pool parallel calls on this thread are scheduled on: the innermost
/// [`ThreadPool::install`]ed pool, or the global pool.
pub(crate) fn current() -> Arc<Inner> {
    CURRENT
        .with(|c| c.borrow().last().cloned())
        .unwrap_or_else(|| Arc::clone(&global().inner))
}

/// Thread count of the current pool (see [`current`]).
pub fn current_num_threads() -> usize {
    current().extra_workers + 1
}

/// Whether the calling thread is already inside a pool task (nested parallel
/// calls run serially).
pub fn in_pool_task() -> bool {
    IN_TASK.with(Cell::get)
}

/// Default chunk size for `n` items on `threads` lanes: enough chunks for
/// load balancing (4 per lane), never empty.
pub fn default_chunk(n: usize, threads: usize) -> usize {
    n.div_ceil(threads.max(1) * 4).max(1)
}

/// Run `a` and `b`, potentially in parallel on the current pool, and return
/// both results — the scoped-join primitive.
///
/// Falls back to sequential `(a(), b())` on single-lane pools or when called
/// from inside a pool task. Panics in either closure propagate to the
/// caller.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let pool = current();
    if pool.extra_workers == 0 || in_pool_task() {
        return (a(), b());
    }
    let a_slot = Mutex::new(Some(a));
    let b_slot = Mutex::new(Some(b));
    let ra = Mutex::new(None);
    let rb = Mutex::new(None);
    pool.run_chunks(2, 1, &|start, end| {
        for i in start..end {
            if i == 0 {
                let f = a_slot
                    .lock()
                    .unwrap()
                    .take()
                    .expect("join closure A ran twice");
                *ra.lock().unwrap() = Some(f());
            } else {
                let f = b_slot
                    .lock()
                    .unwrap()
                    .take()
                    .expect("join closure B ran twice");
                *rb.lock().unwrap() = Some(f());
            }
        }
    });
    (
        ra.into_inner()
            .unwrap()
            .expect("join closure A did not run"),
        rb.into_inner()
            .unwrap()
            .expect("join closure B did not run"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_squares(pool: &ThreadPool, n: usize) -> Vec<usize> {
        let parts: Mutex<Vec<(usize, Vec<usize>)>> = Mutex::new(Vec::new());
        pool.run_chunks(n, default_chunk(n, pool.num_threads()), &|start, end| {
            let buf: Vec<usize> = (start..end).map(|i| i * i).collect();
            parts.lock().unwrap().push((start, buf));
        });
        let mut parts = parts.into_inner().unwrap();
        parts.sort_unstable_by_key(|&(s, _)| s);
        parts.into_iter().flat_map(|(_, buf)| buf).collect()
    }

    #[test]
    fn covers_every_index_exactly_once() {
        let pool = ThreadPool::new(4);
        let expected: Vec<usize> = (0..1000).map(|i| i * i).collect();
        assert_eq!(collect_squares(&pool, 1000), expected);
    }

    #[test]
    fn single_thread_pool_runs_serially() {
        let pool = ThreadPool::new(1);
        let expected: Vec<usize> = (0..57).map(|i| i * i).collect();
        assert_eq!(collect_squares(&pool, 57), expected);
    }

    #[test]
    fn fewer_items_than_threads() {
        let pool = ThreadPool::new(8);
        assert_eq!(collect_squares(&pool, 3), vec![0, 1, 4]);
        assert_eq!(collect_squares(&pool, 1), vec![0]);
        assert_eq!(collect_squares(&pool, 0), Vec::<usize>::new());
    }

    #[test]
    fn oversubscribed_pool_completes() {
        // Many more threads than this machine has cores.
        let pool = ThreadPool::new(64);
        let expected: Vec<usize> = (0..10_000).map(|i| i * i).collect();
        assert_eq!(collect_squares(&pool, 10_000), expected);
    }

    #[test]
    fn pool_is_reusable_across_tasks() {
        let pool = ThreadPool::new(4);
        for n in [1usize, 5, 100, 1000] {
            let expected: Vec<usize> = (0..n).map(|i| i * i).collect();
            assert_eq!(collect_squares(&pool, n), expected);
        }
    }

    #[test]
    fn panic_in_worker_propagates_to_submitter() {
        let pool = ThreadPool::new(4);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_chunks(100, 1, &|start, _end| {
                if start == 63 {
                    panic!("boom at 63");
                }
            });
        }));
        let payload = result.expect_err("panic should propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert!(msg.contains("boom at 63"), "unexpected payload {msg:?}");
        // The pool survives a panicked task.
        assert_eq!(
            collect_squares(&pool, 10),
            (0..10).map(|i| i * i).collect::<Vec<_>>()
        );
    }

    #[test]
    fn join_runs_both_and_returns_in_order() {
        let pool = ThreadPool::new(4);
        let (a, b) = pool.install(|| join(|| 1 + 1, || "two"));
        assert_eq!((a, b), (2, "two"));
        // Serial fallback path.
        let serial = ThreadPool::new(1);
        let (a, b) = serial.install(|| join(|| 40 + 2, || vec![1, 2, 3]));
        assert_eq!(a, 42);
        assert_eq!(b, vec![1, 2, 3]);
    }

    #[test]
    fn nested_parallel_calls_fall_back_to_serial() {
        let pool = ThreadPool::new(4);
        let outer: Mutex<Vec<(usize, Vec<usize>)>> = Mutex::new(Vec::new());
        pool.run_chunks(4, 1, &|start, end| {
            for i in start..end {
                // A nested bulk call from inside a task must not deadlock.
                let inner = current();
                let acc = Mutex::new(Vec::new());
                inner.run_chunks(3, 1, &|s, e| {
                    for j in s..e {
                        acc.lock().unwrap().push(i * 10 + j);
                    }
                });
                let mut inner_vals = acc.into_inner().unwrap();
                inner_vals.sort_unstable();
                outer.lock().unwrap().push((i, inner_vals));
            }
        });
        let mut results = outer.into_inner().unwrap();
        results.sort_unstable_by_key(|&(i, _)| i);
        for (i, vals) in results {
            assert_eq!(vals, vec![i * 10, i * 10 + 1, i * 10 + 2]);
        }
    }

    #[test]
    fn install_scopes_the_current_pool() {
        let pool = ThreadPool::new(3);
        let outside = current_num_threads();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(current_num_threads(), outside);
    }

    #[test]
    fn default_chunk_is_never_zero() {
        assert_eq!(default_chunk(0, 4), 1);
        assert_eq!(default_chunk(1, 4), 1);
        assert!(default_chunk(1000, 4) >= 1);
        assert_eq!(default_chunk(16, 0), 4);
    }
}

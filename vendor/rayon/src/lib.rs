//! Minimal offline shim of the `rayon` API used by this workspace.
//!
//! `into_par_iter()` / `par_iter()` return **sequential** `std` iterators, so
//! every adapter (`map`, `collect`, …) compiles and behaves identically to
//! the serial path — results are bit-for-bit equal to the parallel version by
//! construction, just without the speedup. The `Sync`/`Send` bounds of real
//! rayon are preserved at the call sites (closures there already satisfy
//! them), so swapping the real crate back in is a one-line manifest change.

pub mod prelude {
    /// `IntoIterator`-backed replacement for rayon's `IntoParallelIterator`.
    pub trait IntoParallelIterator {
        type Item;
        type Iter: Iterator<Item = Self::Item>;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Item = I::Item;
        type Iter = I::IntoIter;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Replacement for rayon's `IntoParallelRefIterator` (`.par_iter()`).
    pub trait IntoParallelRefIterator<'a> {
        type Item: 'a;
        type Iter: Iterator<Item = Self::Item>;
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        type Iter = std::slice::Iter<'a, T>;
        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        type Iter = std::slice::Iter<'a, T>;
        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn into_par_iter_matches_serial() {
        let serial: Vec<usize> = (0..100).map(|i| i * i).collect();
        let par: Vec<usize> = (0..100).into_par_iter().map(|i| i * i).collect();
        assert_eq!(serial, par);
    }

    #[test]
    fn par_iter_over_slice() {
        let v = vec![1, 2, 3];
        let s: i32 = v.par_iter().sum();
        assert_eq!(s, 6);
    }
}

//! In-repo replacement for the `rayon` parallel-iterator API, backed by a
//! real `std::thread` pool.
//!
//! Earlier revisions of this shim returned **sequential** `std` iterators;
//! `into_par_iter()` / `par_iter()` now schedule chunked index ranges onto a
//! shared worker pool ([`pool`]), so the existing call sites in `ss-sim`,
//! `ss-batch` and `ss-queueing` run genuinely parallel with no call-site
//! changes.  Two properties define the implementation:
//!
//! * **Determinism** — iterators are indexed and terminal operations
//!   reassemble results in index order, so parallel output (including
//!   floating-point reductions) is bit-for-bit identical to serial output
//!   for any thread count.  See [`iter`] for the contract.
//! * **Caller participation** — the submitting thread is always one of the
//!   compute lanes, so `SS_THREADS=1` (or a single-core host) degrades to
//!   plain serial execution with no synchronization beyond one atomic per
//!   chunk.
//!
//! The pool is configured with `SS_THREADS` /
//! [`std::thread::available_parallelism`], or explicitly via
//! [`pool::ThreadPool`] and [`pool::ThreadPool::install`]; `ss_sim::pool`
//! re-exports those controls for the rest of the workspace.  Swapping the
//! real rayon crate back in remains a one-line manifest change: call sites
//! only use the `prelude` names with their upstream semantics.

pub mod iter;
pub mod pool;

pub use pool::{current_num_threads, join, ThreadPool};

pub mod prelude {
    //! The rayon-compatible trait imports used at call sites.
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn into_par_iter_matches_serial() {
        let serial: Vec<usize> = (0..100).map(|i| i * i).collect();
        let par: Vec<usize> = (0..100usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(serial, par);
    }

    #[test]
    fn par_iter_over_slice() {
        let v = vec![1, 2, 3];
        let s: i32 = v.par_iter().sum();
        assert_eq!(s, 6);
    }

    #[test]
    fn par_iter_preserves_order_on_large_inputs() {
        let v: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        let expected: Vec<u64> = v.iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, expected);
    }

    #[test]
    fn float_sum_is_bit_identical_to_serial() {
        // Summation order must match the serial left fold exactly.
        let v: Vec<f64> = (0..5000).map(|i| (i as f64).sin() * 1e-3).collect();
        let serial: f64 = v.iter().copied().sum();
        let parallel: f64 = v.par_iter().map(|&x: &f64| x).sum();
        assert_eq!(serial.to_bits(), parallel.to_bits());
    }

    #[test]
    fn empty_range_collects_to_empty_vec() {
        let out: Vec<usize> = (5..5usize).into_par_iter().map(|i| i * 2).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn for_each_visits_every_index() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = AtomicUsize::new(0);
        (0..257u32).into_par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 257);
    }
}

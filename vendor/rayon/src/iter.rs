//! Indexed, order-preserving parallel iterators over the pool in
//! [`crate::pool`].
//!
//! Unlike real rayon's splitter/plumbing architecture, every iterator here
//! is an *indexed source*: it knows its length and can produce the item at
//! any index independently.  Adapters compose the per-index production
//! function; terminal operations hand chunk ranges to the current pool and
//! reassemble per-chunk buffers **in index order**, so:
//!
//! * `collect::<Vec<_>>()` returns items in exactly the order the serial
//!   iterator would produce them, for any thread count and any scheduling;
//! * `sum()` and `for_each` on collected buffers fold in index order, so
//!   floating-point reductions are bit-for-bit identical to serial code
//!   (chunk-local partial reductions would not be).
//!
//! That indexed contract is what lets `SS_THREADS=1` and `SS_THREADS=64`
//! runs of the simulation crates produce identical bytes.

use crate::pool;
use std::ops::Range;
use std::sync::Mutex;

/// An indexed parallel iterator: a length plus a `Sync` per-index producer.
///
/// All adapters and terminal operations are provided methods; implementors
/// only supply [`len`](ParallelIterator::len) and
/// [`produce`](ParallelIterator::produce).
pub trait ParallelIterator: Sync + Sized {
    /// Item produced for each index.
    type Item: Send;

    /// Number of items; indices `0..len()` are valid.
    fn len(&self) -> usize;

    /// Whether the iterator is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Produce the item at `index` (called at most once per index per run,
    /// possibly concurrently from several threads).
    fn produce(&self, index: usize) -> Self::Item;

    /// Map each item through `f` (lazy; composes the producer).
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Run `f` on every item, in parallel on the current pool.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let n = self.len();
        let p = pool::current();
        p.run_chunks(
            n,
            pool::default_chunk(n, pool::current_num_threads()),
            &|start, end| {
                for i in start..end {
                    f(self.produce(i));
                }
            },
        );
    }

    /// Collect into `C`, preserving index order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }

    /// Sum the items **in index order** (bit-identical to the serial sum for
    /// floating-point items; parallelism only accelerates production).
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + Send,
    {
        collect_vec(&self).into_iter().sum()
    }

    /// Count the items, producing each one (upstream rayon executes the
    /// pipeline on `count()`, so side effects in `map` closures must run
    /// here too for the swap-back to stay behavior-preserving).
    fn count(self) -> usize {
        let n = self.len();
        self.for_each(drop);
        n
    }
}

/// Conversion from an indexed parallel iterator, order-preserving.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Build `Self` from the items of `par` in index order.
    fn from_par_iter<P: ParallelIterator<Item = T>>(par: P) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(par: P) -> Self {
        collect_vec(&par)
    }
}

/// Parallel ordered materialization: chunks are produced on the pool, then
/// reassembled by ascending start index.
fn collect_vec<P: ParallelIterator>(par: &P) -> Vec<P::Item> {
    let n = par.len();
    let parts: Mutex<Vec<(usize, Vec<P::Item>)>> = Mutex::new(Vec::new());
    let p = pool::current();
    p.run_chunks(
        n,
        pool::default_chunk(n, pool::current_num_threads()),
        &|start, end| {
            let mut buf = Vec::with_capacity(end - start);
            for i in start..end {
                buf.push(par.produce(i));
            }
            parts.lock().unwrap().push((start, buf));
        },
    );
    let mut parts = parts.into_inner().unwrap();
    parts.sort_unstable_by_key(|&(start, _)| start);
    let mut out = Vec::with_capacity(n);
    for (start, buf) in parts {
        debug_assert_eq!(start, out.len(), "chunk boundaries must tile 0..n");
        out.extend(buf);
    }
    assert_eq!(out.len(), n, "pool lost or duplicated indices");
    out
}

/// Lazy map adapter (see [`ParallelIterator::map`]).
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, R, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Sync,
{
    type Item = R;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn produce(&self, index: usize) -> R {
        (self.f)(self.base.produce(index))
    }
}

/// Conversion into an indexed parallel iterator (rayon's
/// `IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// Item type of the resulting iterator.
    type Item: Send;
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Convert `self`.
    fn into_par_iter(self) -> Self::Iter;
}

/// Indexed parallel iterator over an integer range.
pub struct RangeParIter<T> {
    start: T,
    len: usize,
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl ParallelIterator for RangeParIter<$t> {
            type Item = $t;

            fn len(&self) -> usize {
                self.len
            }

            fn produce(&self, index: usize) -> $t {
                self.start + index as $t
            }
        }

        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            type Iter = RangeParIter<$t>;

            fn into_par_iter(self) -> RangeParIter<$t> {
                let len = if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                };
                RangeParIter { start: self.start, len }
            }
        }
    )*};
}

impl_range_par_iter!(usize, u64, u32, i64, i32);

/// Indexed parallel iterator over shared slice elements.
pub struct SliceParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceParIter<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn produce(&self, index: usize) -> &'a T {
        &self.slice[index]
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = SliceParIter<'a, T>;

    fn into_par_iter(self) -> SliceParIter<'a, T> {
        SliceParIter { slice: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Iter = SliceParIter<'a, T>;

    fn into_par_iter(self) -> SliceParIter<'a, T> {
        SliceParIter { slice: self }
    }
}

/// `.par_iter()` on a borrowed collection (rayon's
/// `IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a shared reference).
    type Item: Send + 'a;
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Borrowing conversion.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = SliceParIter<'a, T>;

    fn par_iter(&'a self) -> SliceParIter<'a, T> {
        SliceParIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = SliceParIter<'a, T>;

    fn par_iter(&'a self) -> SliceParIter<'a, T> {
        SliceParIter { slice: self }
    }
}

//! Minimal offline shim of the `proptest` property-testing API.
//!
//! Supports the subset this workspace's test suites use:
//!
//! * the [`proptest!`] macro (with an optional leading
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`),
//! * `x in <range>` strategies over numeric ranges,
//! * [`collection::vec`] with an exact length or a `usize` range (nesting
//!   allowed),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`].
//!
//! Cases are generated from a ChaCha8 stream seeded from the test's name, so
//! runs are deterministic. There is **no shrinking**: a failing case panics
//! immediately and prints the generated inputs, which is usually enough to
//! reproduce by pasting them into a concrete `#[test]`.

use std::ops::Range;

use rand::Rng;
pub use rand_chacha::ChaCha8Rng as TestRng;

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// A `prop_assert!` failed; carries the formatted message.
    Fail(String),
    /// A `prop_assume!` rejected the inputs; the runner draws a fresh case.
    Reject,
}

/// Runner configuration. Only `cases` is honoured by the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// FNV-1a hash of the test name, used to decorrelate per-test RNG streams.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A generator of random values of one type.
pub trait Strategy {
    type Value: std::fmt::Debug;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Number of elements a collection strategy should produce.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use rand::Rng;

    /// Strategy producing `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.lo + 1 == self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

#[doc(hidden)]
pub mod __rt {
    pub use rand::SeedableRng;
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {{
        let __holds: bool = $cond;
        if !__holds {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    }};
    ($cond:expr, $($fmt:tt)+) => {{
        let __holds: bool = $cond;
        if !__holds {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {{
        let __holds: bool = $cond;
        if !__holds {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    }};
}

/// The test-defining macro. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `cases` generated inputs through the body.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let mut __rng = <$crate::TestRng as $crate::__rt::SeedableRng>::seed_from_u64(
                    $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
                );
                let mut __passed: u32 = 0;
                let mut __attempts: u32 = 0;
                let __max_attempts = __config.cases.saturating_mul(16).max(64);
                while __passed < __config.cases {
                    __attempts += 1;
                    if __attempts > __max_attempts {
                        panic!(
                            "proptest {}: too many rejected cases ({} attempts for {} passes)",
                            stringify!($name), __attempts, __passed
                        );
                    }
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )+
                    let __case_debug = format!(
                        concat!($( stringify!($arg), " = {:?}; ", )+),
                        $( &$arg ),+
                    );
                    let __outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (move || { $body ::core::result::Result::Ok(()) })();
                    match __outcome {
                        ::core::result::Result::Ok(()) => { __passed += 1; }
                        ::core::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed: {}\n  inputs: {}",
                                stringify!($name), msg, __case_debug
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 1.5f64..9.5, n in 2usize..10) {
            prop_assert!((1.5..9.5).contains(&x));
            prop_assert!((2..10).contains(&n));
        }

        #[test]
        fn vec_lengths_respect_size_range(
            xs in prop::collection::vec(0.0f64..1.0, 2..8),
            fixed in prop::collection::vec(0.0f64..1.0, 3),
        ) {
            prop_assert!(xs.len() >= 2 && xs.len() < 8);
            prop_assert_eq!(fixed.len(), 3);
            prop_assert!(xs.iter().all(|&v| (0.0..1.0).contains(&v)));
        }

        #[test]
        fn assume_rejects_and_resamples(a in 0.0f64..1.0) {
            prop_assume!(a > 0.1);
            prop_assert!(a > 0.1);
        }
    }

    #[test]
    fn nested_vec_strategy() {
        let mut rng = <crate::TestRng as ::rand::SeedableRng>::seed_from_u64(9);
        let strat = prop::collection::vec(prop::collection::vec(0.0f64..1.0, 2..6), 1..5);
        for _ in 0..50 {
            let rows = strat.generate(&mut rng);
            assert!(!rows.is_empty() && rows.len() < 5);
            assert!(rows.iter().all(|r| r.len() >= 2 && r.len() < 6));
        }
    }
}

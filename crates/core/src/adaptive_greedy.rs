//! The adaptive-greedy index algorithm of the conservation-law /
//! (extended) polymatroid framework (Klimov 1974, Bertsimas–Niño-Mora 1996).
//!
//! The survey's unifying observation is that the good policies across all
//! three model families are **priority-index rules**, and that for a large
//! class of models the indices can be produced by one algorithm: at each
//! step, among the classes not yet assigned a priority, pick the one with
//! the largest *marginal productivity rate* with respect to the set of
//! classes already assigned.  The marginal rate of a candidate class `j`
//! against a continuation set `S ∋ j` is
//!
//! ```text
//!            c_j − E_j(S)
//! ν_j(S)  =  ------------
//!               T_j(S)
//! ```
//!
//! where `T_j(S)` is the expected amount of *work* a class-`j` job keeps
//! the server occupied with classes inside `S` (its sub-busy period
//! restricted to `S`), and `E_j(S)` is the expected cost rate of the first
//! class it turns into *outside* `S` (zero if it leaves the system).  The
//! algorithm assigns priorities from the top down; the produced indices
//! solve the performance-region linear program whenever the model satisfies
//! generalised conservation laws.
//!
//! Instantiations used elsewhere in the workspace:
//!
//! | Model | `T_j(S)` | `E_j(S)` | Recovered rule |
//! |---|---|---|---|
//! | Multiclass M/G/1, no feedback | `E[S_j]` | `0` | cµ-rule |
//! | Klimov network (Bernoulli feedback) | restricted busy period from the routing matrix | cost rate at first exit from `S` | Klimov's indices |
//! | Branching bandits (Weiss 1988) | restricted busy period from the expected-offspring matrix | cost rate of first offspring outside `S` | branching-bandit index |
//!
//! The oracle is supplied through the [`WorkMeasure`] trait so that each
//! domain crate can plug in its own sub-busy-period computation without
//! this crate depending on any of them.

use crate::index::argsort_decreasing;

/// Work/exit-cost oracle of one scheduling model, evaluated against a
/// continuation set of classes.
///
/// `continuation[k]` is `true` when class `k` belongs to the continuation
/// set `S`; implementations may assume the candidate class itself is always
/// a member of `S`.
pub trait WorkMeasure {
    /// Number of job classes in the model.
    fn num_classes(&self) -> usize;

    /// Expected work `T_j(S) > 0`: the time a class-`j` job keeps the
    /// server busy with classes inside `S` (including its own service).
    fn work(&self, class: usize, continuation: &[bool]) -> f64;

    /// Expected exit cost rate `E_j(S) >= 0`: the holding-cost rate of the
    /// first class the job turns into outside `S` (zero when it leaves the
    /// system instead).
    fn exit_cost(&self, class: usize, continuation: &[bool]) -> f64;
}

/// Output of [`adaptive_greedy`].
#[derive(Debug, Clone)]
pub struct AdaptiveGreedyResult {
    /// Priority index per class (higher = served earlier).
    pub indices: Vec<f64>,
    /// Classes sorted by decreasing index (ties broken by class id), i.e.
    /// the priority order the indices induce.
    pub order: Vec<usize>,
    /// The sequence of marginal rates in the order the algorithm assigned
    /// them (non-increasing exactly when the model satisfies the
    /// conservation-law structure on the nested sets the run visited).
    pub assignment_rates: Vec<f64>,
}

impl AdaptiveGreedyResult {
    /// Whether the marginal rates were non-increasing along the run — the
    /// numerical footprint of the generalised-conservation-law structure.
    pub fn rates_non_increasing(&self, tolerance: f64) -> bool {
        self.assignment_rates
            .windows(2)
            .all(|w| w[1] <= w[0] + tolerance)
    }
}

/// Run the adaptive-greedy index algorithm for the model described by
/// `oracle` with holding-cost rates `costs`.
///
/// # Panics
///
/// Panics if `costs.len()` differs from `oracle.num_classes()`, if any cost
/// is negative/non-finite, or if the oracle reports a non-positive work
/// measure (which would make the marginal rate meaningless).
pub fn adaptive_greedy(costs: &[f64], oracle: &dyn WorkMeasure) -> AdaptiveGreedyResult {
    let n = oracle.num_classes();
    assert_eq!(
        costs.len(),
        n,
        "cost vector length must match the number of classes"
    );
    assert!(n > 0, "need at least one class");
    assert!(
        costs.iter().all(|c| c.is_finite() && *c >= 0.0),
        "holding costs must be finite and nonnegative"
    );

    let mut indices = vec![f64::NAN; n];
    let mut assigned = vec![false; n];
    let mut assignment_rates = Vec::with_capacity(n);

    for _step in 0..n {
        let mut best_class = usize::MAX;
        let mut best_rate = f64::NEG_INFINITY;
        for j in 0..n {
            if assigned[j] {
                continue;
            }
            // Continuation set: everything already assigned plus the candidate.
            let mut continuation = assigned.clone();
            continuation[j] = true;
            let work = oracle.work(j, &continuation);
            assert!(
                work.is_finite() && work > 0.0,
                "work measure of class {j} must be positive, got {work}"
            );
            let exit = oracle.exit_cost(j, &continuation);
            assert!(
                exit.is_finite(),
                "exit cost of class {j} must be finite, got {exit}"
            );
            let rate = (costs[j] - exit) / work;
            if rate > best_rate {
                best_rate = rate;
                best_class = j;
            }
        }
        indices[best_class] = best_rate;
        assigned[best_class] = true;
        assignment_rates.push(best_rate);
    }

    let order = argsort_decreasing(&indices);
    AdaptiveGreedyResult {
        indices,
        order,
        assignment_rates,
    }
}

/// The trivial work measure of the multiclass M/G/1 queue *without*
/// feedback: serving a class-`j` job occupies the server for `E[S_j]` and
/// the job then leaves, so the adaptive greedy reduces to the cµ-rule.
#[derive(Debug, Clone)]
pub struct IsolatedJobs {
    /// Mean service time per class.
    pub mean_service: Vec<f64>,
}

impl IsolatedJobs {
    /// Create the oracle from per-class mean service times (all positive).
    pub fn new(mean_service: Vec<f64>) -> Self {
        assert!(!mean_service.is_empty());
        assert!(mean_service.iter().all(|m| m.is_finite() && *m > 0.0));
        Self { mean_service }
    }
}

impl WorkMeasure for IsolatedJobs {
    fn num_classes(&self) -> usize {
        self.mean_service.len()
    }

    fn work(&self, class: usize, _continuation: &[bool]) -> f64 {
        self.mean_service[class]
    }

    fn exit_cost(&self, _class: usize, _continuation: &[bool]) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolated_jobs_recover_the_cmu_rule() {
        // Three classes with mean services 1.0, 0.5, 2.0 and costs 1, 3, 2:
        // cµ indices 1, 6, 1 -> order [1, 0-or-2, ...] with ties by id.
        let oracle = IsolatedJobs::new(vec![1.0, 0.5, 2.0]);
        let result = adaptive_greedy(&[1.0, 3.0, 2.0], &oracle);
        assert!((result.indices[0] - 1.0).abs() < 1e-12);
        assert!((result.indices[1] - 6.0).abs() < 1e-12);
        assert!((result.indices[2] - 1.0).abs() < 1e-12);
        assert_eq!(result.order[0], 1);
        assert!(result.rates_non_increasing(1e-12));
    }

    #[test]
    fn single_class_index_is_cost_over_work() {
        let oracle = IsolatedJobs::new(vec![0.25]);
        let result = adaptive_greedy(&[2.0], &oracle);
        assert!((result.indices[0] - 8.0).abs() < 1e-12);
        assert_eq!(result.order, vec![0]);
        assert_eq!(result.assignment_rates.len(), 1);
    }

    #[test]
    fn zero_cost_classes_sink_to_the_bottom() {
        let oracle = IsolatedJobs::new(vec![1.0, 1.0, 1.0]);
        let result = adaptive_greedy(&[0.0, 5.0, 1.0], &oracle);
        assert_eq!(result.order, vec![1, 2, 0]);
        assert!((result.indices[0] - 0.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn cost_length_mismatch_panics() {
        let oracle = IsolatedJobs::new(vec![1.0, 2.0]);
        let _ = adaptive_greedy(&[1.0], &oracle);
    }

    #[test]
    #[should_panic]
    fn negative_costs_are_rejected() {
        let oracle = IsolatedJobs::new(vec![1.0]);
        let _ = adaptive_greedy(&[-1.0], &oracle);
    }

    /// A contrived oracle whose work measure shrinks as the continuation
    /// set grows; the marginal rates then need not be monotone, and the
    /// diagnostic should say so.
    struct ShrinkingWork;

    impl WorkMeasure for ShrinkingWork {
        fn num_classes(&self) -> usize {
            2
        }

        fn work(&self, class: usize, continuation: &[bool]) -> f64 {
            let size = continuation.iter().filter(|&&b| b).count();
            if class == 0 {
                1.0
            } else {
                // Class 1 looks very expensive alone but cheap once class 0
                // is in the continuation set.
                if size == 1 {
                    10.0
                } else {
                    0.1
                }
            }
        }

        fn exit_cost(&self, _class: usize, _continuation: &[bool]) -> f64 {
            0.0
        }
    }

    #[test]
    fn non_conservation_law_models_are_flagged_by_the_diagnostic() {
        let result = adaptive_greedy(&[1.0, 1.0], &ShrinkingWork);
        // Class 0 has rate 1 alone; class 1 has rate 0.1 alone, but once
        // class 0 is assigned the rate of class 1 jumps to 10: the
        // assignment-rate sequence increases, so the diagnostic must fail.
        assert!((result.assignment_rates[0] - 1.0).abs() < 1e-12);
        assert!((result.assignment_rates[1] - 10.0).abs() < 1e-12);
        assert!(!result.rates_non_increasing(1e-9));
    }
}

//! Batch-scheduling problem instances: builders and random generators.

use crate::job::Job;
use rand::Rng;
use ss_distributions::{
    dyn_dist, DynDist, Erlang, Exponential, HyperExponential, TwoPoint, Uniform,
};

/// A batch of stochastic jobs to be scheduled on one or more machines
/// (the §1 model family of the survey).
#[derive(Debug, Clone)]
pub struct BatchInstance {
    jobs: Vec<Job>,
}

impl BatchInstance {
    /// Start building an instance job by job.
    pub fn builder() -> BatchInstanceBuilder {
        BatchInstanceBuilder { jobs: Vec::new() }
    }

    /// Create directly from a vector of jobs.
    pub fn from_jobs(jobs: Vec<Job>) -> Self {
        assert!(!jobs.is_empty(), "instance needs at least one job");
        Self { jobs }
    }

    /// The jobs.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True if there are no jobs (never the case after construction).
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Sum of expected processing times (a lower bound on the makespan on a
    /// single machine and `m` times the lower bound on `m` machines).
    pub fn total_expected_work(&self) -> f64 {
        self.jobs.iter().map(|j| j.mean_processing()).sum()
    }
}

/// Builder for [`BatchInstance`].
#[derive(Debug, Default)]
pub struct BatchInstanceBuilder {
    jobs: Vec<Job>,
}

impl BatchInstanceBuilder {
    /// Add a job with the given weight and processing-time distribution.
    pub fn job(mut self, weight: f64, dist: DynDist) -> Self {
        let id = self.jobs.len();
        self.jobs.push(Job::new(id, weight, dist));
        self
    }

    /// Add an unweighted job (weight 1), for total-flowtime / makespan models.
    pub fn unweighted_job(self, dist: DynDist) -> Self {
        self.job(1.0, dist)
    }

    /// Finalise the instance.
    pub fn build(self) -> BatchInstance {
        BatchInstance::from_jobs(self.jobs)
    }
}

/// Which distribution family a random generator should draw processing-time
/// distributions from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstanceFamily {
    /// Exponential with mean drawn uniformly from a range.
    Exponential,
    /// Erlang-k, k drawn from 2..=4.
    Erlang,
    /// Two-branch hyperexponential with SCV drawn from [2, 6].
    HyperExponential,
    /// Continuous uniform with random endpoints.
    Uniform,
    /// Two-point distributions (the Coffman–Hofri–Weiss regime).
    TwoPoint,
    /// A mix of all of the above (one family drawn per job).
    Mixed,
}

/// Random-instance generator with documented, reproducible parameters.
///
/// Means are drawn uniformly from `[mean_low, mean_high]` and weights from
/// `[weight_low, weight_high]`.
#[derive(Debug, Clone)]
pub struct InstanceGenerator {
    /// Distribution family for processing times.
    pub family: InstanceFamily,
    /// Lower bound of the mean-processing-time range.
    pub mean_low: f64,
    /// Upper bound of the mean-processing-time range.
    pub mean_high: f64,
    /// Lower bound of the weight range.
    pub weight_low: f64,
    /// Upper bound of the weight range.
    pub weight_high: f64,
}

impl Default for InstanceGenerator {
    fn default() -> Self {
        Self {
            family: InstanceFamily::Mixed,
            mean_low: 0.5,
            mean_high: 3.0,
            weight_low: 0.5,
            weight_high: 2.0,
        }
    }
}

impl InstanceGenerator {
    /// Generator with a fixed family and default ranges.
    pub fn with_family(family: InstanceFamily) -> Self {
        Self {
            family,
            ..Default::default()
        }
    }

    /// Draw one processing-time distribution.
    pub fn sample_dist<R: Rng + ?Sized>(&self, rng: &mut R) -> DynDist {
        let mean = rng.gen_range(self.mean_low..self.mean_high);
        let family = match self.family {
            InstanceFamily::Mixed => match rng.gen_range(0..5u32) {
                0 => InstanceFamily::Exponential,
                1 => InstanceFamily::Erlang,
                2 => InstanceFamily::HyperExponential,
                3 => InstanceFamily::Uniform,
                _ => InstanceFamily::TwoPoint,
            },
            f => f,
        };
        match family {
            InstanceFamily::Exponential => dyn_dist(Exponential::with_mean(mean)),
            InstanceFamily::Erlang => {
                let k = rng.gen_range(2..=4u32);
                dyn_dist(Erlang::with_mean(k, mean))
            }
            InstanceFamily::HyperExponential => {
                let scv = rng.gen_range(2.0..6.0);
                dyn_dist(HyperExponential::with_mean_scv(mean, scv))
            }
            InstanceFamily::Uniform => {
                let half_width = rng.gen_range(0.1..0.9) * mean;
                dyn_dist(Uniform::new(mean - half_width, mean + half_width))
            }
            InstanceFamily::TwoPoint => {
                let p = rng.gen_range(0.5..0.95);
                let low = rng.gen_range(0.05..0.5) * mean;
                // Choose the high point so that the mean is as requested.
                let high = (mean - p * low) / (1.0 - p);
                dyn_dist(TwoPoint::new(p, low, high))
            }
            InstanceFamily::Mixed => unreachable!("resolved above"),
        }
    }

    /// Generate an instance with `n` jobs.
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> BatchInstance {
        assert!(n > 0);
        let jobs = (0..n)
            .map(|id| {
                let weight = rng.gen_range(self.weight_low..self.weight_high);
                Job::new(id, weight, self.sample_dist(rng))
            })
            .collect();
        BatchInstance::from_jobs(jobs)
    }

    /// Generate an instance where all jobs share one common distribution
    /// (required by the common-IHR / common-DHR parallel-machine theorems).
    pub fn generate_common_distribution<R: Rng + ?Sized>(
        &self,
        n: usize,
        rng: &mut R,
    ) -> BatchInstance {
        assert!(n > 0);
        let dist = self.sample_dist(rng);
        let jobs = (0..n)
            .map(|id| {
                let weight = rng.gen_range(self.weight_low..self.weight_high);
                Job::new(id, weight, dist.clone())
            })
            .collect();
        BatchInstance::from_jobs(jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn builder_assigns_ids() {
        let inst = BatchInstance::builder()
            .job(1.0, dyn_dist(Exponential::new(1.0)))
            .job(2.0, dyn_dist(Exponential::new(2.0)))
            .unweighted_job(dyn_dist(Exponential::new(3.0)))
            .build();
        assert_eq!(inst.len(), 3);
        assert_eq!(inst.jobs()[0].id, 0);
        assert_eq!(inst.jobs()[2].id, 2);
        assert_eq!(inst.jobs()[2].weight, 1.0);
    }

    #[test]
    fn generator_is_reproducible() {
        let gen = InstanceGenerator::default();
        let mut rng1 = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let mut rng2 = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let a = gen.generate(10, &mut rng1);
        let b = gen.generate(10, &mut rng2);
        for (ja, jb) in a.jobs().iter().zip(b.jobs()) {
            assert_eq!(ja.weight, jb.weight);
            assert!((ja.mean_processing() - jb.mean_processing()).abs() < 1e-12);
        }
    }

    #[test]
    fn generator_respects_family_and_ranges() {
        let gen = InstanceGenerator {
            family: InstanceFamily::Exponential,
            mean_low: 1.0,
            mean_high: 2.0,
            weight_low: 1.0,
            weight_high: 1.5,
        };
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        let inst = gen.generate(50, &mut rng);
        for j in inst.jobs() {
            assert!(j.mean_processing() >= 1.0 - 1e-9 && j.mean_processing() <= 2.0 + 1e-9);
            assert!(j.weight >= 1.0 && j.weight <= 1.5);
            assert_eq!(j.dist.kind(), ss_distributions::DistKind::Exponential);
        }
        assert!(inst.total_expected_work() > 50.0);
    }

    #[test]
    fn common_distribution_instances_share_means() {
        let gen = InstanceGenerator::with_family(InstanceFamily::Erlang);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(13);
        let inst = gen.generate_common_distribution(8, &mut rng);
        let m0 = inst.jobs()[0].mean_processing();
        for j in inst.jobs() {
            assert!((j.mean_processing() - m0).abs() < 1e-12);
        }
    }

    #[test]
    fn two_point_generator_hits_requested_mean() {
        let gen = InstanceGenerator::with_family(InstanceFamily::TwoPoint);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(33);
        let inst = gen.generate(20, &mut rng);
        for j in inst.jobs() {
            assert!(j.mean_processing() >= gen.mean_low - 1e-9);
            // The constructed high point keeps the mean in range by design.
            assert!(j.mean_processing() <= gen.mean_high + 1e-9);
        }
    }
}

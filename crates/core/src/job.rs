//! Jobs and job classes.

use ss_distributions::DynDist;
use std::fmt;

/// A single stochastic job: a holding-cost weight and a processing-time
/// distribution.  The distribution is known to the scheduler (the standard
/// informational assumption of the survey); the realised processing time is
/// not.
#[derive(Clone)]
pub struct Job {
    /// Identifier, unique within an instance.
    pub id: usize,
    /// Holding-cost rate `w_i >= 0` per unit time in the system.
    pub weight: f64,
    /// Processing-time distribution.
    pub dist: DynDist,
}

impl Job {
    /// Create a job.
    pub fn new(id: usize, weight: f64, dist: DynDist) -> Self {
        assert!(
            weight >= 0.0 && weight.is_finite(),
            "weight must be nonnegative"
        );
        assert!(dist.mean() > 0.0, "processing time must have positive mean");
        Self { id, weight, dist }
    }

    /// Expected processing time `E[P_i]`.
    pub fn mean_processing(&self) -> f64 {
        self.dist.mean()
    }

    /// The Smith / WSEPT priority index `w_i / E[P_i]` (higher = serve first).
    pub fn wsept_index(&self) -> f64 {
        self.weight / self.dist.mean()
    }
}

impl fmt::Debug for Job {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Job")
            .field("id", &self.id)
            .field("weight", &self.weight)
            .field("dist", &self.dist.describe())
            .finish()
    }
}

/// A job class for queueing models: Poisson arrivals, common service-time
/// distribution and a linear holding-cost rate.
#[derive(Clone)]
pub struct JobClass {
    /// Class identifier.
    pub id: usize,
    /// Poisson arrival rate `alpha_j`.
    pub arrival_rate: f64,
    /// Service-time distribution with mean `1/mu_j`.
    pub service: DynDist,
    /// Holding-cost rate `c_j`.
    pub holding_cost: f64,
}

impl JobClass {
    /// Create a job class.
    pub fn new(id: usize, arrival_rate: f64, service: DynDist, holding_cost: f64) -> Self {
        assert!(arrival_rate >= 0.0 && arrival_rate.is_finite());
        assert!(holding_cost >= 0.0 && holding_cost.is_finite());
        assert!(service.mean() > 0.0);
        Self {
            id,
            arrival_rate,
            service,
            holding_cost,
        }
    }

    /// Mean service time `1/mu_j`.
    pub fn mean_service(&self) -> f64 {
        self.service.mean()
    }

    /// Service rate `mu_j`.
    pub fn service_rate(&self) -> f64 {
        1.0 / self.service.mean()
    }

    /// Traffic intensity contribution `rho_j = alpha_j / mu_j`.
    pub fn load(&self) -> f64 {
        self.arrival_rate * self.service.mean()
    }

    /// The cµ index `c_j * mu_j` (higher = serve first).
    pub fn cmu_index(&self) -> f64 {
        self.holding_cost * self.service_rate()
    }
}

impl fmt::Debug for JobClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobClass")
            .field("id", &self.id)
            .field("arrival_rate", &self.arrival_rate)
            .field("service", &self.service.describe())
            .field("holding_cost", &self.holding_cost)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_distributions::{dyn_dist, Exponential};

    #[test]
    fn job_indices() {
        let j = Job::new(0, 3.0, dyn_dist(Exponential::with_mean(2.0)));
        assert!((j.mean_processing() - 2.0).abs() < 1e-12);
        assert!((j.wsept_index() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn job_class_load_and_cmu() {
        let c = JobClass::new(0, 0.5, dyn_dist(Exponential::with_mean(0.8)), 2.0);
        assert!((c.load() - 0.4).abs() < 1e-12);
        assert!((c.cmu_index() - 2.5).abs() < 1e-12);
        assert!((c.service_rate() - 1.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn negative_weight_rejected() {
        let _ = Job::new(0, -1.0, dyn_dist(Exponential::new(1.0)));
    }
}

//! Policy abstractions.

use crate::index::argsort_decreasing;
use crate::instance::BatchInstance;
use crate::job::Job;

/// A priority-index rule over jobs of a batch instance: the policy assigns a
/// real-valued index to each job (possibly depending on attained service for
/// preemptive models) and serves the highest index first.
pub trait IndexPolicy {
    /// Human-readable policy name (used in comparison tables).
    fn name(&self) -> &str;

    /// Index of `job` given it has already received `attained` units of
    /// service.  For nonpreemptive list policies `attained` is always 0.
    fn index(&self, job: &Job, attained: f64) -> f64;

    /// The static service order induced by the indices at zero attained
    /// service (highest index first, ties by job id).
    fn static_order(&self, instance: &BatchInstance) -> Vec<usize> {
        let values: Vec<f64> = instance.jobs().iter().map(|j| self.index(j, 0.0)).collect();
        argsort_decreasing(&values)
    }
}

/// A fixed processing order (a permutation of job indices).  This is the
/// "admissible nonpreemptive static policy" of the single-machine model and
/// the list order used by parallel-machine list scheduling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticListPolicy {
    name: String,
    order: Vec<usize>,
}

impl StaticListPolicy {
    /// Create from an explicit permutation.
    pub fn new(name: impl Into<String>, order: Vec<usize>) -> Self {
        let mut sorted = order.clone();
        sorted.sort_unstable();
        for (i, &v) in sorted.iter().enumerate() {
            assert_eq!(i, v, "order must be a permutation of 0..n");
        }
        Self {
            name: name.into(),
            order,
        }
    }

    /// Policy name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The processing order.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True if the order is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_distributions::{dyn_dist, Exponential};

    struct Wsept;
    impl IndexPolicy for Wsept {
        fn name(&self) -> &str {
            "WSEPT"
        }
        fn index(&self, job: &Job, _attained: f64) -> f64 {
            job.wsept_index()
        }
    }

    #[test]
    fn static_order_sorts_by_index() {
        let inst = BatchInstance::builder()
            .job(1.0, dyn_dist(Exponential::with_mean(2.0))) // index 0.5
            .job(4.0, dyn_dist(Exponential::with_mean(1.0))) // index 4.0
            .job(2.0, dyn_dist(Exponential::with_mean(4.0))) // index 0.5
            .build();
        let order = Wsept.static_order(&inst);
        assert_eq!(order, vec![1, 0, 2]);
    }

    #[test]
    fn static_list_policy_validates_permutation() {
        let p = StaticListPolicy::new("custom", vec![2, 0, 1]);
        assert_eq!(p.order(), &[2, 0, 1]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.name(), "custom");
    }

    #[test]
    #[should_panic]
    fn non_permutation_rejected() {
        let _ = StaticListPolicy::new("bad", vec![0, 0, 1]);
    }
}

//! # ss-core — shared stochastic-scheduling vocabulary
//!
//! The unifying theme of the survey is that across all three model families
//! (batch scheduling, bandits, queueing control) the good policies are
//! **priority-index rules**: compute an index per job/class/project state,
//! serve the largest.  This crate provides the shared vocabulary the domain
//! crates build on:
//!
//! * [`adaptive_greedy`] — the adaptive-greedy index algorithm of the
//!   conservation-law / extended-polymatroid framework, shared by the
//!   cµ/Klimov/branching-bandit index computations;
//! * [`job`] — stochastic jobs (weight + processing-time distribution) and
//!   job classes;
//! * [`instance`] — batch-scheduling problem instances, builders and random
//!   generators with documented seeds;
//! * [`policy`] — the [`policy::IndexPolicy`] trait and static-list
//!   policies;
//! * [`index`] — a total-ordering wrapper for `f64` priority indices;
//! * [`objective`] — the performance objectives used across the workspace;
//! * [`result`] — comparison tables (policy → value ± CI) shared by the
//!   experiment harness and the examples.

pub mod adaptive_greedy;
pub mod discipline;
pub mod index;
pub mod instance;
pub mod job;
pub mod linalg;
pub mod objective;
pub mod policy;
pub mod result;

pub use adaptive_greedy::{adaptive_greedy, AdaptiveGreedyResult, WorkMeasure};
pub use discipline::Discipline;
pub use index::PriorityIndex;
pub use instance::{BatchInstance, BatchInstanceBuilder};
pub use job::{Job, JobClass};
pub use objective::Objective;
pub use policy::{IndexPolicy, StaticListPolicy};
pub use result::{ComparisonRow, ComparisonTable};

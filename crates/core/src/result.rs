//! Comparison tables shared by the experiment harness, benches and examples.

use std::fmt;

/// One row of a policy-comparison table.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Policy (or bound) name.
    pub name: String,
    /// Point estimate (or exact value).
    pub value: f64,
    /// Optional 95% confidence half-width (None for exact values/bounds).
    pub ci95: Option<f64>,
    /// Optional free-form note (e.g. "exact DP", "LP lower bound").
    pub note: String,
}

/// A table comparing several policies (and bounds) on one experiment
/// configuration, with markdown and CSV rendering used by the experiment
/// harness to regenerate the tables recorded in EXPERIMENTS.md.
#[derive(Debug, Clone)]
pub struct ComparisonTable {
    /// Table title (e.g. "E1: single machine, n = 8, exponential").
    pub title: String,
    /// Column label for the value column (e.g. "E[sum w C]").
    pub value_label: String,
    /// Rows in display order.
    pub rows: Vec<ComparisonRow>,
}

impl ComparisonTable {
    /// Create an empty table.
    pub fn new(title: impl Into<String>, value_label: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            value_label: value_label.into(),
            rows: Vec::new(),
        }
    }

    /// Append a row with a confidence interval.
    pub fn add(
        &mut self,
        name: impl Into<String>,
        value: f64,
        ci95: Option<f64>,
        note: impl Into<String>,
    ) {
        self.rows.push(ComparisonRow {
            name: name.into(),
            value,
            ci95,
            note: note.into(),
        });
    }

    /// The row with the smallest value (for minimisation comparisons).
    pub fn best_row(&self) -> Option<&ComparisonRow> {
        self.rows
            .iter()
            .min_by(|a, b| a.value.partial_cmp(&b.value).unwrap())
    }

    /// Ratio of each row's value to the best (smallest) value.
    pub fn ratios_to_best(&self) -> Vec<(String, f64)> {
        let best = match self.best_row() {
            Some(r) if r.value.abs() > 1e-300 => r.value,
            _ => return Vec::new(),
        };
        self.rows
            .iter()
            .map(|r| (r.name.clone(), r.value / best))
            .collect()
    }

    /// Render as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!(
            "| policy | {} | 95% CI | note |\n",
            self.value_label
        ));
        out.push_str("|---|---|---|---|\n");
        for r in &self.rows {
            let ci = match r.ci95 {
                Some(c) => format!("±{:.4}", c),
                None => "—".to_string(),
            };
            out.push_str(&format!(
                "| {} | {:.4} | {} | {} |\n",
                r.name, r.value, ci, r.note
            ));
        }
        out
    }

    /// Render as CSV (`policy,value,ci95,note` with a header).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("policy,value,ci95,note\n");
        for r in &self.rows {
            let ci = r.ci95.map(|c| format!("{c}")).unwrap_or_default();
            out.push_str(&format!("{},{},{},{}\n", r.name, r.value, ci, r.note));
        }
        out
    }
}

impl fmt::Display for ComparisonTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_markdown())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> ComparisonTable {
        let mut t = ComparisonTable::new("E1: demo", "E[sum w C]");
        t.add("WSEPT", 10.0, Some(0.1), "optimal (Rothkopf)");
        t.add("LEPT", 13.0, Some(0.2), "");
        t.add("exhaustive optimum", 10.0, None, "exact");
        t
    }

    #[test]
    fn best_row_and_ratios() {
        let t = sample_table();
        assert_eq!(t.best_row().unwrap().value, 10.0);
        let ratios = t.ratios_to_best();
        assert!((ratios[1].1 - 1.3).abs() < 1e-12);
    }

    #[test]
    fn markdown_contains_all_rows() {
        let md = sample_table().to_markdown();
        assert!(md.contains("WSEPT"));
        assert!(md.contains("LEPT"));
        assert!(md.contains("±0.1000"));
        assert!(md.contains("| exhaustive optimum | 10.0000 | — | exact |"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = sample_table().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "policy,value,ci95,note");
    }
}

//! Performance objectives.

use std::fmt;

/// The performance objectives that appear in the survey's three model
/// families.  All are expectations; the batch objectives are over a finite
/// horizon (until the batch completes), the queueing objective is a
/// steady-state rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Objective {
    /// `E[ sum_i w_i C_i ]` — expected weighted flowtime (§1, Rothkopf/Smith).
    WeightedFlowtime,
    /// `E[ sum_i C_i ]` — expected total flowtime (§1, SEPT results).
    TotalFlowtime,
    /// `E[ max_i C_i ]` — expected makespan (§1, LEPT results).
    Makespan,
    /// `E[ sum_t beta^t R_t ]` — expected total discounted reward (§2,
    /// Gittins index).
    DiscountedReward,
    /// Long-run average reward (§2, Whittle's restless bandits).
    AverageReward,
    /// `sum_j c_j E[L_j]` — steady-state expected holding-cost rate (§3,
    /// cµ-rule, Klimov).
    HoldingCostRate,
}

impl Objective {
    /// True if smaller values are better.
    pub fn is_minimisation(&self) -> bool {
        match self {
            Objective::WeightedFlowtime
            | Objective::TotalFlowtime
            | Objective::Makespan
            | Objective::HoldingCostRate => true,
            Objective::DiscountedReward | Objective::AverageReward => false,
        }
    }

    /// Sign multiplier such that "bigger is better" after multiplication.
    pub fn orientation(&self) -> f64 {
        if self.is_minimisation() {
            -1.0
        } else {
            1.0
        }
    }
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Objective::WeightedFlowtime => "expected weighted flowtime",
            Objective::TotalFlowtime => "expected total flowtime",
            Objective::Makespan => "expected makespan",
            Objective::DiscountedReward => "expected discounted reward",
            Objective::AverageReward => "long-run average reward",
            Objective::HoldingCostRate => "steady-state holding cost rate",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orientation_matches_minimisation_flag() {
        for obj in [
            Objective::WeightedFlowtime,
            Objective::TotalFlowtime,
            Objective::Makespan,
            Objective::DiscountedReward,
            Objective::AverageReward,
            Objective::HoldingCostRate,
        ] {
            if obj.is_minimisation() {
                assert_eq!(obj.orientation(), -1.0);
            } else {
                assert_eq!(obj.orientation(), 1.0);
            }
            assert!(!obj.to_string().is_empty());
        }
    }
}

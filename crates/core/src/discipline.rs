//! The pluggable queue-discipline contract shared by the service fabric.
//!
//! A [`Discipline`] decides, each time a server frees up, **which class to
//! serve next** from the classes with waiting requests.  The contract is a
//! priority index over `(class, queue length)` pairs — exactly the shape of
//! the index policies this workspace studies — so the cµ rule
//! (`ss-queueing`), the Gittins service index (`ss-batch`) and the Whittle
//! rule (`ss-bandits`) all plug into the same server loop through thin
//! adapters, and a constant index degenerates to global FIFO.
//!
//! ## Selection contract
//!
//! The caller evaluates [`Discipline::class_index`] for every class with a
//! nonempty queue and serves the head-of-line request of the class with the
//! **highest** index.  Ties are broken by the earliest head-of-line arrival
//! (first-scheduled-first-served), which makes the constant-index
//! [`Fifo`] discipline exactly global FIFO and keeps every discipline
//! deterministic: the index is a pure function of `(class, waiting)`, so
//! simulation output is reproducible from the seed alone.

use std::fmt;

/// A pluggable nonpreemptive queue discipline: ranks the job classes
/// waiting at a server.
pub trait Discipline: Send + Sync {
    /// Short stable name for report lines (`"fifo"`, `"cmu"`, ...).
    fn name(&self) -> &str;

    /// Priority index of serving class `class` next, given that `waiting`
    /// requests of that class are queued (including the head-of-line one).
    /// Higher = serve first; ties resolve to the earliest head-of-line
    /// arrival across the tied classes.
    ///
    /// Must be a pure function of its arguments (no interior mutability,
    /// no randomness): the determinism contract of the simulators that
    /// call it depends on this.
    fn class_index(&self, class: usize, waiting: usize) -> f64;
}

impl fmt::Debug for dyn Discipline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Discipline({})", self.name())
    }
}

/// Global first-in-first-out: every class gets the same index, so the
/// tie-break (earliest head-of-line arrival) decides — i.e. pure FIFO
/// across classes.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fifo;

impl Discipline for Fifo {
    fn name(&self) -> &str {
        "fifo"
    }

    fn class_index(&self, _class: usize, _waiting: usize) -> f64 {
        0.0
    }
}

/// A discipline defined by a fixed per-class index table (the static index
/// policies: cµ, Gittins-at-zero-attained-service, any hand-built
/// priority).  Adapters in `ss-queueing`/`ss-batch` construct these from
/// their index computations.
#[derive(Debug, Clone)]
pub struct StaticIndex {
    name: String,
    indices: Vec<f64>,
}

impl StaticIndex {
    /// Build from a per-class index table (higher = higher priority).
    pub fn new(name: impl Into<String>, indices: Vec<f64>) -> Self {
        assert!(!indices.is_empty(), "index table must cover >= 1 class");
        assert!(
            indices.iter().all(|i| !i.is_nan()),
            "priority indices must not be NaN"
        );
        Self {
            name: name.into(),
            indices,
        }
    }

    /// The index table, in class order.
    pub fn indices(&self) -> &[f64] {
        &self.indices
    }
}

impl Discipline for StaticIndex {
    fn name(&self) -> &str {
        &self.name
    }

    fn class_index(&self, class: usize, _waiting: usize) -> f64 {
        self.indices[class]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_is_constant() {
        let f = Fifo;
        assert_eq!(f.class_index(0, 1), f.class_index(7, 99));
        assert_eq!(f.name(), "fifo");
    }

    #[test]
    fn static_index_ranks_classes() {
        let d = StaticIndex::new("cmu", vec![1.0, 4.0, 2.5]);
        assert!(d.class_index(1, 3) > d.class_index(2, 1));
        assert!(d.class_index(2, 1) > d.class_index(0, 9));
        assert_eq!(d.indices(), &[1.0, 4.0, 2.5]);
    }

    #[test]
    #[should_panic]
    fn nan_indices_are_rejected() {
        let _ = StaticIndex::new("bad", vec![f64::NAN]);
    }

    #[test]
    fn trait_objects_debug_print_their_name() {
        let d: Box<dyn Discipline> = Box::new(Fifo);
        assert_eq!(format!("{d:?}"), "Discipline(fifo)");
    }
}

//! A total-ordering wrapper for floating-point priority indices.

use std::cmp::Ordering;

/// A priority index value.  Wraps `f64` with a total order (NaN is rejected
/// at construction) so index policies can sort and compare without
/// `partial_cmp().unwrap()` noise at every call site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PriorityIndex(f64);

impl PriorityIndex {
    /// Wrap a finite (or infinite, but not NaN) index value.
    pub fn new(value: f64) -> Self {
        assert!(!value.is_nan(), "priority index cannot be NaN");
        Self(value)
    }

    /// The raw value.
    pub fn value(&self) -> f64 {
        self.0
    }
}

impl Eq for PriorityIndex {}

impl PartialOrd for PriorityIndex {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PriorityIndex {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("NaN rejected at construction")
    }
}

impl From<f64> for PriorityIndex {
    fn from(v: f64) -> Self {
        Self::new(v)
    }
}

/// Return the indices of `values` sorted by decreasing value (ties broken by
/// original position, i.e. a stable ordering).  This is the "serve highest
/// index first" primitive shared by every priority-index rule in the
/// workspace.
pub fn argsort_decreasing(values: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| {
        PriorityIndex::new(values[b])
            .cmp(&PriorityIndex::new(values[a]))
            .then(a.cmp(&b))
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_works() {
        let a = PriorityIndex::new(1.0);
        let b = PriorityIndex::new(2.0);
        assert!(b > a);
        assert_eq!(a.max(b).value(), 2.0);
    }

    #[test]
    fn infinities_allowed() {
        let hi = PriorityIndex::new(f64::INFINITY);
        let lo = PriorityIndex::new(f64::NEG_INFINITY);
        assert!(hi > lo);
    }

    #[test]
    #[should_panic]
    fn nan_rejected() {
        let _ = PriorityIndex::new(f64::NAN);
    }

    #[test]
    fn argsort_is_decreasing_and_stable() {
        let values = [1.0, 3.0, 2.0, 3.0];
        let order = argsort_decreasing(&values);
        assert_eq!(order, vec![1, 3, 2, 0]);
    }
}

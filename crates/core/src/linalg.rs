//! Small dense linear algebra shared across the workspace.
//!
//! The index algorithms (`ss-bandits::gittins`, `ss-bandits::branching`,
//! `ss-queueing::klimov`), the traffic-equation solvers and the exact
//! joint-chain analyses all need the same primitive: solve a small dense
//! system by Gaussian elimination with partial pivoting.  One shared copy
//! means a pivoting or tolerance fix lands everywhere at once.  (`ss-mdp`
//! keeps its own crate-private copy to stay free of workspace
//! dependencies.)

/// Solve the dense linear system `A x = b` by Gaussian elimination with
/// partial pivoting; panics on (numerically) singular systems.  Intended
/// for the workspace's small systems (at most a few hundred unknowns).
pub fn solve_dense(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        let mut piv = col;
        for r in col + 1..n {
            if a[r][col].abs() > a[piv][col].abs() {
                piv = r;
            }
        }
        assert!(a[piv][col].abs() > 1e-12, "singular linear system");
        a.swap(col, piv);
        b.swap(col, piv);
        for r in col + 1..n {
            let f = a[r][col] / a[col][col];
            if f != 0.0 {
                for c in col..n {
                    a[r][c] -= f * a[col][c];
                }
                b[r] -= f * b[col];
            }
        }
    }
    let mut x = vec![0.0; n];
    for r in (0..n).rev() {
        let mut acc = b[r];
        for c in r + 1..n {
            acc -= a[r][c] * x[c];
        }
        x[r] = acc / a[r][r];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_a_small_system() {
        // [2 1; 1 3] x = [5; 10] -> x = [1, 3].
        let x = solve_dense(vec![vec![2.0, 1.0], vec![1.0, 3.0]], vec![5.0, 10.0]);
        assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_a_zero_leading_entry() {
        // [0 1; 1 0] x = [2; 7] -> x = [7, 2].
        let x = solve_dense(vec![vec![0.0, 1.0], vec![1.0, 0.0]], vec![2.0, 7.0]);
        assert!((x[0] - 7.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn rejects_singular_systems() {
        let _ = solve_dense(vec![vec![1.0, 2.0], vec![2.0, 4.0]], vec![1.0, 2.0]);
    }
}

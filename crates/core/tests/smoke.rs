//! Fast smoke test of the crate's headline computation: the generic
//! adaptive-greedy index algorithm reduced to isolated jobs, where the
//! indices must be exactly the cµ ratios `c_j / E[S_j]`.

use ss_core::adaptive_greedy::{adaptive_greedy, IsolatedJobs};

#[test]
fn adaptive_greedy_smoke() {
    let costs = [3.0, 1.0, 4.0, 1.5];
    let means = [1.0, 0.5, 2.0, 0.25];
    let oracle = IsolatedJobs::new(means.to_vec());
    let result = adaptive_greedy(&costs, &oracle);
    for j in 0..costs.len() {
        let expected = costs[j] / means[j];
        assert!(
            (result.indices[j] - expected).abs() < 1e-12,
            "class {j}: index {} vs cmu {expected}",
            result.indices[j]
        );
    }
    assert!(result.rates_non_increasing(1e-9));
}

//! Lexer correctness suite: the whole point of lexing (rather than
//! grepping) is that no rule can fire inside a string literal, a raw
//! string, a comment or a doc comment — and that chars, lifetimes and
//! numbers stay classified apart.  Each test here seeds rule-trigger
//! text into one of those contexts and asserts total silence.

use ss_lint::lexer::{lex, num_is_float, TokKind};
use ss_lint::rules;
use ss_lint::scan::SourceFile;

/// A registry block with no rows: lets `rules::run` execute every rule
/// (L004 included) without a real DESIGN.md.
const EMPTY_REGISTRY: &str =
    "<!-- ss-lint:stream-registry:begin -->\n<!-- ss-lint:stream-registry:end -->\n";

/// Run *all* rules over `source` scanned under a path that is both an
/// artifact crate and an L005 render module, so any token leak out of a
/// literal or comment would fire something.
fn all_findings(source: &str) -> Vec<String> {
    let file = SourceFile::from_source("crates/fabric/src/metrics.rs", source);
    rules::run(std::slice::from_ref(&file), EMPTY_REGISTRY, None)
        .into_iter()
        .map(|f| f.render())
        .collect()
}

#[test]
fn string_contents_do_not_trigger_rules() {
    let src = r#"
pub fn banner() -> &'static str {
    "SystemTime::now() HashMap HashSet debug_assert!(x.is_nan()) seed ^ 1"
}
"#;
    assert_eq!(all_findings(src), Vec::<String>::new());
}

#[test]
fn raw_string_contents_do_not_trigger_rules() {
    let src = r##"
pub fn raw() -> &'static str {
    r"Instant::now() in a raw string, const FAKE_STREAM: u64 = 1;"
}
"##;
    assert_eq!(all_findings(src), Vec::<String>::new());
}

#[test]
fn hashed_raw_string_contents_do_not_trigger_rules() {
    let src = r###"
pub fn hashed() -> &'static str {
    r#"a "quoted" SystemTime::now() and seed ^ mix inside r#-hashes"#
}
"###;
    assert_eq!(all_findings(src), Vec::<String>::new());
}

#[test]
fn byte_string_contents_do_not_trigger_rules() {
    let src = r#"
pub fn bytes() -> &'static [u8] {
    b"HashMap Instant::now() wrapping_mul(seed)"
}
"#;
    assert_eq!(all_findings(src), Vec::<String>::new());
}

#[test]
fn escaped_quotes_do_not_leak_the_rest_of_the_string() {
    // If the lexer mishandled `\"`, the tail of the literal would lex as
    // code and `HashMap` / `SystemTime::now()` would fire.
    let src = r#"
pub fn tricky() -> &'static str {
    "prefix \" HashMap SystemTime::now() still inside \\"
}
"#;
    assert_eq!(all_findings(src), Vec::<String>::new());
}

#[test]
fn comments_produce_no_tokens_and_no_findings() {
    let src = "
// SystemTime::now() in a line comment
/// HashMap in a doc comment
/** HashSet in a block doc comment */
/* debug_assert!(t.is_nan()) in /* a nested */ block comment */
pub fn noop() {}
";
    assert_eq!(all_findings(src), Vec::<String>::new());
    // And the token stream really is just the item.
    let kinds: Vec<String> = lex(src).iter().map(|t| t.text.clone()).collect();
    assert_eq!(kinds, vec!["pub", "fn", "noop", "(", ")", "{", "}"]);
}

#[test]
fn cfg_test_items_are_masked() {
    let src = "
use std::collections::BTreeMap;

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    fn helper() {
        let _ = HashMap::new();
        let _ = std::time::Instant::now();
        let _ = 1u64 ^ test_seed();
    }
}

pub fn keep() -> BTreeMap<u64, u64> {
    BTreeMap::new()
}
";
    assert_eq!(all_findings(src), Vec::<String>::new());
}

#[test]
fn cfg_all_test_declarations_are_masked() {
    // `cfg(all(test, …))` predicates and `;`-terminated gated items.
    let src = "
#[cfg(all(test, feature = \"slow\"))]
use std::collections::HashSet;

pub fn keep() {}
";
    assert_eq!(all_findings(src), Vec::<String>::new());
}

#[test]
fn non_test_cfg_is_not_masked() {
    // A cfg gate that does not mention `test` must stay in the stream.
    let src = "
#[cfg(feature = \"extra\")]
use std::collections::HashMap;
";
    let findings = all_findings(src);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].contains("L001"), "{findings:?}");
}

#[test]
fn char_literals_and_lifetimes_are_distinguished() {
    let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
    let lifetimes: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Lifetime)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(lifetimes, vec!["a", "a"]);
    let chars: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Char)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(chars, vec!["x"]);
    // No string token: the quotes were not misread as a string.
    assert!(toks.iter().all(|t| t.kind != TokKind::Str));
}

#[test]
fn escaped_char_literals_lex_as_chars() {
    let toks = lex(r"let c = '\n'; let s = 'static_lifetime_free';");
    assert!(toks.iter().any(|t| t.kind == TokKind::Char));
}

#[test]
fn raw_identifiers_are_not_strings() {
    // `r#type` must not be misread as the start of a raw string.
    let toks = lex("fn take(r#type: u64) -> u64 { r#type }");
    assert!(toks.iter().all(|t| t.kind != TokKind::Str));
    assert!(toks.iter().any(|t| t.is_ident("type")));
}

#[test]
fn token_lines_are_one_based_and_accurate() {
    let toks = lex("alpha\nbeta gamma\n\ndelta");
    let lines: Vec<(String, u32)> = toks.iter().map(|t| (t.text.clone(), t.line)).collect();
    assert_eq!(
        lines,
        vec![
            ("alpha".to_string(), 1),
            ("beta".to_string(), 2),
            ("gamma".to_string(), 2),
            ("delta".to_string(), 4),
        ]
    );
}

#[test]
fn numeric_literal_classification() {
    for float in [
        "1.5", "1.", "1e9", "2E-3", "6.02e23", "3f64", "1_000.5", "9f32",
    ] {
        assert!(num_is_float(float), "{float} should classify as float");
    }
    for int in [
        "1",
        "1_000",
        "0x4641_0001",
        "0b1010",
        "0o777",
        "10usize",
        "7u64",
        "255u8",
    ] {
        assert!(!num_is_float(int), "{int} should classify as integer");
    }
}

#[test]
fn ranges_and_method_calls_are_not_swallowed_by_numbers() {
    // `0..n` must lex as Num(0) `.` `.` Ident(n), not a malformed float.
    let toks = lex("for i in 0..n { x.0.count_ones(); }");
    let nums: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Num)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(nums, vec!["0", "0"]);
}

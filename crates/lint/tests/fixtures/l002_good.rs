//! Known-good L002 fixture: clocks appear only in prose, strings and
//! test code. `Duration` arithmetic without `now()` is fine.

use std::time::Duration;

/// SystemTime::now() in a doc comment must not fire.
pub fn timeout() -> Duration {
    let hint = "call SystemTime::now() or Instant::now() sparingly";
    let _ = hint;
    Duration::from_secs(30)
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn timing_assertions_are_test_only() {
        let t0 = Instant::now();
        assert!(t0.elapsed().as_secs() < 60);
    }
}

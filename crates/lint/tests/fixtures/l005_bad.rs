//! Known-bad L005 fixture: unpinned float renderings in a render module.

pub fn render(mean: f64, p99: f64) -> String {
    let mut out = String::new();
    out.push_str(&format!("mean={mean}\n"));
    out.push_str(&format!("p99={}\n", p99));
    out.push_str(&format!("debug={:?}\n", mean));
    out
}

//! Known-bad L003 fixture: debug-only guards on numeric validity and
//! ordering compile out exactly where the invariant matters.

pub fn select(xs: &[f64], horizon: f64, t: f64) -> f64 {
    debug_assert!(!xs[0].is_nan(), "index must be a number");
    debug_assert!(t <= horizon, "event beyond the horizon");
    xs[0]
}

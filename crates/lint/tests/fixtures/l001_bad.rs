//! Known-bad L001 fixture: std hash collections in an artifact-producing
//! crate leak iteration order into artifact bytes.

use std::collections::HashMap;
use std::collections::HashSet;

pub fn tally(xs: &[u64]) -> (usize, HashMap<u64, u64>) {
    let mut seen = HashSet::new();
    for &x in xs {
        seen.insert(x);
    }
    (seen.len(), HashMap::new())
}

//! L004 fixture: stream constants matching l004_registry.md exactly.

pub const ALPHA_STREAM: u64 = 0x0000_0001;
pub const BETA_FAMILY: u64 = 0x0000_0002;

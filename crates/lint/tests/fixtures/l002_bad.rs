//! Known-bad L002 fixture: wall-clock reads outside the audited sites.

use std::time::{Instant, SystemTime};

pub fn stamp() -> u64 {
    let t0 = Instant::now();
    drop(t0);
    match SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
        Ok(d) => d.as_secs(),
        Err(_) => 0,
    }
}

//! Known-bad L006 fixture: inline seed derivations outside the audited
//! SplitMix64 mixer in sim/src/rng.rs.

pub fn derive(seed: u64, n: u64) -> u64 {
    let folded = seed ^ n;
    folded.wrapping_mul(0x9E37_79B9).wrapping_add(seed)
}

//! Known-good L003 fixture: legitimate debug assertions (integer
//! structure checks, boolean flags) and constructs that merely look like
//! comparisons (shifts, turbofish) stay silent; release-mode `assert!`
//! is always fine.

pub fn check(len: usize, cap: usize, flag: bool, mask: u64) {
    debug_assert_eq!(len, cap);
    debug_assert!(flag, "flag must be set");
    debug_assert!(mask << 2 != 1);
    debug_assert!(Vec::<u64>::new().is_empty());
    assert!(len <= cap);
}

//! Known-good L005 fixture: every float rendering is pinned with an
//! explicit spec; non-float arguments may use bare `{}`.

pub fn render(mean: f64, count: u64) -> String {
    let mut out = String::new();
    out.push_str(&format!("mean={mean:.17e}\n"));
    out.push_str(&format!("bits={:016x}\n", mean.to_bits()));
    out.push_str(&format!("count={count}\n"));
    out.push_str(&format!("label={}\n", "alpha"));
    out
}

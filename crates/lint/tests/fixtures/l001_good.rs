//! Known-good L001 fixture: ordered containers everywhere; HashMap only
//! in prose, string literals and test code — none of which may fire.

use std::collections::BTreeMap;

/// Doc comments may say HashMap without tripping the rule.
pub fn build() -> BTreeMap<u64, u64> {
    let note = "HashMap and HashSet are banned in artifact crates";
    let _ = note;
    BTreeMap::new()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_code_may_hash() {
        let mut m = HashMap::new();
        m.insert(1u64, 2u64);
        assert_eq!(m.len(), 1);
    }
}

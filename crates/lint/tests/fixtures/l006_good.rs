//! Known-good L006 fixture: wrapping arithmetic away from any seed, and
//! seeds that flow through the audited stream API untouched.

pub fn spawn(streams: &RngStreams, entity_id: u64, replication_seed: u64) -> u64 {
    let hashed = entity_id.wrapping_mul(31);
    let _ = replication_seed;
    streams.stream(hashed)
}

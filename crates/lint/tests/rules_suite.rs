//! Per-rule fixture suite: every known-bad fixture must fire exactly its
//! rule at exactly the marked lines, every known-good fixture must stay
//! silent, L004's registry cross-check must fail in *both* directions,
//! and the real workspace must scan clean (the acceptance criterion the
//! CI `lint` job enforces).

use ss_lint::rules::{self, Finding};
use ss_lint::run_workspace;
use ss_lint::scan::SourceFile;
use std::path::Path;

/// A registry block with no rows, for rules that never consult it.
const EMPTY_REGISTRY: &str =
    "<!-- ss-lint:stream-registry:begin -->\n<!-- ss-lint:stream-registry:end -->\n";

/// Run one rule over one synthetic file and return the lines it fires on.
fn rule_lines(rule: &str, rel_path: &str, source: &str) -> Vec<u32> {
    let file = SourceFile::from_source(rel_path, source);
    rules::run(std::slice::from_ref(&file), EMPTY_REGISTRY, Some(rule))
        .into_iter()
        .map(|f| {
            assert_eq!(f.rule, rule, "selected rule only");
            assert_eq!(f.path, rel_path);
            f.line
        })
        .collect()
}

// ------------------------------------------------------------------ L001

#[test]
fn l001_known_bad_fires_at_each_hash_collection_line() {
    let lines = rule_lines(
        "L001",
        "crates/fabric/src/stats.rs",
        include_str!("fixtures/l001_bad.rs"),
    );
    assert_eq!(lines, vec![4, 5, 7, 8, 12]);
}

#[test]
fn l001_known_good_is_silent() {
    let lines = rule_lines(
        "L001",
        "crates/fabric/src/stats.rs",
        include_str!("fixtures/l001_good.rs"),
    );
    assert_eq!(lines, Vec::<u32>::new());
}

#[test]
fn l001_ignores_artifact_consuming_crates() {
    // ss-conform consumes artifacts; its comparison maps are legal.
    let lines = rule_lines(
        "L001",
        "crates/conform/src/divergence.rs",
        include_str!("fixtures/l001_bad.rs"),
    );
    assert_eq!(lines, Vec::<u32>::new());
}

// ------------------------------------------------------------------ L002

#[test]
fn l002_known_bad_fires_at_each_clock_read() {
    let lines = rule_lines(
        "L002",
        "crates/queueing/src/sim.rs",
        include_str!("fixtures/l002_bad.rs"),
    );
    assert_eq!(lines, vec![6, 8]);
}

#[test]
fn l002_known_good_is_silent() {
    let lines = rule_lines(
        "L002",
        "crates/queueing/src/sim.rs",
        include_str!("fixtures/l002_good.rs"),
    );
    assert_eq!(lines, Vec::<u32>::new());
}

// ------------------------------------------------------------------ L003

#[test]
fn l003_known_bad_fires_on_numeric_debug_asserts() {
    let lines = rule_lines(
        "L003",
        "crates/index/src/whittle.rs",
        include_str!("fixtures/l003_bad.rs"),
    );
    assert_eq!(lines, vec![5, 6]);
}

#[test]
fn l003_known_good_is_silent() {
    // Shifts, turbofish, `debug_assert_eq!` and plain `assert!` must all
    // be left alone.
    let lines = rule_lines(
        "L003",
        "crates/index/src/whittle.rs",
        include_str!("fixtures/l003_good.rs"),
    );
    assert_eq!(lines, Vec::<u32>::new());
}

// ------------------------------------------------------------------ L004

const REGISTRY: &str = include_str!("fixtures/l004_registry.md");
const CONSTS: &str = include_str!("fixtures/l004_consts.rs");

/// Run L004 over synthetic (path, source) files against `registry`.
fn run_l004(sources: &[(&str, &str)], registry: &str) -> Vec<Finding> {
    let files: Vec<SourceFile> = sources
        .iter()
        .map(|(p, s)| SourceFile::from_source(p, s))
        .collect();
    rules::run(&files, registry, Some("L004"))
}

#[test]
fn l004_matching_registry_is_clean() {
    let findings = run_l004(&[("crates/sim/src/streams.rs", CONSTS)], REGISTRY);
    assert_eq!(findings.len(), 0, "{findings:?}");
}

#[test]
fn l004_duplicate_values_fail_at_both_sites() {
    let dup = "pub const GAMMA_STREAM: u64 = 0x0000_0001;\n";
    let findings = run_l004(
        &[
            ("crates/sim/src/streams.rs", CONSTS),
            ("crates/fabric/src/streams.rs", dup),
        ],
        REGISTRY,
    );
    let collisions: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.message.contains("not unique"))
        .collect();
    assert_eq!(collisions.len(), 2, "{findings:?}");
    assert!(collisions
        .iter()
        .any(|f| f.path.ends_with("sim/src/streams.rs")));
    assert!(collisions
        .iter()
        .any(|f| f.path.ends_with("fabric/src/streams.rs")));
}

#[test]
fn l004_unregistered_constant_fails() {
    let extra = "pub const GAMMA_STREAM: u64 = 0x0000_0003;\n";
    let findings = run_l004(
        &[
            ("crates/sim/src/streams.rs", CONSTS),
            ("crates/fabric/src/streams.rs", extra),
        ],
        REGISTRY,
    );
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(
        findings[0].message.contains("not registered"),
        "{findings:?}"
    );
    assert_eq!(findings[0].path, "crates/fabric/src/streams.rs");
    assert_eq!(findings[0].line, 1);
}

#[test]
fn l004_removing_a_registry_row_fails() {
    // The acceptance check for direction one: a constant whose table row
    // was deleted is "unregistered" again.
    let trimmed: String = REGISTRY
        .lines()
        .filter(|l| !l.contains("BETA_FAMILY"))
        .collect::<Vec<_>>()
        .join("\n");
    let findings = run_l004(&[("crates/sim/src/streams.rs", CONSTS)], &trimmed);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].message.contains("BETA_FAMILY"), "{findings:?}");
    assert!(
        findings[0].message.contains("not registered"),
        "{findings:?}"
    );
}

#[test]
fn l004_stale_registry_row_fails() {
    // Direction two: a table row whose constant was removed is stale.
    let alpha_only = "pub const ALPHA_STREAM: u64 = 0x0000_0001;\n";
    let findings = run_l004(&[("crates/sim/src/streams.rs", alpha_only)], REGISTRY);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].path, "DESIGN.md");
    assert!(
        findings[0].message.contains("stale registry row"),
        "{findings:?}"
    );
    assert!(findings[0].message.contains("BETA_FAMILY"), "{findings:?}");
}

#[test]
fn l004_value_mismatch_fails() {
    let drifted = CONSTS.replace("0x0000_0001", "0x0000_0009");
    let findings = run_l004(&[("crates/sim/src/streams.rs", &drifted)], REGISTRY);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(
        findings[0].message.contains("in source but"),
        "{findings:?}"
    );
}

#[test]
fn l004_missing_registry_block_fails() {
    let findings = run_l004(
        &[("crates/sim/src/streams.rs", CONSTS)],
        "# DESIGN.md without the markers\n",
    );
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].path, "DESIGN.md");
    assert!(
        findings[0].message.contains("no stream registry block"),
        "{findings:?}"
    );
}

#[test]
fn l004_computed_initializer_fails() {
    let computed = "pub const DELTA_STREAM: u64 = base_value();\n";
    let findings = run_l004(
        &[
            ("crates/sim/src/streams.rs", CONSTS),
            ("crates/fabric/src/streams.rs", computed),
        ],
        REGISTRY,
    );
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(
        findings[0].message.contains("single u64 literal"),
        "{findings:?}"
    );
}

// ------------------------------------------------------------------ L005

#[test]
fn l005_known_bad_fires_on_each_unpinned_rendering() {
    let lines = rule_lines(
        "L005",
        "crates/fabric/src/metrics.rs",
        include_str!("fixtures/l005_bad.rs"),
    );
    assert_eq!(lines, vec![5, 6, 7]);
}

#[test]
fn l005_known_good_is_silent() {
    let lines = rule_lines(
        "L005",
        "crates/fabric/src/metrics.rs",
        include_str!("fixtures/l005_good.rs"),
    );
    assert_eq!(lines, Vec::<u32>::new());
}

#[test]
fn l005_only_polices_render_modules() {
    // The same bad source outside RENDER_PATHS is out of scope.
    let lines = rule_lines(
        "L005",
        "crates/fabric/src/sim.rs",
        include_str!("fixtures/l005_bad.rs"),
    );
    assert_eq!(lines, Vec::<u32>::new());
}

// ------------------------------------------------------------------ L006

#[test]
fn l006_known_bad_fires_on_inline_seed_derivations() {
    let lines = rule_lines(
        "L006",
        "crates/bench/src/sweeps.rs",
        include_str!("fixtures/l006_bad.rs"),
    );
    assert_eq!(lines, vec![5, 6]);
}

#[test]
fn l006_known_good_is_silent() {
    let lines = rule_lines(
        "L006",
        "crates/bench/src/sweeps.rs",
        include_str!("fixtures/l006_good.rs"),
    );
    assert_eq!(lines, Vec::<u32>::new());
}

#[test]
fn l006_rng_home_is_exempt() {
    // sim/src/rng.rs is the audited mixer: the same bad source is legal
    // there and only there.
    let lines = rule_lines(
        "L006",
        "crates/sim/src/rng.rs",
        include_str!("fixtures/l006_bad.rs"),
    );
    assert_eq!(lines, Vec::<u32>::new());
}

// ------------------------------------------------- workspace self-scan

#[test]
fn workspace_self_scan_is_clean() {
    // The CI acceptance criterion, asserted from the test suite too: the
    // real tree has zero findings and zero stale allows.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let report = run_workspace(&root, None).expect("workspace scan succeeds");
    assert!(
        report.is_clean(),
        "ss-lint is not clean:\n{}",
        report.render()
    );
    assert!(
        report.suppressed > 0,
        "lint.toml allows should be load-bearing, not decorative"
    );
}

#[test]
fn rule_listing_is_complete_and_ordered() {
    let ids: Vec<&str> = rules::RULES.iter().map(|r| r.id).collect();
    assert_eq!(ids, vec!["L001", "L002", "L003", "L004", "L005", "L006"]);
    assert!(rules::meta("L003").is_some());
    assert!(rules::meta("L999").is_none());
}

#[test]
fn finding_rendering_is_the_documented_format() {
    let f = Finding {
        rule: "L002",
        path: "crates/x/src/y.rs".to_string(),
        line: 41,
        message: "message text".to_string(),
    };
    assert_eq!(f.render(), "crates/x/src/y.rs:41 L002 message text");
}

//! `lint.toml` parser and allow-application suite: the suppression list
//! is schema-versioned, every field is mandatory, duplicates and unknown
//! rules are hard errors, and — the load-bearing property — an allow
//! that suppresses nothing is *stale* and fails the run.

use ss_lint::apply_allows;
use ss_lint::config::{parse, Allow};
use ss_lint::rules::Finding;

fn finding(rule: &'static str, path: &str, line: u32) -> Finding {
    Finding {
        rule,
        path: path.to_string(),
        line,
        message: "synthetic".to_string(),
    }
}

fn allow(rule: &str, path: &str) -> Allow {
    Allow {
        rule: rule.to_string(),
        path: path.to_string(),
        reason: "reviewed".to_string(),
        line: 1,
    }
}

// ------------------------------------------------------------- parsing

#[test]
fn parse_minimal_manifest() {
    let allows = parse(
        "schema = 1\n\n[[allow]]\nrule = \"L001\"\npath = \"crates/x/src/y.rs\"\nreason = \"get/insert only\"\n",
    )
    .expect("valid manifest");
    assert_eq!(allows.len(), 1);
    assert_eq!(allows[0].rule, "L001");
    assert_eq!(allows[0].path, "crates/x/src/y.rs");
    assert_eq!(allows[0].reason, "get/insert only");
    assert_eq!(allows[0].line, 3, "line of the [[allow]] header");
}

#[test]
fn comments_and_escapes_are_handled() {
    let allows = parse(
        "schema = 1 # the only schema\n[[allow]]\nrule = \"L005\" # trailing comment\npath = \"a.rs\"\nreason = \"prints \\\"id\\\" only # not a comment\"\n",
    )
    .expect("valid manifest");
    assert_eq!(allows[0].reason, "prints \"id\" only # not a comment");
}

#[test]
fn missing_reason_is_a_hard_error() {
    let err = parse("schema = 1\n[[allow]]\nrule = \"L001\"\npath = \"a.rs\"\n").unwrap_err();
    assert!(err.contains("missing `reason`"), "{err}");
}

#[test]
fn unknown_rule_is_a_hard_error() {
    let err = parse("schema = 1\n[[allow]]\nrule = \"L999\"\npath = \"a.rs\"\nreason = \"x\"\n")
        .unwrap_err();
    assert!(err.contains("unknown rule"), "{err}");
}

#[test]
fn duplicate_allow_is_a_hard_error() {
    let err = parse(
        "schema = 1\n[[allow]]\nrule = \"L001\"\npath = \"a.rs\"\nreason = \"x\"\n[[allow]]\nrule = \"L001\"\npath = \"a.rs\"\nreason = \"y\"\n",
    )
    .unwrap_err();
    assert!(err.contains("duplicate allow"), "{err}");
}

#[test]
fn missing_schema_is_a_hard_error() {
    let err = parse("[[allow]]\nrule = \"L001\"\npath = \"a.rs\"\nreason = \"x\"\n").unwrap_err();
    assert!(err.contains("schema"), "{err}");
}

#[test]
fn future_schema_is_a_hard_error() {
    let err = parse("schema = 2\n").unwrap_err();
    assert!(err.contains("unsupported"), "{err}");
}

#[test]
fn unknown_keys_are_hard_errors() {
    let err = parse("schema = 1\n[[allow]]\nrule = \"L001\"\nfile = \"a.rs\"\n").unwrap_err();
    assert!(err.contains("unknown [[allow]] key"), "{err}");
    let err = parse("schema = 1\nmode = \"strict\"\n").unwrap_err();
    assert!(err.contains("unknown top-level key"), "{err}");
}

// ------------------------------------------------------- applying allows

#[test]
fn allows_suppress_matching_findings() {
    let report = apply_allows(
        vec![finding("L001", "a.rs", 10), finding("L001", "a.rs", 20)],
        vec![allow("L001", "a.rs")],
        None,
    );
    assert!(report.findings.is_empty());
    assert_eq!(report.suppressed, 2);
    assert_eq!(report.allow_uses[0].1, Some(2));
    assert!(report.is_clean());
    assert!(report.render().contains("0 finding(s), 2 suppressed"));
}

#[test]
fn allows_do_not_cross_rules_or_paths() {
    let report = apply_allows(
        vec![finding("L002", "a.rs", 10), finding("L001", "b.rs", 5)],
        vec![allow("L001", "a.rs")],
        None,
    );
    assert_eq!(report.findings.len(), 2, "nothing matched the allow");
    // …which in turn makes the allow stale: a double failure.
    assert_eq!(report.stale_allows().len(), 1);
    assert!(!report.is_clean());
}

#[test]
fn stale_allows_are_hard_errors() {
    let report = apply_allows(Vec::new(), vec![allow("L006", "gone.rs")], None);
    assert!(report.findings.is_empty());
    assert!(!report.is_clean(), "a stale allow alone must fail the run");
    let rendered = report.render();
    assert!(rendered.contains("stale allow"), "{rendered}");
    assert!(rendered.contains("gone.rs"), "{rendered}");
    assert!(rendered.contains("1 stale allow(s)"), "{rendered}");
}

#[test]
fn rule_selection_exempts_other_rules_allows_from_staleness() {
    // Under `--rule L001`, an L002 allow had no chance to match — it must
    // not be reported stale; an unmatched L001 allow still must be.
    let report = apply_allows(
        Vec::new(),
        vec![allow("L001", "a.rs"), allow("L002", "b.rs")],
        Some("L001"),
    );
    assert_eq!(report.allow_uses[0].1, Some(0), "selected rule: stale");
    assert_eq!(report.allow_uses[1].1, None, "unselected rule: exempt");
    let stale = report.stale_allows();
    assert_eq!(stale.len(), 1);
    assert_eq!(stale[0].rule, "L001");
}

//! L004 — the RNG stream-constant registry.
//!
//! **Historical bug class:** the whole determinism architecture hangs on
//! stream disjointness — every subsystem owns `*_STREAM` / `*_FAMILY`
//! `u64` constants (DESIGN.md's stream table) so that adding an entity
//! never perturbs another's draws.  A colliding constant would silently
//! correlate two "independent" streams, and an unregistered one erodes
//! the table the next subsystem consults before picking its IDs.  Until
//! this rule, the table was hand-maintained prose.
//!
//! The rule collects every `const NAME_STREAM: u64 = <literal>;` /
//! `const NAME_FAMILY: u64 = <literal>;` in the scan set and enforces:
//!
//! 1. values are **unique workspace-wide**;
//! 2. every constant appears in DESIGN.md's machine-readable registry
//!    (the table between the `ss-lint:stream-registry` markers) with the
//!    **same value**;
//! 3. every registry row matches a live constant — removing or renaming a
//!    constant without updating the table (or vice versa) fails.
//!
//! Constants whose initializer is not a single literal are flagged too: a
//! computed stream ID cannot be audited against the registry by reading.

use crate::lexer::TokKind;
use crate::rules::Finding;
use crate::scan::SourceFile;
use std::collections::BTreeMap;

/// Marker lines DESIGN.md wraps the registry table in.
pub const BEGIN_MARKER: &str = "<!-- ss-lint:stream-registry:begin -->";
/// Closing marker.
pub const END_MARKER: &str = "<!-- ss-lint:stream-registry:end -->";

/// One discovered stream/family constant.
#[derive(Debug, Clone)]
struct StreamConst {
    name: String,
    value: Option<u64>,
    path: String,
    line: u32,
}

/// Run the rule over the whole scan set plus DESIGN.md's content.
pub fn check_workspace(files: &[SourceFile], design_md: &str, findings: &mut Vec<Finding>) {
    let consts = collect_consts(files);
    for c in &consts {
        if c.value.is_none() {
            findings.push(Finding {
                rule: "L004",
                path: c.path.clone(),
                line: c.line,
                message: format!(
                    "stream constant {} must be initialized with a single u64 literal so the \
                     DESIGN.md registry can be audited by reading",
                    c.name
                ),
            });
        }
    }

    // 1. Workspace-wide value uniqueness.
    let mut by_value: BTreeMap<u64, Vec<&StreamConst>> = BTreeMap::new();
    for c in &consts {
        if let Some(v) = c.value {
            by_value.entry(v).or_default().push(c);
        }
    }
    for (v, sites) in &by_value {
        if sites.len() > 1 {
            let others: Vec<String> = sites
                .iter()
                .map(|c| format!("{} ({}:{})", c.name, c.path, c.line))
                .collect();
            for c in sites {
                findings.push(Finding {
                    rule: "L004",
                    path: c.path.clone(),
                    line: c.line,
                    message: format!(
                        "stream constant value {v:#x} is not unique workspace-wide — also used \
                         by {}; colliding stream IDs silently correlate \"independent\" streams",
                        others
                            .iter()
                            .filter(|o| !o.contains(&format!("{}:{}", c.path, c.line)))
                            .cloned()
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                });
            }
        }
    }

    // 2 + 3. Registry cross-check.
    let registry = match parse_registry(design_md) {
        Ok(r) => r,
        Err(msg) => {
            findings.push(Finding {
                rule: "L004",
                path: "DESIGN.md".to_string(),
                line: 1,
                message: msg,
            });
            return;
        }
    };
    for c in &consts {
        let Some(v) = c.value else { continue };
        match registry.get(&c.name) {
            None => findings.push(Finding {
                rule: "L004",
                path: c.path.clone(),
                line: c.line,
                message: format!(
                    "stream constant {} ({v:#x}) is not registered in DESIGN.md's stream \
                     registry table — add a row between the ss-lint:stream-registry markers",
                    c.name
                ),
            }),
            Some(&(rv, rline)) if rv != v => findings.push(Finding {
                rule: "L004",
                path: c.path.clone(),
                line: c.line,
                message: format!(
                    "stream constant {} is {v:#x} in source but {rv:#x} in DESIGN.md's registry \
                     (DESIGN.md:{rline}) — the table no longer describes the code",
                    c.name
                ),
            }),
            Some(_) => {}
        }
    }
    for (name, &(rv, rline)) in &registry {
        if !consts.iter().any(|c| &c.name == name) {
            findings.push(Finding {
                rule: "L004",
                path: "DESIGN.md".to_string(),
                line: rline,
                message: format!(
                    "stale registry row: {name} ({rv:#x}) matches no `const {name}: u64` in the \
                     workspace — remove the row or restore the constant"
                ),
            });
        }
    }
}

/// Collect `const *_STREAM|*_FAMILY: u64 = …;` declarations.
fn collect_consts(files: &[SourceFile]) -> Vec<StreamConst> {
    let mut out = Vec::new();
    for file in files {
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if !toks[i].is_ident("const") {
                continue;
            }
            let Some(name_tok) = toks.get(i + 1) else {
                continue;
            };
            if name_tok.kind != TokKind::Ident
                || !(name_tok.text.ends_with("_STREAM") || name_tok.text.ends_with("_FAMILY"))
            {
                continue;
            }
            // `: u64 =`
            let typed = toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 3).is_some_and(|t| t.is_ident("u64"))
                && toks.get(i + 4).is_some_and(|t| t.is_punct('='));
            if !typed {
                continue;
            }
            // A single literal followed by `;` — anything else is computed.
            let value = match (toks.get(i + 5), toks.get(i + 6)) {
                (Some(lit), Some(semi)) if lit.kind == TokKind::Num && semi.is_punct(';') => {
                    parse_u64(&lit.text)
                }
                _ => None,
            };
            out.push(StreamConst {
                name: name_tok.text.clone(),
                value,
                path: file.rel_path.clone(),
                line: name_tok.line,
            });
        }
    }
    out
}

/// Parse a Rust u64 literal (`0x4641_0001`, `1234`, with optional suffix).
fn parse_u64(text: &str) -> Option<u64> {
    let clean: String = text.chars().filter(|&c| c != '_').collect();
    let clean = clean.strip_suffix("u64").unwrap_or(&clean).to_string();
    if let Some(hex) = clean
        .strip_prefix("0x")
        .or_else(|| clean.strip_prefix("0X"))
    {
        u64::from_str_radix(hex, 16).ok()
    } else if let Some(oct) = clean.strip_prefix("0o") {
        u64::from_str_radix(oct, 8).ok()
    } else if let Some(bin) = clean.strip_prefix("0b") {
        u64::from_str_radix(bin, 2).ok()
    } else {
        clean.parse().ok()
    }
}

/// Parse DESIGN.md's registry block: `| `NAME` | `0x…` | … |` rows between
/// the markers.  Returns `name -> (value, design_md_line)`.
fn parse_registry(design_md: &str) -> Result<BTreeMap<String, (u64, u32)>, String> {
    let mut in_block = false;
    let mut seen_block = false;
    let mut rows = BTreeMap::new();
    for (idx, line) in design_md.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        let trimmed = line.trim();
        if trimmed == BEGIN_MARKER {
            in_block = true;
            seen_block = true;
            continue;
        }
        if trimmed == END_MARKER {
            in_block = false;
            continue;
        }
        if !in_block || !trimmed.starts_with('|') {
            continue;
        }
        // Cells: | `NAME` | `0x…` | crate | purpose |
        let cells: Vec<&str> = trimmed
            .trim_matches('|')
            .split('|')
            .map(str::trim)
            .collect();
        if cells.len() < 2 {
            continue;
        }
        let name = cells[0].trim_matches('`');
        if !(name.ends_with("_STREAM") || name.ends_with("_FAMILY")) {
            continue; // header / separator rows
        }
        let value_text = cells[1].trim_matches('`');
        let Some(value) = parse_u64(value_text) else {
            return Err(format!(
                "registry row for {name} (DESIGN.md:{lineno}) has unparseable value {value_text:?}"
            ));
        };
        if rows.insert(name.to_string(), (value, lineno)).is_some() {
            return Err(format!(
                "registry lists {name} twice (second at DESIGN.md:{lineno})"
            ));
        }
    }
    if !seen_block {
        return Err(format!(
            "DESIGN.md has no stream registry block — expected a table between \
             {BEGIN_MARKER:?} and {END_MARKER:?}"
        ));
    }
    Ok(rows)
}

//! L002 — wall-clock reads outside audited sites.
//!
//! **Historical bug class:** timestamp leakage, the third hint
//! `ss-conform` classifies: a `SystemTime::now()` or `Instant::now()`
//! value that reaches report text diverges on every run.  The legitimate
//! sites are few and audited: the bench-artifact preamble timestamp
//! (`crates/sim/src/json.rs`, `unix_time`) and the binaries' wall-clock
//! timing lines, which the conformance renderers already strip or omit
//! (`harness_subset_report` drops `[`-prefixed lines; `--check` renderings
//! never include them).  Each of those is a `lint.toml` allow with its
//! reason; any *new* wall-clock read fails the lint until reviewed.

use crate::rules::Finding;
use crate::scan::SourceFile;

/// Run the rule over one file.
pub fn check(file: &SourceFile, findings: &mut Vec<Finding>) {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if !(t.is_ident("SystemTime") || t.is_ident("Instant")) {
            continue;
        }
        // `SystemTime :: now` / `Instant :: now`.
        let now = toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
            && toks.get(i + 2).is_some_and(|a| a.is_punct(':'))
            && toks.get(i + 3).is_some_and(|a| a.is_ident("now"));
        if now {
            findings.push(Finding {
                rule: "L002",
                path: file.rel_path.clone(),
                line: t.line,
                message: format!(
                    "{}::now() outside an audited wall-clock site: clock values must never \
                     reach deterministic report bytes — route through the artifact preamble \
                     or a stripped timing line, then add a lint.toml allow with the reason",
                    t.text
                ),
            });
        }
    }
}

//! L003 — `debug_assert!` guarding numeric validity on release paths.
//!
//! **Historical bug class:** twice shipped.  PR 6 found the engine's
//! nondecreasing-time guard was debug-only while the over-horizon event
//! drop it would have caught ran in release; PR 9 found `select_class`
//! guarded NaN indices with a `debug_assert!` while release builds
//! silently mis-selected on NaN.  Both times the guard *knew* the
//! invariant and the release binary ignored it.
//!
//! The rule flags `debug_assert!` (not the `_eq`/`_ne` variants — integer
//! equality checks on structurally-derived values are the usual legitimate
//! residents) whose predicate involves numeric validity or ordering:
//! `is_nan` / `is_finite` / `is_infinite`, or a `<` `>` `<=` `>=`
//! comparison.  The fix is to promote the guard to `assert!` (the PR 6 /
//! PR 9 precedent) or restructure so the invariant holds by construction;
//! a `lint.toml` allow records the rare hot-path exception.

use crate::lexer::Tok;
use crate::rules::Finding;
use crate::scan::SourceFile;

/// Run the rule over one file.
pub fn check(file: &SourceFile, findings: &mut Vec<Finding>) {
    let toks = &file.tokens;
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("debug_assert")
            && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
        {
            let line = toks[i].line;
            let end = matching_paren(toks, i + 2);
            if predicate_is_numeric(&toks[i + 3..end]) {
                findings.push(Finding {
                    rule: "L003",
                    path: file.rel_path.clone(),
                    line,
                    message: "debug_assert! guarding numeric validity/ordering compiles out in \
                              release builds (the PR 6 horizon-drop / PR 9 NaN-selection bug \
                              class) — promote to assert! or make the invariant hold by \
                              construction"
                        .to_string(),
                });
            }
            i = end;
        } else {
            i += 1;
        }
    }
}

/// Index of the `)` matching the `(` at `open` (or `toks.len()`).
fn matching_paren(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    toks.len()
}

/// Whether the predicate tokens involve numeric validity or ordering.
fn predicate_is_numeric(pred: &[Tok]) -> bool {
    for (j, t) in pred.iter().enumerate() {
        if t.is_ident("is_nan") || t.is_ident("is_finite") || t.is_ident("is_infinite") {
            return true;
        }
        if (t.is_punct('<') || t.is_punct('>')) && is_comparison(pred, j) {
            return true;
        }
    }
    false
}

/// Disambiguate a `<`/`>` at `j` from turbofish, shifts and arrows.
fn is_comparison(pred: &[Tok], j: usize) -> bool {
    let prev = j.checked_sub(1).and_then(|k| pred.get(k));
    let next = pred.get(j + 1);
    let this_lt = pred[j].is_punct('<');
    // Shift operators: `<<` / `>>` (either neighbour matches).
    if next.is_some_and(|t| t.is_punct('<')) && this_lt {
        return false;
    }
    if prev.is_some_and(|t| t.is_punct('<')) && this_lt {
        return false;
    }
    if next.is_some_and(|t| t.is_punct('>')) && !this_lt {
        return false;
    }
    if prev.is_some_and(|t| t.is_punct('>')) && !this_lt {
        return false;
    }
    // Fat arrow `=>` and thin arrow `->`.
    if !this_lt && prev.is_some_and(|t| t.is_punct('=') || t.is_punct('-')) {
        return false;
    }
    // Turbofish / qualified generics: `::<` … `>`; conservatively skip a
    // `<` directly preceded by `:` and a `>` directly followed by `(` or
    // `::` (end of a generic path).
    if this_lt && prev.is_some_and(|t| t.is_punct(':')) {
        return false;
    }
    if !this_lt && next.is_some_and(|t| t.is_punct(':')) {
        return false;
    }
    true
}

//! The determinism-contract rule set.
//!
//! Every rule is anchored on a bug class this repo has actually shipped
//! (or a divergence class `ss-conform` localizes).  The IDs are stable:
//! `lint.toml` allows, the conform root-cause hints and DESIGN.md's rule
//! table all refer to them.
//!
//! | ID   | Bug class it encodes |
//! |------|----------------------|
//! | L001 | HashMap/HashSet in artifact-producing crates → map-ordering divergence (conform hint "map ordering") |
//! | L002 | `SystemTime::now` / `Instant::now` outside audited wall-clock sites → timestamp leakage (conform hint "timestamp") |
//! | L003 | `debug_assert!` guarding numeric validity/ordering → compiles out in release (the PR 6 horizon-drop and PR 9 NaN-selection bugs) |
//! | L004 | duplicate or unregistered RNG stream-family constants → stream collision / undocumented stream (DESIGN.md registry is machine-checked) |
//! | L005 | bare `{}` / `{:?}` float formatting in render modules → float-formatting divergence (conform hint "float formatting") |
//! | L006 | hand-rolled seed arithmetic outside `sim/src/rng.rs` → ad-hoc stream derivation (the pattern PR 3 eradicated) |

use crate::scan::SourceFile;

pub mod l001;
pub mod l002;
pub mod l003;
pub mod l004;
pub mod l005;
pub mod l006;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule ID (`L001`…).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable message (what broke historically, what to do).
    pub message: String,
}

impl Finding {
    /// Canonical single-line rendering: `path:line rule message`.
    pub fn render(&self) -> String {
        format!("{}:{} {} {}", self.path, self.line, self.rule, self.message)
    }
}

/// Static metadata of one rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleMeta {
    /// Stable ID.
    pub id: &'static str,
    /// Short title.
    pub title: &'static str,
    /// One-line description (shown by `lint --list`).
    pub summary: &'static str,
}

/// Every rule, in ID order.
pub const RULES: &[RuleMeta] = &[
    RuleMeta {
        id: "L001",
        title: "hash-map ordering",
        summary: "HashMap/HashSet in artifact-producing crates: iteration order can leak into \
                  artifact bytes (conform hint: map ordering)",
    },
    RuleMeta {
        id: "L002",
        title: "wall-clock leakage",
        summary: "SystemTime::now/Instant::now outside audited sites: timestamps leak into \
                  otherwise deterministic output (conform hint: timestamp)",
    },
    RuleMeta {
        id: "L003",
        title: "debug-only numeric guard",
        summary: "debug_assert! guarding numeric validity or ordering compiles out in release \
                  (the PR 9 NaN-selection bug class); promote to a release-mode check",
    },
    RuleMeta {
        id: "L004",
        title: "stream-constant registry",
        summary: "*_STREAM/*_FAMILY u64 constants must be unique workspace-wide and registered \
                  in DESIGN.md's stream registry table",
    },
    RuleMeta {
        id: "L005",
        title: "unpinned float formatting",
        summary: "bare {} / {:?} float formatting in check-report/render modules: pin the \
                  rendering ({:.17e}, to_bits hex) at the artifact boundary (conform hint: \
                  float formatting)",
    },
    RuleMeta {
        id: "L006",
        title: "hand-rolled seed arithmetic",
        summary: "xor/wrapping arithmetic on seeds outside sim/src/rng.rs: derive streams via \
                  RngStreams instead (the pattern PR 3 eradicated)",
    },
];

/// Metadata of rule `id`, if it exists.
pub fn meta(id: &str) -> Option<&'static RuleMeta> {
    RULES.iter().find(|r| r.id == id)
}

/// Run `selected` rules (or all) over the scan set plus DESIGN.md, and
/// return findings sorted by `(path, line, rule)`.
pub fn run(files: &[SourceFile], design_md: &str, selected: Option<&str>) -> Vec<Finding> {
    let wants = |id: &str| selected.is_none() || selected == Some(id);
    let mut findings: Vec<Finding> = Vec::new();
    for file in files {
        if wants("L001") {
            l001::check(file, &mut findings);
        }
        if wants("L002") {
            l002::check(file, &mut findings);
        }
        if wants("L003") {
            l003::check(file, &mut findings);
        }
        if wants("L005") {
            l005::check(file, &mut findings);
        }
        if wants("L006") {
            l006::check(file, &mut findings);
        }
    }
    if wants("L004") {
        l004::check_workspace(files, design_md, &mut findings);
    }
    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    findings.dedup();
    findings
}

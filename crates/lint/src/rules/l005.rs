//! L005 — bare `{}` / `{:?}` float formatting in render modules.
//!
//! **Historical bug class:** float-formatting divergence, the fourth hint
//! `ss-conform` classifies: two renderers printing the same `f64` through
//! different (or version-dependent) `Display` paths produce different
//! bytes for the same value.  The repo's convention is to pin the
//! rendering at the artifact boundary — `{v:.17e}` plus `{:016x}` raw
//! bits in conformance artifacts, explicit `{:.6}`/`{:.3e}` in report
//! lines — so formatting can never drift independently of the value.
//!
//! The rule runs only over the designated check-report/render modules
//! ([`RENDER_PATHS`]) and flags, inside format-macro calls:
//!
//! * every `{:?}` placeholder — `Debug` output is explicitly not a stable
//!   artifact rendering;
//! * every bare `{}` (or `{name}`) placeholder whose argument *smells
//!   like a float*: a float literal, an `f64`/`f32` token, or an
//!   identifier from the float-accessor vocabulary these modules actually
//!   render ([`FLOAT_HINTS`]).
//!
//! Type-blind token rules cannot prove floatness, so the vocabulary is an
//! over-approximation tuned to this workspace; a false positive is
//! silenced with a `lint.toml` allow carrying the reviewer's reasoning.

use crate::lexer::{num_is_float, Tok, TokKind};
use crate::rules::Finding;
use crate::scan::SourceFile;

/// The check-report / render modules the rule polices: every module whose
/// format calls produce bytes that land in a committed fixture, a bench
/// artifact or a CI-diffed `--check` report.
pub const RENDER_PATHS: &[&str] = &[
    "crates/verify/src/run.rs",
    "crates/fabric/src/metrics.rs",
    "crates/fabric/src/scenarios.rs",
    "crates/bench/src/conformance.rs",
    "crates/bench/src/json.rs",
    "crates/sim/src/json.rs",
];

/// Identifier vocabulary that marks an argument as float-valued in these
/// modules (field/method names the render code actually passes).
pub const FLOAT_HINTS: &[&str] = &[
    "mean",
    "mean_wait",
    "std_dev",
    "ci95",
    "ci_half_width",
    "half_width",
    "utilization",
    "p50",
    "p90",
    "p95",
    "p99",
    "quantile",
    "simulated",
    "exact",
    "abs_error",
    "allowed",
    "rtt_mean",
    "goodput",
    "speedup",
];

/// Format-macro names whose first string literal is a format string.
const FORMAT_MACROS: &[&str] = &[
    "format",
    "format_args",
    "print",
    "println",
    "eprint",
    "eprintln",
    "write",
    "writeln",
    "panic",
    "assert",
    "debug_assert",
];

/// Run the rule over one file.
pub fn check(file: &SourceFile, findings: &mut Vec<Finding>) {
    if !RENDER_PATHS.contains(&file.rel_path.as_str()) {
        return;
    }
    let toks = &file.tokens;
    let mut i = 0;
    while i < toks.len() {
        let is_macro = toks[i].kind == TokKind::Ident
            && FORMAT_MACROS.contains(&toks[i].text.as_str())
            && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            && toks
                .get(i + 2)
                .is_some_and(|t| t.is_punct('(') || t.is_punct('['));
        if !is_macro {
            i += 1;
            continue;
        }
        let open = i + 2;
        let close = matching_delim(toks, open);
        check_call(file, &toks[open + 1..close], findings);
        i = close + 1;
    }
}

/// Index of the delimiter matching the one at `open`.
fn matching_delim(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    toks.len()
}

/// Inspect one format-macro argument list.
fn check_call(file: &SourceFile, args: &[Tok], findings: &mut Vec<Finding>) {
    // The format string: the first string literal at top level.  For
    // `write!(w, "…", …)` that skips the writer expression.
    let Some(fmt_idx) = args.iter().position(|t| t.kind == TokKind::Str) else {
        return;
    };
    let fmt = &args[fmt_idx];
    let positional = split_args(&args[fmt_idx + 1..]);
    for ph in placeholders(&fmt.text) {
        match ph.spec.as_str() {
            "?" | "#?" => findings.push(Finding {
                rule: "L005",
                path: file.rel_path.clone(),
                line: fmt.line,
                message: format!(
                    "{{:{}}} in a render module: Debug formatting is not a pinned artifact \
                     rendering — print values with an explicit format ({{:.17e}}, {{:016x}}) \
                     or keep them out of artifact bytes",
                    ph.spec
                ),
            }),
            "" => {
                let float = match &ph.name {
                    // `{name}` inline capture: the argument *is* the name.
                    Some(name) if !positional_named(&positional, name) => {
                        FLOAT_HINTS.contains(&name.as_str())
                    }
                    Some(name) => named_arg_is_float(&positional, name),
                    None => positional
                        .get(ph.index)
                        .is_some_and(|a| arg_smells_float(a)),
                };
                if float {
                    findings.push(Finding {
                        rule: "L005",
                        path: file.rel_path.clone(),
                        line: fmt.line,
                        message: "bare {} float formatting in a render module: Display output \
                                  is not a pinned artifact rendering — use {:.17e} (or to_bits \
                                  via {:016x}) at the artifact boundary"
                            .to_string(),
                    });
                }
            }
            _ => {} // explicit spec ({:.6}, {:.3e}, {:016x}, {:>3}, …) is pinned
        }
    }
}

/// One parsed placeholder.
struct Placeholder {
    /// Inline / named argument, if any (`{seed}` → `Some("seed")`).
    name: Option<String>,
    /// Positional index among unnamed placeholders.
    index: usize,
    /// Format spec after `:` (empty for bare `{}`).
    spec: String,
}

/// Parse `{…}` placeholders out of a format string (escaped `{{`/`}}`
/// skipped).
fn placeholders(fmt: &str) -> Vec<Placeholder> {
    let b = fmt.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let mut positional = 0usize;
    while i < b.len() {
        if b[i] == b'{' {
            if b.get(i + 1) == Some(&b'{') {
                i += 2;
                continue;
            }
            let end = match fmt[i + 1..].find('}') {
                Some(off) => i + 1 + off,
                None => break,
            };
            let body = &fmt[i + 1..end];
            let (head, spec) = match body.find(':') {
                Some(c) => (&body[..c], &body[c + 1..]),
                None => (body, ""),
            };
            let (name, index) = if head.is_empty() {
                let idx = positional;
                positional += 1;
                (None, idx)
            } else if head.bytes().all(|c| c.is_ascii_digit()) {
                (None, head.parse().unwrap_or(0))
            } else {
                (Some(head.to_string()), 0)
            };
            out.push(Placeholder {
                name,
                index,
                spec: spec.to_string(),
            });
            i = end + 1;
        } else if b[i] == b'}' && b.get(i + 1) == Some(&b'}') {
            i += 2;
        } else {
            i += 1;
        }
    }
    out
}

/// Split trailing macro arguments at top-level commas.
fn split_args(toks: &[Tok]) -> Vec<Vec<Tok>> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut current: Vec<Tok> = Vec::new();
    for t in toks {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth = depth.saturating_sub(1);
        } else if t.is_punct(',') && depth == 0 {
            if !current.is_empty() {
                out.push(std::mem::take(&mut current));
            }
            continue;
        }
        current.push(t.clone());
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

/// Whether a `name = expr` trailing argument exists for `name`.
fn positional_named(args: &[Vec<Tok>], name: &str) -> bool {
    args.iter().any(|a| {
        a.first().is_some_and(|t| t.is_ident(name)) && a.get(1).is_some_and(|t| t.is_punct('='))
    })
}

/// Float-smell of a `name = expr` argument's expression.
fn named_arg_is_float(args: &[Vec<Tok>], name: &str) -> bool {
    args.iter()
        .filter(|a| {
            a.first().is_some_and(|t| t.is_ident(name)) && a.get(1).is_some_and(|t| t.is_punct('='))
        })
        .any(|a| arg_smells_float(&a[2..]))
}

/// The float-smell heuristic over one argument expression.
fn arg_smells_float(arg: &[Tok]) -> bool {
    arg.iter().any(|t| match t.kind {
        TokKind::Num => num_is_float(&t.text),
        TokKind::Ident => {
            t.text == "f64" || t.text == "f32" || FLOAT_HINTS.contains(&t.text.as_str())
        }
        _ => false,
    })
}

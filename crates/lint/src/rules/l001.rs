//! L001 — `HashMap`/`HashSet` in artifact-producing crates.
//!
//! **Historical bug class:** map-ordering divergence, the second hint
//! `ss-conform` classifies (`divergence.rs`): iterating a `HashMap` or
//! `HashSet` while building artifact text makes the byte order depend on
//! the hasher's per-process state.  The rule over-approximates — it flags
//! every *use* of the types in artifact-producing crates, not just
//! iteration, because at token level "this map is never iterated" is a
//! claim only a reviewer can make.  That claim is exactly what a
//! `lint.toml` allow records (e.g. the exact-bits-keyed caches in
//! `ss-index` and `ss-bandits`, which are get/insert-only).
//!
//! Scope: the artifact dataflow — every crate whose output can reach a
//! committed fixture, bench artifact or CI-diffed report.  `ss-conform`
//! (which *consumes* artifacts; its comparison log is not an artifact) and
//! `ss-lint` itself are out of scope, as is test code (masked by the
//! scanner).

use crate::rules::Finding;
use crate::scan::SourceFile;

/// Path prefixes of the artifact-producing crates (plus the facade).
pub const ARTIFACT_PATHS: &[&str] = &[
    "src/",
    "crates/core/",
    "crates/distributions/",
    "crates/sim/",
    "crates/lp/",
    "crates/mdp/",
    "crates/batch/",
    "crates/bandits/",
    "crates/queueing/",
    "crates/index/",
    "crates/fabric/",
    "crates/verify/",
    "crates/bench/",
];

/// Run the rule over one file.
pub fn check(file: &SourceFile, findings: &mut Vec<Finding>) {
    if !ARTIFACT_PATHS.iter().any(|p| file.rel_path.starts_with(p)) {
        return;
    }
    let mut last_line = 0u32;
    for t in &file.tokens {
        let hit = t.is_ident("HashMap") || t.is_ident("HashSet");
        if hit && t.line != last_line {
            last_line = t.line;
            findings.push(Finding {
                rule: "L001",
                path: file.rel_path.clone(),
                line: t.line,
                message: format!(
                    "{} in an artifact-producing crate: iteration order is \
                     per-process and can leak into artifact bytes — use BTreeMap/BTreeSet or a \
                     sorted Vec, or add a lint.toml allow stating why ordering cannot escape",
                    t.text
                ),
            });
        }
    }
}

//! L006 — hand-rolled seed arithmetic outside `sim/src/rng.rs`.
//!
//! **Historical bug class:** before PR 3, sweeps derived per-point seeds
//! with ad-hoc expressions like `seed ^ n * 0x9E37_79B9`, which (a) has no
//! disjointness story against any other stream and (b) silently collides
//! the moment someone reuses the multiplier.  PR 3 eradicated the pattern
//! by routing every derivation through `ss_sim::rng::RngStreams`
//! (`stream` / `substream`), whose SplitMix64 mixing is the audited,
//! single home of seed arithmetic.
//!
//! The rule flags xor / wrapping arithmetic within a two-token window of
//! any identifier mentioning `seed` — the signature of an inline seed
//! derivation — everywhere except `crates/sim/src/rng.rs`.  The lone
//! grandfathered site (`ss_bench::workloads::seed_for`, whose derived
//! seeds are frozen into every committed artifact) carries a `lint.toml`
//! allow explaining exactly that.

use crate::lexer::TokKind;
use crate::rules::Finding;
use crate::scan::SourceFile;

/// The audited home of seed mixing.
pub const ALLOWED_PATH: &str = "crates/sim/src/rng.rs";

/// Arithmetic identifiers that mark a derivation.
const ARITH_IDENTS: &[&str] = &[
    "wrapping_mul",
    "wrapping_add",
    "wrapping_sub",
    "rotate_left",
    "rotate_right",
];

/// Run the rule over one file.
pub fn check(file: &SourceFile, findings: &mut Vec<Finding>) {
    if file.rel_path == ALLOWED_PATH {
        return;
    }
    let toks = &file.tokens;
    let mut last_line = 0u32;
    for (i, t) in toks.iter().enumerate() {
        let is_op = t.is_punct('^')
            || (t.kind == TokKind::Ident && ARITH_IDENTS.contains(&t.text.as_str()));
        if !is_op {
            continue;
        }
        let lo = i.saturating_sub(2);
        let hi = (i + 3).min(toks.len());
        let near_seed = toks[lo..hi]
            .iter()
            .any(|n| n.kind == TokKind::Ident && n.text.to_ascii_lowercase().contains("seed"));
        if near_seed && t.line != last_line {
            last_line = t.line;
            findings.push(Finding {
                rule: "L006",
                path: file.rel_path.clone(),
                line: t.line,
                message: "hand-rolled seed arithmetic outside sim/src/rng.rs: derive streams \
                          via RngStreams::stream/substream (the audited SplitMix64 mixer) so \
                          disjointness stays provable — the pattern PR 3 eradicated"
                    .to_string(),
            });
        }
    }
}

//! The `lint` binary — the blocking CI entry point of `ss-lint`.
//!
//! ```text
//! lint                 run every rule over the workspace
//! lint --rule L004     run one rule (allows for other rules exempt)
//! lint --list          print the rule table
//! lint --allows        print per-allow suppression counts (audit view)
//! lint --root PATH     explicit workspace root (default: ascend from cwd)
//! ```
//!
//! Output is deterministic: findings sorted by `(path, line, rule)`, one
//! `file:line rule message` line each, then a summary line.  Exit status
//! is nonzero on any finding or stale allow, so the CI job needs no
//! output parsing.

use std::path::PathBuf;
use std::process::exit;

fn usage_error(msg: &str) -> ! {
    eprintln!("lint: {msg}");
    eprintln!("usage: lint [--list] [--allows] [--rule KEY] [--root PATH]");
    exit(2);
}

/// Ascend from `start` to the first directory holding `lint.toml`.
fn find_root(start: PathBuf) -> Option<PathBuf> {
    let mut dir = start;
    loop {
        if dir.join("lint.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() {
    let mut list_mode = false;
    let mut allows_mode = false;
    let mut rule: Option<String> = None;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" => list_mode = true,
            "--allows" => allows_mode = true,
            "--rule" => match args.next() {
                Some(r) => rule = Some(r),
                None => usage_error("--rule requires a rule ID"),
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => usage_error("--root requires a path"),
            },
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }

    if list_mode {
        for r in ss_lint::rules::RULES {
            println!("{}  {:<28} {}", r.id, r.title, r.summary);
        }
        println!("[{} rules]", ss_lint::rules::RULES.len());
        return;
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|e| {
                usage_error(&format!("cannot determine cwd: {e}"));
            });
            find_root(cwd).unwrap_or_else(|| {
                usage_error("no lint.toml found between cwd and filesystem root; pass --root");
            })
        }
    };

    let report = match ss_lint::run_workspace(&root, rule.as_deref()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: {e}");
            exit(2);
        }
    };

    if allows_mode {
        for (a, n) in &report.allow_uses {
            let used = match n {
                None => "exempt (rule not selected)".to_string(),
                Some(n) => format!("{n} suppressed"),
            };
            println!("{} {} — {used}\n  reason: {}", a.rule, a.path, a.reason);
        }
        println!("[{} allows]", report.allow_uses.len());
    }

    print!("{}", report.render());
    if !report.is_clean() {
        exit(1);
    }
}

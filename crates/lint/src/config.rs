//! `lint.toml` — the audited suppression list.
//!
//! Mirrors `conform.toml` conventions: a schema-versioned TOML subset,
//! parsed strictly (unknown keys, unknown rule IDs, duplicate entries and
//! missing fields are hard errors, not warnings).  Each `[[allow]]` names
//! one rule at one file with a **mandatory reason** — an allow is a
//! reviewed claim that the flagged pattern cannot reach an artifact byte,
//! and the reason is where that claim lives.  Allows that suppress nothing
//! are *stale* and fail the run: a fixed site must shrink the list, so the
//! list can only describe the present tree.

use crate::rules;
use std::collections::BTreeSet;

/// The schema this parser understands.
pub const SCHEMA: u32 = 1;

/// One suppression: `rule` findings in `path` are intentional.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// Rule ID (`L001`…).
    pub rule: String,
    /// Workspace-relative file path the allow applies to.
    pub path: String,
    /// Why the pattern is legitimate at this site (mandatory).
    pub reason: String,
    /// 1-based `lint.toml` line of the `[[allow]]` header (for messages).
    pub line: u32,
}

/// Parse `lint.toml` content.
pub fn parse(content: &str) -> Result<Vec<Allow>, String> {
    let mut schema_seen = false;
    let mut allows: Vec<Allow> = Vec::new();
    let mut current: Option<Allow> = None;
    for (idx, raw) in content.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            finish(&mut current, &mut allows)?;
            current = Some(Allow {
                rule: String::new(),
                path: String::new(),
                reason: String::new(),
                line: lineno,
            });
            continue;
        }
        if line.starts_with('[') {
            return Err(format!("lint.toml:{lineno}: unknown section {line:?}"));
        }
        let (key, value) = split_kv(&line)
            .ok_or_else(|| format!("lint.toml:{lineno}: expected `key = value`, got {line:?}"))?;
        match (&mut current, key) {
            (None, "schema") => {
                let v: u32 = value
                    .parse()
                    .map_err(|_| format!("lint.toml:{lineno}: schema must be an integer"))?;
                if v != SCHEMA {
                    return Err(format!(
                        "lint.toml:{lineno}: schema {v} unsupported (this binary understands {SCHEMA})"
                    ));
                }
                schema_seen = true;
            }
            (None, other) => {
                return Err(format!(
                    "lint.toml:{lineno}: unknown top-level key {other:?}"
                ));
            }
            (Some(a), "rule") => a.rule = parse_string(value, lineno)?,
            (Some(a), "path") => a.path = parse_string(value, lineno)?,
            (Some(a), "reason") => a.reason = parse_string(value, lineno)?,
            (Some(_), other) => {
                return Err(format!(
                    "lint.toml:{lineno}: unknown [[allow]] key {other:?}"
                ));
            }
        }
    }
    finish(&mut current, &mut allows)?;
    if !schema_seen {
        return Err("lint.toml: missing `schema = 1` line".to_string());
    }
    let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
    for a in &allows {
        if !seen.insert((a.rule.clone(), a.path.clone())) {
            return Err(format!(
                "lint.toml:{}: duplicate allow for {} at {}",
                a.line, a.rule, a.path
            ));
        }
    }
    Ok(allows)
}

/// Validate and push a completed `[[allow]]` block.
fn finish(current: &mut Option<Allow>, allows: &mut Vec<Allow>) -> Result<(), String> {
    if let Some(a) = current.take() {
        if a.rule.is_empty() {
            return Err(format!("lint.toml:{}: [[allow]] missing `rule`", a.line));
        }
        if rules::meta(&a.rule).is_none() {
            return Err(format!(
                "lint.toml:{}: unknown rule {:?} (see `lint --list`)",
                a.line, a.rule
            ));
        }
        if a.path.is_empty() {
            return Err(format!("lint.toml:{}: [[allow]] missing `path`", a.line));
        }
        if a.reason.trim().is_empty() {
            return Err(format!(
                "lint.toml:{}: [[allow]] missing `reason` — every suppression must say why \
                 the pattern cannot reach an artifact byte",
                a.line
            ));
        }
        allows.push(a);
    }
    Ok(())
}

/// Strip a `#` comment, respecting `"…"` quoting.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

fn split_kv(line: &str) -> Option<(&str, &str)> {
    let eq = line.find('=')?;
    Some((line[..eq].trim(), line[eq + 1..].trim()))
}

/// Parse a double-quoted TOML string value (basic escapes only).
fn parse_string(value: &str, lineno: u32) -> Result<String, String> {
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| format!("lint.toml:{lineno}: expected a double-quoted string"))?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some(other) => {
                    return Err(format!("lint.toml:{lineno}: unsupported escape \\{other}"));
                }
                None => return Err(format!("lint.toml:{lineno}: dangling backslash")),
            }
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

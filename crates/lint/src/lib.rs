//! `ss-lint` — the workspace determinism-contract static analyzer.
//!
//! The repo's core invariant — every artifact is bit-identical across
//! `SS_THREADS`, seeds are pure, check reports are byte-stable — was
//! historically enforced only *dynamically*: conform replicas, fixture
//! diffs and `--check` gates catch a violation hours after it is written,
//! and only when a fixture happens to exercise it.  Yet every divergence
//! class conform localizes (map ordering, timestamp leakage, float
//! formatting, truncation) and both recent real bugs (PR 6's
//! debug-only horizon guard, PR 9's `debug_assert!`-only NaN guard) are
//! *statically recognizable in source*.  This crate rejects them at
//! review time instead.
//!
//! Architecture (pure `std`, consistent with the offline vendor policy):
//!
//! * [`lexer`] — a small hand-rolled Rust lexer that strips comments and
//!   understands string/raw-string/char/lifetime literals, so no rule can
//!   fire inside a string or a comment;
//! * [`scan`] — workspace file discovery (`src/` trees only; `vendor/`,
//!   tests, benches out of scope) and `#[cfg(test)]` masking;
//! * [`rules`] — the six token-level rules L001–L006, each anchored on a
//!   historical bug class (see the table in [`rules`]);
//! * [`config`] — `lint.toml`, the schema-versioned suppression list with
//!   mandatory reasons and a hard error on stale allows.
//!
//! The `lint` binary (`--list`, `--rule KEY`, `--allows`) prints findings
//! as deterministic sorted `file:line rule message` lines and is a
//! blocking CI job.

pub mod config;
pub mod lexer;
pub mod rules;
pub mod scan;

use config::Allow;
use rules::Finding;
use std::path::Path;

/// Outcome of a lint run.
#[derive(Debug)]
pub struct Report {
    /// Findings that survived the allow list, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
    /// Number of findings suppressed by allows.
    pub suppressed: usize,
    /// Per-allow suppression counts, in `lint.toml` order.  `None` means
    /// the allow's rule was outside a `--rule` selection (exempt from the
    /// staleness check — it had no chance to match).
    pub allow_uses: Vec<(Allow, Option<usize>)>,
}

impl Report {
    /// Allows that suppressed nothing — each is a hard error.
    pub fn stale_allows(&self) -> Vec<&Allow> {
        self.allow_uses
            .iter()
            .filter(|(_, n)| *n == Some(0))
            .map(|(a, _)| a)
            .collect()
    }

    /// Whether the run is clean: no findings, no stale allows.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.stale_allows().is_empty()
    }

    /// The deterministic report text the binary prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.render());
            out.push('\n');
        }
        for a in self.stale_allows() {
            out.push_str(&format!(
                "lint.toml:{} stale allow: {} at {} suppressed nothing — the site was fixed \
                 or moved; remove the entry (reason was: {})\n",
                a.line, a.rule, a.path, a.reason
            ));
        }
        out.push_str(&format!(
            "lint: {} finding(s), {} suppressed by {} allow(s), {} stale allow(s)\n",
            self.findings.len(),
            self.suppressed,
            self.allow_uses.len(),
            self.stale_allows().len()
        ));
        out
    }
}

/// Run the analyzer over the workspace at `root`.
///
/// `selected` restricts the run to one rule ID; allows for unselected
/// rules are then exempt from the staleness check (they had no chance to
/// match).
pub fn run_workspace(root: &Path, selected: Option<&str>) -> Result<Report, String> {
    if let Some(rule) = selected {
        if rules::meta(rule).is_none() {
            return Err(format!("unknown rule {rule:?} (see `lint --list`)"));
        }
    }
    let files = scan::workspace_files(root)?;
    let design_path = root.join("DESIGN.md");
    let design_md = std::fs::read_to_string(&design_path)
        .map_err(|e| format!("read {}: {e}", design_path.display()))?;
    let config_path = root.join("lint.toml");
    let config_text = std::fs::read_to_string(&config_path)
        .map_err(|e| format!("read {}: {e}", config_path.display()))?;
    let allows = config::parse(&config_text)?;
    Ok(apply_allows(
        rules::run(&files, &design_md, selected),
        allows,
        selected,
    ))
}

/// Partition raw findings through the allow list.
pub fn apply_allows(raw: Vec<Finding>, allows: Vec<Allow>, selected: Option<&str>) -> Report {
    let mut counts = vec![0usize; allows.len()];
    let mut findings = Vec::new();
    let mut suppressed = 0usize;
    for f in raw {
        match allows
            .iter()
            .position(|a| a.rule == f.rule && a.path == f.path)
        {
            Some(i) => {
                counts[i] += 1;
                suppressed += 1;
            }
            None => findings.push(f),
        }
    }
    // Allows for rules outside the selected set could not have matched;
    // exempt them from the staleness check.
    let allow_uses = allows
        .into_iter()
        .zip(counts)
        .map(|(a, n)| {
            let exempt = selected.is_some_and(|rule| a.rule != rule);
            let n = if exempt { None } else { Some(n) };
            (a, n)
        })
        .collect();
    Report {
        findings,
        suppressed,
        allow_uses,
    }
}

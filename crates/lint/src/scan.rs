//! Workspace file discovery and test-code masking.
//!
//! The scan set is every `.rs` file under the facade's `src/` and under
//! `crates/*/src/` (binaries included) — the code that can reach an
//! artifact boundary.  `vendor/` shims, `tests/`, `benches/`, `examples/`
//! and fixture trees are deliberately out of scope: the determinism
//! contract binds artifact-producing source, and test code routinely does
//! things (wall clocks in timing assertions, HashSets for uniqueness
//! checks) that are fine exactly because their output is never an
//! artifact.  For the same reason `#[cfg(test)]` items inside `src/`
//! files are masked out of the token stream before rules run.

use crate::lexer::{lex, Tok};
use std::fs;
use std::path::{Path, PathBuf};

/// One lexed source file, test items masked, ready for rules.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes (stable across hosts).
    pub rel_path: String,
    /// Token stream with `#[cfg(test)]` item bodies removed.
    pub tokens: Vec<Tok>,
}

impl SourceFile {
    /// Lex `source` as the file `rel_path` — the constructor the fixture
    /// tests use to run a rule against synthetic content under a chosen
    /// workspace-relative path.
    pub fn from_source(rel_path: &str, source: &str) -> Self {
        let mut tokens = lex(source);
        mask_cfg_test(&mut tokens);
        Self {
            rel_path: rel_path.to_string(),
            tokens,
        }
    }
}

/// Remove every `#[cfg(test)]`-gated item (attribute included) from the
/// token stream.  Handles the common shapes: a gated `mod tests { … }`
/// block, a gated item with a braced body, and a gated `mod tests;` /
/// `use …;` declaration.  Nested braces are balanced; `cfg(all(test, …))`
/// style predicates count as test-gated if the predicate mentions `test`.
fn mask_cfg_test(tokens: &mut Vec<Tok>) {
    let mut out: Vec<Tok> = Vec::with_capacity(tokens.len());
    let mut i = 0;
    while i < tokens.len() {
        if let Some(end) = cfg_test_item_end(tokens, i) {
            i = end;
            continue;
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    *tokens = out;
}

/// If `tokens[i..]` starts a `#[cfg(test)]` attribute, return the index
/// one past the end of the gated item; `None` otherwise.
fn cfg_test_item_end(tokens: &[Tok], i: usize) -> Option<usize> {
    // `#` `[` `cfg` `(` … test … `)` `]`
    if !(tokens.get(i)?.is_punct('#') && tokens.get(i + 1)?.is_punct('[')) {
        return None;
    }
    if !tokens.get(i + 2)?.is_ident("cfg") || !tokens.get(i + 3)?.is_punct('(') {
        return None;
    }
    // Find the matching `)` and check the predicate mentions `test`.
    let mut depth = 1usize;
    let mut j = i + 4;
    let mut mentions_test = false;
    while j < tokens.len() && depth > 0 {
        let t = &tokens[j];
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
        } else if t.is_ident("test") {
            mentions_test = true;
        }
        j += 1;
    }
    if !mentions_test || !tokens.get(j)?.is_punct(']') {
        return None;
    }
    j += 1; // past `]`
            // Skip any further attributes on the same item.
    while j + 1 < tokens.len() && tokens[j].is_punct('#') && tokens[j + 1].is_punct('[') {
        let mut depth = 1usize;
        let mut k = j + 2;
        while k < tokens.len() && depth > 0 {
            if tokens[k].is_punct('[') {
                depth += 1;
            } else if tokens[k].is_punct(']') {
                depth -= 1;
            }
            k += 1;
        }
        j = k;
    }
    // The gated item: either ends at a top-level `;` (declaration) or at
    // the close of its first top-level `{ … }` block (body).
    let mut k = j;
    while k < tokens.len() {
        let t = &tokens[k];
        if t.is_punct(';') {
            return Some(k + 1);
        }
        if t.is_punct('{') {
            let mut depth = 1usize;
            let mut m = k + 1;
            while m < tokens.len() && depth > 0 {
                if tokens[m].is_punct('{') {
                    depth += 1;
                } else if tokens[m].is_punct('}') {
                    depth -= 1;
                }
                m += 1;
            }
            return Some(m);
        }
        k += 1;
    }
    Some(tokens.len())
}

/// Collect the workspace scan set under `root`, sorted by relative path.
pub fn workspace_files(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut paths: Vec<PathBuf> = Vec::new();
    let facade_src = root.join("src");
    if facade_src.is_dir() {
        collect_rs(&facade_src, &mut paths)?;
    }
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    if crates_dir.is_dir() {
        for entry in
            fs::read_dir(&crates_dir).map_err(|e| format!("read {}: {e}", crates_dir.display()))?
        {
            let entry = entry.map_err(|e| format!("read {}: {e}", crates_dir.display()))?;
            if entry.path().is_dir() {
                crate_dirs.push(entry.path());
            }
        }
    }
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut paths)?;
        }
    }
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for path in paths {
        let source =
            fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect::<Vec<_>>()
            .join("/");
        files.push(SourceFile::from_source(&rel, &source));
    }
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    for entry in fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))? {
        let entry = entry.map_err(|e| format!("read {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

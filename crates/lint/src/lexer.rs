//! A small hand-rolled Rust lexer: just enough to run token-level lint
//! rules without `syn` (the offline vendor policy) and without ever firing
//! inside comments or string literals (the classic grep-lint failure mode).
//!
//! The lexer strips line comments (`//`, `///`, `//!`), nested block
//! comments (`/* /* */ */`, `/** */`, `/*! */`), and understands string
//! literals (`"…"` with escapes), raw strings (`r"…"`, `r#"…"#` with any
//! hash count), byte and byte-raw strings (`b"…"`, `br#"…"#`), character
//! literals (`'a'`, `'\n'`, `'\u{1F600}'`), lifetimes (`'a`, `'static`),
//! raw identifiers (`r#type`), numeric literals (decimal, hex/oct/bin with
//! `_` separators, floats with exponents and type suffixes), identifiers,
//! and single-character punctuation.  Multi-character operators arrive as
//! adjacent punctuation tokens (`::` is `:` `:`); rules that care about
//! `>=` vs `=>` disambiguate by token order.
//!
//! String and char literal *contents* are preserved on the token (rules
//! like L005 inspect format strings), but no rule pattern-matches
//! identifiers inside them — the token kind keeps the two worlds apart.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers, without `r#`).
    Ident,
    /// Numeric literal, verbatim as written (`0x4641_0001`, `1.5e-3f64`).
    Num,
    /// String literal of any flavour; `text` holds the *inner* content.
    Str,
    /// Character literal; `text` holds the inner content.
    Char,
    /// Lifetime (`'a`, `'static`); `text` holds the name without `'`.
    Lifetime,
    /// Single punctuation character.
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for what each kind stores).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.src.get(self.pos).copied();
        if let Some(b) = b {
            self.pos += 1;
            if b == b'\n' {
                self.line += 1;
            }
        }
        b
    }

    /// Consume bytes while `f` holds; returns the consumed range.
    fn eat_while(&mut self, f: impl Fn(u8) -> bool) -> (usize, usize) {
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if !f(b) {
                break;
            }
            self.bump();
        }
        (start, self.pos)
    }
}

/// Lex `src` into a token stream, stripping comments.
///
/// The lexer is resilient rather than strict: unterminated literals consume
/// to end of input instead of erroring, because lint input is always code
/// that `rustc` already accepted (or a test fixture that is close enough).
pub fn lex(src: &str) -> Vec<Tok> {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut toks = Vec::new();
    while let Some(b) = cur.peek(0) {
        let line = cur.line;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek(1) == Some(b'/') => {
                // Line comment (plain or doc): strip to end of line.
                cur.eat_while(|b| b != b'\n');
            }
            b'/' if cur.peek(1) == Some(b'*') => {
                // Block comment; Rust block comments nest.
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (cur.peek(0), cur.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            cur.bump();
                            cur.bump();
                            depth += 1;
                        }
                        (Some(b'*'), Some(b'/')) => {
                            cur.bump();
                            cur.bump();
                            depth -= 1;
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
            }
            b'"' => {
                let text = lex_plain_string(&mut cur);
                toks.push(Tok {
                    kind: TokKind::Str,
                    text,
                    line,
                });
            }
            b'r' | b'b' if starts_string_prefix(&cur) => {
                let tok = lex_prefixed_literal(&mut cur, line);
                toks.push(tok);
            }
            b'\'' => {
                let tok = lex_quote(&mut cur, line);
                toks.push(tok);
            }
            _ if is_ident_start(b as char) || b >= 0x80 => {
                let (s, e) = cur.eat_while(|b| is_ident_continue(b as char) || b >= 0x80);
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: src[s..e].to_string(),
                    line,
                });
            }
            b'0'..=b'9' => {
                let text = lex_number(&mut cur, src);
                toks.push(Tok {
                    kind: TokKind::Num,
                    text,
                    line,
                });
            }
            _ => {
                cur.bump();
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (b as char).to_string(),
                    line,
                });
            }
        }
    }
    toks
}

/// Whether the cursor sits on a string/raw-string/byte-string prefix
/// (`r"`, `r#"`, `b"`, `br"`, `br#"`, …) as opposed to an identifier that
/// merely starts with `r` or `b`, or a raw identifier `r#ident`.
fn starts_string_prefix(cur: &Cursor) -> bool {
    let mut i = 0;
    // Optional `b`, then optional `r`.
    if cur.peek(i) == Some(b'b') {
        i += 1;
    }
    let raw = cur.peek(i) == Some(b'r');
    if raw {
        i += 1;
    }
    // Hashes are only legal on raw strings.
    if raw {
        while cur.peek(i) == Some(b'#') {
            i += 1;
        }
    }
    cur.peek(i) == Some(b'"') && i > 0
}

/// Lex a literal starting with `r`/`b` prefixes; falls back to raw
/// identifiers (`r#type`) which [`starts_string_prefix`] already excluded.
fn lex_prefixed_literal(cur: &mut Cursor, line: u32) -> Tok {
    // Consume prefix letters.
    while matches!(cur.peek(0), Some(b'b') | Some(b'r')) {
        cur.bump();
    }
    let mut hashes = 0usize;
    while cur.peek(0) == Some(b'#') {
        cur.bump();
        hashes += 1;
    }
    // Opening quote.
    cur.bump();
    let mut text = String::new();
    if hashes == 0 {
        // r"…" / b"…": no escapes in raw strings, but b"…" has escapes.
        // Treat both as escape-aware; a raw `\` before `"` can only appear
        // in byte strings, and over-consuming one char in a pathological
        // raw string is harmless for rule purposes.
        while let Some(b) = cur.peek(0) {
            if b == b'"' {
                cur.bump();
                break;
            }
            if b == b'\\' {
                cur.bump();
                if let Some(e) = cur.bump() {
                    text.push('\\');
                    text.push(e as char);
                }
                continue;
            }
            cur.bump();
            text.push(b as char);
        }
    } else {
        // r#"…"# with `hashes` terminating hashes: scan for `"` + hashes.
        'outer: while let Some(b) = cur.peek(0) {
            if b == b'"' {
                let mut ok = true;
                for h in 0..hashes {
                    if cur.peek(1 + h) != Some(b'#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    cur.bump();
                    for _ in 0..hashes {
                        cur.bump();
                    }
                    break 'outer;
                }
            }
            cur.bump();
            text.push(b as char);
        }
    }
    Tok {
        kind: TokKind::Str,
        text,
        line,
    }
}

/// Lex a plain `"…"` string (cursor on the opening quote).
fn lex_plain_string(cur: &mut Cursor) -> String {
    cur.bump();
    let mut text = String::new();
    while let Some(b) = cur.peek(0) {
        match b {
            b'"' => {
                cur.bump();
                break;
            }
            b'\\' => {
                cur.bump();
                if let Some(e) = cur.bump() {
                    text.push('\\');
                    text.push(e as char);
                }
            }
            _ => {
                cur.bump();
                text.push(b as char);
            }
        }
    }
    text
}

/// Lex a `'`-introduced token: char literal or lifetime.
fn lex_quote(cur: &mut Cursor, line: u32) -> Tok {
    cur.bump(); // the opening '
    match (cur.peek(0), cur.peek(1)) {
        // Escaped char literal: '\n', '\'', '\u{…}'.
        (Some(b'\\'), _) => {
            let mut text = String::new();
            while let Some(b) = cur.peek(0) {
                if b == b'\'' {
                    cur.bump();
                    break;
                }
                cur.bump();
                text.push(b as char);
            }
            Tok {
                kind: TokKind::Char,
                text,
                line,
            }
        }
        // Plain one-character literal: 'a', '_', '0'.  A lifetime is
        // never followed by a closing quote.
        (Some(c), Some(b'\'')) => {
            cur.bump();
            cur.bump();
            Tok {
                kind: TokKind::Char,
                text: (c as char).to_string(),
                line,
            }
        }
        // Lifetime: 'a, 'static, '_.
        _ => {
            let (s, e) = cur.eat_while(|b| is_ident_continue(b as char));
            let text = std::str::from_utf8(&cur.src[s..e])
                .unwrap_or_default()
                .to_string();
            Tok {
                kind: TokKind::Lifetime,
                text,
                line,
            }
        }
    }
}

/// Lex a numeric literal (cursor on a digit).  Handles `_` separators,
/// base prefixes, fraction and exponent parts, and type suffixes, while
/// leaving `0..n` range punctuation and `x.0` field access alone.
fn lex_number(cur: &mut Cursor, src: &str) -> String {
    let start = cur.pos;
    let hex = cur.peek(0) == Some(b'0') && matches!(cur.peek(1), Some(b'x') | Some(b'X'));
    if hex || (cur.peek(0) == Some(b'0') && matches!(cur.peek(1), Some(b'o') | Some(b'b'))) {
        cur.bump();
        cur.bump();
        cur.eat_while(|b| b.is_ascii_alphanumeric() || b == b'_');
        return src[start..cur.pos].to_string();
    }
    cur.eat_while(|b| b.is_ascii_digit() || b == b'_');
    // Fraction: a '.' followed by a digit (not `..` range, not `.method()`).
    if cur.peek(0) == Some(b'.') && cur.peek(1).is_some_and(|b| b.is_ascii_digit()) {
        cur.bump();
        cur.eat_while(|b| b.is_ascii_digit() || b == b'_');
    } else if cur.peek(0) == Some(b'.')
        && !matches!(cur.peek(1), Some(b'.'))
        && !cur.peek(1).is_some_and(|b| is_ident_start(b as char))
    {
        // Trailing-dot float `1.` (legal Rust, rare).
        cur.bump();
    }
    // Exponent: e/E with optional sign, must be followed by a digit —
    // otherwise it is a suffix/ident boundary (`1e` alone is not a float).
    if matches!(cur.peek(0), Some(b'e') | Some(b'E')) {
        let sign = matches!(cur.peek(1), Some(b'+') | Some(b'-'));
        let digit_at = if sign { 2 } else { 1 };
        if cur.peek(digit_at).is_some_and(|b| b.is_ascii_digit()) {
            cur.bump();
            if sign {
                cur.bump();
            }
            cur.eat_while(|b| b.is_ascii_digit() || b == b'_');
        }
    }
    // Type suffix (`f64`, `u32`, `usize`): letters/digits glued on.
    cur.eat_while(|b| b.is_ascii_alphanumeric() || b == b'_');
    src[start..cur.pos].to_string()
}

/// Whether a `Num` token's text denotes a floating-point literal.
pub fn num_is_float(text: &str) -> bool {
    if text.starts_with("0x")
        || text.starts_with("0X")
        || text.starts_with("0o")
        || text.starts_with("0b")
    {
        return false;
    }
    if text.ends_with("f64") || text.ends_with("f32") || text.contains('.') {
        return true;
    }
    // A real exponent (`1e9`, `2E-3`) is digit + e/E + optionally-signed
    // digit; the `e` inside suffixes like `usize` never follows a digit
    // with a digit after it.
    let b = text.as_bytes();
    for i in 1..b.len() {
        if (b[i] == b'e' || b[i] == b'E') && b[i - 1].is_ascii_digit() {
            let j = i + 1;
            if j < b.len() && b[j].is_ascii_digit() {
                return true;
            }
            if j + 1 < b.len() && (b[j] == b'+' || b[j] == b'-') && b[j + 1].is_ascii_digit() {
                return true;
            }
        }
    }
    false
}

//! Finite-state Markov reward projects (bandit arms).

/// A single bandit project: engaging it in state `i` earns reward
/// `rewards[i]` and moves the state according to `transitions[i]`;
/// un-engaged projects stay frozen (the classical model).
#[derive(Debug, Clone)]
pub struct BanditProject {
    rewards: Vec<f64>,
    transitions: Vec<Vec<(usize, f64)>>,
}

impl BanditProject {
    /// Create a project from per-state rewards and transition rows (each
    /// row's probabilities must sum to one).
    pub fn new(rewards: Vec<f64>, transitions: Vec<Vec<(usize, f64)>>) -> Self {
        let k = rewards.len();
        assert!(k > 0, "project needs at least one state");
        assert_eq!(transitions.len(), k, "one transition row per state");
        for (i, row) in transitions.iter().enumerate() {
            assert!(!row.is_empty(), "state {i} has no transitions");
            let total: f64 = row.iter().map(|(_, p)| p).sum();
            assert!((total - 1.0).abs() < 1e-8, "row {i} sums to {total}");
            for &(j, p) in row {
                assert!(j < k, "transition target out of range");
                assert!(p >= -1e-12, "negative probability");
            }
        }
        Self {
            rewards,
            transitions,
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.rewards.len()
    }

    /// Reward earned when engaged in state `i`.
    pub fn reward(&self, i: usize) -> f64 {
        self.rewards[i]
    }

    /// All rewards.
    pub fn rewards(&self) -> &[f64] {
        &self.rewards
    }

    /// Transition row of state `i` (used when the project is engaged).
    pub fn transitions(&self, i: usize) -> &[(usize, f64)] {
        &self.transitions[i]
    }

    /// Dense transition matrix (row-stochastic).
    pub fn dense_matrix(&self) -> Vec<Vec<f64>> {
        let k = self.num_states();
        let mut p = vec![vec![0.0; k]; k];
        for (i, row) in self.transitions.iter().enumerate() {
            for &(j, prob) in row {
                p[i][j] += prob;
            }
        }
        p
    }

    /// Sample the next state when engaged in state `i`.
    pub fn sample_next<R: rand::Rng + ?Sized>(&self, i: usize, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        for &(j, p) in &self.transitions[i] {
            acc += p;
            if u <= acc {
                return j;
            }
        }
        self.transitions[i].last().unwrap().0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn two_state() -> BanditProject {
        BanditProject::new(
            vec![1.0, 0.2],
            vec![vec![(0, 0.4), (1, 0.6)], vec![(1, 1.0)]],
        )
    }

    #[test]
    fn accessors() {
        let p = two_state();
        assert_eq!(p.num_states(), 2);
        assert_eq!(p.reward(0), 1.0);
        assert_eq!(p.transitions(1), &[(1, 1.0)]);
        let dense = p.dense_matrix();
        assert!((dense[0][1] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn sampling_respects_probabilities() {
        let p = two_state();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 100_000;
        let stays = (0..n).filter(|_| p.sample_next(0, &mut rng) == 0).count();
        let frac = stays as f64 / n as f64;
        assert!((frac - 0.4).abs() < 0.01);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_rows() {
        let _ = BanditProject::new(vec![1.0], vec![vec![(0, 0.5)]]);
    }
}

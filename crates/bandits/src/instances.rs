//! Instance generators for bandit experiments.

use crate::project::BanditProject;
use crate::restless::RestlessProject;
use rand::Rng;

/// A random `k`-state project: rewards uniform on `[0, 1]`, each transition
/// row a normalised vector of uniform weights (dense, so every state is
/// reachable and the chain is irreducible with probability one).
pub fn random_project<R: Rng + ?Sized>(k: usize, rng: &mut R) -> BanditProject {
    assert!(k >= 1);
    let rewards: Vec<f64> = (0..k).map(|_| rng.gen::<f64>()).collect();
    let transitions: Vec<Vec<(usize, f64)>> = (0..k)
        .map(|_| {
            let weights: Vec<f64> = (0..k).map(|_| rng.gen::<f64>() + 1e-3).collect();
            let total: f64 = weights.iter().sum();
            weights
                .iter()
                .enumerate()
                .map(|(j, w)| (j, w / total))
                .collect()
        })
        .collect();
    BanditProject::new(rewards, transitions)
}

/// A "deteriorating machine" project with `k` wear levels: engaging the
/// project in level `i` yields reward `1 - i/(k-1)` and wears the machine
/// one level deeper with probability `wear_prob` (the last level is
/// absorbing).  Deteriorating rewards make the Gittins index monotone,
/// which several tests exploit.
pub fn deteriorating_project(k: usize, wear_prob: f64) -> BanditProject {
    assert!(k >= 2 && (0.0..=1.0).contains(&wear_prob));
    let rewards: Vec<f64> = (0..k).map(|i| 1.0 - i as f64 / (k - 1) as f64).collect();
    let transitions: Vec<Vec<(usize, f64)>> = (0..k)
        .map(|i| {
            if i + 1 < k {
                vec![(i, 1.0 - wear_prob), (i + 1, wear_prob)]
            } else {
                vec![(i, 1.0)]
            }
        })
        .collect();
    BanditProject::new(rewards, transitions)
}

/// A restless "machine maintenance" project with `k` deterioration levels.
///
/// * **Passive** (run the machine unattended): produces reward
///   `1 - i/(k-1)` in level `i` and deteriorates one level with probability
///   `decay` (last level absorbing while passive).
/// * **Active** (send the repair crew): costs `repair_cost` (reward
///   `-repair_cost`) and resets the machine to level 0 with probability
///   `repair_success`, otherwise leaves the level unchanged.
///
/// This is the canonical restless-bandit example: passive projects keep
/// evolving, so the Gittins theorem does not apply and the Whittle index is
/// the natural heuristic (experiment E10).
pub fn maintenance_project(
    k: usize,
    decay: f64,
    repair_cost: f64,
    repair_success: f64,
) -> RestlessProject {
    assert!(k >= 2);
    assert!((0.0..=1.0).contains(&decay) && (0.0..=1.0).contains(&repair_success));
    let production = |i: usize| 1.0 - i as f64 / (k - 1) as f64;

    let passive_rewards: Vec<f64> = (0..k).map(production).collect();
    let passive_transitions: Vec<Vec<(usize, f64)>> = (0..k)
        .map(|i| {
            if i + 1 < k {
                vec![(i, 1.0 - decay), (i + 1, decay)]
            } else {
                vec![(i, 1.0)]
            }
        })
        .collect();

    let active_rewards: Vec<f64> = (0..k).map(|_| -repair_cost).collect();
    let active_transitions: Vec<Vec<(usize, f64)>> = (0..k)
        .map(|i| {
            if i == 0 {
                vec![(0, 1.0)]
            } else {
                vec![(0, repair_success), (i, 1.0 - repair_success)]
            }
        })
        .collect();

    RestlessProject::new(
        active_rewards,
        active_transitions,
        passive_rewards,
        passive_transitions,
    )
}

/// A Bayesian Bernoulli-sampling project — the "sequential design of
/// experiments" application that motivated Gittins and Jones (1974).
///
/// The project is an arm with unknown success probability carrying a
/// Beta(`alpha0`, `beta0`) prior.  Its state is the posterior `(s, f)`
/// (observed successes and failures); engaging the arm pulls it once, earns
/// the posterior-mean reward `(s + alpha0) / (s + f + alpha0 + beta0)` in
/// expectation, and moves to `(s+1, f)` or `(s, f+1)` accordingly.  States
/// with `s + f >= depth` are truncated to an absorbing state paying the
/// posterior mean forever (the standard finite-state truncation used to
/// tabulate Bernoulli Gittins indices).
///
/// State indexing: `(s, f)` with `s + f < depth` maps to
/// `(s + f) * (s + f + 1) / 2 + f`; use [`bernoulli_state_index`] to locate
/// a posterior.
pub fn bernoulli_sampling_project(depth: usize, alpha0: f64, beta0: f64) -> BanditProject {
    assert!(depth >= 1 && alpha0 > 0.0 && beta0 > 0.0);
    // Interior states: all (s, f) with s + f < depth, then one absorbing
    // state per boundary posterior (s, f) with s + f == depth.
    let interior: usize = (0..depth).map(|n| n + 1).sum();
    let boundary = depth + 1;
    let total = interior + boundary;
    let interior_index = |s: usize, f: usize| -> usize {
        let n = s + f;
        n * (n + 1) / 2 + f
    };
    let boundary_index = |f: usize| -> usize { interior + f };
    let posterior_mean =
        |s: usize, f: usize| (s as f64 + alpha0) / ((s + f) as f64 + alpha0 + beta0);

    let mut rewards = vec![0.0; total];
    let mut transitions: Vec<Vec<(usize, f64)>> = vec![Vec::new(); total];
    for n in 0..depth {
        for f in 0..=n {
            let s = n - f;
            let idx = interior_index(s, f);
            let p = posterior_mean(s, f);
            rewards[idx] = p;
            let succ = if n + 1 < depth {
                interior_index(s + 1, f)
            } else {
                boundary_index(f)
            };
            let fail = if n + 1 < depth {
                interior_index(s, f + 1)
            } else {
                boundary_index(f + 1)
            };
            transitions[idx] = vec![(succ, p), (fail, 1.0 - p)];
        }
    }
    for f in 0..=depth {
        let s = depth - f;
        let idx = boundary_index(f);
        rewards[idx] = posterior_mean(s, f);
        transitions[idx] = vec![(idx, 1.0)];
    }
    BanditProject::new(rewards, transitions)
}

/// Index of the posterior `(successes, failures)` in the state space of
/// [`bernoulli_sampling_project`] (requires `successes + failures < depth`).
pub fn bernoulli_state_index(successes: usize, failures: usize, depth: usize) -> usize {
    assert!(
        successes + failures < depth,
        "posterior lies beyond the truncation depth"
    );
    let n = successes + failures;
    n * (n + 1) / 2 + failures
}

/// A random restless project with `k` states (uniform rewards in `[0,1]`
/// for both actions, dense random transition rows).
pub fn random_restless_project<R: Rng + ?Sized>(k: usize, rng: &mut R) -> RestlessProject {
    let row = |rng: &mut R| -> Vec<(usize, f64)> {
        let weights: Vec<f64> = (0..k).map(|_| rng.gen::<f64>() + 1e-3).collect();
        let total: f64 = weights.iter().sum();
        weights
            .iter()
            .enumerate()
            .map(|(j, w)| (j, w / total))
            .collect()
    };
    let active_rewards: Vec<f64> = (0..k).map(|_| rng.gen::<f64>()).collect();
    let passive_rewards: Vec<f64> = (0..k).map(|_| 0.5 * rng.gen::<f64>()).collect();
    let active_transitions: Vec<Vec<(usize, f64)>> = (0..k).map(|_| row(rng)).collect();
    let passive_transitions: Vec<Vec<(usize, f64)>> = (0..k).map(|_| row(rng)).collect();
    RestlessProject::new(
        active_rewards,
        active_transitions,
        passive_rewards,
        passive_transitions,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn random_project_is_well_formed() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let p = random_project(5, &mut rng);
        assert_eq!(p.num_states(), 5);
        for i in 0..5 {
            let total: f64 = p.transitions(i).iter().map(|(_, q)| q).sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn deteriorating_project_rewards_decrease() {
        let p = deteriorating_project(4, 0.3);
        let r = p.rewards();
        for w in r.windows(2) {
            assert!(w[1] < w[0]);
        }
        assert_eq!(p.transitions(3), &[(3, 1.0)]);
    }

    #[test]
    fn maintenance_project_shapes() {
        let p = maintenance_project(5, 0.4, 0.3, 0.9);
        assert_eq!(p.num_states(), 5);
        // Active in a worn state mostly resets to 0.
        let active = p.active_transitions(4);
        assert!(active
            .iter()
            .any(|&(j, q)| j == 0 && (q - 0.9).abs() < 1e-12));
        // Passive production falls with wear.
        assert!(p.passive_reward(0) > p.passive_reward(4));
    }

    #[test]
    fn bernoulli_project_shapes_and_rewards() {
        let depth = 4;
        let p = bernoulli_sampling_project(depth, 1.0, 1.0);
        // Interior states 1+2+3+4 = 10 plus 5 boundary states.
        assert_eq!(p.num_states(), 15);
        // Fresh arm with a uniform prior has posterior mean 1/2.
        let root = bernoulli_state_index(0, 0, depth);
        assert!((p.reward(root) - 0.5).abs() < 1e-12);
        // Two successes, no failures: mean 3/4.
        let idx = bernoulli_state_index(2, 0, depth);
        assert!((p.reward(idx) - 0.75).abs() < 1e-12);
        // Transition probabilities equal the posterior mean.
        let t = p.transitions(root);
        assert!((t[0].1 - 0.5).abs() < 1e-12 && (t[1].1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn gittins_index_of_bernoulli_arm_shows_exploration_bonus() {
        use crate::gittins::gittins_indices_vwb;
        let depth = 8;
        let p = bernoulli_sampling_project(depth, 1.0, 1.0);
        let idx = gittins_indices_vwb(&p, 0.9);
        // The index always dominates the myopic posterior mean...
        let fresh = bernoulli_state_index(0, 0, depth);
        assert!(idx[fresh] >= p.reward(fresh) - 1e-9);
        assert!(
            idx[fresh] > 0.5 + 1e-3,
            "a fresh arm carries an exploration bonus"
        );
        // ...and, at equal posterior mean, the less-sampled arm has the
        // larger index: (1 success, 1 failure) vs (3 successes, 3 failures).
        let lightly_sampled = bernoulli_state_index(1, 1, depth);
        let heavily_sampled = bernoulli_state_index(3, 3, depth);
        assert!((p.reward(lightly_sampled) - p.reward(heavily_sampled)).abs() < 1e-12);
        assert!(
            idx[lightly_sampled] > idx[heavily_sampled] + 1e-4,
            "exploration bonus should favour the uncertain arm: {} vs {}",
            idx[lightly_sampled],
            idx[heavily_sampled]
        );
    }

    #[test]
    fn random_restless_project_is_well_formed() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let p = random_restless_project(4, &mut rng);
        for i in 0..4 {
            let a: f64 = p.active_transitions(i).iter().map(|(_, q)| q).sum();
            let b: f64 = p.passive_transitions(i).iter().map(|(_, q)| q).sum();
            assert!((a - 1.0).abs() < 1e-9 && (b - 1.0).abs() < 1e-9);
        }
    }
}

//! Marginal productivity indices (MPI) and partial conservation laws
//! for restless bandits (Niño-Mora 2001, 2002).
//!
//! The survey points to a "polyhedral framework for analysis and computation
//! of the Whittle index and extensions, based on the notion of partial
//! conservation laws".  The computational core of that framework is an
//! **adaptive-greedy** algorithm over *active sets*: for a set `S` of states
//! in which the project is engaged (and passive elsewhere), let
//!
//! * `R(S)` — the long-run average reward rate of the stationary policy
//!   "active exactly on `S`", and
//! * `W(S)` — its long-run average *work* rate (the stationary probability
//!   of being active),
//!
//! both computed from the stationary distribution of the induced Markov
//! chain ([`active_set_rates`]).  Starting from the empty set the algorithm
//! repeatedly adds the state with the largest **marginal productivity rate**
//!
//! ```text
//! ν_i(S) = (R(S ∪ {i}) − R(S)) / (W(S ∪ {i}) − W(S))
//! ```
//!
//! and records that rate as the state's index ([`marginal_productivity_indices`]).
//! When the project satisfies partial conservation laws relative to the
//! nested family the run generates — numerically: every marginal work is
//! positive and the recorded rates are non-increasing — the project is
//! PCL-indexable and the MPI coincides with the Whittle index, giving an
//! exact `O(K)`-stage alternative to the bisection of
//! [`crate::restless::whittle_indices`].  Experiment E19 verifies the
//! agreement and exercises the diagnostic.

use crate::restless::RestlessProject;
use ss_mdp::chain::MarkovChain;

/// Long-run average reward and work rates of an active-set policy.
#[derive(Debug, Clone, Copy)]
pub struct ActiveSetRates {
    /// Average reward per period.
    pub reward_rate: f64,
    /// Average fraction of periods the project is active.
    pub work_rate: f64,
}

/// Stationary reward/work rates of the policy that takes the active action
/// exactly on the states of `active_set` (and the passive action elsewhere).
///
/// Some active sets induce chains with several recurrent classes (the
/// adaptive-greedy run evaluates every candidate set, not only the nested
/// family it ends up selecting); to keep the stationary distribution
/// well-defined the chain is mixed with a uniform restart of weight `1e-8`,
/// which is negligible for unichain policies and selects the
/// restart-weighted mixture of recurrent classes otherwise.
pub fn active_set_rates(project: &RestlessProject, active_set: &[bool]) -> ActiveSetRates {
    let k = project.num_states();
    assert_eq!(active_set.len(), k);
    let epsilon = 1e-8;
    let mut p = vec![vec![epsilon / k as f64; k]; k];
    for i in 0..k {
        let row = if active_set[i] {
            project.active_transitions(i)
        } else {
            project.passive_transitions(i)
        };
        for &(j, prob) in row {
            p[i][j] += (1.0 - epsilon) * prob;
        }
    }
    let chain = MarkovChain::new(p);
    let pi = chain.stationary_distribution();
    let mut reward_rate = 0.0;
    let mut work_rate = 0.0;
    for i in 0..k {
        let r = if active_set[i] {
            project.active_reward(i)
        } else {
            project.passive_reward(i)
        };
        reward_rate += pi[i] * r;
        if active_set[i] {
            work_rate += pi[i];
        }
    }
    ActiveSetRates {
        reward_rate,
        work_rate,
    }
}

/// Output of the adaptive-greedy MPI computation.
#[derive(Debug, Clone)]
pub struct MpiResult {
    /// Marginal productivity index per state (higher = activate earlier).
    pub indices: Vec<f64>,
    /// States in the order the algorithm added them to the active set
    /// (first added = largest index).
    pub assignment_order: Vec<usize>,
    /// The marginal rates in assignment order.
    pub marginal_rates: Vec<f64>,
    /// The marginal work `W(S ∪ {i}) − W(S)` of each assignment.
    pub marginal_work: Vec<f64>,
    /// `true` when every marginal work was strictly positive and the
    /// marginal rates were non-increasing — the numerical PCL-indexability
    /// certificate under which the MPI equals the Whittle index.
    pub pcl_indexable: bool,
}

/// Compute the marginal productivity indices of a restless project by the
/// adaptive-greedy algorithm over active sets.
///
/// `work_tolerance` guards the division: a marginal work smaller than this
/// (in absolute value) marks the project as not PCL-indexable and the
/// affected index is computed against the tolerance instead.
pub fn marginal_productivity_indices(project: &RestlessProject, work_tolerance: f64) -> MpiResult {
    let k = project.num_states();
    assert!(work_tolerance > 0.0);
    let mut active = vec![false; k];
    let mut indices = vec![f64::NAN; k];
    let mut assignment_order = Vec::with_capacity(k);
    let mut marginal_rates = Vec::with_capacity(k);
    let mut marginal_work = Vec::with_capacity(k);
    let mut pcl_indexable = true;

    let mut current = active_set_rates(project, &active);
    for _step in 0..k {
        let mut best_state = usize::MAX;
        let mut best_rate = f64::NEG_INFINITY;
        let mut best_rates = current;
        let mut best_dw = 0.0;
        for i in 0..k {
            if active[i] {
                continue;
            }
            active[i] = true;
            let with_i = active_set_rates(project, &active);
            active[i] = false;
            let dr = with_i.reward_rate - current.reward_rate;
            let dw = with_i.work_rate - current.work_rate;
            let rate = dr / dw.max(work_tolerance);
            if rate > best_rate {
                best_rate = rate;
                best_state = i;
                best_rates = with_i;
                best_dw = dw;
            }
        }
        if best_dw <= work_tolerance {
            pcl_indexable = false;
        }
        indices[best_state] = best_rate;
        active[best_state] = true;
        assignment_order.push(best_state);
        marginal_rates.push(best_rate);
        marginal_work.push(best_dw);
        current = best_rates;
    }

    // Non-increasing marginal rates are the other half of the certificate.
    if marginal_rates.windows(2).any(|w| w[1] > w[0] + 1e-9) {
        pcl_indexable = false;
    }

    MpiResult {
        indices,
        assignment_order,
        marginal_rates,
        marginal_work,
        pcl_indexable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::maintenance_project;
    use crate::restless::{is_indexable, whittle_indices};

    fn maint() -> RestlessProject {
        maintenance_project(5, 0.35, 0.4, 0.95)
    }

    #[test]
    fn all_passive_and_all_active_rates_are_consistent() {
        let p = maint();
        let k = p.num_states();
        // Never repairing: the machine is eventually absorbed in the worst
        // wear level, whose production (and hence the long-run reward rate)
        // is zero, and no work is ever done.
        let passive = active_set_rates(&p, &vec![false; k]);
        assert!(passive.work_rate.abs() < 1e-6);
        assert!(passive.reward_rate.abs() < 1e-6);
        // Repairing every period: work rate one, reward rate equal to the
        // (negative) repair cost.
        let active = active_set_rates(&p, &vec![true; k]);
        assert!((active.work_rate - 1.0).abs() < 1e-6);
        assert!((active.reward_rate - (-0.4)).abs() < 1e-6);
        // Repairing only badly worn machines beats both extremes.
        let mut threshold = vec![false; k];
        threshold[k - 1] = true;
        let mixed = active_set_rates(&p, &threshold);
        assert!(mixed.reward_rate > passive.reward_rate);
        assert!(mixed.reward_rate > active.reward_rate);
        assert!(mixed.work_rate > 0.0 && mixed.work_rate < 1.0);
    }

    #[test]
    fn maintenance_project_is_pcl_indexable() {
        let p = maint();
        let mpi = marginal_productivity_indices(&p, 1e-9);
        assert!(
            mpi.pcl_indexable,
            "maintenance project should be PCL-indexable: {mpi:?}"
        );
        assert!(mpi.marginal_work.iter().all(|&w| w > 0.0));
        // Marginal rates non-increasing by construction of the certificate.
        for w in mpi.marginal_rates.windows(2) {
            assert!(w[1] <= w[0] + 1e-9);
        }
    }

    #[test]
    fn mpi_agrees_with_the_whittle_bisection_on_indexable_projects() {
        let p = maint();
        assert!(is_indexable(&p, 25));
        let whittle = whittle_indices(&p);
        let mpi = marginal_productivity_indices(&p, 1e-9);
        for i in 0..p.num_states() {
            let scale = whittle[i].abs().max(1.0);
            assert!(
                (mpi.indices[i] - whittle[i]).abs() < 1e-4 * scale,
                "state {i}: MPI {} vs Whittle {}",
                mpi.indices[i],
                whittle[i]
            );
        }
    }

    #[test]
    fn mpi_orders_states_by_wear() {
        let p = maint();
        let mpi = marginal_productivity_indices(&p, 1e-9);
        // Worn machines deserve repair priority: indices weakly increase
        // with the wear level beyond level 0.
        for w in mpi.indices.windows(2).skip(1) {
            assert!(w[1] >= w[0] - 1e-6, "{:?}", mpi.indices);
        }
        assert!(mpi.indices[4] > mpi.indices[0]);
    }

    #[test]
    #[should_panic]
    fn active_set_length_mismatch_is_rejected() {
        let p = maint();
        let _ = active_set_rates(&p, &[true, false]);
    }

    #[test]
    #[should_panic]
    fn zero_work_tolerance_is_rejected() {
        let p = maint();
        let _ = marginal_productivity_indices(&p, 0.0);
    }

    #[test]
    fn single_state_project_has_the_reward_difference_as_its_index() {
        // One state, active pays 2.0 and passive pays 0.5: the subsidy that
        // equalises them (the Whittle index) is 1.5, and the MPI marginal
        // rate (R({0}) − R(∅)) / (W({0}) − W(∅)) = (2 − 0.5) / 1 is the same.
        let p = RestlessProject::new(
            vec![2.0],
            vec![vec![(0, 1.0)]],
            vec![0.5],
            vec![vec![(0, 1.0)]],
        );
        let mpi = marginal_productivity_indices(&p, 1e-9);
        assert!((mpi.indices[0] - 1.5).abs() < 1e-9, "{:?}", mpi.indices);
        assert!(mpi.pcl_indexable);
        let whittle = whittle_indices(&p);
        assert!((whittle[0] - 1.5).abs() < 1e-6);
    }

    #[test]
    fn assignment_order_is_a_permutation_of_the_states() {
        let p = maint();
        let mpi = marginal_productivity_indices(&p, 1e-9);
        let mut seen = vec![false; p.num_states()];
        for &s in &mpi.assignment_order {
            assert!(!seen[s], "state {s} assigned twice");
            seen[s] = true;
        }
        assert!(seen.iter().all(|&b| b));
        assert_eq!(mpi.marginal_rates.len(), p.num_states());
        assert_eq!(mpi.marginal_work.len(), p.num_states());
    }
}

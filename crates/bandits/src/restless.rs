//! Restless bandits: Whittle's relaxation and index heuristic
//! (Whittle 1988, Weber–Weiss 1990, Bertsimas–Niño-Mora 2000).
//!
//! Unlike the classical model, *passive* projects keep changing state, and
//! `m >= 1` of the `N` projects must be engaged at every epoch; the Gittins
//! theorem no longer applies and the problem is PSPACE-hard in general.
//! The survey describes the now-standard toolkit, all of which is
//! implemented here for the time-average criterion:
//!
//! * **Subsidy problems and indexability** — for a passivity subsidy `λ`,
//!   each project becomes a two-action average-reward MDP
//!   ([`subsidy_policy`]); the project is *indexable* if the set of states
//!   where passivity is optimal grows monotonically with `λ`
//!   ([`is_indexable`]).
//! * **Whittle index** ([`whittle_indices`]) — the subsidy that makes the
//!   two actions equally attractive in a given state, found by bisection.
//! * **LP relaxation bound** ([`whittle_relaxation_bound`],
//!   [`relaxation_bound_identical`]) — relax "exactly `m` active each
//!   period" to "`m` active on average"; the resulting LP over state-action
//!   frequencies upper-bounds every admissible policy and is solved with
//!   `ss-lp`.
//! * **Index policies and simulation** ([`simulate_restless`]) — the
//!   Whittle rule (activate the `m` projects with the largest current
//!   indices), the myopic rule and a random baseline, evaluated by long-run
//!   simulation.
//! * **Weber–Weiss asymptotics** ([`asymptotic_sweep`]) — `N → ∞` with
//!   `m/N` fixed: the per-project reward of the Whittle rule approaches the
//!   relaxation bound, reproducing the asymptotic-optimality shape quoted
//!   in the survey (experiment E10).
//! * **LP-occupancy priority indices** ([`lp_priority_indices`]) — a
//!   primal heuristic extracted from the relaxation in the spirit of the
//!   primal-dual index of Bertsimas–Niño-Mora (2000): states are ranked by
//!   the activity share the relaxed solution assigns them.

use rand::Rng;
use ss_lp::{LinearProgram, Relation};
use ss_mdp::average::relative_value_iteration;
use ss_mdp::mdp::MdpBuilder;

/// A restless project: separate reward vectors and transition kernels for
/// the active and passive actions.
#[derive(Debug, Clone)]
pub struct RestlessProject {
    active_rewards: Vec<f64>,
    active_transitions: Vec<Vec<(usize, f64)>>,
    passive_rewards: Vec<f64>,
    passive_transitions: Vec<Vec<(usize, f64)>>,
}

impl RestlessProject {
    /// Create a restless project; rows must be probability distributions.
    ///
    /// Rows are validated (entries `>= -1e-12`, sums within `1e-8` of 1) and
    /// then *normalised*: tiny negative entries are clamped to 0 and every
    /// row is rescaled to sum to 1, so [`Self::sample_next`] never has to
    /// cope with rows carrying slightly less than unit mass.
    pub fn new(
        active_rewards: Vec<f64>,
        active_transitions: Vec<Vec<(usize, f64)>>,
        passive_rewards: Vec<f64>,
        passive_transitions: Vec<Vec<(usize, f64)>>,
    ) -> Self {
        let k = active_rewards.len();
        assert!(k > 0);
        assert_eq!(passive_rewards.len(), k);
        assert_eq!(active_transitions.len(), k);
        assert_eq!(passive_transitions.len(), k);
        let normalize = |rows: Vec<Vec<(usize, f64)>>| -> Vec<Vec<(usize, f64)>> {
            rows.into_iter()
                .enumerate()
                .map(|(i, row)| {
                    assert!(row.iter().all(|&(j, p)| j < k && p >= -1e-12));
                    let row: Vec<(usize, f64)> =
                        row.into_iter().map(|(j, p)| (j, p.max(0.0))).collect();
                    let total: f64 = row.iter().map(|(_, p)| p).sum();
                    assert!((total - 1.0).abs() < 1e-8, "row {i} sums to {total}");
                    row.into_iter().map(|(j, p)| (j, p / total)).collect()
                })
                .collect()
        };
        Self {
            active_rewards,
            active_transitions: normalize(active_transitions),
            passive_rewards,
            passive_transitions: normalize(passive_transitions),
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.active_rewards.len()
    }

    /// Reward of the active action in state `i`.
    pub fn active_reward(&self, i: usize) -> f64 {
        self.active_rewards[i]
    }

    /// Reward of the passive action in state `i`.
    pub fn passive_reward(&self, i: usize) -> f64 {
        self.passive_rewards[i]
    }

    /// Active transition row.
    pub fn active_transitions(&self, i: usize) -> &[(usize, f64)] {
        &self.active_transitions[i]
    }

    /// Passive transition row.
    pub fn passive_transitions(&self, i: usize) -> &[(usize, f64)] {
        &self.passive_transitions[i]
    }

    /// Sample the next state given the current state and chosen action.
    ///
    /// The uniform draw is rescaled by the row's floating-point mass
    /// (re-summing a constructor-normalised row can still land one ulp away
    /// from 1), so the CDF walk always terminates on a positive-probability
    /// entry — it cannot fall through past the end of the row or land on a
    /// zero-probability state.
    pub fn sample_next<R: Rng + ?Sized>(&self, i: usize, active: bool, rng: &mut R) -> usize {
        let row = if active {
            &self.active_transitions[i]
        } else {
            &self.passive_transitions[i]
        };
        let total: f64 = row.iter().map(|&(_, p)| p).sum();
        let u: f64 = rng.gen::<f64>() * total;
        let mut acc = 0.0;
        for &(j, p) in row {
            acc += p;
            if p > 0.0 && u <= acc {
                return j;
            }
        }
        // Unreachable in exact arithmetic (`u < total` and `acc` reaches
        // `total` on the last positive entry); kept as a defensive
        // renormalised fallback that can never pick a zero-mass state.
        row.iter()
            .rev()
            .find(|&&(_, p)| p > 0.0)
            .expect("transition row must carry positive mass")
            .0
    }

    /// Bounds within which every Whittle index must lie (reward spread).
    fn subsidy_bounds(&self) -> (f64, f64) {
        let max_a = self
            .active_rewards
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let min_a = self
            .active_rewards
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let max_p = self
            .passive_rewards
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let min_p = self
            .passive_rewards
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let spread = (max_a - min_p).abs().max((max_p - min_a).abs()).max(1.0);
        (-4.0 * spread, 4.0 * spread)
    }
}

/// Span tolerance and sweep budget of the relative value iterations behind
/// [`subsidy_policy`].
const RVI_TOLERANCE: f64 = 1e-10;
const RVI_MAX_SWEEPS: usize = 200_000;

/// [`subsidy_policy`] plus whether the value iteration actually converged.
/// At very large `|subsidy|` the bias of a transient state needs on the
/// order of `|subsidy| / gain-gap` sweeps to propagate, so a timed-out
/// solve can report a spurious policy — callers that expand the subsidy
/// bounds must not trust an unconverged solve.
fn subsidy_policy_checked(project: &RestlessProject, subsidy: f64) -> (Vec<bool>, bool) {
    let k = project.num_states();
    let mut builder = MdpBuilder::new(k);
    for i in 0..k {
        // Action 0: active.
        builder.add_action(
            i,
            project.active_reward(i),
            project.active_transitions(i).to_vec(),
        );
        // Action 1: passive (+ subsidy).
        builder.add_action(
            i,
            project.passive_reward(i) + subsidy,
            project.passive_transitions(i).to_vec(),
        );
    }
    let mdp = builder.build();
    let sol = relative_value_iteration(&mdp, RVI_TOLERANCE, RVI_MAX_SWEEPS);
    let passive = sol.policy.iter().map(|&a| a == 1).collect();
    (passive, sol.iterations < RVI_MAX_SWEEPS)
}

/// Solve the subsidy-`λ` single-project average-reward problem; returns the
/// optimal action per state (`true` = passive).
pub fn subsidy_policy(project: &RestlessProject, subsidy: f64) -> Vec<bool> {
    subsidy_policy_checked(project, subsidy).0
}

/// Outcome of expanding the initial subsidy bounds: the widest interval
/// whose endpoint subsidy problems were solved to convergence, together
/// with the optimal passivity pattern observed at each endpoint.
struct SubsidyBracket {
    lo: f64,
    hi: f64,
    passive_at_lo: Vec<bool>,
    passive_at_hi: Vec<bool>,
}

/// Expand the initial subsidy bounds until the subsidy-problem policy is
/// all-active at the lower end and all-passive at the upper end (the Whittle
/// indices of every state then lie inside the returned interval) — or until
/// the endpoint solves stop converging or the doubling budget runs out,
/// whichever comes first.  A state that is still active at the converged
/// upper endpoint (or still passive at the converged lower endpoint) has no
/// crossing inside the bracket: [`whittle_indices`] saturates it to a
/// sentinel instead of bisecting.
fn subsidy_bracket(project: &RestlessProject) -> SubsidyBracket {
    let expand = |start: f64, grow: fn(f64) -> f64, done: fn(&[bool]) -> bool| {
        let mut bound = start;
        let mut best: Option<(f64, Vec<bool>)> = None;
        let mut fallback: Option<(f64, Vec<bool>)> = None;
        for _ in 0..60 {
            let (policy, converged) = subsidy_policy_checked(project, bound);
            if fallback.is_none() {
                // Remembered so an all-unconverged expansion still returns
                // the initial bound's (best-effort) policy without
                // re-solving it.
                fallback = Some((bound, policy.clone()));
            }
            if !converged {
                // Larger magnitudes only get harder for the value
                // iteration; keep the widest converged endpoint.
                break;
            }
            let finished = done(&policy);
            best = Some((bound, policy));
            if finished {
                break;
            }
            bound = grow(bound);
        }
        best.or(fallback)
            .expect("expansion evaluates at least one bound")
    };
    let (lo0, hi0) = project.subsidy_bounds();
    let (hi, passive_at_hi) = expand(hi0, |b| b * 2.0 + 1.0, |p| p.iter().all(|&x| x));
    let (lo, passive_at_lo) = expand(lo0, |b| b * 2.0 - 1.0, |p| p.iter().all(|&x| !x));
    SubsidyBracket {
        lo,
        hi,
        passive_at_lo,
        passive_at_hi,
    }
}

/// Expand the initial subsidy bounds until the subsidy-problem policy is
/// all-active at the lower end and all-passive at the upper end (the Whittle
/// indices of every state then lie inside the returned interval; see
/// [`subsidy_bracket`] for the convergence-capped expansion rule).
fn expanded_subsidy_bounds(project: &RestlessProject) -> (f64, f64) {
    let bracket = subsidy_bracket(project);
    (bracket.lo, bracket.hi)
}

/// Check indexability numerically: the passive set must grow monotonically
/// (by inclusion) along an increasing grid of `grid_points` subsidies.
pub fn is_indexable(project: &RestlessProject, grid_points: usize) -> bool {
    assert!(grid_points >= 3);
    let (lo, hi) = expanded_subsidy_bounds(project);
    let mut previous: Option<Vec<bool>> = None;
    for g in 0..grid_points {
        let lambda = lo + (hi - lo) * g as f64 / (grid_points - 1) as f64;
        let passive = subsidy_policy(project, lambda);
        if let Some(prev) = &previous {
            for i in 0..passive.len() {
                if prev[i] && !passive[i] {
                    return false;
                }
            }
        }
        previous = Some(passive);
    }
    true
}

/// Whittle indices of every state (the subsidy at which the state switches
/// from active to passive), found by bisection.  For indexable projects the
/// result is the Whittle index; for non-indexable projects it is still a
/// well-defined heuristic index (the smallest subsidy making passivity
/// optimal at that state).
///
/// **Sentinels.**  A state with no active/passive crossing inside the
/// expanded subsidy interval has no finite index there, and bisection would
/// silently converge to the interval endpoint — a meaningless number that
/// can exceed every real index by orders of magnitude.  Such states are
/// detected up front and saturated to a documented sentinel instead:
/// [`f64::INFINITY`] for a state that is still active at the upper bound
/// (activity is dominant: the state outranks every finite index), and
/// [`f64::NEG_INFINITY`] for a state that is already passive at the lower
/// bound (passivity is dominant: the state ranks below every finite index).
/// Both sentinels order correctly under the [`RestlessPolicy::WhittleIndex`]
/// priority rule.
pub fn whittle_indices(project: &RestlessProject) -> Vec<f64> {
    let k = project.num_states();
    let bracket = subsidy_bracket(project);
    let (lo0, hi0) = (bracket.lo, bracket.hi);
    (0..k)
        .map(|state| {
            if !bracket.passive_at_hi[state] {
                // No crossing below hi0: never passive (non-indexable corner).
                return f64::INFINITY;
            }
            if bracket.passive_at_lo[state] {
                // No crossing above lo0: never active.
                return f64::NEG_INFINITY;
            }
            let mut lo = lo0;
            let mut hi = hi0;
            // Invariant target: passive at `state` for subsidy >= index.
            for _ in 0..50 {
                let mid = 0.5 * (lo + hi);
                let passive = subsidy_policy(project, mid);
                if passive[state] {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            0.5 * (lo + hi)
        })
        .collect()
}

/// The Whittle LP relaxation bound on the long-run average reward of `N`
/// (possibly heterogeneous) projects with exactly `m` active per period.
///
/// Variables are state-action occupation frequencies `x^n_{i,a}`; the
/// coupling constraint requires the *average* number of active projects to
/// equal `m`.  The optimal value upper-bounds every admissible policy.
pub fn whittle_relaxation_bound(projects: &[RestlessProject], m: usize) -> f64 {
    assert!(!projects.is_empty() && m >= 1 && m <= projects.len());
    // Variable layout: for project n with k_n states, active vars then
    // passive vars: x[n][i][a], flattened.
    let mut var_offset = Vec::with_capacity(projects.len());
    let mut total_vars = 0usize;
    for p in projects {
        var_offset.push(total_vars);
        total_vars += 2 * p.num_states();
    }
    let idx = |n: usize, i: usize, active: bool, projects: &[RestlessProject]| -> usize {
        var_offset[n]
            + if active {
                i
            } else {
                projects[n].num_states() + i
            }
    };

    // Objective: maximise total expected reward rate.
    let mut objective = vec![0.0; total_vars];
    for (n, p) in projects.iter().enumerate() {
        for i in 0..p.num_states() {
            objective[idx(n, i, true, projects)] = p.active_reward(i);
            objective[idx(n, i, false, projects)] = p.passive_reward(i);
        }
    }
    let mut lp = LinearProgram::maximize(objective);

    for (n, p) in projects.iter().enumerate() {
        let k = p.num_states();
        // Normalisation: sum of frequencies = 1.
        let mut row = vec![0.0; total_vars];
        for i in 0..k {
            row[idx(n, i, true, projects)] = 1.0;
            row[idx(n, i, false, projects)] = 1.0;
        }
        lp.add_constraint(row, Relation::Eq, 1.0);
        // Balance: outflow of state j equals inflow.
        for j in 0..k {
            let mut row = vec![0.0; total_vars];
            row[idx(n, j, true, projects)] += 1.0;
            row[idx(n, j, false, projects)] += 1.0;
            for i in 0..k {
                for &(next, prob) in p.active_transitions(i) {
                    if next == j {
                        row[idx(n, i, true, projects)] -= prob;
                    }
                }
                for &(next, prob) in p.passive_transitions(i) {
                    if next == j {
                        row[idx(n, i, false, projects)] -= prob;
                    }
                }
            }
            lp.add_constraint(row, Relation::Eq, 0.0);
        }
    }
    // Coupling: average number of active projects = m.
    let mut row = vec![0.0; total_vars];
    for (n, p) in projects.iter().enumerate() {
        for i in 0..p.num_states() {
            row[idx(n, i, true, projects)] = 1.0;
        }
    }
    lp.add_constraint(row, Relation::Eq, m as f64);

    lp.solve()
        .expect("relaxation LP must be feasible")
        .objective
}

/// Relaxation bound per project for `N` identical copies of `project` with
/// an active fraction `alpha = m / N`: solved on a single copy with the
/// coupling constraint `Σ_i x_{i,active} = alpha`, so the `N`-project bound
/// is `N` times the returned value.
pub fn relaxation_bound_identical(project: &RestlessProject, alpha: f64) -> f64 {
    assert!((0.0..=1.0).contains(&alpha));
    let k = project.num_states();
    let idx = |i: usize, active: bool| -> usize {
        if active {
            i
        } else {
            k + i
        }
    };
    let mut objective = vec![0.0; 2 * k];
    for i in 0..k {
        objective[idx(i, true)] = project.active_reward(i);
        objective[idx(i, false)] = project.passive_reward(i);
    }
    let mut lp = LinearProgram::maximize(objective);
    let mut norm = vec![0.0; 2 * k];
    for i in 0..k {
        norm[idx(i, true)] = 1.0;
        norm[idx(i, false)] = 1.0;
    }
    lp.add_constraint(norm, Relation::Eq, 1.0);
    for j in 0..k {
        let mut row = vec![0.0; 2 * k];
        row[idx(j, true)] += 1.0;
        row[idx(j, false)] += 1.0;
        for i in 0..k {
            for &(next, prob) in project.active_transitions(i) {
                if next == j {
                    row[idx(i, true)] -= prob;
                }
            }
            for &(next, prob) in project.passive_transitions(i) {
                if next == j {
                    row[idx(i, false)] -= prob;
                }
            }
        }
        lp.add_constraint(row, Relation::Eq, 0.0);
    }
    let mut coupling = vec![0.0; 2 * k];
    for i in 0..k {
        coupling[idx(i, true)] = 1.0;
    }
    lp.add_constraint(coupling, Relation::Eq, alpha);
    lp.solve()
        .expect("identical-project relaxation LP must be feasible")
        .objective
}

/// Priority indices extracted from the relaxed solution: the activity share
/// `x_{i,active} / (x_{i,active} + x_{i,passive})` of each state (states the
/// relaxation never visits get index 0).  A primal heuristic in the spirit
/// of the Bertsimas–Niño-Mora primal-dual index.
pub fn lp_priority_indices(project: &RestlessProject, alpha: f64) -> Vec<f64> {
    let k = project.num_states();
    let idx = |i: usize, active: bool| -> usize {
        if active {
            i
        } else {
            k + i
        }
    };
    let mut objective = vec![0.0; 2 * k];
    for i in 0..k {
        objective[idx(i, true)] = project.active_reward(i);
        objective[idx(i, false)] = project.passive_reward(i);
    }
    let mut lp = LinearProgram::maximize(objective);
    let mut norm = vec![0.0; 2 * k];
    for i in 0..k {
        norm[idx(i, true)] = 1.0;
        norm[idx(i, false)] = 1.0;
    }
    lp.add_constraint(norm, Relation::Eq, 1.0);
    for j in 0..k {
        let mut row = vec![0.0; 2 * k];
        row[idx(j, true)] += 1.0;
        row[idx(j, false)] += 1.0;
        for i in 0..k {
            for &(next, prob) in project.active_transitions(i) {
                if next == j {
                    row[idx(i, true)] -= prob;
                }
            }
            for &(next, prob) in project.passive_transitions(i) {
                if next == j {
                    row[idx(i, false)] -= prob;
                }
            }
        }
        lp.add_constraint(row, Relation::Eq, 0.0);
    }
    let mut coupling = vec![0.0; 2 * k];
    for i in 0..k {
        coupling[idx(i, true)] = 1.0;
    }
    lp.add_constraint(coupling, Relation::Eq, alpha);
    let sol = lp.solve().expect("LP must be feasible");
    (0..k)
        .map(|i| {
            let a = sol.x[idx(i, true)].max(0.0);
            let p = sol.x[idx(i, false)].max(0.0);
            if a + p < 1e-12 {
                0.0
            } else {
                a / (a + p)
            }
        })
        .collect()
}

/// How the simulator chooses which `m` projects to activate each period.
#[derive(Debug, Clone)]
pub enum RestlessPolicy {
    /// Activate the `m` projects whose current state has the largest
    /// Whittle index (indices supplied per project, per state).
    WhittleIndex(Vec<Vec<f64>>),
    /// Activate the `m` projects with the largest immediate reward
    /// advantage `R_active(i) - R_passive(i)`.
    Myopic,
    /// Activate `m` projects chosen uniformly at random.
    Random,
}

/// Simulate `horizon` periods of an `N`-project restless bandit activating
/// exactly `m` projects per period; returns the average reward per period.
pub fn simulate_restless<R: Rng + ?Sized>(
    projects: &[RestlessProject],
    m: usize,
    policy: &RestlessPolicy,
    horizon: usize,
    rng: &mut R,
) -> f64 {
    assert!(m >= 1 && m <= projects.len() && horizon > 0);
    let n = projects.len();
    let mut states: Vec<usize> = vec![0; n];
    let mut total = 0.0;
    for _ in 0..horizon {
        // Score every project.
        let mut scored: Vec<(f64, usize)> = (0..n)
            .map(|p| {
                let s = states[p];
                let score = match policy {
                    RestlessPolicy::WhittleIndex(indices) => indices[p][s],
                    RestlessPolicy::Myopic => {
                        projects[p].active_reward(s) - projects[p].passive_reward(s)
                    }
                    RestlessPolicy::Random => rng.gen::<f64>(),
                };
                (score, p)
            })
            .collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        let active: Vec<usize> = scored.iter().take(m).map(|&(_, p)| p).collect();
        let mut is_active = vec![false; n];
        for &p in &active {
            is_active[p] = true;
        }
        for p in 0..n {
            let s = states[p];
            if is_active[p] {
                total += projects[p].active_reward(s);
            } else {
                total += projects[p].passive_reward(s);
            }
            states[p] = projects[p].sample_next(s, is_active[p], rng);
        }
    }
    total / horizon as f64
}

/// Stream id of the substream family [`simulate_restless_replications`]
/// draws from (disjoint from every other family in the workspace — see
/// DESIGN.md's stream-id table).
pub const RESTLESS_SIM_STREAM: u64 = 0x5748_4954; // "WHIT"

/// Independent seeded replications of [`simulate_restless`], fanned out over
/// the workspace pool: replication `rep` draws from
/// `RngStreams::substream(RESTLESS_SIM_STREAM, rep)`, so the returned
/// per-replication average rewards are a pure function of the seed and
/// bit-for-bit identical for any `SS_THREADS`.
pub fn simulate_restless_replications(
    projects: &[RestlessProject],
    m: usize,
    policy: &RestlessPolicy,
    horizon: usize,
    replications: usize,
    seed: u64,
) -> Vec<f64> {
    let streams = ss_sim::RngStreams::new(seed);
    ss_sim::pool::parallel_indexed(replications, |rep| {
        let mut rng = streams.substream(RESTLESS_SIM_STREAM, rep as u64);
        simulate_restless(projects, m, policy, horizon, &mut rng)
    })
}

/// One point of the Weber–Weiss asymptotic sweep.
#[derive(Debug, Clone)]
pub struct AsymptoticPoint {
    /// Number of projects.
    pub n_projects: usize,
    /// Number activated per period.
    pub m_active: usize,
    /// Per-project average reward of the Whittle index policy.
    pub whittle_per_project: f64,
    /// Per-project relaxation bound.
    pub bound_per_project: f64,
    /// `(bound - whittle) / bound`.
    pub relative_gap: f64,
}

/// Sweep `N` (with `m = round(alpha N)`) for identical copies of `project`,
/// measuring the Whittle policy against the relaxation bound (E10).
///
/// The Whittle indices and the relaxation bound are computed once; the sweep
/// points are then simulated in parallel on the workspace thread pool, each
/// drawing from its own [`ss_sim::RngStreams`] stream keyed by the point
/// index, so the output is bit-for-bit identical for any thread count.
pub fn asymptotic_sweep(
    project: &RestlessProject,
    alpha: f64,
    project_counts: &[usize],
    horizon: usize,
    seed: u64,
) -> Vec<AsymptoticPoint> {
    let indices = whittle_indices(project);
    let bound = relaxation_bound_identical(project, alpha);
    let streams = ss_sim::RngStreams::new(seed);
    ss_sim::pool::parallel_indexed(project_counts.len(), |point| {
        let n = project_counts[point];
        let m = ((alpha * n as f64).round() as usize).clamp(1, n);
        let projects: Vec<RestlessProject> = (0..n).map(|_| project.clone()).collect();
        let policy = RestlessPolicy::WhittleIndex(vec![indices.clone(); n]);
        let mut rng = streams.stream(point as u64);
        let avg = simulate_restless(&projects, m, &policy, horizon, &mut rng);
        let per_project = avg / n as f64;
        AsymptoticPoint {
            n_projects: n,
            m_active: m,
            whittle_per_project: per_project,
            bound_per_project: bound,
            relative_gap: (bound - per_project) / bound.abs().max(1e-12),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::maintenance_project;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn maint() -> RestlessProject {
        maintenance_project(5, 0.35, 0.4, 0.95)
    }

    #[test]
    fn extreme_subsidies_pin_the_policy() {
        let p = maint();
        let all_passive = subsidy_policy(&p, 1e5);
        assert!(
            all_passive.iter().all(|&x| x),
            "huge subsidy must make every state passive"
        );
        let all_active = subsidy_policy(&p, -1e5);
        assert!(
            all_active.iter().all(|&x| !x),
            "hugely negative subsidy must make every state active"
        );
        // The expanded bounds bracket both regimes.
        let (lo, hi) = expanded_subsidy_bounds(&p);
        assert!(subsidy_policy(&p, hi).iter().all(|&x| x));
        assert!(subsidy_policy(&p, lo).iter().all(|&x| !x));
    }

    #[test]
    fn maintenance_project_is_indexable_and_indices_increase_with_wear() {
        let p = maint();
        assert!(is_indexable(&p, 25));
        let idx = whittle_indices(&p);
        // The more worn the machine, the more valuable a repair visit is, so
        // the Whittle index should (weakly) increase with the wear level,
        // except possibly at level 0 where repairing is pointless.
        for w in idx.windows(2).skip(1) {
            assert!(
                w[1] >= w[0] - 1e-6,
                "indices should increase with wear: {idx:?}"
            );
        }
        assert!(
            idx[4] > idx[1],
            "badly worn machines deserve repair priority: {idx:?}"
        );
    }

    #[test]
    fn relaxation_bound_upper_bounds_simulation() {
        let p = maint();
        let n = 12;
        let m = 4;
        let projects: Vec<RestlessProject> = (0..n).map(|_| p.clone()).collect();
        let bound = whittle_relaxation_bound(&projects, m);
        let bound_identical = n as f64 * relaxation_bound_identical(&p, m as f64 / n as f64);
        assert!(
            (bound - bound_identical).abs() < 1e-6,
            "{bound} vs {bound_identical}"
        );

        let indices = whittle_indices(&p);
        let policy = RestlessPolicy::WhittleIndex(vec![indices; n]);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let avg = simulate_restless(&projects, m, &policy, 30_000, &mut rng);
        assert!(
            avg <= bound + 0.05 * bound.abs() + 0.05,
            "simulated reward {avg} cannot exceed the relaxation bound {bound}"
        );
    }

    #[test]
    fn whittle_beats_myopic_and_random_on_maintenance() {
        let p = maint();
        let n = 10;
        let m = 3;
        let projects: Vec<RestlessProject> = (0..n).map(|_| p.clone()).collect();
        let indices = whittle_indices(&p);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let whittle = simulate_restless(
            &projects,
            m,
            &RestlessPolicy::WhittleIndex(vec![indices; n]),
            20_000,
            &mut rng,
        );
        let myopic = simulate_restless(&projects, m, &RestlessPolicy::Myopic, 20_000, &mut rng);
        let random = simulate_restless(&projects, m, &RestlessPolicy::Random, 20_000, &mut rng);
        assert!(whittle > myopic, "Whittle {whittle} vs myopic {myopic}");
        assert!(whittle > random, "Whittle {whittle} vs random {random}");
    }

    #[test]
    fn asymptotic_gap_shrinks() {
        // E10 shape: the per-project gap to the relaxation bound shrinks as
        // N grows with the activation fraction fixed.
        let p = maint();
        let points = asymptotic_sweep(&p, 0.3, &[5, 60], 30_000, 77);
        assert_eq!(points.len(), 2);
        assert!(
            points[1].relative_gap < points[0].relative_gap,
            "gap should shrink with N: {:?}",
            points
        );
        assert!(
            points[1].relative_gap < 0.1,
            "large-N gap should be small: {:?}",
            points[1]
        );
    }

    #[test]
    fn asymptotic_sweep_is_thread_count_invariant() {
        let p = maint();
        let run = |threads: usize| {
            ss_sim::pool::with_threads(threads, || {
                asymptotic_sweep(&p, 0.3, &[5, 10, 20], 5_000, 42)
            })
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.n_projects, b.n_projects);
            assert_eq!(a.m_active, b.m_active);
            assert_eq!(
                a.whittle_per_project.to_bits(),
                b.whittle_per_project.to_bits()
            );
            assert_eq!(a.bound_per_project.to_bits(), b.bound_per_project.to_bits());
            assert_eq!(a.relative_gap.to_bits(), b.relative_gap.to_bits());
        }
    }

    /// An `RngCore` whose `f64` draws are the largest representable value
    /// below 1 — the worst case for a CDF walk over a transition row.
    struct MaxRng;
    impl rand::RngCore for MaxRng {
        fn next_u32(&mut self) -> u32 {
            u32::MAX
        }
        fn next_u64(&mut self) -> u64 {
            u64::MAX
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            dest.fill(0xFF);
        }
    }

    #[test]
    fn sample_next_never_lands_on_zero_mass_states() {
        // Regression: a row whose probabilities sum to slightly under 1
        // (within the constructor's 1e-8 tolerance) and whose last entry has
        // zero mass.  The pre-fix CDF walk fell through on a near-1 uniform
        // draw and silently returned `row.last()` — the zero-probability
        // state 1.  Post-fix the constructor renormalises the row and the
        // walk skips zero-mass entries, so state 0 must always be drawn.
        let p = RestlessProject::new(
            vec![0.0, 0.0],
            vec![vec![(0, 1.0 - 1e-9), (1, 0.0)], vec![(1, 1.0)]],
            vec![0.0, 0.0],
            vec![vec![(0, 1.0)], vec![(1, 1.0)]],
        );
        let mut rng = MaxRng;
        for _ in 0..4 {
            assert_eq!(
                p.sample_next(0, true, &mut rng),
                0,
                "a zero-probability state must never be sampled"
            );
        }
        // And across ordinary seeded draws the zero-mass state never shows.
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        assert!((0..10_000).all(|_| p.sample_next(0, true, &mut rng) == 0));
    }

    #[test]
    fn constructor_clamps_tiny_negative_probabilities() {
        // Entries down to -1e-12 pass validation; they must be clamped to 0
        // so the sampler can never emit the (negative-mass) state.
        let p = RestlessProject::new(
            vec![0.0, 0.0],
            vec![vec![(0, 1.0 + 1e-13), (1, -1e-13)], vec![(1, 1.0)]],
            vec![0.0, 0.0],
            vec![vec![(0, 1.0)], vec![(1, 1.0)]],
        );
        assert!(p.active_transitions(0).iter().all(|&(_, q)| q >= 0.0));
        let total: f64 = p.active_transitions(0).iter().map(|&(_, q)| q).sum();
        assert!((total - 1.0).abs() < 1e-15, "row renormalised: {total}");
        let mut rng = MaxRng;
        assert_eq!(p.sample_next(0, true, &mut rng), 0);
    }

    /// A project whose state 0 is *never* passive: activity moves to the
    /// productive state 1 while passivity loops in place, so at every
    /// subsidy λ the active action at 0 reaches gain `λ + 1` against the
    /// passive gain `λ` — the no-crossing corner of the bisection.
    fn dominant_active_project() -> RestlessProject {
        RestlessProject::new(
            vec![0.0, 0.5],
            vec![vec![(1, 1.0)], vec![(1, 1.0)]],
            vec![0.0, 1.0],
            vec![vec![(0, 1.0)], vec![(1, 1.0)]],
        )
    }

    #[test]
    fn whittle_index_saturates_when_a_state_never_turns_passive() {
        // Regression: pre-fix, bisection on the never-passive state 0
        // converged onto the (hugely expanded) upper subsidy bound and
        // reported a finite garbage index of order 1e18.  Post-fix the
        // no-crossing case is detected up front and saturated to the
        // documented +INFINITY sentinel; the ordinary state 1 keeps a
        // finite index (its crossing is at λ = r_active - r_passive = -0.5).
        let p = dominant_active_project();
        let idx = whittle_indices(&p);
        assert!(
            idx[0].is_infinite() && idx[0] > 0.0,
            "never-passive state must saturate to +inf, got {}",
            idx[0]
        );
        assert!(
            idx[1].is_finite() && (idx[1] - (-0.5)).abs() < 1e-6,
            "state 1 index should be ~-0.5, got {}",
            idx[1]
        );
        // The sentinel orders correctly under the Whittle priority rule:
        // state 0 outranks every finite index.
        assert!(idx[0] > idx[1]);
        // The passive set still grows monotonically here ({} -> {1}), so the
        // project is indexable even though state 0 has no finite index.
        assert!(is_indexable(&p, 15));
    }

    #[test]
    fn restless_replications_are_thread_count_invariant_and_seed_pure() {
        let p = maint();
        let projects: Vec<RestlessProject> = (0..6).map(|_| p.clone()).collect();
        let policy = RestlessPolicy::WhittleIndex(vec![whittle_indices(&p); 6]);
        let run = |threads: usize, seed: u64| {
            ss_sim::pool::with_threads(threads, || {
                simulate_restless_replications(&projects, 2, &policy, 2_000, 8, seed)
            })
        };
        let serial = run(1, 42);
        let parallel = run(4, 42);
        assert_eq!(serial.len(), 8);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.to_bits(), b.to_bits(), "thread count changed a draw");
        }
        // Seed purity: same seed reproduces, different seeds differ.
        assert_eq!(run(2, 42), serial);
        assert_ne!(run(1, 43), serial);
        // Replications are genuinely independent streams.
        assert!(serial.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn lp_priority_indices_prefer_worn_states() {
        let p = maint();
        let idx = lp_priority_indices(&p, 0.3);
        assert_eq!(idx.len(), 5);
        // The relaxed solution repairs (activates) machines only after they
        // have worn, never fresh ones, so some worn level gets a strictly
        // larger activity share than level 0.  (Deeply worn levels may be
        // unreachable under the relaxed solution and then carry index 0 —
        // the known blind spot of purely primal occupancy indices.)
        assert!(
            idx[0] < 0.5,
            "fresh machines should rarely be repaired: {idx:?}"
        );
        let max_worn = idx[1..].iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            max_worn > idx[0],
            "worn machines should be repaired more often: {idx:?}"
        );
    }
}

//! Three independent algorithms for the Gittins index.
//!
//! The survey lists a "rich history of proofs" of the optimality of the
//! Gittins rule; correspondingly there are several routes to *computing*
//! the index.  Implementing three of them and checking they agree
//! (experiment E8) is the strongest internal-consistency test available:
//!
//! 1. [`gittins_indices_vwb`] — the largest-index-first algorithm of
//!    Varaiya–Walrand–Buyukkoc (1985): states are assigned indices in
//!    decreasing order; each step solves a small linear system for the
//!    expected discounted reward and discounted time accumulated while the
//!    project stays inside the already-assigned ("continuation") set.
//! 2. [`gittins_indices_restart`] — the restart-in-state formulation of
//!    Katehakis–Veinott (1987): `γ(i) = (1-β) V_i(i)` where `V_i` is the
//!    value of the MDP in which every state offers the extra action
//!    "restart the project in state `i`".
//! 3. [`gittins_indices_calibration`] — Whittle's retirement calibration:
//!    `γ(i) = (1-β) M_i` where `M_i` is the retirement reward that makes
//!    retiring and continuing equally attractive in state `i`; found by
//!    bisection over optimal-stopping problems (solved by `ss-mdp`).

use crate::project::BanditProject;
use ss_core::linalg::solve_dense;
use ss_mdp::stopping::{optimal_stopping, StoppingProblem};

/// Gittins indices by the Varaiya–Walrand–Buyukkoc largest-index-first
/// algorithm.  Returns one index per state.
pub fn gittins_indices_vwb(project: &BanditProject, discount: f64) -> Vec<f64> {
    assert!((0.0..1.0).contains(&discount), "discount must be in [0,1)");
    let k = project.num_states();
    let beta = discount;
    let mut index = vec![f64::NAN; k];
    let mut in_continuation: Vec<bool> = vec![false; k];

    for _round in 0..k {
        // Expected discounted reward (N) and discounted time (D) accumulated
        // from each continuation state until the project first leaves the
        // continuation set.
        let cont_states: Vec<usize> = (0..k).filter(|&i| in_continuation[i]).collect();
        let m = cont_states.len();
        let mut pos = vec![usize::MAX; k];
        for (idx, &s) in cont_states.iter().enumerate() {
            pos[s] = idx;
        }
        let (n_vec, d_vec) = if m == 0 {
            (Vec::new(), Vec::new())
        } else {
            // (I - beta P_SS) N_S = R_S ; (I - beta P_SS) D_S = 1.
            let mut a = vec![vec![0.0; m]; m];
            let mut br = vec![0.0; m];
            let bd = vec![1.0; m];
            for (row, &s) in cont_states.iter().enumerate() {
                a[row][row] = 1.0;
                for &(j, p) in project.transitions(s) {
                    if in_continuation[j] {
                        a[row][pos[j]] -= beta * p;
                    }
                }
                br[row] = project.reward(s);
            }
            let n_s = solve_dense(a.clone(), br);
            let d_s = solve_dense(a, bd);
            (n_s, d_s)
        };

        // Candidate ratio for every unassigned state.
        let mut best_state = usize::MAX;
        let mut best_ratio = f64::NEG_INFINITY;
        for i in 0..k {
            if in_continuation[i] {
                continue;
            }
            let mut num = project.reward(i);
            let mut den = 1.0;
            for &(j, p) in project.transitions(i) {
                if in_continuation[j] {
                    num += beta * p * n_vec[pos[j]];
                    den += beta * p * d_vec[pos[j]];
                }
            }
            let ratio = num / den;
            if ratio > best_ratio {
                best_ratio = ratio;
                best_state = i;
            }
        }
        index[best_state] = best_ratio;
        in_continuation[best_state] = true;
    }
    index
}

/// Gittins indices by the restart-in-state formulation: value iteration on
/// the MDP whose actions are "continue" and "restart in `i`".
pub fn gittins_indices_restart(project: &BanditProject, discount: f64) -> Vec<f64> {
    assert!((0.0..1.0).contains(&discount));
    let k = project.num_states();
    let beta = discount;
    let mut out = vec![0.0; k];
    for restart_state in 0..k {
        // Value iteration for V(s) = max(continue(s), restart), where
        // restart plays the continue-backup of `restart_state`.
        let mut v = vec![0.0f64; k];
        loop {
            let continue_backup = |s: usize, v: &[f64]| -> f64 {
                project.reward(s)
                    + beta
                        * project
                            .transitions(s)
                            .iter()
                            .map(|&(j, p)| p * v[j])
                            .sum::<f64>()
            };
            let restart_value = continue_backup(restart_state, &v);
            let mut residual = 0.0f64;
            let mut next = vec![0.0f64; k];
            for s in 0..k {
                let val = continue_backup(s, &v).max(restart_value);
                residual = residual.max((val - v[s]).abs());
                next[s] = val;
            }
            v = next;
            if residual < 1e-12 {
                break;
            }
        }
        out[restart_state] = (1.0 - beta) * v[restart_state];
    }
    out
}

/// Gittins indices by Whittle's retirement calibration: bisection on the
/// retirement reward `M`, using an optimal-stopping solve per evaluation.
pub fn gittins_indices_calibration(project: &BanditProject, discount: f64) -> Vec<f64> {
    assert!((0.0..1.0).contains(&discount));
    let k = project.num_states();
    let beta = discount;
    let r_max = project
        .rewards()
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    let r_min = project
        .rewards()
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);

    let continues_at = |state: usize, m_retire: f64| -> bool {
        // Does the optimal policy prefer continuing over retiring at `state`
        // when the retirement reward is `m_retire`?
        let problem = StoppingProblem {
            continue_reward: project.rewards().to_vec(),
            transitions: (0..k).map(|s| project.transitions(s).to_vec()).collect(),
            stop_reward: vec![m_retire; k],
            discount: beta,
        };
        let sol = optimal_stopping(&problem);
        !sol.stop[state]
    };

    (0..k)
        .map(|state| {
            // gamma in [r_min, r_max]; M = gamma / (1 - beta).
            let mut lo = r_min - 1e-9;
            let mut hi = r_max + 1e-9;
            for _ in 0..60 {
                let mid = 0.5 * (lo + hi);
                if continues_at(state, mid / (1.0 - beta)) {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            0.5 * (lo + hi)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::random_project;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn assert_vec_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!(
                (x - y).abs() < tol,
                "{x} vs {y} (tol {tol})\n a={a:?}\n b={b:?}"
            );
        }
    }

    #[test]
    fn constant_reward_project_has_index_equal_to_reward() {
        // Absorbing single state with reward 0.7: index must be 0.7 under
        // the rate-normalised convention, for every algorithm.
        let p = BanditProject::new(vec![0.7], vec![vec![(0, 1.0)]]);
        for beta in [0.5, 0.9, 0.99] {
            assert!((gittins_indices_vwb(&p, beta)[0] - 0.7).abs() < 1e-9);
            assert!((gittins_indices_restart(&p, beta)[0] - 0.7).abs() < 1e-9);
            assert!((gittins_indices_calibration(&p, beta)[0] - 0.7).abs() < 1e-6);
        }
    }

    #[test]
    fn deteriorating_project_indices_are_monotone() {
        // A project that moves irreversibly from a good state (reward 1) to
        // a bad absorbing state (reward 0).  The good state's index lies
        // strictly between the two rewards and exceeds the bad state's.
        let p = BanditProject::new(
            vec![1.0, 0.0],
            vec![vec![(0, 0.5), (1, 0.5)], vec![(1, 1.0)]],
        );
        let beta = 0.9;
        let idx = gittins_indices_vwb(&p, beta);
        assert!(idx[0] > idx[1]);
        assert!(idx[0] < 1.0 + 1e-12 && idx[0] > 0.5);
        assert!((idx[1] - 0.0).abs() < 1e-9);
        // The top index equals the maximal reward achievable from the top
        // state with optimal stopping; here stopping immediately is optimal
        // because continuation only drags the average down, so idx[0] = 1.0.
        assert!((idx[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn improving_project_index_exceeds_immediate_reward() {
        // State 0 pays nothing but leads to the absorbing jackpot state 1
        // (reward 1).  Its Gittins index must exceed its immediate reward 0
        // and approach 1 as beta -> 1 (the future dominates the ratio).
        let p = BanditProject::new(vec![0.0, 1.0], vec![vec![(1, 1.0)], vec![(1, 1.0)]]);
        let idx_low = gittins_indices_vwb(&p, 0.5)[0];
        let idx_high = gittins_indices_vwb(&p, 0.99)[0];
        assert!(idx_low > 0.0);
        assert!(idx_high > idx_low, "index should grow with patience");
        assert!(idx_high > 0.97);
        // Exact value: sup over stopping; continuing forever gives
        // (beta/(1-beta)) / (1/(1-beta)) = beta.
        assert!((idx_low - 0.5).abs() < 1e-9);
        assert!((idx_high - 0.99).abs() < 1e-9);
    }

    #[test]
    fn three_methods_agree_on_random_projects() {
        let mut rng = ChaCha8Rng::seed_from_u64(2024);
        for trial in 0..8 {
            let k = 3 + (trial % 4);
            let p = random_project(k, &mut rng);
            for &beta in &[0.7, 0.9] {
                let vwb = gittins_indices_vwb(&p, beta);
                let restart = gittins_indices_restart(&p, beta);
                let calib = gittins_indices_calibration(&p, beta);
                assert_vec_close(&vwb, &restart, 1e-6);
                assert_vec_close(&vwb, &calib, 1e-5);
            }
        }
    }

    #[test]
    fn indices_are_bounded_by_reward_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let p = random_project(6, &mut rng);
        let idx = gittins_indices_vwb(&p, 0.95);
        let r_max = p
            .rewards()
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let r_min = p.rewards().iter().cloned().fold(f64::INFINITY, f64::min);
        for &g in &idx {
            assert!(g <= r_max + 1e-9 && g >= r_min - 1e-9);
        }
        // The state with the maximal reward always has index exactly r_max.
        let arg_max = p
            .rewards()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!((idx[arg_max] - r_max).abs() < 1e-9);
    }
}

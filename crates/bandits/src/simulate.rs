//! Monte-Carlo roll-outs of multi-armed bandit policies.
//!
//! The exact joint-state DP in [`crate::exact`] only scales to a handful of
//! projects; the simulator here evaluates index policies on larger bandits
//! (and provides an independent check of the exact values on small ones).

use crate::exact::MultiArmedBandit;
use crate::gittins::gittins_indices_vwb;
use rand::Rng;

/// A stationary bandit policy: given the per-project states, choose which
/// project to engage.
pub trait BanditPolicy {
    /// Name used in comparison tables.
    fn name(&self) -> &str;
    /// Choose a project given the current per-project states.
    fn choose(&self, states: &[usize]) -> usize;
}

/// The Gittins index rule (indices precomputed per project).
pub struct GittinsRule {
    indices: Vec<Vec<f64>>,
}

impl GittinsRule {
    /// Precompute the indices of every project of `mab`.
    pub fn new(mab: &MultiArmedBandit) -> Self {
        let indices = mab
            .projects
            .iter()
            .map(|p| gittins_indices_vwb(p, mab.discount))
            .collect();
        Self { indices }
    }
}

impl BanditPolicy for GittinsRule {
    fn name(&self) -> &str {
        "Gittins"
    }
    fn choose(&self, states: &[usize]) -> usize {
        let mut best = 0usize;
        let mut best_val = f64::NEG_INFINITY;
        for (a, &s) in states.iter().enumerate() {
            let v = self.indices[a][s];
            if v > best_val {
                best_val = v;
                best = a;
            }
        }
        best
    }
}

/// The myopic rule: engage the project with the largest immediate reward.
pub struct MyopicRule {
    rewards: Vec<Vec<f64>>,
}

impl MyopicRule {
    /// Capture the reward tables of `mab`.
    pub fn new(mab: &MultiArmedBandit) -> Self {
        Self {
            rewards: mab.projects.iter().map(|p| p.rewards().to_vec()).collect(),
        }
    }
}

impl BanditPolicy for MyopicRule {
    fn name(&self) -> &str {
        "myopic"
    }
    fn choose(&self, states: &[usize]) -> usize {
        let mut best = 0usize;
        let mut best_val = f64::NEG_INFINITY;
        for (a, &s) in states.iter().enumerate() {
            let v = self.rewards[a][s];
            if v > best_val {
                best_val = v;
                best = a;
            }
        }
        best
    }
}

/// Round-robin: engage projects cyclically regardless of state (a
/// deliberately state-blind baseline).
pub struct RoundRobinRule {
    counter: std::cell::Cell<usize>,
    num_projects: usize,
}

impl RoundRobinRule {
    /// Create for `num_projects` projects.
    pub fn new(num_projects: usize) -> Self {
        Self {
            counter: std::cell::Cell::new(0),
            num_projects,
        }
    }
}

impl BanditPolicy for RoundRobinRule {
    fn name(&self) -> &str {
        "round-robin"
    }
    fn choose(&self, _states: &[usize]) -> usize {
        let c = self.counter.get();
        self.counter.set(c + 1);
        c % self.num_projects
    }
}

/// Simulate one discounted roll-out of `policy` from `initial_states`,
/// truncating the horizon once `discount^t` falls below `1e-12`.
pub fn rollout_discounted<R: Rng + ?Sized>(
    mab: &MultiArmedBandit,
    policy: &dyn BanditPolicy,
    initial_states: &[usize],
    rng: &mut R,
) -> f64 {
    let mut states = initial_states.to_vec();
    let beta = mab.discount;
    let horizon = ((1e-12f64).ln() / beta.ln()).ceil() as usize;
    let mut total = 0.0;
    let mut discount_factor = 1.0;
    for _ in 0..horizon {
        let a = policy.choose(&states);
        let s = states[a];
        total += discount_factor * mab.projects[a].reward(s);
        states[a] = mab.projects[a].sample_next(s, rng);
        discount_factor *= beta;
    }
    total
}

/// Average `replications` roll-outs.
pub fn estimate_policy_value<R: Rng + ?Sized>(
    mab: &MultiArmedBandit,
    policy: &dyn BanditPolicy,
    initial_states: &[usize],
    replications: usize,
    rng: &mut R,
) -> f64 {
    assert!(replications > 0);
    (0..replications)
        .map(|_| rollout_discounted(mab, policy, initial_states, rng))
        .sum::<f64>()
        / replications as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::random_project;
    use crate::project::BanditProject;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn rollout_matches_exact_policy_evaluation() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mab = MultiArmedBandit::new(
            vec![random_project(3, &mut rng), random_project(3, &mut rng)],
            0.85,
        );
        let init = vec![0usize, 0];
        let exact = mab.gittins_policy_value(&init);
        let policy = GittinsRule::new(&mab);
        let est = estimate_policy_value(&mab, &policy, &init, 4000, &mut rng);
        assert!(
            (est - exact).abs() / exact.abs().max(1e-9) < 0.05,
            "simulated {est} vs exact {exact}"
        );
    }

    #[test]
    fn gittins_dominates_baselines_in_simulation() {
        // Two-project instance where exploration matters.
        let a = BanditProject::new(vec![0.4], vec![vec![(0, 1.0)]]);
        let b = BanditProject::new(vec![0.0, 1.0], vec![vec![(1, 1.0)], vec![(1, 1.0)]]);
        let mab = MultiArmedBandit::new(vec![a, b], 0.9);
        let init = vec![0usize, 0];
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let gittins = estimate_policy_value(&mab, &GittinsRule::new(&mab), &init, 2000, &mut rng);
        let myopic = estimate_policy_value(&mab, &MyopicRule::new(&mab), &init, 2000, &mut rng);
        let rr = estimate_policy_value(&mab, &RoundRobinRule::new(2), &init, 2000, &mut rng);
        assert!(gittins > myopic, "Gittins {gittins} vs myopic {myopic}");
        assert!(gittins > rr, "Gittins {gittins} vs round robin {rr}");
    }

    #[test]
    fn round_robin_cycles() {
        let rr = RoundRobinRule::new(3);
        let states = vec![0usize, 0, 0];
        assert_eq!(rr.choose(&states), 0);
        assert_eq!(rr.choose(&states), 1);
        assert_eq!(rr.choose(&states), 2);
        assert_eq!(rr.choose(&states), 0);
    }
}

//! Whittle-index adapter onto the common fabric [`Discipline`] trait.
//!
//! Each job class is modelled as a restless project whose state is its
//! queue length, truncated at `max_queue`: "active" means the server works
//! on the class (departures at rate µ), "passive" means it does not;
//! arrivals (rate λ) happen either way.  The index of a state is the
//! passivity subsidy making active and passive equally attractive there —
//! Whittle's index, in its original **discounted** formulation.
//!
//! **Why discounted, not average.**  Under the average criterion this
//! project degenerates on a truncated chain: a passive state cannot hold
//! the queue down, so an interior threshold merely shifts the whole
//! recurrent set upward, every interior threshold is dominated, and the
//! subsidy problem block-switches from "always serve" straight to "never
//! serve" — the per-state indices collapse to nearly identical values
//! determined by the truncation boundary (gain comparisons are blind to
//! transients).  Discounting weighs exactly the transient passage that
//! distinguishes the states, so the discounted index is finite, strictly
//! increasing in the backlog for convex costs, and truncation-robust.
//!
//! **Why a convex holding cost.**  With cost linear in the queue length
//! the Whittle rule carries (almost) no backlog information — it is the cµ
//! rule in disguise.  The adapter prices backlog by the discrete-convex
//! holding cost `C(s) = c · s(s+1)/2`, whose marginal is `c · s`, so the
//! index behaves like "cµ scaled by backlog": genuinely dynamic where cµ
//! and Gittins-at-zero are static.
//!
//! **Computation.**  Optimal subsidy-problem policies here are thresholds
//! (serve iff the queue length is at least `T`).  For a fixed threshold
//! the discounted cost-to-go `u_T` and discounted idle-time `w_T` each
//! solve a tridiagonal linear system (the chain is birth–death plus
//! self-loops), and the value under subsidy `w` is `−u_T + w·w_T`, affine
//! in `w`.  The index of state `s` is the fair charge at which thresholds
//! `s` and `s+1` exchange optimality, evaluated where they disagree:
//!
//! ```text
//! W(s) = (u_{T=s+1}(s) − u_{T=s}(s)) / (w_{T=s+1}(s) − w_{T=s}(s))
//! ```
//!
//! Two Thomas solves per threshold give the whole table in `O(n²)` — no
//! value iteration, no bisection.  All classes share one uniformization
//! clock (`Λ = max_j (λ_j + µ_j)`) and one per-slot discount
//! [`WHITTLE_DISCOUNT`], so the indices are comparable across classes.

use std::collections::HashMap;

use ss_core::discipline::Discipline;
use ss_core::job::JobClass;

/// Per-slot discount factor of the subsidy problems (slots tick at the
/// shared uniformization rate): the effective lookahead is
/// `1/(1−β) = 100` slots, long against the queue dynamics but far from
/// the degenerate average-criterion limit.
pub const WHITTLE_DISCOUNT: f64 = 0.99;

/// The Whittle rule as a fabric discipline: per-class birth–death restless
/// projects in the queue length, served highest-index-first.
#[derive(Debug, Clone)]
pub struct WhittleQueueDiscipline {
    max_queue: usize,
    /// `tables[class][queue_len]`, queue lengths clamped at `max_queue`.
    tables: Vec<Vec<f64>>,
}

/// The shared uniformization clock of a class set's Whittle projects:
/// `Λ = max_j (λ_j + µ_j)`.  Every per-class birth–death project is scaled
/// by the same clock so the resulting indices are comparable across
/// classes; exposed so table-serving layers (`ss-index`) can reproduce the
/// per-class `(a, d)` slot probabilities bit-for-bit.
pub fn whittle_uniformization_clock(classes: &[JobClass]) -> f64 {
    let clock = classes
        .iter()
        .map(|c| c.arrival_rate + c.service_rate())
        .fold(0.0, f64::max);
    assert!(clock > 0.0, "classes must have positive rates");
    clock
}

impl WhittleQueueDiscipline {
    /// Build index tables for the given classes, truncating each class's
    /// queue-length chain at `max_queue` (states `0..=max_queue`).
    pub fn new(classes: &[JobClass], max_queue: usize) -> Self {
        assert!(!classes.is_empty(), "need >= 1 class");
        assert!(max_queue >= 2, "truncation below 2 states is degenerate");
        let clock = whittle_uniformization_clock(classes);
        let mut cache = WhittleSolveCache::default();
        let tables = classes
            .iter()
            .map(|c| {
                let a = c.arrival_rate / clock;
                let d = c.service_rate() / clock;
                let idle = cache.idle_solves(a, d, max_queue, WHITTLE_DISCOUNT);
                let mut table = discounted_whittle_table_warm(
                    a,
                    d,
                    c.holding_cost,
                    max_queue,
                    WHITTLE_DISCOUNT,
                    idle,
                );
                // The empty state never competes for service: pin it to the
                // bottom so an empty class can never outrank a backed-up one.
                table[0] = f64::NEG_INFINITY;
                table
            })
            .collect();
        Self { max_queue, tables }
    }

    /// The full index table of one class, by queue length `0..=max_queue`.
    pub fn table(&self, class: usize) -> &[f64] {
        &self.tables[class]
    }
}

impl Discipline for WhittleQueueDiscipline {
    fn name(&self) -> &str {
        "whittle"
    }

    fn class_index(&self, class: usize, waiting: usize) -> f64 {
        self.tables[class][waiting.min(self.max_queue)]
    }
}

/// Solve the tridiagonal system `(I − β P_T) v = r` by the Thomas
/// algorithm, where `P_T` is the threshold-`T` policy's transition matrix
/// on states `0..=n`: active states (`s ≥ t`) step down with probability
/// `d`, every state below `n` steps up with probability `a`, and the rest
/// self-loops.  The matrix is strictly diagonally dominant (row sums of
/// `βP` are `β < 1`), so the elimination is stable and never divides by
/// zero.
fn solve_threshold_system(a: f64, d: f64, t: usize, n: usize, beta: f64, r: &[f64]) -> Vec<f64> {
    let k = n + 1;
    // Release-mode check: a mis-sized reward vector would read stale
    // rows of the elimination arrays and solve the wrong system.
    assert_eq!(r.len(), k, "reward vector length must be n + 1");
    let mut diag = vec![0.0; k];
    let mut sub = vec![0.0; k]; // sub[s] multiplies v[s-1] in row s
    let mut sup = vec![0.0; k]; // sup[s] multiplies v[s+1] in row s
    for s in 0..k {
        let p_down = if s >= t && s > 0 { d } else { 0.0 };
        let p_up = if s < n { a } else { 0.0 };
        let p_self = 1.0 - p_down - p_up;
        sub[s] = -beta * p_down;
        sup[s] = -beta * p_up;
        diag[s] = 1.0 - beta * p_self;
    }
    // Forward elimination.
    let mut c_star = vec![0.0; k];
    let mut d_star = vec![0.0; k];
    c_star[0] = sup[0] / diag[0];
    d_star[0] = r[0] / diag[0];
    for s in 1..k {
        let m = diag[s] - sub[s] * c_star[s - 1];
        c_star[s] = sup[s] / m;
        d_star[s] = (r[s] - sub[s] * d_star[s - 1]) / m;
    }
    // Back substitution.
    let mut v = vec![0.0; k];
    v[k - 1] = d_star[k - 1];
    for s in (0..k - 1).rev() {
        v[s] = d_star[s] - c_star[s] * v[s + 1];
    }
    v
}

/// The cost-independent half of one class's Whittle solve: the discounted
/// idle-time-to-go vectors `w_T` of every threshold policy `T = 1..=n+1`
/// on the uniformized chain `(a, d)` truncated at `n`.
///
/// The subsidy-problem value under charge `w` is `−u_T + w·w_T`, and only
/// the `u_T` half depends on the holding cost — so when a scenario's costs
/// drift but its arrival/service rates do not, the `w_T` solves converge to
/// *exactly* the same vectors and can be reused verbatim.  This struct is
/// that reusable state; [`discounted_whittle_table_warm`] consumes it and
/// is bit-identical to a from-scratch [`discounted_whittle_table`] build
/// (same Thomas solves, same fair-charge arithmetic, merely hoisted).
#[derive(Debug, Clone)]
pub struct WhittleIdleSolves {
    a: f64,
    d: f64,
    n: usize,
    beta: f64,
    /// `solves[t - 1]` is `w_T` for threshold `t`, `t = 1..=n+1`.
    solves: Vec<Vec<f64>>,
}

impl WhittleIdleSolves {
    /// Run the `n + 1` idle-time Thomas solves of chain `(a, d, n, beta)`.
    pub fn new(a: f64, d: f64, n: usize, beta: f64) -> Self {
        check_uniformized(a, d, beta);
        let k = n + 1;
        let solves = (1..=n + 1)
            .map(|t| {
                let idle: Vec<f64> = (0..k).map(|s| f64::from(u8::from(s < t))).collect();
                solve_threshold_system(a, d, t, n, beta, &idle)
            })
            .collect();
        Self {
            a,
            d,
            n,
            beta,
            solves,
        }
    }

    /// Whether this cache entry is exactly (bit-for-bit) the chain
    /// `(a, d, n, beta)` — the reuse precondition.
    pub fn matches(&self, a: f64, d: f64, n: usize, beta: f64) -> bool {
        self.a.to_bits() == a.to_bits()
            && self.d.to_bits() == d.to_bits()
            && self.n == n
            && self.beta.to_bits() == beta.to_bits()
    }
}

/// Keyed store of [`WhittleIdleSolves`], the warm-start state a serving
/// layer keeps across scenario-parameter drifts.  Keys are the raw bits of
/// `(a, d, n, beta)`, so a hit can only ever return solves of the exact
/// chain requested — there is no tolerance and therefore no way for a
/// "close" chain to contaminate a rebuild.
#[derive(Debug, Default)]
pub struct WhittleSolveCache {
    entries: HashMap<(u64, u64, usize, u64), WhittleIdleSolves>,
    /// Idle-solve bundles served from cache.
    pub hits: u64,
    /// Idle-solve bundles computed fresh.
    pub misses: u64,
}

impl WhittleSolveCache {
    /// The idle solves of chain `(a, d, n, beta)`, computed on first use
    /// and reused (bit-identically) afterwards.
    pub fn idle_solves(&mut self, a: f64, d: f64, n: usize, beta: f64) -> &WhittleIdleSolves {
        let key = (a.to_bits(), d.to_bits(), n, beta.to_bits());
        match self.entries.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.hits += 1;
                e.into_mut()
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                self.misses += 1;
                e.insert(WhittleIdleSolves::new(a, d, n, beta))
            }
        }
    }
}

fn check_uniformized(a: f64, d: f64, beta: f64) {
    assert!(
        a > 0.0 && d > 0.0 && a + d <= 1.0 + 1e-12,
        "need a uniformized chain"
    );
    assert!((0.0..1.0).contains(&beta));
}

/// Discounted Whittle indices of the truncated birth–death service-control
/// project (`a` = per-slot arrival probability, `d` = per-slot service
/// probability, holding cost `c · s(s+1)/2` per slot) for states `0..=n`.
/// State 0 gets index 0 — callers that never serve empty classes overwrite
/// it.  The table is ironed to be nondecreasing, a no-op for this convex
/// cost away from floating-point dust.
pub fn discounted_whittle_table(
    a: f64,
    d: f64,
    holding_cost: f64,
    n: usize,
    beta: f64,
) -> Vec<f64> {
    let idle = WhittleIdleSolves::new(a, d, n, beta);
    discounted_whittle_table_warm(a, d, holding_cost, n, beta, &idle)
}

/// [`discounted_whittle_table`] with the cost-independent idle solves
/// supplied by the caller (warm start): only the cost-to-go half is solved
/// here, halving the Thomas work of a rebuild whose rates did not drift.
///
/// The result is bit-identical to the cold path — `idle` must be the
/// solves of exactly this chain (hard error otherwise), the cost solves are
/// the same calls the cold path makes, and the fair-charge differencing
/// runs in the same order on the same values.
///
/// ## Saturation / sentinel contract (release-mode hardened)
///
/// Every returned entry is a finite, nondecreasing index: the fair-charge
/// denominator `dw` is checked `> 0` and the entries are checked non-NaN
/// with release-mode asserts, so a degenerate chain can never leak a NaN
/// or an accidental ±∞ sentinel into a serving table.  (The only infinity
/// a discipline table carries is the *deliberate* `-∞` pinned onto the
/// empty state by [`WhittleQueueDiscipline::new`].)
pub fn discounted_whittle_table_warm(
    a: f64,
    d: f64,
    holding_cost: f64,
    n: usize,
    beta: f64,
    idle: &WhittleIdleSolves,
) -> Vec<f64> {
    check_uniformized(a, d, beta);
    assert!(holding_cost > 0.0);
    assert!(
        idle.matches(a, d, n, beta),
        "idle solves are for a different chain than (a={a}, d={d}, n={n}, beta={beta})"
    );
    let k = n + 1;
    let cost: Vec<f64> = (0..k)
        .map(|s| holding_cost * (s * (s + 1)) as f64 / 2.0)
        .collect();
    // u[t]: discounted cost-to-go of threshold t = 1..=n+1 (t = n+1 never
    // serves); the idle-time-to-go half comes precomputed from `idle`.
    let evaluate = |t: usize| solve_threshold_system(a, d, t, n, beta, &cost);
    let mut table = vec![0.0];
    let mut running_max = f64::NEG_INFINITY;
    let mut lower = evaluate(1);
    for s in 1..=n {
        let upper = evaluate(s + 1);
        let du = upper[s] - lower[s];
        let dw = idle.solves[s][s] - idle.solves[s - 1][s];
        assert!(dw > 0.0, "raising the threshold idles state {s} more");
        let index = du / dw;
        assert!(!index.is_nan(), "NaN Whittle index at state {s}");
        running_max = running_max.max(index);
        table.push(running_max);
        lower = upper;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_distributions::{dyn_dist, Exponential};

    fn class(id: usize, lambda: f64, mean_service: f64, cost: f64) -> JobClass {
        JobClass::new(
            id,
            lambda,
            dyn_dist(Exponential::with_mean(mean_service)),
            cost,
        )
    }

    /// Fixed-point policy evaluation (v ← r + βPv) as an oracle for the
    /// Thomas solve.
    fn iterate_threshold_system(
        a: f64,
        d: f64,
        t: usize,
        n: usize,
        beta: f64,
        r: &[f64],
    ) -> Vec<f64> {
        let k = n + 1;
        let mut v = vec![0.0; k];
        for _ in 0..200_000 {
            let mut next = vec![0.0; k];
            let mut delta = 0.0f64;
            for s in 0..k {
                let p_down = if s >= t && s > 0 { d } else { 0.0 };
                let p_up = if s < n { a } else { 0.0 };
                let p_self = 1.0 - p_down - p_up;
                let mut x = r[s] + beta * p_self * v[s];
                if s > 0 {
                    x += beta * p_down * v[s - 1];
                }
                if s < n {
                    x += beta * p_up * v[s + 1];
                }
                next[s] = x;
                delta = delta.max((x - v[s]).abs());
            }
            v = next;
            if delta < 1e-13 {
                break;
            }
        }
        v
    }

    #[test]
    fn thomas_solve_matches_fixed_point_iteration() {
        let (a, d, n, beta) = (0.3, 0.6, 8, 0.97);
        let cost: Vec<f64> = (0..=n).map(|s| (s * (s + 1)) as f64 / 2.0).collect();
        for t in [1, 4, n + 1] {
            let direct = solve_threshold_system(a, d, t, n, beta, &cost);
            let iterated = iterate_threshold_system(a, d, t, n, beta, &cost);
            for s in 0..=n {
                assert!(
                    (direct[s] - iterated[s]).abs() < 1e-8,
                    "threshold {t}, state {s}: {} vs {}",
                    direct[s],
                    iterated[s]
                );
            }
        }
    }

    #[test]
    fn index_increases_with_queue_length() {
        let d = WhittleQueueDiscipline::new(&[class(0, 0.4, 1.0, 1.0)], 25);
        let t = d.table(0);
        // Strictly increasing in the bulk; the last few states may plateau
        // because the truncation clips arrivals there (and the table is
        // ironed), but must never decrease.
        for w in 1..t.len() - 1 {
            let strict = w + 1 < t.len() - 8;
            assert!(
                if strict {
                    t[w + 1] > t[w]
                } else {
                    t[w + 1] >= t[w]
                },
                "whittle index not increasing at queue length {w}: {} then {}",
                t[w],
                t[w + 1]
            );
        }
    }

    #[test]
    fn index_scales_linearly_in_the_holding_cost() {
        let t1 = discounted_whittle_table(0.25, 0.5, 1.0, 10, 0.99);
        let t3 = discounted_whittle_table(0.25, 0.5, 3.0, 10, 0.99);
        for s in 1..=10 {
            assert!(
                (t3[s] - 3.0 * t1[s]).abs() < 1e-9 * t3[s].abs(),
                "state {s}: {} vs 3x{}",
                t3[s],
                t1[s]
            );
        }
    }

    #[test]
    fn costlier_class_outranks_cheaper_at_equal_backlog() {
        let classes = [class(0, 0.3, 1.0, 1.0), class(1, 0.3, 1.0, 4.0)];
        let d = WhittleQueueDiscipline::new(&classes, 10);
        for w in 1..=6 {
            assert!(
                d.class_index(1, w) > d.class_index(0, w),
                "cheap class outranked costly one at backlog {w}"
            );
        }
    }

    #[test]
    fn empty_class_never_competes() {
        let d = WhittleQueueDiscipline::new(&[class(0, 0.3, 1.0, 1.0)], 8);
        assert_eq!(d.class_index(0, 0), f64::NEG_INFINITY);
        assert!(d.class_index(0, 1) > d.class_index(0, 0));
    }

    #[test]
    fn queue_lengths_beyond_truncation_clamp() {
        let d = WhittleQueueDiscipline::new(&[class(0, 0.3, 1.0, 1.0)], 6);
        assert_eq!(
            d.class_index(0, 6).to_bits(),
            d.class_index(0, 600).to_bits()
        );
        assert_eq!(d.name(), "whittle");
    }

    /// Saturation-audit pin: at and beyond the truncation boundary the
    /// clamped region returns exactly the boundary index (no garbage read,
    /// no sentinel); the only infinity in a table is the deliberate `-∞`
    /// on the empty state.
    #[test]
    fn tabulated_indices_are_finite_and_sentinel_free() {
        let classes = [class(0, 0.3, 1.0, 1.0), class(1, 0.5, 0.5, 4.0)];
        let d = WhittleQueueDiscipline::new(&classes, 12);
        for (j, _) in classes.iter().enumerate() {
            assert_eq!(d.class_index(j, 0), f64::NEG_INFINITY);
            for w in 1..=12 {
                assert!(
                    d.class_index(j, w).is_finite(),
                    "class {j} backlog {w} leaked a non-finite index"
                );
            }
            let boundary = d.class_index(j, 12).to_bits();
            for w in [13usize, 40, 1_000, usize::MAX] {
                assert_eq!(
                    d.class_index(j, w).to_bits(),
                    boundary,
                    "class {j} backlog {w} did not clamp to the boundary index"
                );
            }
        }
    }

    /// The warm-start path must be bit-identical to the cold path — both
    /// with the idle solves it was built from and across a holding-cost
    /// drift (the cost-independent solves are exactly reusable).
    #[test]
    fn warm_start_is_bit_identical_to_cold() {
        let (a, d, n, beta) = (0.25, 0.5, 15, 0.99);
        let idle = WhittleIdleSolves::new(a, d, n, beta);
        for cost in [1.0, 2.5, 0.125] {
            let cold = discounted_whittle_table(a, d, cost, n, beta);
            let warm = discounted_whittle_table_warm(a, d, cost, n, beta, &idle);
            for s in 0..=n {
                assert_eq!(
                    cold[s].to_bits(),
                    warm[s].to_bits(),
                    "cost {cost}, state {s}: warm diverged from cold"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "different chain")]
    fn idle_solves_for_a_different_chain_are_rejected() {
        let idle = WhittleIdleSolves::new(0.25, 0.5, 10, 0.99);
        discounted_whittle_table_warm(0.3, 0.5, 1.0, 10, 0.99, &idle);
    }

    #[test]
    fn solve_cache_reuses_identical_chains() {
        let mut cache = WhittleSolveCache::default();
        cache.idle_solves(0.25, 0.5, 10, 0.99);
        cache.idle_solves(0.25, 0.5, 10, 0.99);
        cache.idle_solves(0.30, 0.5, 10, 0.99);
        assert_eq!((cache.hits, cache.misses), (1, 2));
        // A discipline over classes sharing one (a, d) chain hits the
        // cache internally; different chains never alias.
        let d = WhittleQueueDiscipline::new(&[class(0, 0.3, 1.0, 1.0), class(1, 0.3, 1.0, 5.0)], 8);
        assert!(d.class_index(1, 3) > d.class_index(0, 3));
    }
}

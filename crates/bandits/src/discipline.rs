//! Whittle-index adapter onto the common fabric [`Discipline`] trait.
//!
//! Each job class is modelled as a restless project whose state is its
//! queue length, truncated at `max_queue`: "active" means the server works
//! on the class (departures at rate µ), "passive" means it does not;
//! arrivals (rate λ) happen either way.  The index of a state is the
//! passivity subsidy making active and passive equally attractive there —
//! Whittle's index, in its original **discounted** formulation.
//!
//! **Why discounted, not average.**  Under the average criterion this
//! project degenerates on a truncated chain: a passive state cannot hold
//! the queue down, so an interior threshold merely shifts the whole
//! recurrent set upward, every interior threshold is dominated, and the
//! subsidy problem block-switches from "always serve" straight to "never
//! serve" — the per-state indices collapse to nearly identical values
//! determined by the truncation boundary (gain comparisons are blind to
//! transients).  Discounting weighs exactly the transient passage that
//! distinguishes the states, so the discounted index is finite, strictly
//! increasing in the backlog for convex costs, and truncation-robust.
//!
//! **Why a convex holding cost.**  With cost linear in the queue length
//! the Whittle rule carries (almost) no backlog information — it is the cµ
//! rule in disguise.  The adapter prices backlog by the discrete-convex
//! holding cost `C(s) = c · s(s+1)/2`, whose marginal is `c · s`, so the
//! index behaves like "cµ scaled by backlog": genuinely dynamic where cµ
//! and Gittins-at-zero are static.
//!
//! **Computation.**  Optimal subsidy-problem policies here are thresholds
//! (serve iff the queue length is at least `T`).  For a fixed threshold
//! the discounted cost-to-go `u_T` and discounted idle-time `w_T` each
//! solve a tridiagonal linear system (the chain is birth–death plus
//! self-loops), and the value under subsidy `w` is `−u_T + w·w_T`, affine
//! in `w`.  The index of state `s` is the fair charge at which thresholds
//! `s` and `s+1` exchange optimality, evaluated where they disagree:
//!
//! ```text
//! W(s) = (u_{T=s+1}(s) − u_{T=s}(s)) / (w_{T=s+1}(s) − w_{T=s}(s))
//! ```
//!
//! Two Thomas solves per threshold give the whole table in `O(n²)` — no
//! value iteration, no bisection.  All classes share one uniformization
//! clock (`Λ = max_j (λ_j + µ_j)`) and one per-slot discount
//! [`WHITTLE_DISCOUNT`], so the indices are comparable across classes.

use ss_core::discipline::Discipline;
use ss_core::job::JobClass;

/// Per-slot discount factor of the subsidy problems (slots tick at the
/// shared uniformization rate): the effective lookahead is
/// `1/(1−β) = 100` slots, long against the queue dynamics but far from
/// the degenerate average-criterion limit.
pub const WHITTLE_DISCOUNT: f64 = 0.99;

/// The Whittle rule as a fabric discipline: per-class birth–death restless
/// projects in the queue length, served highest-index-first.
#[derive(Debug, Clone)]
pub struct WhittleQueueDiscipline {
    max_queue: usize,
    /// `tables[class][queue_len]`, queue lengths clamped at `max_queue`.
    tables: Vec<Vec<f64>>,
}

impl WhittleQueueDiscipline {
    /// Build index tables for the given classes, truncating each class's
    /// queue-length chain at `max_queue` (states `0..=max_queue`).
    pub fn new(classes: &[JobClass], max_queue: usize) -> Self {
        assert!(!classes.is_empty(), "need >= 1 class");
        assert!(max_queue >= 2, "truncation below 2 states is degenerate");
        let clock = classes
            .iter()
            .map(|c| c.arrival_rate + c.service_rate())
            .fold(0.0, f64::max);
        assert!(clock > 0.0, "classes must have positive rates");
        let tables = classes
            .iter()
            .map(|c| {
                let mut table = discounted_whittle_table(
                    c.arrival_rate / clock,
                    c.service_rate() / clock,
                    c.holding_cost,
                    max_queue,
                    WHITTLE_DISCOUNT,
                );
                // The empty state never competes for service: pin it to the
                // bottom so an empty class can never outrank a backed-up one.
                table[0] = f64::NEG_INFINITY;
                table
            })
            .collect();
        Self { max_queue, tables }
    }

    /// The full index table of one class, by queue length `0..=max_queue`.
    pub fn table(&self, class: usize) -> &[f64] {
        &self.tables[class]
    }
}

impl Discipline for WhittleQueueDiscipline {
    fn name(&self) -> &str {
        "whittle"
    }

    fn class_index(&self, class: usize, waiting: usize) -> f64 {
        self.tables[class][waiting.min(self.max_queue)]
    }
}

/// Solve the tridiagonal system `(I − β P_T) v = r` by the Thomas
/// algorithm, where `P_T` is the threshold-`T` policy's transition matrix
/// on states `0..=n`: active states (`s ≥ t`) step down with probability
/// `d`, every state below `n` steps up with probability `a`, and the rest
/// self-loops.  The matrix is strictly diagonally dominant (row sums of
/// `βP` are `β < 1`), so the elimination is stable and never divides by
/// zero.
fn solve_threshold_system(a: f64, d: f64, t: usize, n: usize, beta: f64, r: &[f64]) -> Vec<f64> {
    let k = n + 1;
    debug_assert_eq!(r.len(), k);
    let mut diag = vec![0.0; k];
    let mut sub = vec![0.0; k]; // sub[s] multiplies v[s-1] in row s
    let mut sup = vec![0.0; k]; // sup[s] multiplies v[s+1] in row s
    for s in 0..k {
        let p_down = if s >= t && s > 0 { d } else { 0.0 };
        let p_up = if s < n { a } else { 0.0 };
        let p_self = 1.0 - p_down - p_up;
        sub[s] = -beta * p_down;
        sup[s] = -beta * p_up;
        diag[s] = 1.0 - beta * p_self;
    }
    // Forward elimination.
    let mut c_star = vec![0.0; k];
    let mut d_star = vec![0.0; k];
    c_star[0] = sup[0] / diag[0];
    d_star[0] = r[0] / diag[0];
    for s in 1..k {
        let m = diag[s] - sub[s] * c_star[s - 1];
        c_star[s] = sup[s] / m;
        d_star[s] = (r[s] - sub[s] * d_star[s - 1]) / m;
    }
    // Back substitution.
    let mut v = vec![0.0; k];
    v[k - 1] = d_star[k - 1];
    for s in (0..k - 1).rev() {
        v[s] = d_star[s] - c_star[s] * v[s + 1];
    }
    v
}

/// Discounted Whittle indices of the truncated birth–death service-control
/// project (`a` = per-slot arrival probability, `d` = per-slot service
/// probability, holding cost `c · s(s+1)/2` per slot) for states `0..=n`.
/// State 0 gets index 0 — callers that never serve empty classes overwrite
/// it.  The table is ironed to be nondecreasing, a no-op for this convex
/// cost away from floating-point dust.
pub fn discounted_whittle_table(
    a: f64,
    d: f64,
    holding_cost: f64,
    n: usize,
    beta: f64,
) -> Vec<f64> {
    assert!(
        a > 0.0 && d > 0.0 && a + d <= 1.0 + 1e-12,
        "need a uniformized chain"
    );
    assert!(holding_cost > 0.0 && (0.0..1.0).contains(&beta));
    let k = n + 1;
    let cost: Vec<f64> = (0..k)
        .map(|s| holding_cost * (s * (s + 1)) as f64 / 2.0)
        .collect();
    // u[t], w[t]: discounted cost-to-go / idle-time-to-go of threshold
    // t = 1..=n+1 (t = n+1 never serves).
    let evaluate = |t: usize| {
        let idle: Vec<f64> = (0..k).map(|s| f64::from(u8::from(s < t))).collect();
        (
            solve_threshold_system(a, d, t, n, beta, &cost),
            solve_threshold_system(a, d, t, n, beta, &idle),
        )
    };
    let mut table = vec![0.0];
    let mut running_max = f64::NEG_INFINITY;
    let mut lower = evaluate(1);
    for s in 1..=n {
        let upper = evaluate(s + 1);
        let du = upper.0[s] - lower.0[s];
        let dw = upper.1[s] - lower.1[s];
        debug_assert!(dw > 0.0, "raising the threshold idles state {s} more");
        running_max = running_max.max(du / dw);
        table.push(running_max);
        lower = upper;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_distributions::{dyn_dist, Exponential};

    fn class(id: usize, lambda: f64, mean_service: f64, cost: f64) -> JobClass {
        JobClass::new(
            id,
            lambda,
            dyn_dist(Exponential::with_mean(mean_service)),
            cost,
        )
    }

    /// Fixed-point policy evaluation (v ← r + βPv) as an oracle for the
    /// Thomas solve.
    fn iterate_threshold_system(
        a: f64,
        d: f64,
        t: usize,
        n: usize,
        beta: f64,
        r: &[f64],
    ) -> Vec<f64> {
        let k = n + 1;
        let mut v = vec![0.0; k];
        for _ in 0..200_000 {
            let mut next = vec![0.0; k];
            let mut delta = 0.0f64;
            for s in 0..k {
                let p_down = if s >= t && s > 0 { d } else { 0.0 };
                let p_up = if s < n { a } else { 0.0 };
                let p_self = 1.0 - p_down - p_up;
                let mut x = r[s] + beta * p_self * v[s];
                if s > 0 {
                    x += beta * p_down * v[s - 1];
                }
                if s < n {
                    x += beta * p_up * v[s + 1];
                }
                next[s] = x;
                delta = delta.max((x - v[s]).abs());
            }
            v = next;
            if delta < 1e-13 {
                break;
            }
        }
        v
    }

    #[test]
    fn thomas_solve_matches_fixed_point_iteration() {
        let (a, d, n, beta) = (0.3, 0.6, 8, 0.97);
        let cost: Vec<f64> = (0..=n).map(|s| (s * (s + 1)) as f64 / 2.0).collect();
        for t in [1, 4, n + 1] {
            let direct = solve_threshold_system(a, d, t, n, beta, &cost);
            let iterated = iterate_threshold_system(a, d, t, n, beta, &cost);
            for s in 0..=n {
                assert!(
                    (direct[s] - iterated[s]).abs() < 1e-8,
                    "threshold {t}, state {s}: {} vs {}",
                    direct[s],
                    iterated[s]
                );
            }
        }
    }

    #[test]
    fn index_increases_with_queue_length() {
        let d = WhittleQueueDiscipline::new(&[class(0, 0.4, 1.0, 1.0)], 25);
        let t = d.table(0);
        // Strictly increasing in the bulk; the last few states may plateau
        // because the truncation clips arrivals there (and the table is
        // ironed), but must never decrease.
        for w in 1..t.len() - 1 {
            let strict = w + 1 < t.len() - 8;
            assert!(
                if strict {
                    t[w + 1] > t[w]
                } else {
                    t[w + 1] >= t[w]
                },
                "whittle index not increasing at queue length {w}: {} then {}",
                t[w],
                t[w + 1]
            );
        }
    }

    #[test]
    fn index_scales_linearly_in_the_holding_cost() {
        let t1 = discounted_whittle_table(0.25, 0.5, 1.0, 10, 0.99);
        let t3 = discounted_whittle_table(0.25, 0.5, 3.0, 10, 0.99);
        for s in 1..=10 {
            assert!(
                (t3[s] - 3.0 * t1[s]).abs() < 1e-9 * t3[s].abs(),
                "state {s}: {} vs 3x{}",
                t3[s],
                t1[s]
            );
        }
    }

    #[test]
    fn costlier_class_outranks_cheaper_at_equal_backlog() {
        let classes = [class(0, 0.3, 1.0, 1.0), class(1, 0.3, 1.0, 4.0)];
        let d = WhittleQueueDiscipline::new(&classes, 10);
        for w in 1..=6 {
            assert!(
                d.class_index(1, w) > d.class_index(0, w),
                "cheap class outranked costly one at backlog {w}"
            );
        }
    }

    #[test]
    fn empty_class_never_competes() {
        let d = WhittleQueueDiscipline::new(&[class(0, 0.3, 1.0, 1.0)], 8);
        assert_eq!(d.class_index(0, 0), f64::NEG_INFINITY);
        assert!(d.class_index(0, 1) > d.class_index(0, 0));
    }

    #[test]
    fn queue_lengths_beyond_truncation_clamp() {
        let d = WhittleQueueDiscipline::new(&[class(0, 0.3, 1.0, 1.0)], 6);
        assert_eq!(
            d.class_index(0, 6).to_bits(),
            d.class_index(0, 600).to_bits()
        );
        assert_eq!(d.name(), "whittle");
    }
}

//! Multi-armed bandits with switching costs (Asawa–Teneketzis 1996).
//!
//! Charging a cost `c` every time the engaged project changes breaks the
//! Gittins optimality: the index of the currently engaged project should be
//! inflated (equivalently, competitors' indices deflated) to reflect the
//! cost of moving away and possibly back.  The survey notes that only a
//! partial characterisation of the optimal policy is known and that exact
//! computation grows exponentially; experiment E9 therefore compares, on
//! small instances where the exact DP is tractable:
//!
//! * the plain Gittins rule (ignores switching costs),
//! * a **switching-penalised index rule**: stay with the current project
//!   unless some other project's Gittins index exceeds the current
//!   project's index by more than `(1 - β) · c` (the per-period
//!   amortisation of the switching cost) — the natural hysteresis heuristic
//!   derived from the Asawa–Teneketzis analysis,
//! * the exact optimum (joint DP whose state carries the identity of the
//!   previously engaged project).

use crate::exact::MultiArmedBandit;
use crate::gittins::gittins_indices_vwb;
use ss_mdp::mdp::{Mdp, MdpBuilder};
use ss_mdp::value_iteration::{value_iteration, ValueIterationOptions};

/// A multi-armed bandit with a fixed cost per switch of the engaged project.
#[derive(Debug, Clone)]
pub struct SwitchingBandit {
    /// The underlying bandit (projects + discount).
    pub bandit: MultiArmedBandit,
    /// Cost paid whenever the engaged project differs from the previous one.
    pub switch_cost: f64,
}

impl SwitchingBandit {
    /// Create an instance.
    pub fn new(bandit: MultiArmedBandit, switch_cost: f64) -> Self {
        assert!(switch_cost >= 0.0);
        Self {
            bandit,
            switch_cost,
        }
    }

    /// Joint-state count including the "previously engaged" component
    /// (an extra value `N` encodes "no previous project", used at t = 0).
    fn augmented_state_count(&self) -> usize {
        self.bandit.joint_state_count() * (self.bandit.projects.len() + 1)
    }

    fn encode(&self, joint: usize, prev: usize) -> usize {
        joint * (self.bandit.projects.len() + 1) + prev
    }

    /// Build the augmented MDP over (joint project states, previous project).
    pub fn augmented_mdp(&self) -> Mdp {
        let n_aug = self.augmented_state_count();
        assert!(n_aug <= 400_000, "augmented state space too large");
        let n_projects = self.bandit.projects.len();
        let mut builder = MdpBuilder::new(n_aug);
        for joint in 0..self.bandit.joint_state_count() {
            let states = self.bandit.decode(joint);
            for prev in 0..=n_projects {
                let aug = self.encode(joint, prev);
                for (a, project) in self.bandit.projects.iter().enumerate() {
                    let s = states[a];
                    let switch_penalty = if prev == n_projects || prev == a {
                        0.0
                    } else {
                        self.switch_cost
                    };
                    let reward = project.reward(s) - switch_penalty;
                    let transitions: Vec<(usize, f64)> = project
                        .transitions(s)
                        .iter()
                        .map(|&(next, p)| {
                            let mut next_states = states.clone();
                            next_states[a] = next;
                            (self.encode(self.bandit.encode(&next_states), a), p)
                        })
                        .collect();
                    builder.add_action(aug, reward, transitions);
                }
            }
        }
        builder.build()
    }

    /// Optimal expected discounted reward starting from `initial_states`
    /// with no previously engaged project.
    pub fn optimal_value(&self, initial_states: &[usize]) -> f64 {
        let mdp = self.augmented_mdp();
        let sol = value_iteration(
            &mdp,
            &ValueIterationOptions {
                discount: self.bandit.discount,
                tolerance: 1e-10,
                max_iterations: 500_000,
            },
        );
        sol.values[self.encode(
            self.bandit.encode(initial_states),
            self.bandit.projects.len(),
        )]
    }

    /// Value of an index-with-hysteresis policy: switch away from the
    /// current project only if the best competing Gittins index exceeds the
    /// current project's index by more than `margin`.
    ///
    /// `margin = 0` recovers the plain Gittins rule (which ignores
    /// switching costs); `margin = (1 - β) · switch_cost` is the
    /// Asawa–Teneketzis style amortised-cost heuristic.
    pub fn hysteresis_policy_value(&self, initial_states: &[usize], margin: f64) -> f64 {
        let n_projects = self.bandit.projects.len();
        let indices: Vec<Vec<f64>> = self
            .bandit
            .projects
            .iter()
            .map(|p| gittins_indices_vwb(p, self.bandit.discount))
            .collect();
        let mdp = self.augmented_mdp();
        let policy: Vec<usize> = (0..self.augmented_state_count())
            .map(|aug| {
                let joint = aug / (n_projects + 1);
                let prev = aug % (n_projects + 1);
                let states = self.bandit.decode(joint);
                // Best index overall.
                let mut best = 0usize;
                let mut best_val = f64::NEG_INFINITY;
                for (a, &s) in states.iter().enumerate() {
                    let v = indices[a][s];
                    if v > best_val {
                        best_val = v;
                        best = a;
                    }
                }
                if prev == n_projects {
                    best
                } else {
                    let current_val = indices[prev][states[prev]];
                    if best_val > current_val + margin {
                        best
                    } else {
                        prev
                    }
                }
            })
            .collect();
        let values = mdp.evaluate_policy_discounted(&policy, self.bandit.discount);
        values[self.encode(self.bandit.encode(initial_states), n_projects)]
    }

    /// Convenience: value of the plain Gittins rule (margin 0).
    pub fn gittins_value(&self, initial_states: &[usize]) -> f64 {
        self.hysteresis_policy_value(initial_states, 0.0)
    }

    /// Convenience: value of the amortised-cost hysteresis rule.
    pub fn amortised_hysteresis_value(&self, initial_states: &[usize]) -> f64 {
        let margin = (1.0 - self.bandit.discount) * self.switch_cost;
        self.hysteresis_policy_value(initial_states, margin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::random_project;
    use crate::project::BanditProject;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn alternating_instance() -> MultiArmedBandit {
        // Two identical two-state projects whose rewards alternate between
        // high and low as they are played; with zero switching cost the
        // Gittins rule ping-pongs between them every period.
        let p = || BanditProject::new(vec![1.0, 0.3], vec![vec![(1, 1.0)], vec![(0, 1.0)]]);
        MultiArmedBandit::new(vec![p(), p()], 0.9)
    }

    #[test]
    fn zero_switch_cost_reduces_to_gittins_optimality() {
        let sb = SwitchingBandit::new(alternating_instance(), 0.0);
        let init = [0usize, 0];
        let opt = sb.optimal_value(&init);
        let git = sb.gittins_value(&init);
        assert!((opt - git).abs() < 1e-6, "optimal {opt} vs Gittins {git}");
    }

    #[test]
    fn gittins_suboptimal_under_switching_costs() {
        // E9: with a hefty switching cost the ping-ponging Gittins rule
        // pays the cost every period and falls strictly below the optimum;
        // the hysteresis rule (whose margin is large enough here to stop the
        // ping-pong) recovers most of the gap.
        let sb = SwitchingBandit::new(alternating_instance(), 5.0);
        let init = [0usize, 0];
        let opt = sb.optimal_value(&init);
        let git = sb.gittins_value(&init);
        let hyst = sb.amortised_hysteresis_value(&init);
        assert!(
            git < opt - 0.5,
            "Gittins {git} should be clearly below optimal {opt}"
        );
        assert!(
            hyst > git,
            "hysteresis {hyst} should improve on Gittins {git}"
        );
        assert!(hyst <= opt + 1e-9);
    }

    #[test]
    fn optimal_value_decreases_with_switch_cost() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mab = MultiArmedBandit::new(
            vec![random_project(3, &mut rng), random_project(3, &mut rng)],
            0.85,
        );
        let init = [0usize, 0];
        let v0 = SwitchingBandit::new(mab.clone(), 0.0).optimal_value(&init);
        let v1 = SwitchingBandit::new(mab.clone(), 0.5).optimal_value(&init);
        let v2 = SwitchingBandit::new(mab, 2.0).optimal_value(&init);
        assert!(v0 >= v1 - 1e-9 && v1 >= v2 - 1e-9, "{v0} >= {v1} >= {v2}");
    }

    #[test]
    fn zero_cost_augmented_dp_matches_plain_dp() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let mab = MultiArmedBandit::new(
            vec![random_project(3, &mut rng), random_project(2, &mut rng)],
            0.8,
        );
        let init = [0usize, 0];
        let plain = mab.optimal_value(&init);
        let augmented = SwitchingBandit::new(mab, 0.0).optimal_value(&init);
        assert!((plain - augmented).abs() < 1e-6);
    }
}

//! Branching bandit processes (Weiss 1988).
//!
//! A branching bandit generalises both the batch-scheduling models of §1 and
//! Klimov's feedback queue of §3: a single server works on a population of
//! jobs of `N` classes; completing a class-`i` job takes a random service
//! time `S_i` and *spawns* a random vector of new jobs (its offspring), after
//! which the server picks the next job.  Holding costs accrue at rate `c_j`
//! per class-`j` job present.  When the expected-offspring matrix is
//! subcritical the population eventually dies out and the objective is the
//! expected total holding cost until extinction.
//!
//! Weiss showed that the optimal nonpreemptive policy is again a
//! **priority-index rule**, with indices of exactly the conservation-law
//! form implemented by [`ss_core::adaptive_greedy`]: the work measure
//! `T_j(S)` is the expected length of the sub-busy period a class-`j` job
//! generates while only classes in `S` are served, and the exit cost
//! `E_j(S)` is the expected holding-cost rate of the first-generation
//! descendants that fall outside `S`.  Two sanity limits anchor the
//! implementation:
//!
//! * with **no offspring** the model is the static single-machine batch
//!   problem and the index reduces to the WSEPT/Smith index `c_i / E[S_i]`
//!   (experiment E1);
//! * with offspring restricted to at most one child the model is Klimov's
//!   queue without external arrivals and the index reduces to Klimov's.
//!
//! The module also contains an extinction-time simulator used by experiment
//! E18 to compare the index order against every other static priority order
//! on small instances.

use crate::branching::offspring::OffspringDist;
use rand::Rng;
use ss_core::adaptive_greedy::{adaptive_greedy, AdaptiveGreedyResult, WorkMeasure};
use ss_core::linalg::solve_dense;
use ss_distributions::DynDist;

pub mod offspring {
    //! Offspring distributions: finitely supported distributions over
    //! vectors of per-class child counts.

    use rand::Rng;

    /// A finitely supported distribution over offspring vectors.
    #[derive(Debug, Clone)]
    pub struct OffspringDist {
        outcomes: Vec<(Vec<usize>, f64)>,
    }

    impl OffspringDist {
        /// Create a distribution from `(offspring vector, probability)`
        /// pairs; probabilities must sum to one and every vector must have
        /// the same length.
        pub fn new(outcomes: Vec<(Vec<usize>, f64)>) -> Self {
            assert!(
                !outcomes.is_empty(),
                "offspring distribution needs at least one outcome"
            );
            let n = outcomes[0].0.len();
            assert!(
                outcomes.iter().all(|(v, _)| v.len() == n),
                "inconsistent vector lengths"
            );
            let total: f64 = outcomes.iter().map(|(_, p)| *p).sum();
            assert!(
                (total - 1.0).abs() < 1e-8,
                "offspring probabilities sum to {total}"
            );
            assert!(outcomes.iter().all(|(_, p)| *p >= -1e-12));
            Self { outcomes }
        }

        /// The distribution producing no offspring at all (absorbing class).
        pub fn none(num_classes: usize) -> Self {
            Self::new(vec![(vec![0; num_classes], 1.0)])
        }

        /// A Bernoulli "feedback" offspring: with probability `p` one child
        /// of class `child`, otherwise nothing (Klimov-style routing).
        pub fn feedback(num_classes: usize, child: usize, p: f64) -> Self {
            assert!(child < num_classes && (0.0..=1.0).contains(&p));
            let mut with_child = vec![0; num_classes];
            with_child[child] = 1;
            if p >= 1.0 {
                Self::new(vec![(with_child, 1.0)])
            } else if p <= 0.0 {
                Self::none(num_classes)
            } else {
                Self::new(vec![(with_child, p), (vec![0; num_classes], 1.0 - p)])
            }
        }

        /// Number of classes the vectors are indexed by.
        pub fn num_classes(&self) -> usize {
            self.outcomes[0].0.len()
        }

        /// Expected number of class-`j` children.
        pub fn mean_children(&self, j: usize) -> f64 {
            self.outcomes.iter().map(|(v, p)| v[j] as f64 * p).sum()
        }

        /// The supported outcomes.
        pub fn outcomes(&self) -> &[(Vec<usize>, f64)] {
            &self.outcomes
        }

        /// Sample one offspring vector.
        pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> &[usize] {
            let u: f64 = rng.gen();
            let mut acc = 0.0;
            for (v, p) in &self.outcomes {
                acc += p;
                if u <= acc {
                    return v;
                }
            }
            &self.outcomes.last().unwrap().0
        }
    }
}

/// A branching bandit: per-class service-time distributions, holding-cost
/// rates and offspring distributions.
#[derive(Debug, Clone)]
pub struct BranchingBandit {
    services: Vec<DynDist>,
    holding_costs: Vec<f64>,
    offspring: Vec<OffspringDist>,
}

impl BranchingBandit {
    /// Create a branching bandit, validating dimensions and subcriticality
    /// (the expected-offspring matrix must have all its sub-busy periods
    /// finite, i.e. `I − M` must be invertible with a nonnegative inverse).
    pub fn new(
        services: Vec<DynDist>,
        holding_costs: Vec<f64>,
        offspring: Vec<OffspringDist>,
    ) -> Self {
        let n = services.len();
        assert!(n > 0);
        assert_eq!(holding_costs.len(), n);
        assert_eq!(offspring.len(), n);
        assert!(holding_costs.iter().all(|c| c.is_finite() && *c >= 0.0));
        assert!(offspring.iter().all(|o| o.num_classes() == n));
        let bandit = Self {
            services,
            holding_costs,
            offspring,
        };
        // Subcriticality check: the expected total progeny of every class
        // must be finite and nonnegative.
        let total = bandit.expected_total_progeny();
        assert!(
            total.iter().flatten().all(|x| x.is_finite() && *x >= -1e-9),
            "offspring matrix is not subcritical: expected progeny {total:?}"
        );
        bandit
    }

    /// Number of job classes.
    pub fn num_classes(&self) -> usize {
        self.services.len()
    }

    /// Holding-cost rates.
    pub fn holding_costs(&self) -> &[f64] {
        &self.holding_costs
    }

    /// Mean service time of class `i`.
    pub fn mean_service(&self, i: usize) -> f64 {
        self.services[i].mean()
    }

    /// Expected-offspring matrix `M[i][j] = E[#class-j children of a class-i job]`.
    pub fn mean_offspring_matrix(&self) -> Vec<Vec<f64>> {
        let n = self.num_classes();
        (0..n)
            .map(|i| (0..n).map(|j| self.offspring[i].mean_children(j)).collect())
            .collect()
    }

    /// Expected total progeny matrix `(I − M)^{-1}`: entry `(i, j)` is the
    /// expected total number of class-`j` jobs ever created by one class-`i`
    /// job (itself included when `i = j`).
    pub fn expected_total_progeny(&self) -> Vec<Vec<f64>> {
        let n = self.num_classes();
        let m = self.mean_offspring_matrix();
        let mut result = vec![vec![0.0; n]; n];
        for start in 0..n {
            // Row `start` of N = (I − M)^{-1} solves N_row (I − M) = e_start,
            // i.e. the transposed system (I − M)^T N_row^T = e_start.
            let mut at = vec![vec![0.0; n]; n];
            for i in 0..n {
                for j in 0..n {
                    at[i][j] = (if i == j { 1.0 } else { 0.0 }) - m[j][i];
                }
            }
            let mut b = vec![0.0; n];
            b[start] = 1.0;
            result[start] = solve_dense(at, b);
        }
        result
    }

    /// Expected total work (server busy time) generated by one class-`i`
    /// job, descendants included: `(I − M)^{-1} β` evaluated at `i`.
    pub fn expected_total_work(&self, class: usize) -> f64 {
        let progeny = self.expected_total_progeny();
        progeny[class]
            .iter()
            .enumerate()
            .map(|(j, &count)| count * self.mean_service(j))
            .sum()
    }

    /// The branching-bandit priority indices, computed with the generic
    /// adaptive-greedy algorithm and this model's sub-busy-period work
    /// measure.
    pub fn indices(&self) -> AdaptiveGreedyResult {
        let oracle = BranchingWorkMeasure { bandit: self };
        adaptive_greedy(&self.holding_costs, &oracle)
    }

    /// The priority order induced by [`BranchingBandit::indices`]
    /// (highest index first).
    pub fn index_order(&self) -> Vec<usize> {
        self.indices().order
    }
}

/// The branching bandit's work measure for the adaptive-greedy algorithm.
struct BranchingWorkMeasure<'a> {
    bandit: &'a BranchingBandit,
}

impl BranchingWorkMeasure<'_> {
    /// Solve `v_a = rhs_a + Σ_{b∈S} M[a][b] v_b` for the members of `S`.
    fn solve_restricted(&self, continuation: &[bool], rhs: impl Fn(usize) -> f64) -> Vec<f64> {
        let n = self.bandit.num_classes();
        let m = self.bandit.mean_offspring_matrix();
        let members: Vec<usize> = (0..n).filter(|&j| continuation[j]).collect();
        let k = members.len();
        let pos = |class: usize| members.iter().position(|&x| x == class).unwrap();
        let mut a = vec![vec![0.0; k]; k];
        let mut b = vec![0.0; k];
        for (row, &cls) in members.iter().enumerate() {
            a[row][row] = 1.0;
            for &other in &members {
                a[row][pos(other)] -= m[cls][other];
            }
            b[row] = rhs(cls);
        }
        solve_dense(a, b)
    }
}

impl WorkMeasure for BranchingWorkMeasure<'_> {
    fn num_classes(&self) -> usize {
        self.bandit.num_classes()
    }

    fn work(&self, class: usize, continuation: &[bool]) -> f64 {
        assert!(continuation[class]);
        let members: Vec<usize> = (0..self.bandit.num_classes())
            .filter(|&j| continuation[j])
            .collect();
        let t = self.solve_restricted(continuation, |cls| self.bandit.mean_service(cls));
        t[members.iter().position(|&x| x == class).unwrap()]
    }

    fn exit_cost(&self, class: usize, continuation: &[bool]) -> f64 {
        assert!(continuation[class]);
        let n = self.bandit.num_classes();
        let m = self.bandit.mean_offspring_matrix();
        let members: Vec<usize> = (0..n).filter(|&j| continuation[j]).collect();
        let e = self.solve_restricted(continuation, |cls| {
            (0..n)
                .filter(|&j| !continuation[j])
                .map(|j| m[cls][j] * self.bandit.holding_costs[j])
                .sum()
        });
        e[members.iter().position(|&x| x == class).unwrap()]
    }
}

/// Result of one extinction-time simulation run.
#[derive(Debug, Clone)]
pub struct BranchingSimResult {
    /// Total holding cost `∫ Σ_j c_j N_j(t) dt` accumulated until extinction.
    pub total_holding_cost: f64,
    /// Time at which the population died out.
    pub extinction_time: f64,
    /// Total number of services performed.
    pub services: u64,
}

/// Simulate the branching bandit from the initial population
/// `initial[j]` (number of class-`j` jobs present at time zero) under a
/// static nonpreemptive priority order until extinction.
///
/// `max_services` guards against (numerically) near-critical instances; the
/// simulation stops and panics if the population has not died out after that
/// many services.
pub fn simulate_branching<R: Rng>(
    bandit: &BranchingBandit,
    initial: &[usize],
    priority_order: &[usize],
    max_services: u64,
    rng: &mut R,
) -> BranchingSimResult {
    let n = bandit.num_classes();
    assert_eq!(initial.len(), n);
    assert_eq!(priority_order.len(), n);
    let mut rank = vec![0usize; n];
    for (pos, &c) in priority_order.iter().enumerate() {
        rank[c] = pos;
    }

    let mut counts: Vec<u64> = initial.iter().map(|&x| x as u64).collect();
    let mut clock = 0.0;
    let mut total_cost = 0.0;
    let mut services = 0u64;

    loop {
        let next_class = (0..n).filter(|&c| counts[c] > 0).min_by_key(|&c| rank[c]);
        let Some(class) = next_class else { break };
        assert!(
            services < max_services,
            "population did not die out after {max_services} services; \
             is the offspring matrix (numerically) critical?"
        );
        let service = bandit.services[class].sample(rng);
        // Holding cost accrued during this service by everything present.
        let present_cost_rate: f64 = (0..n)
            .map(|j| bandit.holding_costs[j] * counts[j] as f64)
            .sum();
        total_cost += present_cost_rate * service;
        clock += service;
        services += 1;
        counts[class] -= 1;
        let children = bandit.offspring[class].sample(rng);
        for (j, &k) in children.iter().enumerate() {
            counts[j] += k as u64;
        }
    }

    BranchingSimResult {
        total_holding_cost: total_cost,
        extinction_time: clock,
        services,
    }
}

/// Estimate the expected total holding cost of a priority order by
/// independent replications; returns `(mean, 95% CI half-width)`.
pub fn estimate_order_cost<R: Rng>(
    bandit: &BranchingBandit,
    initial: &[usize],
    priority_order: &[usize],
    replications: usize,
    rng: &mut R,
) -> (f64, f64) {
    assert!(replications > 1);
    let mut stats = ss_sim::stats::OnlineStats::new();
    for _ in 0..replications {
        let res = simulate_branching(bandit, initial, priority_order, 10_000_000, rng);
        stats.push(res.total_holding_cost);
    }
    (stats.mean(), stats.ci_half_width(0.95))
}

/// Parallel counterpart of [`estimate_order_cost`]: replications fan out
/// over the workspace thread pool, each drawing from its own RNG stream
/// derived from `seed`, so the estimate is reproducible for any thread
/// count.  (The draws differ from the serial variant, which threads one RNG
/// through all replications — both are unbiased estimates of the same
/// expectation.)
pub fn estimate_order_cost_parallel(
    bandit: &BranchingBandit,
    initial: &[usize],
    priority_order: &[usize],
    replications: usize,
    seed: u64,
) -> (f64, f64) {
    assert!(replications > 1);
    let summary = ss_sim::replication::run_replications_parallel(replications, seed, |_i, rng| {
        simulate_branching(bandit, initial, priority_order, 10_000_000, rng).total_holding_cost
    });
    (summary.mean, summary.ci95)
}

#[cfg(test)]
mod tests {
    use super::offspring::OffspringDist;
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use ss_distributions::{dyn_dist, Deterministic, Erlang, Exponential};

    /// Three classes, no offspring: the static batch problem.
    fn batch_bandit() -> BranchingBandit {
        BranchingBandit::new(
            vec![
                dyn_dist(Exponential::with_mean(2.0)),
                dyn_dist(Erlang::with_mean(2, 0.5)),
                dyn_dist(Deterministic::new(1.5)),
            ],
            vec![1.0, 3.0, 2.0],
            vec![OffspringDist::none(3); 3],
        )
    }

    /// Three classes with Klimov-style single-child feedback.
    fn feedback_bandit() -> BranchingBandit {
        BranchingBandit::new(
            vec![
                dyn_dist(Exponential::with_mean(0.8)),
                dyn_dist(Exponential::with_mean(0.6)),
                dyn_dist(Exponential::with_mean(1.2)),
            ],
            vec![1.0, 2.0, 4.0],
            vec![
                OffspringDist::feedback(3, 1, 0.6),
                OffspringDist::feedback(3, 2, 0.3),
                OffspringDist::none(3),
            ],
        )
    }

    /// A genuinely branching instance: class 0 spawns up to two children.
    fn branching_bandit() -> BranchingBandit {
        BranchingBandit::new(
            vec![
                dyn_dist(Exponential::with_mean(1.0)),
                dyn_dist(Exponential::with_mean(0.5)),
                dyn_dist(Exponential::with_mean(1.5)),
            ],
            vec![2.0, 1.0, 3.0],
            vec![
                OffspringDist::new(vec![
                    (vec![0, 1, 1], 0.3),
                    (vec![0, 1, 0], 0.3),
                    (vec![0, 0, 0], 0.4),
                ]),
                OffspringDist::feedback(3, 2, 0.4),
                OffspringDist::none(3),
            ],
        )
    }

    #[test]
    fn no_offspring_reduces_to_wsept() {
        let bandit = batch_bandit();
        let result = bandit.indices();
        let expected = [1.0 / 2.0, 3.0 / 0.5, 2.0 / 1.5];
        for (i, &e) in expected.iter().enumerate() {
            assert!(
                (result.indices[i] - e).abs() < 1e-12,
                "class {i}: {} vs WSEPT {e}",
                result.indices[i]
            );
        }
        assert_eq!(result.order, vec![1, 2, 0]);
        assert!(result.rates_non_increasing(1e-12));
    }

    #[test]
    fn feedback_offspring_reproduce_klimov_indices() {
        // The feedback bandit has the same per-class dynamics as the Klimov
        // network used in ss-queueing (without external arrivals); the index
        // values must match Klimov's continuation-set recursion, which for
        // this routing chain can be checked against hand-computed values for
        // the top class: class 2 has no feedback, so its index is c/ES.
        let bandit = feedback_bandit();
        let result = bandit.indices();
        assert!(
            (result.indices[2] - 4.0 / 1.2).abs() < 1e-9,
            "{:?}",
            result.indices
        );
        // Class 2 has the largest ratio and is assigned first.
        assert_eq!(result.order[0], 2);
        assert!(result.rates_non_increasing(1e-9));
    }

    #[test]
    fn expected_total_work_accounts_for_descendants() {
        let bandit = feedback_bandit();
        // A class-0 job: service 0.8, then with prob 0.6 a class-1 child
        // (service 0.6, then with prob 0.3 a class-2 child of service 1.2).
        let expected = 0.8 + 0.6 * (0.6 + 0.3 * 1.2);
        assert!((bandit.expected_total_work(0) - expected).abs() < 1e-9);
        // A class-2 job has no descendants.
        assert!((bandit.expected_total_work(2) - 1.2).abs() < 1e-12);
    }

    #[test]
    fn simulated_batch_cost_matches_the_closed_form() {
        // With no offspring and one job per class the expected total holding
        // cost of a list is Σ_i w_i Σ_{j precedes or equals i} E[P_j].
        let bandit = batch_bandit();
        let order = vec![1usize, 2, 0];
        let means = [2.0, 0.5, 1.5];
        let weights = [1.0, 3.0, 2.0];
        let mut acc = 0.0;
        let mut closed_form = 0.0;
        for &j in &order {
            acc += means[j];
            closed_form += weights[j] * acc;
        }
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let (mean, ci) = estimate_order_cost(&bandit, &[1, 1, 1], &order, 20_000, &mut rng);
        assert!(
            (mean - closed_form).abs() < 4.0 * ci.max(0.05),
            "simulated {mean} ± {ci} vs closed form {closed_form}"
        );
    }

    #[test]
    fn parallel_estimate_agrees_with_closed_form_and_is_reproducible() {
        let bandit = batch_bandit();
        let order = vec![1usize, 2, 0];
        let means = [2.0, 0.5, 1.5];
        let weights = [1.0, 3.0, 2.0];
        let mut acc = 0.0;
        let mut closed_form = 0.0;
        for &j in &order {
            acc += means[j];
            closed_form += weights[j] * acc;
        }
        let (mean, ci) = estimate_order_cost_parallel(&bandit, &[1, 1, 1], &order, 20_000, 42);
        assert!(
            (mean - closed_form).abs() < 4.0 * ci.max(0.05),
            "simulated {mean} ± {ci} vs closed form {closed_form}"
        );
        // Bit-for-bit reproducible, independently of the thread count.
        for threads in [1usize, 4] {
            let (m2, c2) = ss_sim::pool::with_threads(threads, || {
                estimate_order_cost_parallel(&bandit, &[1, 1, 1], &order, 20_000, 42)
            });
            assert_eq!(mean.to_bits(), m2.to_bits());
            assert_eq!(ci.to_bits(), c2.to_bits());
        }
    }

    #[test]
    fn index_order_is_best_among_all_static_orders() {
        let bandit = branching_bandit();
        let initial = [2usize, 2, 1];
        let orders: Vec<Vec<usize>> = vec![
            vec![0, 1, 2],
            vec![0, 2, 1],
            vec![1, 0, 2],
            vec![1, 2, 0],
            vec![2, 0, 1],
            vec![2, 1, 0],
        ];
        let mut costs = Vec::new();
        for (i, order) in orders.iter().enumerate() {
            let mut rng = ChaCha8Rng::seed_from_u64(900 + i as u64);
            let (mean, _) = estimate_order_cost(&bandit, &initial, order, 8_000, &mut rng);
            costs.push(mean);
        }
        let best = costs.iter().cloned().fold(f64::INFINITY, f64::min);
        let index_order = bandit.index_order();
        let pos = orders
            .iter()
            .position(|o| *o == index_order)
            .expect("index order is a permutation");
        assert!(
            costs[pos] <= best * 1.03,
            "index order {index_order:?} cost {} vs best {best} (all: {costs:?})",
            costs[pos]
        );
    }

    #[test]
    fn extinction_is_reached_and_costs_are_positive() {
        let bandit = branching_bandit();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let res = simulate_branching(&bandit, &[3, 0, 1], &[0, 1, 2], 1_000_000, &mut rng);
        assert!(res.total_holding_cost > 0.0);
        assert!(res.extinction_time > 0.0);
        assert!(res.services >= 4);
    }

    #[test]
    fn empty_initial_population_costs_nothing() {
        let bandit = batch_bandit();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let res = simulate_branching(&bandit, &[0, 0, 0], &[0, 1, 2], 1_000, &mut rng);
        assert_eq!(res.services, 0);
        assert_eq!(res.total_holding_cost, 0.0);
        assert_eq!(res.extinction_time, 0.0);
    }

    #[test]
    fn zero_holding_costs_cost_nothing_and_index_to_zero() {
        let bandit = BranchingBandit::new(
            vec![
                dyn_dist(Exponential::with_mean(1.0)),
                dyn_dist(Exponential::with_mean(0.5)),
            ],
            vec![0.0, 0.0],
            vec![OffspringDist::feedback(2, 1, 0.5), OffspringDist::none(2)],
        );
        let result = bandit.indices();
        assert!(result.indices.iter().all(|&x| x.abs() < 1e-12));
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let sim = simulate_branching(&bandit, &[3, 1], &[0, 1], 100_000, &mut rng);
        assert_eq!(sim.total_holding_cost, 0.0);
        assert!(sim.extinction_time > 0.0);
    }

    #[test]
    fn progeny_matrix_of_a_feedback_chain_is_geometric() {
        // Class 0 spawns a class-0 child with probability 0.5: its expected
        // total class-0 progeny (itself included) is 1 / (1 - 0.5) = 2.
        let bandit = BranchingBandit::new(
            vec![dyn_dist(Exponential::with_mean(1.0))],
            vec![1.0],
            vec![OffspringDist::new(vec![(vec![1], 0.5), (vec![0], 0.5)])],
        );
        let progeny = bandit.expected_total_progeny();
        assert!((progeny[0][0] - 2.0).abs() < 1e-12);
        assert!((bandit.expected_total_work(0) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn supercritical_offspring_is_rejected() {
        // Every class-0 completion spawns two class-0 children: the
        // population explodes and (I − M) is singular / negative.
        let _ = BranchingBandit::new(
            vec![dyn_dist(Exponential::new(1.0))],
            vec![1.0],
            vec![OffspringDist::new(vec![(vec![2], 1.0)])],
        );
    }

    #[test]
    #[should_panic]
    fn offspring_probabilities_must_sum_to_one() {
        let _ = OffspringDist::new(vec![(vec![0, 1], 0.5), (vec![0, 0], 0.4)]);
    }
}

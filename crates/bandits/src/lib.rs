//! # ss-bandits — multi-armed and restless bandit models (§2 of the survey)
//!
//! The multi-armed bandit problem allocates one unit of effort per period
//! among `N` projects whose states evolve only while engaged; Gittins and
//! Jones (1974) showed that the optimal policy is a priority-index rule.
//! This crate implements that result and the two major extensions the
//! survey discusses:
//!
//! | Survey claim | Module |
//! |---|---|
//! | The Gittins index rule is optimal for the discounted multi-armed bandit | [`gittins`] (three independent index algorithms), [`exact`] (joint-state DP verification), [`simulate`] |
//! | With switching costs the Gittins rule is no longer optimal; a partial characterisation / heuristics exist (Asawa–Teneketzis 1996) | [`switching`] |
//! | Restless bandits: Whittle's LP relaxation and index heuristic, asymptotic optimality (Whittle 1988, Weber–Weiss 1990), primal-dual index heuristics and performance bounds (Bertsimas–Niño-Mora 2000) | [`restless`], [`restless_exact`] (exact joint-chain oracles) |
//! | Partial conservation laws and marginal productivity indices — the polyhedral computation of the Whittle index (Niño-Mora 2001, 2002) | [`mpi`] |
//! | Branching bandit processes unifying batch scheduling and Klimov's queue (Weiss 1988) | [`branching`] |
//!
//! Instance generators (random projects, Bernoulli-sampling projects and
//! machine-maintenance restless projects) live in [`instances`].
//!
//! ## Index conventions
//!
//! The Gittins index used throughout is the *rate-normalised* discounted
//! index
//!
//! ```text
//! γ(i) = sup_{τ > 0}  E[ Σ_{t<τ} β^t R_{x(t)} | x(0)=i ]
//!                     ---------------------------------
//!                     E[ Σ_{t<τ} β^t           | x(0)=i ]
//! ```
//!
//! so a project that pays a constant reward `R` forever has index exactly
//! `R`.  The Whittle index is the passivity subsidy `λ` that makes active
//! and passive equally attractive in the single-project average-reward
//! subsidy problem.

pub mod branching;
pub mod discipline;
pub mod exact;
pub mod gittins;
pub mod instances;
pub mod mpi;
pub mod project;
pub mod restless;
pub mod restless_exact;
pub mod simulate;
pub mod switching;

pub use branching::BranchingBandit;
pub use discipline::{discounted_whittle_table, WhittleQueueDiscipline, WHITTLE_DISCOUNT};
pub use gittins::{gittins_indices_calibration, gittins_indices_restart, gittins_indices_vwb};
pub use mpi::{marginal_productivity_indices, MpiResult};
pub use project::BanditProject;
pub use restless::{whittle_indices, RestlessProject};
pub use restless_exact::{restless_optimal_gain, whittle_policy_gain};

//! Exact joint-state dynamic programming for small multi-armed bandits.
//!
//! The straightforward DP formulation of the multi-armed bandit has a state
//! space that is the product of the project state spaces (the survey's
//! "curse of dimensionality").  For small instances it is nevertheless the
//! ground truth: experiment E7 verifies that the value achieved by the
//! Gittins index policy equals the optimal value computed here.

use crate::gittins::gittins_indices_vwb;
use crate::project::BanditProject;
use ss_mdp::mdp::{Mdp, MdpBuilder};
use ss_mdp::value_iteration::{value_iteration, ValueIterationOptions};

/// A multi-armed bandit instance: a set of projects, exactly one of which
/// is engaged per period, with discounting.
#[derive(Debug, Clone)]
pub struct MultiArmedBandit {
    /// The projects (arms).
    pub projects: Vec<BanditProject>,
    /// Discount factor in `[0, 1)`.
    pub discount: f64,
}

impl MultiArmedBandit {
    /// Create an instance.
    pub fn new(projects: Vec<BanditProject>, discount: f64) -> Self {
        assert!(!projects.is_empty());
        assert!((0.0..1.0).contains(&discount));
        Self { projects, discount }
    }

    /// Number of joint states (product of the per-project state counts).
    pub fn joint_state_count(&self) -> usize {
        self.projects.iter().map(|p| p.num_states()).product()
    }

    /// Encode per-project states into a joint index (mixed radix).
    pub fn encode(&self, states: &[usize]) -> usize {
        assert_eq!(states.len(), self.projects.len());
        let mut idx = 0usize;
        for (p, &s) in self.projects.iter().zip(states) {
            assert!(s < p.num_states());
            idx = idx * p.num_states() + s;
        }
        idx
    }

    /// Decode a joint index into per-project states.
    pub fn decode(&self, mut idx: usize) -> Vec<usize> {
        let mut states = vec![0usize; self.projects.len()];
        for (pos, p) in self.projects.iter().enumerate().rev() {
            states[pos] = idx % p.num_states();
            idx /= p.num_states();
        }
        states
    }

    /// Build the joint MDP (action `a` = engage project `a`).
    pub fn joint_mdp(&self) -> Mdp {
        let n_states = self.joint_state_count();
        assert!(
            n_states <= 200_000,
            "joint state space too large for the exact DP"
        );
        let mut builder = MdpBuilder::new(n_states);
        for joint in 0..n_states {
            let states = self.decode(joint);
            for (a, project) in self.projects.iter().enumerate() {
                let s = states[a];
                let reward = project.reward(s);
                let transitions: Vec<(usize, f64)> = project
                    .transitions(s)
                    .iter()
                    .map(|&(next, p)| {
                        let mut next_states = states.clone();
                        next_states[a] = next;
                        (self.encode(&next_states), p)
                    })
                    .collect();
                builder.add_action(joint, reward, transitions);
            }
        }
        builder.build()
    }

    /// Optimal expected discounted reward from the joint initial state.
    pub fn optimal_value(&self, initial_states: &[usize]) -> f64 {
        let mdp = self.joint_mdp();
        let sol = value_iteration(
            &mdp,
            &ValueIterationOptions {
                discount: self.discount,
                tolerance: 1e-10,
                max_iterations: 500_000,
            },
        );
        sol.values[self.encode(initial_states)]
    }

    /// The Gittins-rule stationary policy on the joint MDP (ties broken by
    /// the lowest project number), as a vector indexed by joint state.
    pub fn gittins_policy(&self) -> Vec<usize> {
        let indices: Vec<Vec<f64>> = self
            .projects
            .iter()
            .map(|p| gittins_indices_vwb(p, self.discount))
            .collect();
        (0..self.joint_state_count())
            .map(|joint| {
                let states = self.decode(joint);
                let mut best = 0usize;
                let mut best_idx = f64::NEG_INFINITY;
                for (a, &s) in states.iter().enumerate() {
                    let g = indices[a][s];
                    if g > best_idx + 1e-15 {
                        best_idx = g;
                        best = a;
                    }
                }
                best
            })
            .collect()
    }

    /// Expected discounted reward of the Gittins policy from the joint
    /// initial state (exact policy evaluation on the joint MDP).
    pub fn gittins_policy_value(&self, initial_states: &[usize]) -> f64 {
        let mdp = self.joint_mdp();
        let policy = self.gittins_policy();
        let values = mdp.evaluate_policy_discounted(&policy, self.discount);
        values[self.encode(initial_states)]
    }

    /// Expected discounted reward of the *myopic* policy (engage the project
    /// with the largest immediate reward), the natural naive baseline.
    pub fn myopic_policy_value(&self, initial_states: &[usize]) -> f64 {
        let mdp = self.joint_mdp();
        let policy: Vec<usize> = (0..self.joint_state_count())
            .map(|joint| {
                let states = self.decode(joint);
                let mut best = 0usize;
                let mut best_r = f64::NEG_INFINITY;
                for (a, &s) in states.iter().enumerate() {
                    let r = self.projects[a].reward(s);
                    if r > best_r + 1e-15 {
                        best_r = r;
                        best = a;
                    }
                }
                best
            })
            .collect();
        let values = mdp.evaluate_policy_discounted(&policy, self.discount);
        values[self.encode(initial_states)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::{deteriorating_project, random_project};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn encode_decode_round_trip() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mab = MultiArmedBandit::new(
            vec![
                random_project(3, &mut rng),
                random_project(4, &mut rng),
                random_project(2, &mut rng),
            ],
            0.9,
        );
        assert_eq!(mab.joint_state_count(), 24);
        for joint in 0..24 {
            assert_eq!(mab.encode(&mab.decode(joint)), joint);
        }
    }

    #[test]
    fn gittins_rule_is_optimal_on_random_instances() {
        // E7: the Gittins policy value equals the exact DP optimum.
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for trial in 0..6 {
            let n_projects = 2 + trial % 2;
            let projects: Vec<BanditProject> = (0..n_projects)
                .map(|_| random_project(3 + trial % 3, &mut rng))
                .collect();
            let mab = MultiArmedBandit::new(projects, 0.9);
            let init = vec![0usize; mab.projects.len()];
            let opt = mab.optimal_value(&init);
            let git = mab.gittins_policy_value(&init);
            assert!(
                (opt - git).abs() < 1e-6,
                "trial {trial}: optimal {opt} vs Gittins {git}"
            );
        }
    }

    #[test]
    fn gittins_beats_myopic_when_exploration_matters() {
        // Project A: constant small reward.  Project B: starts with zero
        // reward but leads to a jackpot state.  Myopic never touches B;
        // Gittins does when beta is large.
        let a = BanditProject::new(vec![0.4], vec![vec![(0, 1.0)]]);
        let b = BanditProject::new(vec![0.0, 1.0], vec![vec![(1, 1.0)], vec![(1, 1.0)]]);
        let mab = MultiArmedBandit::new(vec![a, b], 0.95);
        let init = [0usize, 0];
        let opt = mab.optimal_value(&init);
        let git = mab.gittins_policy_value(&init);
        let myopic = mab.myopic_policy_value(&init);
        assert!((opt - git).abs() < 1e-6);
        assert!(
            git > myopic + 1.0,
            "Gittins {git} should clearly beat myopic {myopic}"
        );
    }

    #[test]
    fn deteriorating_projects_gittins_still_optimal() {
        let projects = vec![deteriorating_project(3, 0.5), deteriorating_project(4, 0.3)];
        let mab = MultiArmedBandit::new(projects, 0.85);
        let init = [0usize, 0];
        let opt = mab.optimal_value(&init);
        let git = mab.gittins_policy_value(&init);
        assert!((opt - git).abs() < 1e-6, "optimal {opt} vs Gittins {git}");
    }
}

//! Fast smoke test of the crate's headline computation: the Gittins index.
//! For a project paying a constant reward `r` in every state, the index is
//! exactly `r` regardless of the transition structure or discount.

use ss_bandits::gittins::gittins_indices_vwb;
use ss_bandits::project::BanditProject;

#[test]
fn gittins_smoke() {
    let r = 0.7;
    let project = BanditProject::new(
        vec![r; 3],
        vec![
            vec![(0, 0.2), (1, 0.5), (2, 0.3)],
            vec![(0, 1.0)],
            vec![(1, 0.6), (2, 0.4)],
        ],
    );
    let indices = gittins_indices_vwb(&project, 0.9);
    assert_eq!(indices.len(), 3);
    for (s, &g) in indices.iter().enumerate() {
        assert!(
            (g - r).abs() < 1e-9,
            "state {s}: Gittins {g} vs constant reward {r}"
        );
    }
}

//! Throughput of the parallel replication engine: threads x replication
//! counts over a CPU-bound replication body (experiment E21's microscale
//! counterpart).  On a multi-core host the per-iteration time should fall
//! roughly linearly with the thread count; the values stay bit-identical by
//! the pool's determinism contract.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use ss_sim::pool::ThreadPool;
use ss_sim::replication::run_replications_parallel;

fn replication_body(_i: usize, rng: &mut ChaCha8Rng) -> f64 {
    (0..400).map(|_| rng.gen::<f64>()).sum()
}

fn bench_parallel_replications(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_replications");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for &threads in &[1usize, 2, 4] {
        let pool = ThreadPool::new(threads);
        for &reps in &[100usize, 500] {
            group.bench_with_input(
                BenchmarkId::new(format!("threads_{threads}"), reps),
                &reps,
                |b, &reps| {
                    b.iter(|| {
                        pool.install(|| run_replications_parallel(reps, 42, replication_body))
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_replications);
criterion_main!(benches);

//! Benchmarks of batch-scheduling policy evaluation: the closed-form WSEPT
//! value, the exhaustive optimum, and the exact exponential parallel-machine
//! DP (experiments E1/E3/E4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ss_batch::exact_exp::{
    list_policy_flowtime, optimal_flowtime, sept_order_exp, ExpParallelInstance,
};
use ss_batch::policies::wsept_order;
use ss_batch::single_machine::{exhaustive_optimal_order, expected_weighted_flowtime};
use ss_bench::workloads::batch_instance;
use ss_core::instance::InstanceFamily;

fn bench_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_indices");
    group.sample_size(15);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &n in &[50usize, 200, 1000] {
        let inst = batch_instance(n, InstanceFamily::Mixed, 5000 + n as u64);
        group.bench_with_input(BenchmarkId::new("wsept_closed_form", n), &n, |b, _| {
            b.iter(|| expected_weighted_flowtime(&inst, &wsept_order(&inst)))
        });
    }
    for &n in &[6usize, 8] {
        let inst = batch_instance(n, InstanceFamily::Mixed, 6000 + n as u64);
        group.bench_with_input(BenchmarkId::new("exhaustive_optimum", n), &n, |b, _| {
            b.iter(|| exhaustive_optimal_order(&inst))
        });
    }
    for &n in &[8usize, 12, 16] {
        let rates: Vec<f64> = (1..=n).map(|i| 0.3 + 0.2 * i as f64).collect();
        let exp = ExpParallelInstance::unweighted(rates);
        group.bench_with_input(BenchmarkId::new("exp_dp_sept_value", n), &n, |b, _| {
            b.iter(|| list_policy_flowtime(&exp, &sept_order_exp(&exp), 3))
        });
        if n <= 12 {
            group.bench_with_input(BenchmarkId::new("exp_dp_optimal", n), &n, |b, _| {
                b.iter(|| optimal_flowtime(&exp, 3))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);

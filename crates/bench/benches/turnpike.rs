//! Benchmark of a single turnpike sweep point (experiment E6): WSEPT list
//! simulation on parallel machines as the job count grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ss_batch::parallel::{evaluate_list_policy, ParallelMetric};
use ss_batch::policies::wsept_order;
use ss_bench::workloads::batch_instance;
use ss_core::instance::InstanceFamily;

fn bench_turnpike(c: &mut Criterion) {
    let mut group = c.benchmark_group("turnpike_point");
    group.sample_size(15);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for &n in &[50usize, 200, 800] {
        let inst = batch_instance(n, InstanceFamily::Exponential, 7000 + n as u64);
        let order = wsept_order(&inst);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                evaluate_list_policy(&inst, &order, 4, ParallelMetric::WeightedFlowtime, 200, 1)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_turnpike);
criterion_main!(benches);

//! Benchmark of the oracle cross-validation corpus (`ss-verify`): how fast
//! the full fast-budget corpus runs at different pool sizes.  The corpus is
//! the same one CI's `verify --check` gate executes, so this tracks the
//! cost of the determinism gate itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ss_sim::pool;
use ss_verify::corpus::generate_corpus;
use ss_verify::run::run_corpus;
use ss_verify::scenario::Budget;
use ss_verify::DEFAULT_SEED;

fn bench_verify_corpus(c: &mut Criterion) {
    let corpus = generate_corpus(DEFAULT_SEED);
    let budget = Budget::check();
    let mut group = c.benchmark_group("verify_corpus");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for &threads in &[1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| b.iter(|| pool::with_threads(threads, || run_corpus(&corpus, &budget))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_verify_corpus);
criterion_main!(benches);

//! Benchmarks of the three Gittins index algorithms as the state count
//! grows (supports the complexity discussion of experiment E8).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ss_bandits::gittins::{
    gittins_indices_calibration, gittins_indices_restart, gittins_indices_vwb,
};
use ss_bench::workloads::bandit_project;

fn bench_gittins(c: &mut Criterion) {
    let mut group = c.benchmark_group("gittins_index");
    group.sample_size(15);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &k in &[5usize, 10, 20, 40] {
        let project = bandit_project(k, 9000 + k as u64);
        group.bench_with_input(BenchmarkId::new("vwb", k), &k, |b, _| {
            b.iter(|| gittins_indices_vwb(&project, 0.9))
        });
        group.bench_with_input(BenchmarkId::new("restart", k), &k, |b, _| {
            b.iter(|| gittins_indices_restart(&project, 0.9))
        });
        if k <= 20 {
            group.bench_with_input(BenchmarkId::new("calibration", k), &k, |b, _| {
                b.iter(|| gittins_indices_calibration(&project, 0.9))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_gittins);
criterion_main!(benches);

//! Benchmarks of the branching-bandit index computation and extinction
//! simulator (experiment E18) and the setup-threshold simulator and
//! square-root rule (experiment E20).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use ss_bandits::branching::offspring::OffspringDist;
use ss_bandits::branching::{simulate_branching, BranchingBandit};
use ss_bench::workloads::{branching_three_class, setup_two_classes};
use ss_distributions::{dyn_dist, Deterministic, Exponential};
use ss_queueing::setups::{simulate_setup_policy, sqrt_rule_thresholds, SetupPolicy};

/// A subcritical chain-feedback branching bandit with `n` classes.
fn chain_bandit(n: usize) -> BranchingBandit {
    let services = (0..n)
        .map(|i| dyn_dist(Exponential::with_mean(0.5 + 0.1 * i as f64)))
        .collect();
    let costs = (1..=n).map(|i| i as f64).collect();
    let offspring = (0..n)
        .map(|i| {
            if i + 1 < n {
                OffspringDist::feedback(n, i + 1, 0.45)
            } else {
                OffspringDist::none(n)
            }
        })
        .collect();
    BranchingBandit::new(services, costs, offspring)
}

fn bench_branching(c: &mut Criterion) {
    let mut group = c.benchmark_group("branching_bandit");
    group.sample_size(15);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &n in &[3usize, 6, 10, 16] {
        let bandit = chain_bandit(n);
        group.bench_with_input(BenchmarkId::new("indices", n), &n, |b, _| {
            b.iter(|| bandit.indices())
        });
    }
    let bandit = branching_three_class();
    let order = bandit.index_order();
    group.bench_function("simulate_1000_extinctions", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            let mut total = 0.0;
            for _ in 0..1000 {
                total += simulate_branching(&bandit, &[2, 2, 1], &order, 1_000_000, &mut rng)
                    .total_holding_cost;
            }
            total
        })
    });
    group.finish();
}

fn bench_setups(c: &mut Criterion) {
    let mut group = c.benchmark_group("setup_thresholds");
    group.sample_size(15);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let classes = setup_two_classes();
    group.bench_function("sqrt_rule_thresholds", |b| {
        b.iter(|| sqrt_rule_thresholds(&classes, &[0.6, 0.6]))
    });
    let setup: Vec<_> = (0..2).map(|_| dyn_dist(Deterministic::new(0.6))).collect();
    let thresholds = sqrt_rule_thresholds(&classes, &[0.6, 0.6]);
    for (label, policy) in [
        (
            "threshold",
            SetupPolicy::Threshold {
                thresholds: thresholds.clone(),
            },
        ),
        ("exhaustive", SetupPolicy::Exhaustive),
        ("cmu_every_job", SetupPolicy::CmuEveryJob),
    ] {
        group.bench_function(format!("simulate_10k_{label}"), |b| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(9);
                simulate_setup_policy(&classes, &setup, &policy, 10_000.0, 100.0, &mut rng)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_branching, bench_setups);
criterion_main!(benches);

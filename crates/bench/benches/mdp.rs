//! Benchmarks of the MDP solvers (value iteration vs policy iteration) on
//! random dense MDPs — the "curse of dimensionality" baseline the survey
//! contrasts index policies against.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use ss_mdp::mdp::{Mdp, MdpBuilder};
use ss_mdp::policy_iteration::policy_iteration;
use ss_mdp::value_iteration::{value_iteration, ValueIterationOptions};

fn random_mdp(states: usize, actions: usize, seed: u64) -> Mdp {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = MdpBuilder::new(states);
    for s in 0..states {
        for _ in 0..actions {
            // Sparse transitions to 3 random states.
            let mut probs = [rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>()];
            let total: f64 = probs.iter().sum();
            for p in &mut probs {
                *p /= total;
            }
            let transitions: Vec<(usize, f64)> = probs
                .iter()
                .map(|&p| (rng.gen_range(0..states), p))
                .collect();
            // Merge duplicate targets by renormalising through the builder's
            // tolerance (duplicates are allowed because probabilities sum to 1).
            b.add_action(s, rng.gen_range(0.0..1.0), transitions);
        }
    }
    b.build()
}

fn bench_mdp(c: &mut Criterion) {
    let mut group = c.benchmark_group("mdp_solvers");
    group.sample_size(15);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &states in &[50usize, 200, 800] {
        let mdp = random_mdp(states, 4, 11);
        group.bench_with_input(BenchmarkId::new("value_iteration", states), &mdp, |b, m| {
            b.iter(|| {
                value_iteration(
                    m,
                    &ValueIterationOptions {
                        discount: 0.9,
                        tolerance: 1e-8,
                        max_iterations: 100_000,
                    },
                )
            })
        });
        if states <= 200 {
            group.bench_with_input(
                BenchmarkId::new("policy_iteration", states),
                &mdp,
                |b, m| b.iter(|| policy_iteration(m, 0.9)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_mdp);
criterion_main!(benches);

//! Benchmark of the service-fabric scenario suite (`ss-fabric`): how fast
//! the fast-budget suite runs at different pool sizes.  The suite is the
//! same one CI's `fabric --check` gate executes, so this tracks the cost
//! of the fabric determinism gate; a second group times one full-budget
//! replication of each scenario to expose per-scenario simulation cost
//! (the Whittle scenario includes its index tabulation via the prebuilt
//! disciplines, so tabulation is *not* in the timed path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ss_fabric::{run_fabric_with, run_suite, scenario_list, Budget, DEFAULT_SEED};
use ss_sim::pool;

fn bench_fabric_suite(c: &mut Criterion) {
    let budget = Budget::check();
    let mut group = c.benchmark_group("fabric_suite");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for &threads in &[1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| pool::with_threads(threads, || run_suite(DEFAULT_SEED, &budget)))
            },
        );
    }
    group.finish();
}

fn bench_fabric_scenarios(c: &mut Criterion) {
    let scenarios = scenario_list(&Budget::full());
    let mut group = c.benchmark_group("fabric_scenario");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for cfg in &scenarios {
        let disciplines = cfg.build_disciplines();
        group.bench_with_input(BenchmarkId::from_parameter(&cfg.name), cfg, |b, cfg| {
            b.iter(|| run_fabric_with(cfg, &disciplines, 0x5EED))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fabric_suite, bench_fabric_scenarios);
criterion_main!(benches);

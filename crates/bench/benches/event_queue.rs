//! Benchmarks of the discrete-event calendar (the inner data structure of
//! every simulator in the workspace).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use ss_sim::events::EventQueue;

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.sample_size(15);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &n in &[1_000usize, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::new("schedule_then_drain", n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(3);
                let mut q = EventQueue::new();
                for i in 0..n {
                    q.schedule(rng.gen::<f64>() * 1000.0, i);
                }
                let mut last = 0.0;
                while let Some((t, _)) = q.pop() {
                    last = t;
                }
                last
            })
        });
        group.bench_with_input(BenchmarkId::new("hold_model", n), &n, |b, &n| {
            // Classic hold model: steady-state queue of n events, repeatedly
            // pop the earliest and push a replacement.
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(4);
                let mut q = EventQueue::new();
                for i in 0..n {
                    q.schedule(rng.gen::<f64>() * 1000.0, i);
                }
                for i in 0..n {
                    let (t, _) = q.pop().unwrap();
                    q.schedule(t + rng.gen::<f64>(), i);
                }
                q.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_event_queue);
criterion_main!(benches);

//! Benchmarks of the `ss-index` decision-serving layer: per-decision trait
//! calls vs batched slab lookups vs no-serving-layer recomputation, across
//! the shard ladder (see `ss_bench::index_service` for the shared
//! workloads and the committed perf budget).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ss_bench::index_service::{
    lookup_batched, lookup_single, query_stream, recompute, shards, QUERY_SEED,
};

fn bench_index_service(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_service");
    group.sample_size(15);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for s in shards() {
        let stream = query_stream(QUERY_SEED, 100_000, s.classes.len());
        group.bench_with_input(BenchmarkId::new("single", s.name), &s, |b, s| {
            b.iter(|| lookup_single(&s.table, &stream))
        });
        let mut buf = Vec::new();
        group.bench_with_input(BenchmarkId::new("batched", s.name), &s, |b, s| {
            b.iter(|| lookup_batched(&s.table, &stream, 1024, &mut buf))
        });
        // The no-serving-layer baseline is ~5 orders of magnitude slower
        // per decision; a short prefix keeps the bench's wall-clock sane.
        let prefix = &stream[..64];
        group.bench_with_input(BenchmarkId::new("recompute", s.name), &s, |b, s| {
            b.iter(|| recompute(&s.classes, s.clock, prefix))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_index_service);
criterion_main!(benches);

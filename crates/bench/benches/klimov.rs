//! Benchmarks of Klimov's index algorithm and the feedback-queue simulator
//! (experiment E12).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use ss_bench::workloads::klimov_three_class;
use ss_distributions::{dyn_dist, Exponential};
use ss_queueing::klimov::{klimov_indices, simulate_klimov, KlimovNetwork};

fn random_network(n: usize) -> KlimovNetwork {
    // A ring-feedback network with n classes and load well below one.
    let arrivals = vec![0.3 / n as f64; n];
    let services = (0..n)
        .map(|i| dyn_dist(Exponential::with_mean(0.5 + 0.1 * i as f64)))
        .collect();
    let costs = (1..=n).map(|i| i as f64).collect();
    let mut routing = vec![vec![0.0; n]; n];
    for (i, row) in routing.iter_mut().enumerate() {
        row[(i + 1) % n] = 0.4;
    }
    KlimovNetwork::new(arrivals, services, costs, routing)
}

fn bench_klimov(c: &mut Criterion) {
    let mut group = c.benchmark_group("klimov");
    group.sample_size(15);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &n in &[3usize, 6, 10, 16] {
        let net = random_network(n);
        group.bench_with_input(BenchmarkId::new("indices", n), &n, |b, _| {
            b.iter(|| klimov_indices(&net))
        });
    }
    let net = klimov_three_class();
    group.bench_function("simulate_10k_time_units", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            simulate_klimov(&net, &[1, 2, 0], 10_000.0, 100.0, &mut rng)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_klimov);
criterion_main!(benches);

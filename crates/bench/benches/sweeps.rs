//! Benchmarks of the pool-parallelised Monte-Carlo sweeps (experiments E6 /
//! E13 / E10) at 1 vs N pool threads — the microscale companion of the
//! `sweeps` binary that records `BENCH_sweeps.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ss_bench::sweeps::sweep_workloads;
use ss_sim::pool;

fn bench_sweeps(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweeps");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for w in sweep_workloads() {
        for threads in [1usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(w.name, threads),
                &threads,
                |b, &threads| b.iter(|| pool::with_threads(threads, w.run)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sweeps);
criterion_main!(benches);

//! Benchmarks of Whittle-index computation and the LP relaxation bound for
//! restless bandits (experiment E10).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ss_bandits::instances::maintenance_project;
use ss_bandits::restless::{relaxation_bound_identical, whittle_indices, whittle_relaxation_bound};

fn bench_whittle(c: &mut Criterion) {
    let mut group = c.benchmark_group("whittle");
    group.sample_size(15);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &k in &[4usize, 6, 8] {
        let project = maintenance_project(k, 0.35, 0.4, 0.95);
        group.bench_with_input(BenchmarkId::new("indices", k), &k, |b, _| {
            b.iter(|| whittle_indices(&project))
        });
        group.bench_with_input(BenchmarkId::new("relaxation_identical", k), &k, |b, _| {
            b.iter(|| relaxation_bound_identical(&project, 0.3))
        });
    }
    let project = maintenance_project(5, 0.35, 0.4, 0.95);
    for &n in &[4usize, 8, 16] {
        let projects: Vec<_> = (0..n).map(|_| project.clone()).collect();
        group.bench_with_input(BenchmarkId::new("relaxation_lp_full", n), &n, |b, _| {
            b.iter(|| whittle_relaxation_bound(&projects, (n / 3).max(1)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_whittle);
criterion_main!(benches);

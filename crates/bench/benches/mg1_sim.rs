//! Benchmarks of the multiclass M/G/1 simulator under the three
//! disciplines (throughput of the core event loop; experiment E11).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use ss_bench::workloads::mg1_three_classes;
use ss_queueing::cmu::cmu_order;
use ss_queueing::mg1::{simulate_mg1, Discipline, Mg1Config};

fn bench_mg1(c: &mut Criterion) {
    let classes = mg1_three_classes(1.0);
    let order = cmu_order(&classes);
    let mut group = c.benchmark_group("mg1_sim_10k_time_units");
    group.sample_size(15);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let disciplines: Vec<(&str, Discipline)> = vec![
        ("fifo", Discipline::Fifo),
        (
            "nonpreemptive_cmu",
            Discipline::NonpreemptivePriority(order.clone()),
        ),
        ("preemptive_cmu", Discipline::PreemptivePriority(order)),
    ];
    for (name, discipline) in disciplines {
        group.bench_with_input(BenchmarkId::from_parameter(name), &discipline, |b, d| {
            b.iter(|| {
                let config = Mg1Config {
                    classes: classes.clone(),
                    discipline: d.clone(),
                    horizon: 10_000.0,
                    warmup: 100.0,
                };
                let mut rng = ChaCha8Rng::seed_from_u64(7);
                simulate_mg1(&config, &mut rng)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mg1);
criterion_main!(benches);

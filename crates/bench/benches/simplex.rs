//! Benchmarks of the dense two-phase simplex solver on randomly generated
//! feasible LPs of growing size (substrate of the Whittle/achievable-region
//! relaxations).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use ss_lp::{LinearProgram, Relation};

fn random_feasible_lp(vars: usize, constraints: usize, seed: u64) -> LinearProgram {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let objective: Vec<f64> = (0..vars).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut lp = LinearProgram::minimize(objective);
    // `a x <= b` with nonnegative a and positive b is always feasible at 0.
    for _ in 0..constraints {
        let coeffs: Vec<f64> = (0..vars).map(|_| rng.gen_range(0.0..1.0)).collect();
        let rhs = rng.gen_range(1.0..5.0);
        lp.add_constraint(coeffs, Relation::Le, rhs);
    }
    // A few >= rows to force Phase I to do real work.
    for _ in 0..(constraints / 4).max(1) {
        let coeffs: Vec<f64> = (0..vars).map(|_| rng.gen_range(0.0..1.0)).collect();
        lp.add_constraint(coeffs, Relation::Ge, 0.5);
    }
    lp
}

fn bench_simplex(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex");
    group.sample_size(15);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &(vars, cons) in &[(10usize, 8usize), (30, 20), (60, 40), (120, 80)] {
        let lp = random_feasible_lp(vars, cons, 42);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{vars}x{cons}")),
            &lp,
            |b, lp| b.iter(|| lp.solve().unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simplex);
criterion_main!(benches);

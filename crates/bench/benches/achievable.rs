//! Benchmarks of the achievable-region machinery (experiment E17) and the
//! marginal-productivity-index computation (experiment E19): the region LP
//! with its `2^N` subset constraints, the adaptive-greedy index algorithm on
//! Klimov networks, and the MPI adaptive greedy against the Whittle
//! bisection it replaces.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ss_bandits::instances::maintenance_project;
use ss_bandits::mpi::marginal_productivity_indices;
use ss_bandits::restless::whittle_indices;
use ss_bench::workloads::mg1_three_classes;
use ss_core::job::JobClass;
use ss_distributions::{dyn_dist, Erlang, Exponential};
use ss_queueing::achievable_region::{klimov_via_adaptive_greedy, region_lp, vertex_performance};
use ss_queueing::klimov::KlimovNetwork;

/// A stable `n`-class M/G/1 instance with heterogeneous services.
fn classes(n: usize) -> Vec<JobClass> {
    (0..n)
        .map(|j| {
            let mean = 0.5 + 0.15 * j as f64;
            let dist = if j % 2 == 0 {
                dyn_dist(Exponential::with_mean(mean))
            } else {
                dyn_dist(Erlang::with_mean(2, mean))
            };
            JobClass::new(j, 0.6 / (n as f64 * mean), dist, 1.0 + j as f64)
        })
        .collect()
}

/// A ring-feedback Klimov network with `n` classes.
fn ring_network(n: usize) -> KlimovNetwork {
    let arrivals = vec![0.3 / n as f64; n];
    let services = (0..n)
        .map(|i| dyn_dist(Exponential::with_mean(0.5 + 0.1 * i as f64)))
        .collect();
    let costs = (1..=n).map(|i| i as f64).collect();
    let mut routing = vec![vec![0.0; n]; n];
    for (i, row) in routing.iter_mut().enumerate() {
        row[(i + 1) % n] = 0.4;
    }
    KlimovNetwork::new(arrivals, services, costs, routing)
}

fn bench_achievable(c: &mut Criterion) {
    let mut group = c.benchmark_group("achievable_region");
    group.sample_size(15);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    // Region LP: constraint count doubles per extra class.
    for &n in &[3usize, 5, 7, 9] {
        let cls = classes(n);
        group.bench_with_input(BenchmarkId::new("region_lp", n), &n, |b, _| {
            b.iter(|| region_lp(&cls))
        });
    }

    // Vertex evaluation (nested subset differences) for the 3-class E11 instance.
    let cls3 = mg1_three_classes(1.0);
    group.bench_function("vertex_performance_3_classes", |b| {
        b.iter(|| vertex_performance(&cls3, &[1, 2, 0]))
    });

    // Adaptive-greedy Klimov indices through the generic framework.
    for &n in &[3usize, 6, 10] {
        let net = ring_network(n);
        group.bench_with_input(BenchmarkId::new("adaptive_greedy_klimov", n), &n, |b, _| {
            b.iter(|| klimov_via_adaptive_greedy(&net))
        });
    }
    group.finish();

    // MPI adaptive greedy vs Whittle bisection: the ablation the new module
    // enables — same indices, different algorithm and cost profile.
    let mut group = c.benchmark_group("mpi_vs_whittle");
    group.sample_size(15);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &k in &[4usize, 6, 8] {
        let project = maintenance_project(k, 0.35, 0.4, 0.95);
        group.bench_with_input(BenchmarkId::new("mpi_adaptive_greedy", k), &k, |b, _| {
            b.iter(|| marginal_productivity_indices(&project, 1e-9))
        });
        group.bench_with_input(BenchmarkId::new("whittle_bisection", k), &k, |b, _| {
            b.iter(|| whittle_indices(&project))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_achievable);
criterion_main!(benches);

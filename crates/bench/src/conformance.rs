//! Canonical artifact renderers for the `ss-conform` subsystem.
//!
//! The `parallel_replications` and `sweeps` binaries historically asserted
//! serial-vs-parallel bit-identity *internally* (`--check`), which means the
//! invariant only existed as a pass/fail bit.  These renderers turn the same
//! workloads into deterministic text artifacts — every `f64` printed with
//! its raw bit pattern plus a human-readable mantissa — so the conformance
//! harness can byte-diff them across replicas, localize the first divergent
//! byte, and pin them as golden fixtures.  A last-ulp drift that `{:.6}`
//! formatting would round away is a full hex digit here.

use crate::experiments::{all_experiments, parallel_replication_workload, run_experiments};
use crate::sweeps::sweep_workloads;

/// Append `label: <bits> <value>` for one value.
fn push_value_line(out: &mut String, index: usize, v: f64) {
    out.push_str(&format!("  {index:04}: {:016x} {v:.17e}\n", v.to_bits()));
}

/// The replication-engine artifact: per-replication values of the E21
/// list-schedule workload (the `parallel_replications --check` workload) on
/// the current pool, bit-exact.
pub fn replication_values_report(replications: usize) -> String {
    let summary = parallel_replication_workload(replications);
    let mut out = format!("workload: parallel_replications n={replications}\n");
    for (i, &v) in summary.values.iter().enumerate() {
        push_value_line(&mut out, i, v);
    }
    out.push_str(&format!(
        "summary: mean={:016x} std_dev={:016x} ci95={:016x}\n",
        summary.mean.to_bits(),
        summary.std_dev.to_bits(),
        summary.ci95.to_bits()
    ));
    out
}

/// The sweep-engine artifact: every `f64` the turnpike / heavy-traffic /
/// asymptotic sweeps produce on the current pool, bit-exact, in point order.
pub fn sweep_values_report() -> String {
    let mut out = String::new();
    for w in sweep_workloads() {
        let values = (w.run)();
        out.push_str(&format!("sweep {}: {} values\n", w.name, values.len()));
        for (i, &v) in values.iter().enumerate() {
            push_value_line(&mut out, i, v);
        }
    }
    out
}

/// The experiment-harness artifact: the selected experiments' report bodies
/// in E-id order with every `[`-prefixed wall-clock line stripped — exactly
/// the text CI's old `grep -v '^\['` diff compared across
/// `SS_THREADS`/`--jobs` values.
///
/// Timing-sensitive experiments (E21 embeds its own measured thread-sweep
/// wall-clocks in the report body) are rejected: their reports vary run to
/// run by construction and can never be conformance artifacts.  A panicking
/// or unknown experiment is an error, not an artifact — a `PANICKED:` line
/// is deterministic and would byte-diff clean across replicas.
pub fn harness_subset_report(ids: &[String], jobs: usize) -> Result<String, String> {
    let experiments = all_experiments();
    let selected = ids
        .iter()
        .map(|id| {
            let e = experiments
                .iter()
                .find(|e| e.id == *id)
                .ok_or_else(|| format!("unknown experiment id {id:?}"))?;
            if e.timing_sensitive() {
                return Err(format!(
                    "experiment {id} is timing-sensitive (its report embeds wall-clocks) \
                     and cannot be a conformance artifact"
                ));
            }
            Ok(e)
        })
        .collect::<Result<Vec<_>, String>>()?;
    let reports = run_experiments(&selected, jobs);
    let mut out = String::new();
    for r in &reports {
        if r.panicked {
            return Err(format!("experiment {} panicked: {}", r.id, r.report.trim()));
        }
        out.push_str(&format!("== {} {}\n", r.id, r.description));
        for line in r.report.lines() {
            if !line.starts_with('[') {
                out.push_str(line);
                out.push('\n');
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_subset_rejects_unknown_and_timing_sensitive_ids() {
        let err = harness_subset_report(&["E999".to_string()], 1).unwrap_err();
        assert!(err.contains("unknown experiment id"), "{err}");
        let err = harness_subset_report(&["E21".to_string()], 1).unwrap_err();
        assert!(err.contains("timing-sensitive"), "{err}");
    }

    #[test]
    fn value_lines_are_bit_exact() {
        let mut out = String::new();
        push_value_line(&mut out, 3, -0.0);
        // -0.0 and 0.0 differ in the rendered artifact even though `==`
        // would call them equal — the whole point of printing raw bits.
        assert_eq!(out, "  0003: 8000000000000000 -0.00000000000000000e0\n");
        let mut plus = String::new();
        push_value_line(&mut plus, 3, 0.0);
        assert_ne!(out, plus);
    }
}

//! Re-export of the workspace's shared JSON helpers.
//!
//! The helpers started here; they moved to [`ss_sim::json`] once the
//! `verify` binary (ss-verify, which ss-bench depends on) needed the same
//! escaper — a single implementation keeps every binary's emitted JSON
//! consistent.  This module stays so the ss-bench binaries' `json::escape`
//! call sites keep working unchanged.

pub use ss_sim::json::{escape, host_env_fields, unix_time};

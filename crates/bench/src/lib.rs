//! # ss-bench — benchmarks and the experiment harness
//!
//! Three deliverables live here:
//!
//! * the **experiment harness** ([`experiments`]) — one function per
//!   experiment E1–E21 of `DESIGN.md`; each regenerates the corresponding
//!   table/series of `EXPERIMENTS.md`.  Run all of them with
//!   `cargo run --release -p ss-bench --bin experiments`, or a subset with
//!   `cargo run --release -p ss-bench --bin experiments -- E7 E10`;
//! * the **Criterion benchmarks** (`benches/`) — micro/meso benchmarks of
//!   the computational kernels (Gittins/Whittle/Klimov index computation,
//!   the simplex solver, MDP value iteration, the event calendar, the
//!   M/G/1 simulator, batch index evaluation, the turnpike sweep, and the
//!   parallel replication engine's threads × replications throughput);
//! * the **`parallel_replications` binary** — records the serial-vs-parallel
//!   wall-clock trajectory to `BENCH_parallel_replications.json` and gates
//!   the pool's serial/parallel bit-identity (`--check`, used by CI).
//!
//! [`workloads`] holds the shared instance builders so that the harness and
//! the benches exercise exactly the same configurations.

pub mod experiments;
pub mod workloads;

//! # ss-bench — benchmarks and the experiment harness
//!
//! Three deliverables live here:
//!
//! * the **experiment harness** ([`experiments`]) — one function per
//!   experiment E1–E22 of `DESIGN.md`; each regenerates the corresponding
//!   table/series of `EXPERIMENTS.md`.  Run all of them with
//!   `cargo run --release -p ss-bench --bin experiments` (concurrently on
//!   `--jobs` pool lanes, reports buffered and printed in E-id order), a
//!   subset with `-- E7 E10`, a timing summary with `-- --json`, or the
//!   whole `EXPERIMENTS.md` document with `-- --markdown`;
//! * the **Criterion benchmarks** (`benches/`) — micro/meso benchmarks of
//!   the computational kernels (Gittins/Whittle/Klimov index computation,
//!   the simplex solver, MDP value iteration, the event calendar, the
//!   M/G/1 simulator, batch index evaluation, the turnpike sweep, the
//!   Monte-Carlo sweep kernels, and the parallel replication engine's
//!   threads × replications throughput);
//! * the **`parallel_replications` and `sweeps` binaries** — record the
//!   serial-vs-parallel wall-clock trajectories to
//!   `BENCH_parallel_replications.json` / `BENCH_sweeps.json` and gate the
//!   pool's serial/parallel bit-identity (`--check`, used by CI; `sweeps`
//!   covers the turnpike / heavy-traffic / asymptotic sweeps plus the full
//!   concurrent E1–E22 harness).
//!
//! [`workloads`] holds the shared instance builders so that the harness and
//! the benches exercise exactly the same configurations.

pub mod conformance;
pub mod experiments;
pub mod index_service;
pub mod json;
pub mod sweeps;
pub mod workloads;

//! Shared workloads of the `index_service` bench and binary: sharded
//! Whittle-backed [`IndexTable`]s, deterministic query streams, and the
//! three decision-serving paths under comparison —
//!
//! * **single**: one trait-object `class_index` call per decision (the
//!   fabric's `select_class` scan);
//! * **batched**: [`IndexTable::lookup_batch`] over a reused buffer (the
//!   decision-serving fast path);
//! * **recompute**: no serving layer at all — every decision re-runs the
//!   discounted Whittle solve for the queried class, which is what the
//!   per-call solver adapters would cost if the indices were not
//!   tabulated.  This is the denominator of the committed perf budget.
//!
//! Every path folds its answers into an xor-of-bits checksum, so the
//! binary can assert the three paths agree bit-for-bit on the same stream
//! before trusting any throughput ratio.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use ss_bandits::discipline::{
    discounted_whittle_table, whittle_uniformization_clock, WHITTLE_DISCOUNT,
};
use ss_core::discipline::Discipline;
use ss_core::job::JobClass;
use ss_distributions::{dyn_dist, Exponential};
use ss_index::{IndexService, IndexTable, TableKind, TierSpec};

/// Whittle truncation boundary used by every shard (matches the fabric's
/// `WHITTLE_TRUNCATION`, so stride = 41).
pub const TRUNCATION: usize = 40;

/// Master seed of the query streams.
pub const QUERY_SEED: u64 = 0x1DE7_5EED;

/// One benchmark shard: a tier's classes and their tabulated indices.
pub struct IndexShard {
    pub name: &'static str,
    pub classes: Vec<JobClass>,
    pub clock: f64,
    pub table: IndexTable,
}

fn shard(name: &'static str, n_classes: usize) -> IndexShard {
    let classes: Vec<JobClass> = (0..n_classes)
        .map(|j| {
            // Distinct rates/costs per class so no two rows collide in the
            // service's caches: the build cost is honest, not memoised.
            let mean = 0.4 + (j % 97) as f64 * 0.013;
            let arrival = 0.05 + (j % 89) as f64 * 0.007;
            let cost = 0.25 + (j % 101) as f64 * 0.125;
            JobClass::new(j, arrival, dyn_dist(Exponential::with_mean(mean)), cost)
        })
        .collect();
    let clock = whittle_uniformization_clock(&classes);
    let table = IndexService::new().build(&TierSpec {
        kind: TableKind::Whittle {
            truncation: TRUNCATION,
        },
        classes: classes.clone(),
    });
    IndexShard {
        name,
        classes,
        clock,
        table,
    }
}

/// The shard ladder: a small tier, a wide tier, and a tier far larger
/// than any fabric scenario ships, to expose cache effects of the slab.
pub fn shards() -> Vec<IndexShard> {
    vec![
        shard("classes=4", 4),
        shard("classes=64", 64),
        shard("classes=1024", 1024),
    ]
}

/// Deterministic query stream: `n` uniform `(class, queue_len)` pairs with
/// lengths spanning `0..=2·truncation` — in and beyond the tabulated
/// range, exercising the saturating boundary.
pub fn query_stream(seed: u64, n: usize, n_classes: usize) -> Vec<(u32, u32)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            (
                rng.gen_range(0..n_classes as u32),
                rng.gen_range(0..=(2 * TRUNCATION) as u32),
            )
        })
        .collect()
}

/// Per-decision trait-object path: one `class_index` virtual call per
/// query, answers folded into an xor-of-bits checksum.
pub fn lookup_single(table: &dyn Discipline, queries: &[(u32, u32)]) -> u64 {
    let mut acc = 0u64;
    for &(class, len) in queries {
        acc ^= table.class_index(class as usize, len as usize).to_bits();
    }
    acc
}

/// Batched path: resolve the stream in `chunk`-sized batches through one
/// reused output buffer (steady-state allocation-free).
pub fn lookup_batched(
    table: &IndexTable,
    queries: &[(u32, u32)],
    chunk: usize,
    buf: &mut Vec<f64>,
) -> u64 {
    let mut acc = 0u64;
    for batch in queries.chunks(chunk) {
        for v in table.lookup_batch(batch, buf) {
            acc ^= v.to_bits();
        }
    }
    acc
}

/// No-serving-layer path: every decision re-solves the queried class's
/// discounted Whittle chain from scratch, exactly as the legacy per-call
/// construction would have to without tabulation.  Bit-identical answers
/// to the table (same arithmetic, same `-∞` empty-state pin).
pub fn recompute(classes: &[JobClass], clock: f64, queries: &[(u32, u32)]) -> u64 {
    let mut acc = 0u64;
    for &(class, len) in queries {
        let c = &classes[class as usize];
        let row = discounted_whittle_table(
            c.arrival_rate / clock,
            c.service_rate() / clock,
            c.holding_cost,
            TRUNCATION,
            WHITTLE_DISCOUNT,
        );
        let v = if len == 0 {
            f64::NEG_INFINITY
        } else {
            row[(len as usize).min(TRUNCATION)]
        };
        acc ^= v.to_bits();
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The three serving paths agree bit-for-bit on the same stream, so
    /// the binary's throughput ratios compare equal work.
    #[test]
    fn all_three_paths_share_one_checksum() {
        let s = shard("test", 8);
        let queries = query_stream(QUERY_SEED, 512, s.classes.len());
        let single = lookup_single(&s.table, &queries);
        let mut buf = Vec::new();
        let batched = lookup_batched(&s.table, &queries, 128, &mut buf);
        let recomputed = recompute(&s.classes, s.clock, &queries);
        assert_eq!(single, batched, "batched path diverged from single");
        assert_eq!(single, recomputed, "recompute path diverged from table");
    }

    /// The stream is a pure function of its seed.
    #[test]
    fn query_stream_is_deterministic() {
        assert_eq!(query_stream(7, 100, 16), query_stream(7, 100, 16));
        assert_ne!(query_stream(7, 100, 16), query_stream(8, 100, 16));
    }
}

//! Experiment harness binary.
//!
//! ```text
//! cargo run --release -p ss-bench --bin experiments                 # run everything
//! cargo run --release -p ss-bench --bin experiments -- E7 E10       # run a subset
//! cargo run --release -p ss-bench --bin experiments -- --list       # list experiments
//! cargo run --release -p ss-bench --bin experiments -- --jobs 4     # harness concurrency
//! cargo run --release -p ss-bench --bin experiments -- --json       # timing summary as JSON
//! cargo run --release -p ss-bench --bin experiments -- --markdown   # emit EXPERIMENTS.md
//! ```
//!
//! Experiments run concurrently on `--jobs` pool lanes (default: the
//! workspace pool size, i.e. `SS_THREADS` or the host's parallelism); every
//! report is buffered and printed in E-id order once all runs finish, so the
//! report text is byte-for-byte identical for any `--jobs` value and
//! `--jobs 1` reproduces the historical strictly sequential harness.  Two
//! things vary run to run: the wall-clock lines (`[Ex finished in ...]`,
//! and the `--json` timings), which CI's determinism diff filters out, and
//! E21's report body, which embeds its own measured thread-sweep timings —
//! byte-identity consumers must exclude E21 (CI's diff subset does).
//!
//! A panicking experiment does not abort the harness: its report is
//! replaced by a `PANICKED:` line, everything that finished still prints,
//! and the binary exits nonzero at the end.

use ss_bench::experiments::{all_experiments, markdown_document, run_experiments, Experiment};
use ss_bench::json;

fn usage_error(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!("usage: experiments [--list] [--jobs N] [--json | --markdown] [E1 E2 ...]");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let experiments = all_experiments();

    let mut jobs: Option<usize> = None;
    let mut json_mode = false;
    let mut markdown_mode = false;
    let mut list_mode = false;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list" => list_mode = true,
            "--json" => json_mode = true,
            "--markdown" => markdown_mode = true,
            "--jobs" => {
                let value = it
                    .next()
                    .unwrap_or_else(|| usage_error("--jobs needs a value"));
                match value.parse::<usize>() {
                    Ok(n) if n >= 1 => jobs = Some(n),
                    _ => usage_error(&format!("invalid --jobs value {value:?}")),
                }
            }
            flag if flag.starts_with("--") => usage_error(&format!("unknown flag {flag:?}")),
            id => ids.push(id.to_string()),
        }
    }
    if json_mode && markdown_mode {
        usage_error("--json and --markdown are mutually exclusive");
    }
    if markdown_mode && !ids.is_empty() {
        // The markdown document's header claims the full E1-E22 suite; a
        // subset would silently overwrite EXPERIMENTS.md with partial data.
        usage_error("--markdown regenerates the full document; don't combine it with ids");
    }

    if list_mode {
        for e in &experiments {
            println!("{:<4} {}", e.id, e.description);
        }
        return;
    }

    let selected: Vec<&Experiment> = if ids.is_empty() {
        experiments.iter().collect()
    } else {
        experiments
            .iter()
            .filter(|e| ids.iter().any(|a| a.eq_ignore_ascii_case(e.id)))
            .collect()
    };
    if selected.is_empty() {
        eprintln!("no experiment matches {ids:?}; use --list to see the available ids");
        std::process::exit(1);
    }

    let jobs = jobs.unwrap_or_else(ss_sim::pool::num_threads);
    let start = std::time::Instant::now();
    let reports = run_experiments(&selected, jobs);
    let total = start.elapsed();
    let panicked: Vec<&str> = reports
        .iter()
        .filter(|r| r.panicked)
        .map(|r| r.id)
        .collect();

    if markdown_mode {
        // Never emit a partial document: this mode's stdout is usually
        // redirected straight over EXPERIMENTS.md.
        if !panicked.is_empty() {
            eprintln!("refusing to emit markdown: experiments panicked: {panicked:?}");
            std::process::exit(1);
        }
        print!("{}", markdown_document(&reports));
        return;
    }

    if json_mode {
        let mut body = String::from("{\n");
        body.push_str("  \"harness\": \"experiments\",\n");
        body.push_str(&format!("  \"jobs\": {jobs},\n"));
        body.push_str(&json::host_env_fields());
        body.push_str(&format!(
            "  \"total_wall_ms\": {:.3},\n",
            total.as_secs_f64() * 1e3
        ));
        body.push_str("  \"experiments\": [\n");
        for (i, r) in reports.iter().enumerate() {
            body.push_str(&format!(
                "    {{\"id\": \"{}\", \"description\": \"{}\", \"wall_ms\": {:.3}, \"panicked\": {}}}{}\n",
                json::escape(r.id),
                json::escape(r.description),
                r.wall.as_secs_f64() * 1e3,
                r.panicked,
                if i + 1 < reports.len() { "," } else { "" }
            ));
        }
        body.push_str("  ]\n}");
        println!("{body}");
    } else {
        for r in &reports {
            println!("\n================================================================");
            println!("{} — {}", r.id, r.description);
            println!("================================================================\n");
            println!("{}", r.report);
            println!("[{} finished in {:.1?}]", r.id, r.wall);
        }
        println!("\n[harness total: {total:.1?} with --jobs {jobs}]");
    }
    if !panicked.is_empty() {
        eprintln!("experiments panicked: {panicked:?}");
        std::process::exit(1);
    }
}

//! Experiment harness binary.
//!
//! ```text
//! cargo run --release -p ss-bench --bin experiments            # run everything
//! cargo run --release -p ss-bench --bin experiments -- E7 E10  # run a subset
//! cargo run --release -p ss-bench --bin experiments -- --list  # list experiments
//! ```

use ss_bench::experiments::all_experiments;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let experiments = all_experiments();

    if args.iter().any(|a| a == "--list") {
        for e in &experiments {
            println!("{:<4} {}", e.id, e.description);
        }
        return;
    }

    let selected: Vec<_> = if args.is_empty() {
        experiments.iter().collect()
    } else {
        experiments
            .iter()
            .filter(|e| args.iter().any(|a| a.eq_ignore_ascii_case(e.id)))
            .collect()
    };
    if selected.is_empty() {
        eprintln!("no experiment matches {args:?}; use --list to see the available ids");
        std::process::exit(1);
    }

    for e in selected {
        let start = Instant::now();
        println!("\n================================================================");
        println!("{} — {}", e.id, e.description);
        println!("================================================================\n");
        let report = (e.run)();
        println!("{report}");
        println!("[{} finished in {:.1?}]", e.id, start.elapsed());
    }
}

//! Serial-vs-parallel sweep throughput recorder and determinism gate.
//!
//! ```text
//! cargo run --release -p ss-bench --bin sweeps
//!     # full recording: threads x {turnpike, heavy_traffic, asymptotic}
//!     # sweeps plus the concurrent E1-E22 harness at --jobs 1 vs 4;
//!     # prints tables and writes BENCH_sweeps.json
//! cargo run --release -p ss-bench --bin sweeps -- --json out.json
//!     # same, custom output path
//! cargo run --release -p ss-bench --bin sweeps -- --check
//!     # quick serial-vs-parallel bit-identity check of the three sweeps,
//!     # no JSON; exits nonzero on divergence (used by the CI determinism
//!     # job)
//! ```
//!
//! In every mode the binary exits nonzero if any parallel run's outputs
//! differ from the serial run's — determinism is a hard gate, the timings
//! are informational.

use ss_bench::experiments::{all_experiments, run_experiments, Experiment};
use ss_bench::json;
use ss_bench::sweeps::sweep_workloads;
use ss_sim::pool;
use std::time::Instant;

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];
const HARNESS_JOBS: [usize; 2] = [1, 4];

struct SweepPoint {
    workload: &'static str,
    threads: usize,
    seconds: f64,
    speedup: f64,
    identical: bool,
}

struct HarnessPoint {
    jobs: usize,
    seconds: f64,
    speedup: f64,
    identical: bool,
}

/// Best-of-3 wall-clock of `run` on a dedicated pool of `threads`.
fn timed(threads: usize, run: fn() -> Vec<f64>) -> (f64, Vec<f64>) {
    // Pool built outside the timer: thread spawn/join is setup cost, not
    // workload cost.
    let pool = pool::ThreadPool::new(threads);
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..3 {
        let start = Instant::now();
        let values = pool.install(run);
        best = best.min(start.elapsed().as_secs_f64());
        last = Some(values);
    }
    (best, last.expect("three runs completed"))
}

fn check_only() -> bool {
    let mut ok = true;
    for w in sweep_workloads() {
        let serial = pool::with_threads(1, w.run);
        for &threads in THREAD_SWEEP.iter().filter(|&&t| t != 1) {
            let parallel = pool::with_threads(threads, w.run);
            let identical = bits(&parallel) == bits(&serial);
            println!(
                "{}: threads={threads}: {}",
                w.name,
                if identical {
                    "bit-identical to serial"
                } else {
                    "DIVERGED from serial"
                }
            );
            ok &= identical;
        }
    }
    ok
}

/// Bitwise fingerprint of a value vector (`==` on f64 would treat -0.0 and
/// 0.0 as equal and NaN as unequal to itself; the gate wants raw bits).
fn bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// One run of the full E1-E22 harness at `jobs` lanes; returns wall-clock
/// and the concatenated report text.
fn harness_run(jobs: usize) -> (f64, String) {
    let experiments = all_experiments();
    let selected: Vec<&Experiment> = experiments.iter().collect();
    let start = Instant::now();
    let reports = run_experiments(&selected, jobs);
    let seconds = start.elapsed().as_secs_f64();
    let mut combined = String::new();
    for r in &reports {
        // A panic would produce an identical PANICKED line at every jobs
        // value and silently satisfy the byte-identity comparison; the
        // recorder must fail hard instead.
        assert!(
            !r.panicked,
            "{} panicked during the harness timing run",
            r.id
        );
        // E21's report embeds its own wall-clock measurements, which vary
        // run to run by construction; exclude it from the byte-identity
        // fingerprint (its value-determinism is asserted by its own test).
        if r.id == "E21" {
            continue;
        }
        combined.push_str(r.id);
        combined.push('\n');
        combined.push_str(&r.report);
    }
    (seconds, combined)
}

fn write_json(
    path: &str,
    sweep_points: &[SweepPoint],
    harness_points: &[HarnessPoint],
) -> std::io::Result<()> {
    let mut body = String::from("{\n");
    body.push_str("  \"benchmark\": \"sweeps\",\n");
    body.push_str(&format!(
        "  \"generated_unix_time\": {},\n",
        json::unix_time()
    ));
    body.push_str(&json::host_env_fields());
    body.push_str(
        "  \"workloads\": \"pool-parallelised Monte-Carlo sweeps (turnpike = E6, \
         heavy_traffic = E13, asymptotic = E10 configurations) and the concurrent \
         E1-E22 experiment harness\",\n",
    );
    body.push_str(
        "  \"timing\": \"sweeps: best of 3 runs on a dedicated pool; harness: one \
         full E1-E22 run per jobs value, seconds of wall-clock\",\n",
    );
    body.push_str("  \"sweeps\": [\n");
    for (i, p) in sweep_points.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"workload\": \"{}\", \"threads\": {}, \"seconds\": {:.6}, \
             \"speedup_vs_serial\": {:.3}, \"bit_identical_to_serial\": {}}}{}\n",
            json::escape(p.workload),
            p.threads,
            p.seconds,
            p.speedup,
            p.identical,
            if i + 1 < sweep_points.len() { "," } else { "" }
        ));
    }
    body.push_str("  ],\n");
    body.push_str("  \"harness\": [\n");
    for (i, p) in harness_points.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"jobs\": {}, \"seconds\": {:.6}, \"speedup_vs_serial\": {:.3}, \
             \"reports_identical_to_serial\": {}}}{}\n",
            p.jobs,
            p.seconds,
            p.speedup,
            p.identical,
            if i + 1 < harness_points.len() {
                ","
            } else {
                ""
            }
        ));
    }
    body.push_str("  ]\n}\n");
    std::fs::write(path, body)
}

fn usage_error(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!("usage: sweeps [--check | --json PATH]");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut check_mode = false;
    let mut json_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => check_mode = true,
            "--json" => match it.next() {
                Some(path) if !path.starts_with("--") => json_path = Some(path.clone()),
                _ => usage_error("--json needs an output path"),
            },
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }
    if check_mode && json_path.is_some() {
        usage_error("--check and --json are mutually exclusive");
    }

    if check_mode {
        if check_only() {
            println!("sweep determinism check passed");
        } else {
            eprintln!("sweep determinism check FAILED: parallel outputs diverged from serial");
            std::process::exit(1);
        }
        return;
    }

    let json_path = json_path.as_deref().unwrap_or("BENCH_sweeps.json");

    println!(
        "host logical CPUs: {}",
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    );
    println!("| workload | threads | wall-clock | speedup vs serial | bit-identical |");
    println!("|---|---|---|---|---|");

    let mut sweep_points = Vec::new();
    let mut all_identical = true;
    for w in sweep_workloads() {
        let (serial_secs, serial) = timed(1, w.run);
        for &threads in &THREAD_SWEEP {
            // The threads=1 row *is* the serial baseline; re-timing it
            // would waste three full runs and record timer noise as a
            // "speedup".
            let (seconds, values) = if threads == 1 {
                (serial_secs, serial.clone())
            } else {
                timed(threads, w.run)
            };
            let identical = bits(&values) == bits(&serial);
            all_identical &= identical;
            let speedup = serial_secs / seconds;
            println!(
                "| {} | {threads} | {:.1} ms | {speedup:.2}x | {identical} |",
                w.name,
                seconds * 1e3
            );
            sweep_points.push(SweepPoint {
                workload: w.name,
                threads,
                seconds,
                speedup,
                identical,
            });
        }
    }

    println!("\n| harness | jobs | wall-clock | speedup vs serial | reports identical |");
    println!("|---|---|---|---|---|");
    let mut harness_points = Vec::new();
    let mut serial_harness: Option<(f64, String)> = None;
    for &jobs in &HARNESS_JOBS {
        let (seconds, combined) = harness_run(jobs);
        let (serial_secs, identical) = match &serial_harness {
            None => {
                serial_harness = Some((seconds, combined));
                (seconds, true)
            }
            Some((serial_secs, serial_combined)) => (*serial_secs, combined == *serial_combined),
        };
        all_identical &= identical;
        let speedup = serial_secs / seconds;
        println!(
            "| E1-E22 | {jobs} | {:.1} s | {speedup:.2}x | {identical} |",
            seconds
        );
        harness_points.push(HarnessPoint {
            jobs,
            seconds,
            speedup,
            identical,
        });
    }

    if let Err(e) = write_json(json_path, &sweep_points, &harness_points) {
        eprintln!("failed to write {json_path}: {e}");
        std::process::exit(2);
    }
    println!("\nwrote {json_path}");
    if !all_identical {
        eprintln!("determinism check FAILED: parallel outputs diverged from serial");
        std::process::exit(1);
    }
}

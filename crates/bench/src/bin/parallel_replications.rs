//! Serial-vs-parallel replication throughput recorder and determinism gate.
//!
//! ```text
//! cargo run --release -p ss-bench --bin parallel_replications
//!     # full sweep (threads x replication counts), prints a table and
//!     # writes BENCH_parallel_replications.json
//! cargo run --release -p ss-bench --bin parallel_replications -- --json out.json
//!     # same, custom output path
//! cargo run --release -p ss-bench --bin parallel_replications -- --check
//!     # quick serial-vs-parallel bit-identity check, no JSON; exits
//!     # nonzero on divergence (used by the CI determinism job)
//! ```
//!
//! In every mode the binary exits nonzero if any parallel run's
//! per-replication values differ from the serial run's — determinism is a
//! hard gate, the timings are informational.

use ss_bench::experiments::parallel_replication_workload;
use ss_bench::json;
use ss_sim::pool;
use std::time::Instant;

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];
const REPLICATION_SWEEP: [usize; 2] = [100, 500];

struct Point {
    threads: usize,
    replications: usize,
    seconds: f64,
    speedup: f64,
    identical: bool,
}

/// Best-of-3 wall-clock of the workload on a dedicated pool of `threads`.
fn timed(threads: usize, replications: usize) -> (f64, ss_sim::ReplicationSummary) {
    // Pool built outside the timer: thread spawn/join is setup cost, not
    // workload cost.
    let pool = pool::ThreadPool::new(threads);
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..3 {
        let start = Instant::now();
        let summary = pool.install(|| parallel_replication_workload(replications));
        best = best.min(start.elapsed().as_secs_f64());
        last = Some(summary);
    }
    (best, last.expect("three runs completed"))
}

fn check_only() -> bool {
    let replications = 200;
    let serial = pool::with_threads(1, || parallel_replication_workload(replications));
    let mut ok = true;
    for threads in [2usize, 4, 8] {
        let parallel = pool::with_threads(threads, || parallel_replication_workload(replications));
        let identical = parallel.values == serial.values;
        println!(
            "threads={threads}: {} ({} replications)",
            if identical {
                "bit-identical to serial"
            } else {
                "DIVERGED from serial"
            },
            replications
        );
        ok &= identical;
    }
    ok
}

fn write_json(path: &str, points: &[Point]) -> std::io::Result<()> {
    let mut body = String::from("{\n");
    body.push_str("  \"benchmark\": \"parallel_replications\",\n");
    body.push_str(&format!(
        "  \"generated_unix_time\": {},\n",
        json::unix_time()
    ));
    body.push_str(&json::host_env_fields());
    body.push_str(
        "  \"workload\": \"ss-batch list-schedule simulation: 200 mixed-distribution jobs on 4 \
         machines, E[sum C] by independent replications (experiment E21 workload)\",\n",
    );
    body.push_str("  \"timing\": \"best of 3 runs, seconds of wall-clock per full summary\",\n");
    body.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"threads\": {}, \"replications\": {}, \"seconds\": {:.6}, \
             \"speedup_vs_serial\": {:.3}, \"bit_identical_to_serial\": {}}}{}\n",
            p.threads,
            p.replications,
            p.seconds,
            p.speedup,
            p.identical,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    body.push_str("  ]\n}\n");
    std::fs::write(path, body)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--check") {
        if check_only() {
            println!("determinism check passed");
        } else {
            eprintln!("determinism check FAILED: parallel values diverged from serial");
            std::process::exit(1);
        }
        return;
    }

    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_parallel_replications.json");

    let host = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    println!("host logical CPUs: {host}");
    println!("| threads | replications | wall-clock | speedup vs serial | bit-identical |");
    println!("|---|---|---|---|---|");

    let mut points = Vec::new();
    let mut all_identical = true;
    for &replications in &REPLICATION_SWEEP {
        let (serial_secs, serial) = timed(1, replications);
        for &threads in &THREAD_SWEEP {
            let (seconds, summary) = timed(threads, replications);
            let identical = summary.values == serial.values;
            all_identical &= identical;
            let speedup = serial_secs / seconds;
            println!(
                "| {threads} | {replications} | {:.1} ms | {speedup:.2}x | {identical} |",
                seconds * 1e3
            );
            points.push(Point {
                threads,
                replications,
                seconds,
                speedup,
                identical,
            });
        }
    }

    if let Err(e) = write_json(json_path, &points) {
        eprintln!("failed to write {json_path}: {e}");
        std::process::exit(2);
    }
    println!("\nwrote {json_path}");
    if !all_identical {
        eprintln!("determinism check FAILED: parallel values diverged from serial");
        std::process::exit(1);
    }
}

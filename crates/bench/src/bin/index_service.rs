//! Decision-serving throughput recorder and the perf-budget gate of the
//! `ss-index` serving layer.
//!
//! ```text
//! cargo run --release -p ss-bench --bin index_service
//!     # full recording: single / batched / recompute decisions-per-second
//!     # on every shard; prints tables and writes BENCH_index_service.json
//! cargo run --release -p ss-bench --bin index_service -- --json out.json
//!     # same, custom output path
//! cargo run --release -p ss-bench --bin index_service -- --budget
//!     # CI perf-budget gate: quick live measurement plus a check of the
//!     # committed BENCH_index_service.json; exits nonzero if the batched
//!     # path serves fewer than BUDGET_MIN_RATIO times the decisions/sec
//!     # of per-decision recomputation (live or committed), or if the
//!     # three paths' checksums diverge
//! ```
//!
//! The budget is a **ratio** (batched table lookups vs per-decision index
//! recomputation on the same host, same stream), not an absolute
//! decisions/sec figure, so the gate is robust to slow or noisy CI hosts:
//! both sides of the ratio slow down together.  In every mode the binary
//! exits nonzero if the three paths disagree on the xor-of-bits checksum —
//! a throughput number for a wrong answer is worthless.

use ss_bench::index_service::{
    lookup_batched, lookup_single, query_stream, recompute, shards, IndexShard, QUERY_SEED,
};
use ss_bench::json;
use std::time::Instant;

/// The committed perf budget: batched serving must beat per-decision
/// recomputation by at least this factor.  The measured margin is orders
/// of magnitude larger (a saturating slab read vs ~40 tridiagonal solves);
/// 10x is the contract floor, not the expectation.
const BUDGET_MIN_RATIO: f64 = 10.0;

/// Batch size of the batched path (one output buffer refill per batch).
const BATCH: usize = 1024;

struct PathPoint {
    shard: &'static str,
    path: &'static str,
    queries: usize,
    seconds: f64,
    decisions_per_sec: f64,
}

struct RatioPoint {
    shard: &'static str,
    batched_vs_single: f64,
    batched_vs_recompute: f64,
    checksums_identical: bool,
}

/// Best-of-3 wall-clock of `run`, returning (seconds, checksum).
fn timed(mut run: impl FnMut() -> u64) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut checksum = 0;
    for _ in 0..3 {
        let start = Instant::now();
        checksum = run();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, checksum)
}

/// Measure the three paths on one shard: `lookups` queries through the
/// table paths, `recomputes` through the solver path (its per-decision
/// cost is ~5 orders of magnitude higher; decisions/sec normalises).
fn measure(
    s: &IndexShard,
    lookups: usize,
    recomputes: usize,
    paths: &mut Vec<PathPoint>,
) -> RatioPoint {
    let stream = query_stream(QUERY_SEED, lookups, s.classes.len());
    let mut buf = Vec::new();

    let (single_secs, single_sum) = timed(|| lookup_single(&s.table, &stream));
    let (batched_secs, batched_sum) = timed(|| lookup_batched(&s.table, &stream, BATCH, &mut buf));

    // The recompute path replays a prefix of the same stream, so its
    // checksum is cross-checked against the table on that prefix.
    let prefix = &stream[..recomputes.min(stream.len())];
    let (rec_secs, rec_sum) = timed(|| recompute(&s.classes, s.clock, prefix));
    let prefix_sum = lookup_single(&s.table, prefix);

    let single_rate = lookups as f64 / single_secs;
    let batched_rate = lookups as f64 / batched_secs;
    let rec_rate = prefix.len() as f64 / rec_secs;
    for (path, queries, seconds, rate) in [
        ("single", lookups, single_secs, single_rate),
        ("batched", lookups, batched_secs, batched_rate),
        ("recompute", prefix.len(), rec_secs, rec_rate),
    ] {
        paths.push(PathPoint {
            shard: s.name,
            path,
            queries,
            seconds,
            decisions_per_sec: rate,
        });
    }
    RatioPoint {
        shard: s.name,
        batched_vs_single: batched_rate / single_rate,
        batched_vs_recompute: batched_rate / rec_rate,
        checksums_identical: single_sum == batched_sum && rec_sum == prefix_sum,
    }
}

fn write_json(path: &str, paths: &[PathPoint], ratios: &[RatioPoint]) -> std::io::Result<()> {
    let mut body = String::from("{\n");
    body.push_str("  \"benchmark\": \"index_service\",\n");
    body.push_str(&format!(
        "  \"generated_unix_time\": {},\n",
        json::unix_time()
    ));
    body.push_str(&json::host_env_fields());
    body.push_str(
        "  \"workloads\": \"Whittle-backed SoA index tables (truncation 40, stride 41) at 4 / \
         64 / 1024 classes; uniform (class, queue_len) query streams spanning twice the \
         truncation; single = per-decision trait call, batched = lookup_batch over a reused \
         buffer, recompute = a fresh discounted Whittle solve per decision (the \
         no-serving-layer baseline)\",\n",
    );
    body.push_str(
        "  \"timing\": \"best of 3 runs per path; decisions_per_sec = queries / seconds; all \
         three paths must agree on an xor-of-bits checksum before any ratio is recorded\",\n",
    );
    body.push_str(&format!(
        "  \"budget\": {{\"metric\": \"batched_vs_recompute\", \"min_ratio\": {BUDGET_MIN_RATIO:.1}, \
         \"gate\": \"cargo run --release -p ss-bench --bin index_service -- --budget\"}},\n"
    ));
    body.push_str("  \"paths\": [\n");
    for (i, p) in paths.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"shard\": \"{}\", \"path\": \"{}\", \"queries\": {}, \"seconds\": {:.6}, \
             \"decisions_per_sec\": {:.1}}}{}\n",
            json::escape(p.shard),
            p.path,
            p.queries,
            p.seconds,
            p.decisions_per_sec,
            if i + 1 < paths.len() { "," } else { "" }
        ));
    }
    body.push_str("  ],\n");
    body.push_str("  \"ratios\": [\n");
    for (i, r) in ratios.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"shard\": \"{}\", \"batched_vs_single\": {:.3}, \
             \"batched_vs_recompute\": {:.1}, \"checksums_identical\": {}}}{}\n",
            json::escape(r.shard),
            r.batched_vs_single,
            r.batched_vs_recompute,
            r.checksums_identical,
            if i + 1 < ratios.len() { "," } else { "" }
        ));
    }
    body.push_str("  ]\n}\n");
    std::fs::write(path, body)
}

/// Tiered verdict on one measured ratio against the committed budget.
fn verdict(ratio: f64) -> (&'static str, bool) {
    if ratio >= 10.0 * BUDGET_MIN_RATIO {
        ("PASS (comfortable margin)", true)
    } else if ratio >= BUDGET_MIN_RATIO {
        ("PASS (within tolerance of the budget floor)", true)
    } else {
        ("FAIL (below the committed budget)", false)
    }
}

/// Pull every `"batched_vs_recompute": <number>` out of the committed
/// artifact (flat hand-assembled JSON; no serde in this workspace).
fn committed_ratios(text: &str) -> Vec<f64> {
    let needle = "\"batched_vs_recompute\": ";
    text.match_indices(needle)
        .filter_map(|(at, _)| {
            let rest = &text[at + needle.len()..];
            let end = rest.find([',', '}']).unwrap_or(rest.len());
            rest[..end].trim().parse::<f64>().ok()
        })
        .collect()
}

/// The CI gate: a quick live measurement on the middle shard plus a sanity
/// pass over the committed artifact.
fn budget_gate(committed_path: &str) -> bool {
    let mut ok = true;

    let mut paths = Vec::new();
    let all = shards();
    let s = &all[1]; // classes=64: wide enough to be honest, quick to solve
    let point = measure(s, 200_000, 400, &mut paths);
    if !point.checksums_identical {
        eprintln!("budget gate: FAIL — serving paths disagree on {}", s.name);
        ok = false;
    }
    let (live_verdict, live_ok) = verdict(point.batched_vs_recompute);
    println!(
        "budget gate: live {} batched_vs_recompute = {:.1}x (floor {BUDGET_MIN_RATIO}x): {live_verdict}",
        s.name, point.batched_vs_recompute
    );
    ok &= live_ok;

    match std::fs::read_to_string(committed_path) {
        Ok(text) => {
            let ratios = committed_ratios(&text);
            if ratios.is_empty() {
                eprintln!(
                    "budget gate: FAIL — {committed_path} records no batched_vs_recompute ratios"
                );
                ok = false;
            }
            for r in ratios {
                let (v, r_ok) = verdict(r);
                println!("budget gate: committed ratio {r:.1}x: {v}");
                ok &= r_ok;
            }
        }
        Err(e) => {
            eprintln!("budget gate: FAIL — cannot read {committed_path}: {e}");
            ok = false;
        }
    }
    ok
}

fn usage_error(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!("usage: index_service [--budget | --json PATH]");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut budget_mode = false;
    let mut json_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--budget" => budget_mode = true,
            "--json" => match it.next() {
                Some(path) if !path.starts_with("--") => json_path = Some(path.clone()),
                _ => usage_error("--json needs an output path"),
            },
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }
    if budget_mode && json_path.is_some() {
        usage_error("--budget and --json are mutually exclusive");
    }

    if budget_mode {
        if budget_gate("BENCH_index_service.json") {
            println!("index-service perf budget passed");
        } else {
            eprintln!("index-service perf budget FAILED");
            std::process::exit(1);
        }
        return;
    }

    let json_path = json_path.as_deref().unwrap_or("BENCH_index_service.json");
    println!("| shard | path | queries | wall-clock | decisions/sec |");
    println!("|---|---|---|---|---|");

    let mut paths = Vec::new();
    let mut ratios = Vec::new();
    let mut all_identical = true;
    for s in shards() {
        let point = measure(&s, 2_000_000, 2_000, &mut paths);
        all_identical &= point.checksums_identical;
        ratios.push(point);
    }
    for p in &paths {
        println!(
            "| {} | {} | {} | {:.1} ms | {:.2e} |",
            p.shard,
            p.path,
            p.queries,
            p.seconds * 1e3,
            p.decisions_per_sec
        );
    }
    println!("\n| shard | batched vs single | batched vs recompute | checksums identical |");
    println!("|---|---|---|---|");
    for r in &ratios {
        println!(
            "| {} | {:.2}x | {:.1}x | {} |",
            r.shard, r.batched_vs_single, r.batched_vs_recompute, r.checksums_identical
        );
    }

    if let Err(e) = write_json(json_path, &paths, &ratios) {
        eprintln!("failed to write {json_path}: {e}");
        std::process::exit(2);
    }
    println!("\nwrote {json_path}");
    if !all_identical {
        eprintln!("checksum gate FAILED: serving paths disagree");
        std::process::exit(1);
    }
    let worst = ratios
        .iter()
        .map(|r| r.batched_vs_recompute)
        .fold(f64::INFINITY, f64::min);
    if worst < BUDGET_MIN_RATIO {
        eprintln!(
            "perf budget FAILED: worst batched_vs_recompute {worst:.1}x < {BUDGET_MIN_RATIO}x"
        );
        std::process::exit(1);
    }
}

//! The experiment harness: one function per experiment of `DESIGN.md`.
//!
//! Every function is deterministic (fixed seeds from [`crate::workloads`])
//! and returns the markdown table(s) recorded in `EXPERIMENTS.md`.  The
//! `experiments` binary prints them to stdout.

use crate::workloads;
use ss_bandits::branching::estimate_order_cost_parallel;
use ss_bandits::exact::MultiArmedBandit;
use ss_bandits::gittins::{
    gittins_indices_calibration, gittins_indices_restart, gittins_indices_vwb,
};
use ss_bandits::mpi::marginal_productivity_indices;
use ss_bandits::restless::{
    asymptotic_sweep, relaxation_bound_identical, simulate_restless, whittle_indices,
    RestlessPolicy,
};
use ss_bandits::switching::SwitchingBandit;
use ss_batch::exact_exp::{
    lept_order_exp, list_policy_flowtime, list_policy_makespan, optimal_flowtime, optimal_makespan,
    sept_order_exp, ExpParallelInstance,
};
use ss_batch::policies::{lept_order, random_order, sept_order, weight_only_order, wsept_order};
use ss_batch::preemptive::{
    simulate_gittins_preemptive, simulate_wsept_nonpreemptive, PreemptiveConfig,
};
use ss_batch::single_machine::{exhaustive_optimal_order, expected_weighted_flowtime};
use ss_batch::turnpike::turnpike_sweep;
use ss_batch::two_point_exact::{
    best_static_list, exact_list_performance, lept_list, sept_list, TwoPointInstance,
};
use ss_core::instance::{InstanceFamily, InstanceGenerator};
use ss_core::result::ComparisonTable;
use ss_distributions::{dyn_dist, HyperExponential, TwoPoint};
use ss_queueing::achievable_region::{
    cmu_via_adaptive_greedy, klimov_via_adaptive_greedy, region_lp, vertex_performance,
};
use ss_queueing::cmu::cmu_order;
use ss_queueing::cobham::{best_nonpreemptive_order, mg1_nonpreemptive_priority};
use ss_queueing::conservation::{conserved_work, weighted_wait_sum};
use ss_queueing::fluid::{integrate_priority_fluid, FluidNetwork};
use ss_queueing::klimov::{klimov_order, simulate_klimov};
use ss_queueing::mg1::{simulate_mg1, Discipline, Mg1Config};
use ss_queueing::parallel_servers::heavy_traffic_sweep;
use ss_queueing::polling::{simulate_polling, PollingDiscipline};
use ss_queueing::setups::{
    simulate_setup_policy, sqrt_rule_thresholds, threshold_sweep, SetupPolicy,
};
use ss_queueing::stability::{run_lu_kumar, LuKumarParams};

/// Identifier + human description of one experiment.
pub struct Experiment {
    /// Identifier such as `"E1"`.
    pub id: &'static str,
    /// One-line description (shows up in the binary's `--list` output).
    pub description: &'static str,
    /// Run the experiment and return its markdown report.
    pub run: fn() -> String,
}

impl Experiment {
    /// Whether this experiment's *report* contains wall-clock measurements
    /// of its own pool sweeps, so it must not share the machine with
    /// concurrently running neighbours (the values would still be
    /// bit-identical — only the reported timings would be distorted).
    pub fn timing_sensitive(&self) -> bool {
        self.id == "E21"
    }
}

/// One experiment's captured report plus the wall-clock it took to produce.
pub struct ExperimentReport {
    /// Identifier such as `"E1"`.
    pub id: &'static str,
    /// One-line description (copied from the [`Experiment`]).
    pub description: &'static str,
    /// The markdown report the experiment returned, or a `PANICKED: ...`
    /// line when it did not finish (see [`ExperimentReport::panicked`]).
    pub report: String,
    /// Wall-clock of this experiment's `run()` call.
    pub wall: std::time::Duration,
    /// Whether `run()` panicked.  The panic is captured per experiment so a
    /// single failure cannot discard the other buffered reports; callers
    /// that need a hard failure (the binary, the bench gates) check this
    /// and exit nonzero after printing everything that did finish.
    pub panicked: bool,
}

/// Run `selected` experiments with `jobs` concurrent harness lanes and
/// return the reports in the order they were selected (E-id order when the
/// caller preserves it), each with its wall-clock.
///
/// With `jobs == 1` the experiments run sequentially on the calling thread
/// exactly as the harness always did (inner Monte-Carlo loops still use the
/// global pool).  With `jobs > 1` the experiments are fanned out over a
/// dedicated pool of `jobs` lanes; each experiment's own parallel calls
/// then fall back to serial on its worker (nested-parallelism rule), so
/// concurrency moves to the coarsest grain.  Either way every experiment
/// draws from its own fixed-seed [`ss_sim::RngStreams`]-derived generators,
/// so the *reports* are byte-for-byte identical for any `jobs` value — only
/// the wall-clocks change — with one exception: timing-sensitive
/// experiments (E21) embed their own measured wall-clock tables in the
/// report body, which vary run to run by construction.  They always run
/// alone, after the concurrent batch, and byte-identity consumers (the
/// `sweeps` gate, CI's harness diff) exclude them.
pub fn run_experiments(selected: &[&Experiment], jobs: usize) -> Vec<ExperimentReport> {
    assert!(jobs >= 1, "need at least one harness job");
    let timed = |e: &Experiment| {
        let start = std::time::Instant::now();
        // Capture a panic instead of unwinding through the harness: one
        // failing experiment must not discard the buffered reports of the
        // experiments that finished.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(e.run));
        let wall = start.elapsed();
        let (report, panicked) = match outcome {
            Ok(report) => (report, false),
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                (format!("PANICKED: {msg}\n"), true)
            }
        };
        ExperimentReport {
            id: e.id,
            description: e.description,
            report,
            wall,
            panicked,
        }
    };
    if jobs == 1 {
        return selected.iter().map(|e| timed(e)).collect();
    }
    let (concurrent, exclusive): (Vec<usize>, Vec<usize>) =
        (0..selected.len()).partition(|&i| !selected[i].timing_sensitive());
    let batch = ss_sim::pool::with_threads(jobs, || {
        ss_sim::pool::parallel_indexed(concurrent.len(), |i| timed(selected[concurrent[i]]))
    });
    let mut slots: Vec<Option<ExperimentReport>> = (0..selected.len()).map(|_| None).collect();
    for (&slot, report) in concurrent.iter().zip(batch) {
        slots[slot] = Some(report);
    }
    // Timing-sensitive experiments get the machine to themselves, with no
    // installed pool, so they can size and measure their own pools.
    for &i in &exclusive {
        slots[i] = Some(timed(selected[i]));
    }
    slots
        .into_iter()
        .map(|r| r.expect("every selected experiment ran"))
        .collect()
}

/// Assemble the `EXPERIMENTS.md` document from captured reports
/// (`experiments --markdown` pipes this straight into the file).
pub fn markdown_document(reports: &[ExperimentReport]) -> String {
    let host = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut out = String::from(
        "# EXPERIMENTS — measured results of E1–E22\n\nGenerated with:\n\n```\ncargo run --release -p ss-bench --bin experiments -- --markdown > EXPERIMENTS.md\n```\n\n",
    );
    out.push_str(&format!(
        "Every experiment is deterministic: fixed master seeds live in\n\
         `crates/bench/src/workloads.rs`, every replication and every sweep point\n\
         draws from its own ChaCha8 stream keyed by `(master seed, stream id)`\n\
         (`ss_sim::RngStreams`), and the parallel engine collects results in\n\
         index order, so these tables are bit-for-bit reproducible for any\n\
         `SS_THREADS` setting and any `--jobs` harness concurrency.  Wall-clock\n\
         lines are from the generating host ({host} logical CPU(s) for this\n\
         revision — see E21, `BENCH_parallel_replications.json` and\n\
         `BENCH_sweeps.json` for the serial-vs-parallel trajectories).\n\n\
         Per-experiment descriptions and the claims under test are catalogued in\n\
         `DESIGN.md`; `cargo run --release -p ss-bench --bin experiments -- --list`\n\
         prints the id/description index.\n\n",
    ));
    for r in reports {
        out.push_str(&format!("## {} — {}\n\n", r.id, r.description));
        out.push_str(r.report.trim_end());
        out.push_str(&format!("\n\n*({} wall-clock: {:.1?})*\n\n", r.id, r.wall));
    }
    while out.ends_with('\n') {
        out.pop();
    }
    out.push('\n');
    out
}

/// All experiments in id order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "E1",
            description: "WSEPT optimality on a single machine (Rothkopf)",
            run: e1_wsept_single_machine,
        },
        Experiment {
            id: "E2",
            description: "Preemptive Gittins/Sevcik index vs WSEPT (Sevcik)",
            run: e2_preemptive_gittins,
        },
        Experiment {
            id: "E3",
            description: "SEPT optimal for flowtime on parallel machines (exponential)",
            run: e3_sept_parallel_flowtime,
        },
        Experiment {
            id: "E4",
            description: "LEPT optimal for makespan on parallel machines (exponential)",
            run: e4_lept_parallel_makespan,
        },
        Experiment {
            id: "E5",
            description: "Two-point jobs on two machines: index rules suboptimal (CHW)",
            run: e5_two_point_counterexample,
        },
        Experiment {
            id: "E6",
            description: "WSEPT turnpike asymptotics on parallel machines (Weiss)",
            run: e6_turnpike,
        },
        Experiment {
            id: "E7",
            description: "Gittins rule equals the exact DP optimum (Gittins-Jones)",
            run: e7_gittins_optimality,
        },
        Experiment {
            id: "E8",
            description: "Three Gittins algorithms agree (VWB / restart / calibration)",
            run: e8_gittins_agreement,
        },
        Experiment {
            id: "E9",
            description: "Switching costs break Gittins; hysteresis recovers (Asawa-Teneketzis)",
            run: e9_switching_costs,
        },
        Experiment {
            id: "E10",
            description:
                "Whittle index for restless bandits: bound + asymptotics (Whittle, Weber-Weiss)",
            run: e10_restless_whittle,
        },
        Experiment {
            id: "E11",
            description: "cmu rule in the multiclass M/G/1 (Cox-Smith) + conservation law",
            run: e11_cmu_mg1,
        },
        Experiment {
            id: "E12",
            description: "Klimov network: index policy vs all priority orders",
            run: e12_klimov,
        },
        Experiment {
            id: "E13",
            description: "Parallel servers: cmu heuristic vs relaxation bound in heavy traffic",
            run: e13_parallel_servers,
        },
        Experiment {
            id: "E14",
            description: "Lu-Kumar instability of a priority policy below nominal capacity",
            run: e14_stability,
        },
        Experiment {
            id: "E15",
            description: "Fluid approximation of the Lu-Kumar network",
            run: e15_fluid,
        },
        Experiment {
            id: "E16",
            description: "Setup times: cmu-with-setups vs exhaustive polling",
            run: e16_polling,
        },
        Experiment {
            id: "E17",
            description: "Achievable-region LP and adaptive-greedy indices (cmu / Klimov)",
            run: e17_achievable_region,
        },
        Experiment {
            id: "E18",
            description: "Branching bandits: index policy vs all static orders (Weiss)",
            run: e18_branching,
        },
        Experiment {
            id: "E19",
            description: "Marginal productivity indices vs Whittle bisection (PCL)",
            run: e19_mpi,
        },
        Experiment {
            id: "E20",
            description: "Setup thresholds: square-root rule vs sweep (Reiman-Wein)",
            run: e20_setup_thresholds,
        },
        Experiment {
            id: "E21",
            description: "Parallel replication engine: thread sweep, wall-clock and bit-identity",
            run: e21_parallel_replications,
        },
        Experiment {
            id: "E22",
            description: "Metastable retry storm: collapse unprotected, recovery with resilience",
            run: e22_metastable_retry_storm,
        },
    ]
}

// ---------------------------------------------------------------- E1 ----

fn e1_wsept_single_machine() -> String {
    let mut out = String::new();
    // Small instances: exact optimality check over all permutations.
    let mut optimal_matches = 0;
    let trials = 20;
    for t in 0..trials {
        let inst = workloads::batch_instance(8, InstanceFamily::Mixed, 100 + t);
        let (_, best) = exhaustive_optimal_order(&inst);
        let wsept = expected_weighted_flowtime(&inst, &wsept_order(&inst));
        if (wsept - best).abs() < 1e-9 {
            optimal_matches += 1;
        }
    }
    out.push_str(&format!(
        "WSEPT equals the exhaustive optimum on {optimal_matches}/{trials} random 8-job instances.\n\n"
    ));

    // A representative large instance: heuristic comparison.
    let inst = workloads::batch_instance(200, InstanceFamily::Mixed, 7);
    let mut table = ComparisonTable::new(
        "E1: single machine, n = 200 mixed-distribution jobs, exact E[sum w C]",
        "E[sum w C]",
    );
    let mut rng = workloads::rng_for(77);
    table.add(
        "WSEPT (optimal)",
        expected_weighted_flowtime(&inst, &wsept_order(&inst)),
        None,
        "Rothkopf 1966",
    );
    table.add(
        "SEPT (ignores weights)",
        expected_weighted_flowtime(&inst, &sept_order(&inst)),
        None,
        "",
    );
    table.add(
        "weight-only",
        expected_weighted_flowtime(&inst, &weight_only_order(&inst)),
        None,
        "",
    );
    table.add(
        "LEPT",
        expected_weighted_flowtime(&inst, &lept_order(&inst)),
        None,
        "",
    );
    table.add(
        "random",
        expected_weighted_flowtime(&inst, &random_order(&inst, &mut rng)),
        None,
        "",
    );
    out.push_str(&table.to_markdown());
    out
}

// ---------------------------------------------------------------- E2 ----

fn e2_preemptive_gittins() -> String {
    let mut out = String::new();
    for (label, scv) in [
        ("exponential (scv = 1)", 1.0001f64),
        ("hyperexponential (scv = 8)", 8.0f64),
    ] {
        let mut builder = ss_core::instance::BatchInstance::builder();
        for _ in 0..4 {
            builder = builder.job(
                1.0,
                dyn_dist(HyperExponential::with_mean_scv(1.0, scv.max(1.01))),
            );
        }
        let inst = builder.build();
        let config = PreemptiveConfig {
            review_period: 0.1,
            min_quantum: 0.1,
            index_horizon: 40.0,
            grid_points: 12,
        };
        let reps = 4000;
        let mut rng = workloads::rng_for(200);
        let mut pre = 0.0;
        let mut non = 0.0;
        for _ in 0..reps {
            pre += simulate_gittins_preemptive(&inst, &config, &mut rng).weighted_flowtime;
            non += simulate_wsept_nonpreemptive(&inst, &mut rng);
        }
        pre /= reps as f64;
        non /= reps as f64;
        let mut table = ComparisonTable::new(
            format!("E2: preemptive vs nonpreemptive, 4 identical jobs, {label}"),
            "E[sum w C]",
        );
        table.add(
            "Gittins/Sevcik preemptive",
            pre,
            None,
            "optimal (Sevcik 1974)",
        );
        table.add(
            "WSEPT nonpreemptive",
            non,
            None,
            "optimal among nonpreemptive",
        );
        table.add(
            "preemption gain",
            (non - pre) / non * 100.0,
            None,
            "percent",
        );
        out.push_str(&table.to_markdown());
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------- E3/E4 --

fn exp_instance_for_parallel() -> ExpParallelInstance {
    ExpParallelInstance::unweighted(vec![0.4, 2.5, 1.0, 3.0, 0.7, 1.8, 1.3, 0.9])
}

fn e3_sept_parallel_flowtime() -> String {
    let inst = exp_instance_for_parallel();
    let mut out = String::new();
    for machines in [2usize, 3] {
        let mut table = ComparisonTable::new(
            format!("E3: E[sum C], 8 exponential jobs, m = {machines} (exact DP)"),
            "E[sum C]",
        );
        table.add(
            "optimal (non-idling DP)",
            optimal_flowtime(&inst, machines),
            None,
            "exact",
        );
        table.add(
            "SEPT",
            list_policy_flowtime(&inst, &sept_order_exp(&inst), machines),
            None,
            "optimal (Weber)",
        );
        table.add(
            "LEPT",
            list_policy_flowtime(&inst, &lept_order_exp(&inst), machines),
            None,
            "",
        );
        table.add(
            "index order 0..n",
            list_policy_flowtime(&inst, &(0..inst.len()).collect::<Vec<_>>(), machines),
            None,
            "arbitrary",
        );
        out.push_str(&table.to_markdown());
        out.push('\n');
    }
    out
}

fn e4_lept_parallel_makespan() -> String {
    let inst = exp_instance_for_parallel();
    let mut out = String::new();
    for machines in [2usize, 3] {
        let mut table = ComparisonTable::new(
            format!("E4: E[makespan], 8 exponential jobs, m = {machines} (exact DP)"),
            "E[max C]",
        );
        table.add(
            "optimal (non-idling DP)",
            optimal_makespan(&inst, machines),
            None,
            "exact",
        );
        table.add(
            "LEPT",
            list_policy_makespan(&inst, &lept_order_exp(&inst), machines),
            None,
            "optimal (Bruno et al.)",
        );
        table.add(
            "SEPT",
            list_policy_makespan(&inst, &sept_order_exp(&inst), machines),
            None,
            "",
        );
        out.push_str(&table.to_markdown());
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------- E5 ----

fn e5_two_point_counterexample() -> String {
    let inst = TwoPointInstance::unweighted(vec![
        TwoPoint::new(0.9, 0.1, 6.0),
        TwoPoint::new(0.5, 1.0, 2.0),
        TwoPoint::new(0.2, 0.5, 1.4),
        TwoPoint::new(0.8, 0.3, 7.0),
        TwoPoint::new(0.6, 0.8, 2.2),
        TwoPoint::new(0.7, 0.4, 3.5),
    ]);
    let machines = 2;
    let (best_order, best_mk) = best_static_list(&inst, machines, 2);
    let (_, _, sept_mk) = exact_list_performance(&inst, &sept_list(&inst), machines);
    let (_, _, lept_mk) = exact_list_performance(&inst, &lept_list(&inst), machines);
    let mut table = ComparisonTable::new(
        "E5: two-point jobs on 2 machines, exact E[makespan] over all 2^n realisations",
        "E[max C]",
    );
    table.add(
        format!("best static list {best_order:?}"),
        best_mk,
        None,
        "exhaustive over 6! lists",
    );
    table.add("LEPT list", lept_mk, None, "index rule");
    table.add("SEPT list", sept_mk, None, "index rule");
    let mut out = table.to_markdown();
    out.push_str(&format!(
        "\nLEPT excess over the best list: {:.2}% — the index rules are not optimal outside their assumptions (Coffman–Hofri–Weiss).\n",
        (lept_mk / best_mk - 1.0) * 100.0
    ));
    out
}

// ---------------------------------------------------------------- E6 ----

fn e6_turnpike() -> String {
    let gen = InstanceGenerator::with_family(InstanceFamily::Exponential);
    let points = turnpike_sweep(
        &gen,
        &[10, 20, 40, 80, 160, 320, 640],
        4,
        400,
        workloads::MASTER_SEED,
    );
    let mut out = String::from(
        "### E6: WSEPT on m = 4 machines vs speed-m relaxation bound (exponential jobs)\n\n| n | WSEPT (sim) | lower bound | additive gap | relative gap |\n|---|---|---|---|---|\n",
    );
    for p in &points {
        out.push_str(&format!(
            "| {} | {:.2} ± {:.2} | {:.2} | {:.2} | {:.4} |\n",
            p.n, p.wsept_value, p.wsept_ci95, p.lower_bound, p.additive_gap, p.relative_gap
        ));
    }
    out.push_str(
        "\nThe relative gap falls with n, up to Monte-Carlo noise in its small tail (Weiss's turnpike shape).\n",
    );
    out
}

// ---------------------------------------------------------------- E7 ----

fn e7_gittins_optimality() -> String {
    let mut out = String::from(
        "### E7: Gittins rule vs exact DP optimum (discounted MAB, beta = 0.9)\n\n| instance | optimal value | Gittins value | myopic value | Gittins gap |\n|---|---|---|---|---|\n",
    );
    for t in 0..6u64 {
        let projects = vec![
            workloads::bandit_project(3 + (t % 3) as usize, 300 + t),
            workloads::bandit_project(4, 400 + t),
            workloads::bandit_project(3, 500 + t),
        ];
        let mab = MultiArmedBandit::new(projects, 0.9);
        let init = vec![0usize; 3];
        let opt = mab.optimal_value(&init);
        let git = mab.gittins_policy_value(&init);
        let myopic = mab.myopic_policy_value(&init);
        out.push_str(&format!(
            "| #{t} | {opt:.6} | {git:.6} | {myopic:.6} | {:.2e} |\n",
            (opt - git).abs()
        ));
    }
    out.push_str("\nThe Gittins gap is at numerical precision in every instance; myopic is strictly worse whenever exploration matters.\n");
    out
}

// ---------------------------------------------------------------- E8 ----

fn e8_gittins_agreement() -> String {
    let mut out = String::from(
        "### E8: agreement of the three Gittins index algorithms (beta = 0.9)\n\n| states | max |VWB - restart| | max |VWB - calibration| |\n|---|---|---|\n",
    );
    for &k in &[5usize, 10, 20, 40] {
        let p = workloads::bandit_project(k, 800 + k as u64);
        let vwb = gittins_indices_vwb(&p, 0.9);
        let restart = gittins_indices_restart(&p, 0.9);
        let calib = gittins_indices_calibration(&p, 0.9);
        let d1 = vwb
            .iter()
            .zip(&restart)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        let d2 = vwb
            .iter()
            .zip(&calib)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        out.push_str(&format!("| {k} | {d1:.2e} | {d2:.2e} |\n"));
    }
    out.push_str("\nAll three computations coincide to solver tolerance; see `cargo bench -p ss-bench --bench gittins` for their running-time scaling.\n");
    out
}

// ---------------------------------------------------------------- E9 ----

fn e9_switching_costs() -> String {
    use ss_bandits::project::BanditProject;
    let alternating = || BanditProject::new(vec![1.0, 0.3], vec![vec![(1, 1.0)], vec![(0, 1.0)]]);
    let mab = MultiArmedBandit::new(vec![alternating(), alternating()], 0.9);
    let mut out = String::from(
        "### E9: switching costs (two alternating projects, beta = 0.9)\n\n| switch cost | optimal | Gittins (ignores cost) | hysteresis index | Gittins gap % | hysteresis gap % |\n|---|---|---|---|---|---|\n",
    );
    for &cost in &[0.0, 0.5, 1.0, 2.0, 5.0] {
        let sb = SwitchingBandit::new(mab.clone(), cost);
        let init = [0usize, 0];
        let opt = sb.optimal_value(&init);
        let git = sb.gittins_value(&init);
        let hyst = sb.amortised_hysteresis_value(&init);
        out.push_str(&format!(
            "| {cost} | {opt:.3} | {git:.3} | {hyst:.3} | {:.1} | {:.1} |\n",
            (opt - git) / opt.abs().max(1e-9) * 100.0,
            (opt - hyst) / opt.abs().max(1e-9) * 100.0
        ));
    }
    out.push_str("\nThe plain Gittins rule degrades rapidly with the switching cost; the amortised hysteresis index recovers most of the gap (Asawa–Teneketzis).\n");
    out
}

// ---------------------------------------------------------------- E10 ---

fn e10_restless_whittle() -> String {
    let project = workloads::maintenance_restless();
    let indices = whittle_indices(&project);
    let mut out = format!(
        "### E10: restless bandits (machine maintenance, 5 wear levels)\n\nWhittle indices per wear level: {:?}\n\n",
        indices.iter().map(|x| (x * 1000.0).round() / 1000.0).collect::<Vec<_>>()
    );

    // Policy comparison at N = 20, m = 6.
    let n = 20;
    let m = 6;
    let projects: Vec<_> = (0..n).map(|_| project.clone()).collect();
    let mut rng = workloads::rng_for(1000);
    let horizon = 40_000;
    let whittle = simulate_restless(
        &projects,
        m,
        &RestlessPolicy::WhittleIndex(vec![indices.clone(); n]),
        horizon,
        &mut rng,
    );
    let myopic = simulate_restless(&projects, m, &RestlessPolicy::Myopic, horizon, &mut rng);
    let random = simulate_restless(&projects, m, &RestlessPolicy::Random, horizon, &mut rng);
    let bound = n as f64 * relaxation_bound_identical(&project, m as f64 / n as f64);
    let mut table = ComparisonTable::new(
        "E10a: N = 20 machines, m = 6 repair crews, average reward/period",
        "avg reward",
    );
    table.add("Whittle LP relaxation (upper bound)", bound, None, "ss-lp");
    table.add("Whittle index policy", whittle, None, "");
    table.add("myopic", myopic, None, "");
    table.add("random", random, None, "");
    out.push_str(&table.to_markdown());

    // Weber–Weiss asymptotics (per-point RNG streams, fanned over the pool).
    let points = asymptotic_sweep(
        &project,
        0.3,
        &[5, 10, 20, 40, 80, 160],
        40_000,
        workloads::seed_for(1001),
    );
    out.push_str("\n| N | m | Whittle per project | bound per project | relative gap |\n|---|---|---|---|---|\n");
    for p in &points {
        out.push_str(&format!(
            "| {} | {} | {:.4} | {:.4} | {:.4} |\n",
            p.n_projects, p.m_active, p.whittle_per_project, p.bound_per_project, p.relative_gap
        ));
    }
    out.push_str("\nThe per-project gap to the relaxation bound shrinks as N grows with m/N fixed (Weber–Weiss asymptotic optimality).\n");
    out
}

// ---------------------------------------------------------------- E11 ---

fn e11_cmu_mg1() -> String {
    let mut out = String::new();
    let classes = workloads::mg1_three_classes(1.0);
    // Exact comparison over all priority orders + FIFO + simulation check.
    let (best_order, best_cost) = best_nonpreemptive_order(&classes);
    let cmu = cmu_order(&classes);
    let cmu_cost = mg1_nonpreemptive_priority(&classes, &cmu).holding_cost_rate;
    let mut table = ComparisonTable::new(
        "E11a: 3-class M/G/1 at rho = 0.63, steady-state holding cost rate (exact Cobham)",
        "sum c_j E[L_j]",
    );
    table.add(
        format!("cmu order {cmu:?}"),
        cmu_cost,
        None,
        "optimal (Cox-Smith)",
    );
    table.add(
        format!("exhaustive best {best_order:?}"),
        best_cost,
        None,
        "exact",
    );
    let reverse: Vec<usize> = cmu.iter().rev().cloned().collect();
    table.add(
        "reverse cmu",
        mg1_nonpreemptive_priority(&classes, &reverse).holding_cost_rate,
        None,
        "",
    );
    // FIFO via simulation.
    let mut rng = workloads::rng_for(1100);
    let fifo = simulate_mg1(
        &Mg1Config {
            classes: classes.clone(),
            discipline: Discipline::Fifo,
            horizon: 200_000.0,
            warmup: 5_000.0,
        },
        &mut rng,
    );
    table.add("FIFO (simulated)", fifo.holding_cost_rate, None, "");
    // Simulated cmu as a calibration row.
    let mut rng = workloads::rng_for(1101);
    let sim_cmu = simulate_mg1(
        &Mg1Config {
            classes: classes.clone(),
            discipline: Discipline::NonpreemptivePriority(cmu.clone()),
            horizon: 200_000.0,
            warmup: 5_000.0,
        },
        &mut rng,
    );
    table.add(
        "cmu (simulated)",
        sim_cmu.holding_cost_rate,
        None,
        "simulator calibration",
    );
    out.push_str(&table.to_markdown());

    // Conservation law check + load sweep.
    out.push_str("\nConservation law: sum_j rho_j W_j per priority order (must be constant):\n\n| order | sum rho_j W_j |\n|---|---|\n");
    for order in [[0usize, 1, 2], [1, 2, 0], [2, 1, 0]] {
        out.push_str(&format!(
            "| {:?} | {:.6} |\n",
            order,
            weighted_wait_sum(&classes, &order)
        ));
    }
    out.push_str(&format!("| (theory) | {:.6} |\n", conserved_work(&classes)));

    out.push_str(
        "\n| rho | cmu cost (exact) | FIFO-like worst order cost | ratio |\n|---|---|---|---|\n",
    );
    for &scale in &[0.6, 1.0, 1.3, 1.45] {
        let classes = workloads::mg1_three_classes(scale);
        let rho: f64 = classes.iter().map(|c| c.load()).sum();
        let cmu = cmu_order(&classes);
        let cost = mg1_nonpreemptive_priority(&classes, &cmu).holding_cost_rate;
        let reverse: Vec<usize> = cmu.iter().rev().cloned().collect();
        let worst = mg1_nonpreemptive_priority(&classes, &reverse).holding_cost_rate;
        out.push_str(&format!(
            "| {rho:.3} | {cost:.3} | {worst:.3} | {:.3} |\n",
            worst / cost
        ));
    }
    out.push_str("\nThe advantage of the cmu rule grows with the load.\n");
    out
}

// ---------------------------------------------------------------- E12 ---

fn e12_klimov() -> String {
    let net = workloads::klimov_three_class();
    let orders: Vec<Vec<usize>> = vec![
        vec![0, 1, 2],
        vec![0, 2, 1],
        vec![1, 0, 2],
        vec![1, 2, 0],
        vec![2, 0, 1],
        vec![2, 1, 0],
    ];
    let klimov = klimov_order(&net);
    let mut table = ComparisonTable::new(
        "E12: M/G/1 with Bernoulli feedback — simulated holding cost per static priority order",
        "sum c_j E[L_j]",
    );
    for (i, order) in orders.iter().enumerate() {
        let mut rng = workloads::rng_for(1200 + i as u64);
        let res = simulate_klimov(&net, order, 300_000.0, 10_000.0, &mut rng);
        let label = if *order == klimov {
            format!("{order:?} (Klimov order)")
        } else {
            format!("{order:?}")
        };
        table.add(label, res.holding_cost_rate, None, "");
    }
    let mut out = table.to_markdown();
    out.push_str(&format!(
        "\nKlimov's algorithm selects {klimov:?}; it attains the minimum simulated cost (within CI) as predicted by Klimov (1974).\n"
    ));
    out
}

// ---------------------------------------------------------------- E13 ---

fn e13_parallel_servers() -> String {
    let base = workloads::mmm_two_classes();
    // Per-point RNG streams, fanned over the pool.
    let points = heavy_traffic_sweep(
        &base,
        2,
        &[1.0, 1.6, 2.0, 2.3, 2.5],
        300_000.0,
        10_000.0,
        workloads::seed_for(1300),
    );
    let mut out = String::from(
        "### E13: 2-class M/M/2 under the cmu rule vs fast-single-server bound\n\n| rho | cmu cost (sim) | lower bound | ratio |\n|---|---|---|---|\n",
    );
    for p in &points {
        out.push_str(&format!(
            "| {:.3} | {:.3} | {:.3} | {:.3} |\n",
            p.rho, p.cmu_cost, p.lower_bound, p.ratio
        ));
    }
    out.push_str("\nThe ratio to the relaxation bound falls towards 1 as rho -> 1: the index heuristic is asymptotically optimal in heavy traffic (Glazebrook–Niño-Mora).\n");
    out
}

// ---------------------------------------------------------------- E14 ---

fn e14_stability() -> String {
    let params = LuKumarParams::default();
    let (rho_a, rho_b) = params.station_loads();
    let mut out = format!(
        "### E14: Lu–Kumar network, station loads rho_A = {rho_a:.2}, rho_B = {rho_b:.2}, virtual-station load = {:.2}\n\n",
        params.virtual_station_load()
    );
    let horizon = 20_000.0;
    let mut rng = workloads::rng_for(1400);
    let bad = run_lu_kumar(
        &params,
        &params.bad_priority(),
        "priority to classes 2 & 4",
        horizon,
        &mut rng,
    );
    let mut rng = workloads::rng_for(1400);
    let good = run_lu_kumar(
        &params,
        &params.good_priority(),
        "priority to classes 1 & 3",
        horizon,
        &mut rng,
    );
    out.push_str("| policy | growth rate (jobs/time) | final total in system |\n|---|---|---|\n");
    for run in [&bad, &good] {
        out.push_str(&format!(
            "| {} | {:.4} | {} |\n",
            run.label, run.growth_rate, run.result.final_total
        ));
    }
    out.push_str("\nTrajectory samples (total jobs in system):\n\n| time | bad priority | good priority |\n|---|---|---|\n");
    let step = bad.result.sample_times.len() / 10;
    for i in (0..bad.result.sample_times.len()).step_by(step.max(1)) {
        out.push_str(&format!(
            "| {:.0} | {:.0} | {:.0} |\n",
            bad.result.sample_times[i], bad.result.trajectory[i], good.result.trajectory[i]
        ));
    }
    out.push_str("\nBoth stations are nominally under-loaded, yet the bad priority rule diverges — the stability problem the survey highlights.\n");
    out
}

// ---------------------------------------------------------------- E15 ---

fn e15_fluid() -> String {
    let params = LuKumarParams::default();
    let net = FluidNetwork::from_network(&params.build());
    let x0 = [1.0, 0.0, 0.0, 0.0];
    let bad = integrate_priority_fluid(&net, &params.bad_priority(), &x0, 200.0, 0.002, 11);
    let good = integrate_priority_fluid(&net, &params.good_priority(), &x0, 200.0, 0.002, 11);
    let mut out = String::from(
        "### E15: fluid model of the Lu–Kumar network (initial fluid 1 in buffer 1)\n\n| time | total fluid (bad priority) | total fluid (good priority) |\n|---|---|---|\n",
    );
    for i in 0..bad.times.len() {
        let b: f64 = bad.levels[i].iter().sum();
        let g: f64 = good.levels[i].iter().sum();
        out.push_str(&format!("| {:.0} | {:.3} | {:.3} |\n", bad.times[i], b, g));
    }
    out.push_str(&format!(
        "\nIntegrated holding cost over [0, 200]: bad = {:.1}, good = {:.1}.  The fluid model reproduces the instability of the bad priority rule and the stability of the good one, as the fluid-approximation literature (Chen–Yao, Atkins–Chen) predicts.\n",
        bad.total_cost, good.total_cost
    ));
    out
}

// ---------------------------------------------------------------- E16 ---

fn e16_polling() -> String {
    let classes = vec![
        ss_core::job::JobClass::new(
            0,
            0.45,
            dyn_dist(ss_distributions::Exponential::with_mean(1.0)),
            1.0,
        ),
        ss_core::job::JobClass::new(
            1,
            0.35,
            dyn_dist(ss_distributions::Exponential::with_mean(0.8)),
            2.0,
        ),
    ];
    let mut out = String::from(
        "### E16: 2-class M/M/1 with class switchover times\n\n| setup time | cmu-with-setups cost | exhaustive polling cost | gated polling cost | cmu setups | exhaustive setups | gated setups |\n|---|---|---|---|---|---|---|\n",
    );
    for &setup_time in &[0.0, 0.1, 0.3, 0.6, 1.0] {
        let setups: Vec<_> = (0..2)
            .map(|_| dyn_dist(ss_distributions::Deterministic::new(setup_time)))
            .collect();
        let mut rng = workloads::rng_for(1600);
        let cmu = simulate_polling(
            &classes,
            &setups,
            PollingDiscipline::CmuWithSetups,
            150_000.0,
            5_000.0,
            &mut rng,
        );
        let mut rng = workloads::rng_for(1600);
        let exhaustive = simulate_polling(
            &classes,
            &setups,
            PollingDiscipline::Exhaustive,
            150_000.0,
            5_000.0,
            &mut rng,
        );
        let mut rng = workloads::rng_for(1600);
        let gated = simulate_polling(
            &classes,
            &setups,
            PollingDiscipline::Gated,
            150_000.0,
            5_000.0,
            &mut rng,
        );
        out.push_str(&format!(
            "| {setup_time} | {:.3} | {:.3} | {:.3} | {} | {} | {} |\n",
            cmu.holding_cost_rate,
            exhaustive.holding_cost_rate,
            gated.holding_cost_rate,
            cmu.setups,
            exhaustive.setups,
            gated.setups
        ));
    }
    out.push_str("\nWith no setups the cmu rule wins (Cox–Smith); as changeovers grow the exhaustive (polling) discipline overtakes it, with gated service close behind — the regime studied by Levy–Sidi and Reiman–Wein.\n");
    out
}

// ---------------------------------------------------------------- E17 ---

fn e17_achievable_region() -> String {
    let mut out = String::new();
    let classes = workloads::mg1_three_classes(1.0);

    // (a) Vertices of the performance polytope are exactly the priority
    // rules: compare the nested-difference vertex with Cobham for every
    // order and report the worst discrepancy.
    let orders: Vec<Vec<usize>> = vec![
        vec![0, 1, 2],
        vec![0, 2, 1],
        vec![1, 0, 2],
        vec![1, 2, 0],
        vec![2, 0, 1],
        vec![2, 1, 0],
    ];
    let mut worst = 0.0f64;
    for order in &orders {
        let vertex = vertex_performance(&classes, order);
        let exact = mg1_nonpreemptive_priority(&classes, order);
        for j in 0..classes.len() {
            worst = worst.max((vertex[j] - classes[j].load() * exact.wait[j]).abs());
        }
    }
    out.push_str(&format!(
        "Polymatroid vertices vs Cobham waiting times over all {} priority orders: \
         largest absolute discrepancy in rho_j W_j = {worst:.2e}.\n\n",
        orders.len()
    ));

    // (b) The region LP attains the cmu-rule cost.
    let lp = region_lp(&classes);
    let cmu = cmu_order(&classes);
    let cmu_cost = mg1_nonpreemptive_priority(&classes, &cmu).holding_cost_rate;
    let fifo_wait = ss_queueing::cobham::pollaczek_khinchine_wait(&classes);
    let fifo_cost: f64 = classes
        .iter()
        .map(|c| c.holding_cost * c.arrival_rate * (fifo_wait + c.mean_service()))
        .sum();
    let (_, best_cost) = ss_queueing::cobham::best_nonpreemptive_order(&classes);
    let mut table = ComparisonTable::new(
        "E17: 3-class M/G/1 — achievable-region LP vs policies",
        "holding-cost rate",
    );
    table.add(
        "achievable-region LP optimum",
        lp.holding_cost_rate,
        None,
        "2^N-constraint LP over rho_j W_j",
    );
    table.add(
        "cmu rule (Cobham exact)",
        cmu_cost,
        None,
        "optimal (Cox-Smith)",
    );
    table.add("exhaustive best priority order", best_cost, None, "exact");
    table.add("FIFO", fifo_cost, None, "Pollaczek-Khinchine");
    out.push_str(&table.to_markdown());

    // (c) Adaptive greedy recovers the cmu and Klimov indices.
    let ag = cmu_via_adaptive_greedy(&classes);
    out.push_str("\n| class | adaptive-greedy index | c_j mu_j |\n|---|---|---|\n");
    for (j, c) in classes.iter().enumerate() {
        out.push_str(&format!(
            "| {j} | {:.4} | {:.4} |\n",
            ag.indices[j],
            c.cmu_index()
        ));
    }
    let network = workloads::klimov_three_class();
    let ag_klimov = klimov_via_adaptive_greedy(&network);
    let dedicated = ss_queueing::klimov::klimov_indices(&network);
    out.push_str("\n| class | adaptive-greedy index (feedback) | Klimov index |\n|---|---|---|\n");
    for j in 0..network.num_classes() {
        out.push_str(&format!(
            "| {j} | {:.4} | {:.4} |\n",
            ag_klimov.indices[j], dedicated[j]
        ));
    }
    out.push_str(&format!(
        "\nMarginal rates non-increasing (conservation-law certificate): cmu {}, Klimov {}.\n",
        ag.rates_non_increasing(1e-9),
        ag_klimov.rates_non_increasing(1e-9)
    ));
    out
}

// ---------------------------------------------------------------- E18 ---

fn e18_branching() -> String {
    let bandit = workloads::branching_three_class();
    let initial = [2usize, 2, 1];
    let indices = bandit.indices();
    let mut out =
        String::from("### E18: branching bandit (3 classes, initial population [2, 2, 1])\n\n");
    out.push_str("| class | index | mean service | holding cost | expected total work per job |\n|---|---|---|---|---|\n");
    for j in 0..bandit.num_classes() {
        out.push_str(&format!(
            "| {j} | {:.4} | {:.2} | {:.1} | {:.3} |\n",
            indices.indices[j],
            bandit.mean_service(j),
            bandit.holding_costs()[j],
            bandit.expected_total_work(j)
        ));
    }
    out.push('\n');

    let orders: Vec<Vec<usize>> = vec![
        vec![0, 1, 2],
        vec![0, 2, 1],
        vec![1, 0, 2],
        vec![1, 2, 0],
        vec![2, 0, 1],
        vec![2, 1, 0],
    ];
    let index_order = indices.order.clone();
    let mut table = ComparisonTable::new(
        "E18: expected total holding cost until extinction (20 000 replications per order)",
        "E[total holding cost]",
    );
    for (i, order) in orders.iter().enumerate() {
        let (mean, ci) =
            estimate_order_cost_parallel(&bandit, &initial, order, 20_000, 1800 + i as u64);
        let note = if *order == index_order {
            "branching-bandit index order (Weiss)"
        } else {
            ""
        };
        table.add(format!("priority {:?}", order), mean, Some(ci), note);
    }
    out.push_str(&table.to_markdown());
    out.push_str("\nThe index order attains the smallest simulated cost, as Weiss's branching-bandit theorem predicts.\n");
    out
}

// ---------------------------------------------------------------- E19 ---

fn e19_mpi() -> String {
    let project = workloads::maintenance_restless();
    let mpi = marginal_productivity_indices(&project, 1e-9);
    let whittle = whittle_indices(&project);
    let mut out = String::from(
        "### E19: machine-maintenance restless project — marginal productivity indices vs Whittle bisection\n\n| wear level | MPI (adaptive greedy) | Whittle index (bisection) | abs diff |\n|---|---|---|---|\n",
    );
    for i in 0..project.num_states() {
        out.push_str(&format!(
            "| {i} | {:.6} | {:.6} | {:.2e} |\n",
            mpi.indices[i],
            whittle[i],
            (mpi.indices[i] - whittle[i]).abs()
        ));
    }
    out.push_str(&format!(
        "\nPCL-indexability certificate: marginal work all positive = {}, marginal rates non-increasing = {}, overall = {}.\n",
        mpi.marginal_work.iter().all(|&w| w > 0.0),
        mpi.marginal_rates.windows(2).all(|w| w[1] <= w[0] + 1e-9),
        mpi.pcl_indexable
    ));
    out.push_str(
        "\nThe adaptive-greedy MPI run solves K+  (K-1)+ ... stationary systems instead of a bisection per state, and agrees with the Whittle index to the reported precision — the polyhedral (partial-conservation-law) computation the survey cites.\n",
    );
    out
}

// ---------------------------------------------------------------- E20 ---

fn e20_setup_thresholds() -> String {
    let classes = workloads::setup_two_classes_asymmetric();
    let mut out = String::from(
        "### E20: 2-class M/M/1 with setups (load 0.62, holding costs 1 vs 6) — interrupt thresholds vs alternatives\n\n| setup time | cmu-every-job | exhaustive (never interrupt) | sqrt-rule interrupt threshold | thresholds used |\n|---|---|---|---|---|\n",
    );
    for &setup_time in &[0.1, 0.3, 0.6, 1.0] {
        let setup: Vec<_> = (0..2)
            .map(|_| dyn_dist(ss_distributions::Deterministic::new(setup_time)))
            .collect();
        let thresholds = sqrt_rule_thresholds(&classes, &[setup_time, setup_time]);
        let mut rng = workloads::rng_for(2000);
        let myopic = simulate_setup_policy(
            &classes,
            &setup,
            &SetupPolicy::CmuEveryJob,
            150_000.0,
            5_000.0,
            &mut rng,
        );
        let mut rng = workloads::rng_for(2000);
        let exhaustive = simulate_setup_policy(
            &classes,
            &setup,
            &SetupPolicy::Exhaustive,
            150_000.0,
            5_000.0,
            &mut rng,
        );
        let mut rng = workloads::rng_for(2000);
        let threshold = simulate_setup_policy(
            &classes,
            &setup,
            &SetupPolicy::Threshold {
                thresholds: thresholds.clone(),
            },
            150_000.0,
            5_000.0,
            &mut rng,
        );
        out.push_str(&format!(
            "| {setup_time} | {:.3} | {:.3} | {:.3} | [{:.2}, {:.2}] |\n",
            myopic.holding_cost_rate,
            exhaustive.holding_cost_rate,
            threshold.holding_cost_rate,
            thresholds[0],
            thresholds[1]
        ));
    }

    // Threshold sweep at a fixed setup time: the square-root rule (scale 1)
    // should sit near the empirically best scale, with both the eager
    // (small-scale) and the patient (large-scale) extremes doing worse.
    let setup_time = 1.0;
    let setup: Vec<_> = (0..2)
        .map(|_| dyn_dist(ss_distributions::Deterministic::new(setup_time)))
        .collect();
    let base = sqrt_rule_thresholds(&classes, &[setup_time, setup_time]);
    let scales = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0];
    let points = threshold_sweep(&classes, &setup, &base, &scales, 150_000.0, 5_000.0, 2025);
    out.push_str(&format!(
        "\nThreshold sweep at setup time {setup_time} (base interrupt thresholds [{:.2}, {:.2}]):\n\n",
        base[0], base[1]
    ));
    out.push_str("| threshold scale | holding-cost rate | setups per unit time |\n|---|---|---|\n");
    for p in &points {
        out.push_str(&format!(
            "| {:.2} | {:.3} | {:.4} |\n",
            p.scale, p.holding_cost_rate, p.setups_per_time
        ));
    }
    out.push_str(
        "\nThe square-root interrupt threshold (scale 1) is within noise of the best scale in the sweep, and dominates both the switch-every-job extreme (tiny thresholds waste capacity on changeovers) and the never-interrupt extreme (huge thresholds let expensive work pile up) — the qualitative content of the Reiman-Wein heavy-traffic analysis.\n",
    );
    out
}

// ---------------------------------------------------------------- E21 ---

/// The shared E21 workload: one list-schedule Monte-Carlo evaluation, sized
/// so one replication (200 sampled jobs through the machine calendar) is
/// heavy enough to dwarf the pool's per-chunk overhead.
pub fn parallel_replication_workload(replications: usize) -> ss_sim::ReplicationSummary {
    use ss_batch::parallel::{evaluate_list_policy, ParallelMetric};
    let inst = workloads::batch_instance(200, InstanceFamily::Mixed, 2100);
    let order: Vec<usize> = (0..inst.len()).collect();
    evaluate_list_policy(
        &inst,
        &order,
        4,
        ParallelMetric::TotalFlowtime,
        replications,
        workloads::MASTER_SEED,
    )
}

fn e21_parallel_replications() -> String {
    use std::time::Instant;
    let host = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let reps = 500;
    let mut out = format!(
        "### E21: parallel replication engine — 200-job list-schedule simulation, {reps} replications per run (host: {host} logical CPU(s))\n\n"
    );
    let time_with_threads = |threads: usize| {
        // Pool built outside the timer: thread spawn/join is setup cost,
        // not workload cost. Best of 3 to damp scheduler noise.
        let pool = ss_sim::pool::ThreadPool::new(threads);
        let mut best = f64::INFINITY;
        let mut last = None;
        for _ in 0..3 {
            let start = Instant::now();
            let summary = pool.install(|| parallel_replication_workload(reps));
            best = best.min(start.elapsed().as_secs_f64());
            last = Some(summary);
        }
        (best, last.expect("three runs completed"))
    };
    let (serial_secs, serial) = time_with_threads(1);
    out.push_str("| threads | wall-clock (best of 3) | speedup vs 1 thread | values bit-identical to serial |\n|---|---|---|---|\n");
    for &threads in &[1usize, 2, 4, 8] {
        let (secs, summary) = time_with_threads(threads);
        let identical = summary.values == serial.values;
        out.push_str(&format!(
            "| {threads} | {:.1} ms | {:.2}x | {identical} |\n",
            secs * 1e3,
            serial_secs / secs
        ));
    }
    out.push_str(&format!(
        "\nDeterminism is the contract — the pool only changes the schedule, never the \
         values — so the summary (mean {:.4} ± {:.4}) is the same for every row.  Wall-clock \
         speedup tracks the host's core count; see BENCH_parallel_replications.json for the \
         recorded trajectory (`cargo run --release -p ss-bench --bin parallel_replications`).\n",
        serial.mean, serial.ci95
    ));
    out
}

// ---------------------------------------------------------------- E22 ---

/// The overload-resilience experiment: the same arrival sample drives two
/// arms of the fabric's retry-storm scenario.  One transient slowdown epoch
/// (service rate cut to 25% for ~120 time units) tips the unprotected arm
/// into the *metastable* bad equilibrium — completions land past their
/// deadline, wasting full service times, and every timeout re-arms a retry,
/// so the effective load stays far above capacity long after the slowdown
/// ends.  The protected arm adds queue reneging, a front-tier token-bucket
/// shedder and a per-tier circuit breaker; the same trigger produces a dip
/// and a recovery.  The SLA sliding windows make the contrast quantitative.
fn e22_metastable_retry_storm() -> String {
    use ss_fabric::scenarios::{aggregate, retry_storm_config, Budget, DEFAULT_SEED};
    use ss_fabric::sim::{replication_seed, run_fabric};
    use ss_sim::rng::RngStreams;

    let budget = Budget::full();
    let streams = RngStreams::new(DEFAULT_SEED);
    // Scenario id 7 = the retry-storm slot of the committed fabric suite,
    // so the protected arm here replays exactly what `fabric` reports.
    let run_arm = |protected: bool| {
        let cfg = retry_storm_config(protected, &budget);
        let reports: Vec<_> = (0..budget.replications)
            .map(|rep| run_fabric(&cfg, replication_seed(&streams, 7, rep)))
            .collect();
        aggregate(&reports)
    };
    let unprotected = run_arm(false);
    let protected = run_arm(true);

    let mut out = format!(
        "### E22: metastable retry storm — M/M/4 front tier (rho 0.85), deadline 6.0, \
         up to 4 retries, one slowdown epoch to 25% service rate; {} replications of \
         horizon {}\n\n",
        budget.replications, budget.horizon
    );
    out.push_str(
        "| SLA window | unprotected goodput | unprotected P99 RTT | protected goodput | protected P99 RTT | shed | fast-failed |\n|---|---|---|---|---|---|---|\n",
    );
    for (u, p) in unprotected.windows.iter().zip(&protected.windows) {
        out.push_str(&format!(
            "| [{:.0}, {:.0}) | {:.4} | {:.2} | {:.4} | {:.2} | {} | {} |\n",
            u.start,
            u.end,
            u.goodput(),
            u.rtt.quantile(0.99),
            p.goodput(),
            p.rtt.quantile(0.99),
            p.shed,
            p.fast_failed,
        ));
    }
    let last_u = unprotected.windows.last().expect("windows configured");
    let last_p = protected.windows.last().expect("windows configured");
    out.push_str(&format!(
        "\nBoth arms face the identical arrival sample ({} offered requests).  The \
         unprotected arm completes {} of them in-deadline and ends at {:.1}% final-window \
         goodput — the collapse outlives its trigger, the signature of metastability.  The \
         protected arm completes {} ({:.1}% final-window goodput, final-window P99 RTT \
         {:.2} vs deadline 6.0), shedding {} requests and fast-failing {} at the breaker \
         along the way.  The committed gate for these numbers is \
         `crates/fabric/tests/resilience.rs`.\n",
        unprotected.arrivals,
        unprotected.completed,
        100.0 * last_u.goodput(),
        protected.completed,
        100.0 * last_p.goodput(),
        last_p.rtt.quantile(0.99),
        protected.shed,
        protected.tiers[0].fast_failed,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_registry_is_complete_and_unique() {
        let experiments = all_experiments();
        assert_eq!(experiments.len(), 22);
        let ids: std::collections::HashSet<&str> = experiments.iter().map(|e| e.id).collect();
        assert_eq!(ids.len(), 22);
    }

    #[test]
    fn parallel_replication_experiment_is_bit_identical() {
        let report = e21_parallel_replications();
        assert!(report.contains("bit-identical"));
        assert!(
            !report.contains("| false |"),
            "parallel diverged from serial:\n{report}"
        );
    }

    #[test]
    fn retry_storm_experiment_contrasts_the_two_arms() {
        let report = e22_metastable_retry_storm();
        assert!(report.contains("| SLA window |"));
        assert!(report.contains("metastability"));
        // The final table row must show the contrast the experiment exists
        // for: near-zero goodput on the left, near-one on the right.
        let last_row = report
            .lines()
            .rfind(|l| l.starts_with("| ["))
            .expect("windowed rows present");
        let cells: Vec<&str> = last_row.split('|').map(str::trim).collect();
        let unprotected: f64 = cells[2].parse().unwrap();
        let protected: f64 = cells[4].parse().unwrap();
        assert!(unprotected < 0.5, "unprotected arm recovered: {last_row}");
        assert!(protected > 0.9, "protected arm collapsed: {last_row}");
    }

    #[test]
    fn small_experiments_produce_tables() {
        // Run a couple of the cheap exact experiments end to end.
        let e3 = e3_sept_parallel_flowtime();
        assert!(e3.contains("SEPT"));
        let e9 = e9_switching_costs();
        assert!(e9.contains("hysteresis"));
    }

    #[test]
    fn harness_reports_are_identical_across_jobs() {
        // The concurrent harness only changes scheduling, never content:
        // a cheap subset (two exact experiments plus the E6 sweep) must
        // produce byte-identical reports at --jobs 1 and --jobs 4.
        let all = all_experiments();
        let subset: Vec<&Experiment> = all
            .iter()
            .filter(|e| matches!(e.id, "E3" | "E5" | "E6" | "E9"))
            .collect();
        let serial = run_experiments(&subset, 1);
        let parallel = run_experiments(&subset, 4);
        assert_eq!(serial.len(), 4);
        assert_eq!(parallel.len(), 4);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.id, b.id, "report order must be the selection order");
            assert_eq!(a.report, b.report, "{} diverged across jobs", a.id);
        }
    }

    #[test]
    fn panicking_experiment_is_captured_not_propagated() {
        fn boom() -> String {
            panic!("deliberate test panic")
        }
        fn fine() -> String {
            "completed fine\n".to_string()
        }
        let bad = Experiment {
            id: "EX",
            description: "always panics",
            run: boom,
        };
        let good = Experiment {
            id: "EY",
            description: "always completes",
            run: fine,
        };
        for jobs in [1usize, 4] {
            let reports = run_experiments(&[&bad, &good], jobs);
            assert_eq!(reports.len(), 2, "jobs={jobs}");
            assert!(reports[0].panicked);
            assert!(reports[0].report.contains("deliberate test panic"));
            assert!(!reports[1].panicked);
            assert_eq!(reports[1].report, "completed fine\n");
        }
    }

    #[test]
    fn achievable_region_experiment_reports_agreement() {
        let report = e17_achievable_region();
        assert!(report.contains("achievable-region LP optimum"));
        assert!(report.contains("Klimov index"));
        assert!(report.contains("cmu true, Klimov true"));
    }

    #[test]
    fn mpi_experiment_certifies_indexability() {
        let report = e19_mpi();
        assert!(report.contains("overall = true"));
        assert!(report.contains("Whittle index"));
    }
}

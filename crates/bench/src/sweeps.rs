//! Shared sweep workloads for the `sweeps` binary and the `sweeps`
//! criterion bench.
//!
//! Each workload runs one of the pool-parallelised Monte-Carlo sweeps
//! (turnpike / heavy-traffic / Weber–Weiss asymptotics) at a fixed,
//! representative configuration and returns the flat vector of every `f64`
//! the sweep produced — the fingerprint the serial-vs-parallel bit-identity
//! gate compares.  The configurations deliberately mirror the E6 / E13 /
//! E10 experiment settings (same workload builders, same derived seeds) so
//! the recorded timings transfer to the harness.

use crate::workloads;
use ss_bandits::restless::asymptotic_sweep;
use ss_batch::turnpike::turnpike_sweep;
use ss_core::instance::{InstanceFamily, InstanceGenerator};
use ss_queueing::parallel_servers::heavy_traffic_sweep;

/// One named sweep workload: `run()` executes the sweep on the current pool
/// and returns its outputs flattened to `f64`s in point order.
pub struct SweepWorkload {
    /// Short name used in reports and `BENCH_sweeps.json`.
    pub name: &'static str,
    /// Execute the sweep and flatten its outputs.
    pub run: fn() -> Vec<f64>,
}

/// The three pool-parallelised sweeps, in the order they were converted.
pub fn sweep_workloads() -> Vec<SweepWorkload> {
    vec![
        SweepWorkload {
            name: "turnpike",
            run: turnpike_workload,
        },
        SweepWorkload {
            name: "heavy_traffic",
            run: heavy_traffic_workload,
        },
        SweepWorkload {
            name: "asymptotic",
            run: asymptotic_workload,
        },
    ]
}

/// The E6 turnpike sweep (one fewer point and doubled replications versus
/// the experiment, so each point is chunky enough to time).
fn turnpike_workload() -> Vec<f64> {
    let generator = InstanceGenerator::with_family(InstanceFamily::Exponential);
    let points = turnpike_sweep(
        &generator,
        &[10, 20, 40, 80, 160, 320],
        4,
        800,
        workloads::MASTER_SEED,
    );
    points
        .iter()
        .flat_map(|p| {
            [
                p.wsept_value,
                p.wsept_ci95,
                p.lower_bound,
                p.additive_gap,
                p.relative_gap,
            ]
        })
        .collect()
}

/// The E13 heavy-traffic sweep at a reduced horizon.
fn heavy_traffic_workload() -> Vec<f64> {
    let base = workloads::mmm_two_classes();
    let points = heavy_traffic_sweep(
        &base,
        2,
        &[1.0, 1.6, 2.0, 2.3],
        120_000.0,
        4_000.0,
        workloads::seed_for(1300),
    );
    points
        .iter()
        .flat_map(|p| [p.rho, p.cmu_cost, p.lower_bound, p.ratio])
        .collect()
}

/// The E10 Weber–Weiss asymptotic sweep at a reduced horizon.
fn asymptotic_workload() -> Vec<f64> {
    let project = workloads::maintenance_restless();
    let points = asymptotic_sweep(
        &project,
        0.3,
        &[5, 10, 20, 40, 80],
        20_000,
        workloads::seed_for(1001),
    );
    points
        .iter()
        .flat_map(|p| {
            [
                p.n_projects as f64,
                p.m_active as f64,
                p.whittle_per_project,
                p.bound_per_project,
                p.relative_gap,
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_produces_finite_values() {
        for w in sweep_workloads() {
            let values = (w.run)();
            assert!(!values.is_empty(), "{} produced no output", w.name);
            assert!(
                values.iter().all(|v| v.is_finite()),
                "{} produced non-finite values",
                w.name
            );
        }
    }

    #[test]
    fn workload_names_are_unique() {
        let workloads = sweep_workloads();
        let names: std::collections::HashSet<&str> = workloads.iter().map(|w| w.name).collect();
        assert_eq!(names.len(), workloads.len());
    }
}

//! Shared workload builders used by both the experiment harness and the
//! Criterion benches.  Every builder is deterministic given its arguments
//! (seeds are fixed constants documented in EXPERIMENTS.md).

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use ss_bandits::branching::offspring::OffspringDist;
use ss_bandits::branching::BranchingBandit;
use ss_bandits::instances::{maintenance_project, random_project};
use ss_bandits::project::BanditProject;
use ss_bandits::restless::RestlessProject;
use ss_core::instance::{BatchInstance, InstanceFamily, InstanceGenerator};
use ss_core::job::JobClass;
use ss_distributions::{dyn_dist, Erlang, Exponential, HyperExponential};
use ss_queueing::klimov::KlimovNetwork;

/// Master seed used by every experiment (recorded in EXPERIMENTS.md).
pub const MASTER_SEED: u64 = 20260613;

/// The derived master seed for a named workload: what seed-taking sweeps
/// (which fan out their own per-point `RngStreams`) receive for tag `tag`.
pub fn seed_for(tag: u64) -> u64 {
    MASTER_SEED ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// A reproducible RNG for a named workload.
pub fn rng_for(tag: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed_for(tag))
}

/// Random batch instance of `n` jobs from the given family.
pub fn batch_instance(n: usize, family: InstanceFamily, tag: u64) -> BatchInstance {
    let mut rng = rng_for(tag);
    InstanceGenerator::with_family(family).generate(n, &mut rng)
}

/// The three-class M/G/1 instance used by E11 (mixed service variability).
pub fn mg1_three_classes(load_scale: f64) -> Vec<JobClass> {
    vec![
        JobClass::new(
            0,
            0.20 * load_scale,
            dyn_dist(Exponential::with_mean(1.0)),
            1.0,
        ),
        JobClass::new(
            1,
            0.25 * load_scale,
            dyn_dist(Erlang::with_mean(3, 0.8)),
            3.0,
        ),
        JobClass::new(
            2,
            0.10 * load_scale,
            dyn_dist(HyperExponential::with_mean_scv(1.5, 4.0)),
            2.0,
        ),
    ]
}

/// The three-class feedback network used by E12.
pub fn klimov_three_class() -> KlimovNetwork {
    KlimovNetwork::new(
        vec![0.25, 0.1, 0.05],
        vec![
            dyn_dist(Exponential::with_mean(0.8)),
            dyn_dist(Exponential::with_mean(0.6)),
            dyn_dist(Exponential::with_mean(1.2)),
        ],
        vec![1.0, 2.0, 4.0],
        vec![
            vec![0.0, 0.6, 0.0],
            vec![0.0, 0.0, 0.3],
            vec![0.0, 0.0, 0.0],
        ],
    )
}

/// The two-class M/M/· base instance used by E13.
pub fn mmm_two_classes() -> Vec<JobClass> {
    vec![
        JobClass::new(0, 0.5, dyn_dist(Exponential::with_mean(1.0)), 1.0),
        JobClass::new(1, 0.4, dyn_dist(Exponential::with_mean(0.6)), 3.0),
    ]
}

/// A random `k`-state bandit project (E7/E8).
pub fn bandit_project(k: usize, tag: u64) -> BanditProject {
    let mut rng = rng_for(tag);
    random_project(k, &mut rng)
}

/// The machine-maintenance restless project used by E10.
pub fn maintenance_restless() -> RestlessProject {
    maintenance_project(5, 0.35, 0.4, 0.95)
}

/// The three-class branching bandit used by E18: class 0 spawns class-1 and
/// class-2 follow-up work, class 1 occasionally spawns class-2 work, class 2
/// is terminal.
pub fn branching_three_class() -> BranchingBandit {
    BranchingBandit::new(
        vec![
            dyn_dist(Exponential::with_mean(1.0)),
            dyn_dist(Exponential::with_mean(0.5)),
            dyn_dist(Exponential::with_mean(1.5)),
        ],
        vec![2.0, 1.0, 3.0],
        vec![
            OffspringDist::new(vec![
                (vec![0, 1, 1], 0.3),
                (vec![0, 1, 0], 0.3),
                (vec![0, 0, 0], 0.4),
            ]),
            OffspringDist::feedback(3, 2, 0.4),
            OffspringDist::none(3),
        ],
    )
}

/// The two-class setup-time instance used by E16 (total load 0.73).
pub fn setup_two_classes() -> Vec<JobClass> {
    vec![
        JobClass::new(0, 0.45, dyn_dist(Exponential::with_mean(1.0)), 1.0),
        JobClass::new(1, 0.35, dyn_dist(Exponential::with_mean(0.8)), 2.0),
    ]
}

/// The cost-asymmetric two-class setup-time instance used by E20 (total
/// load 0.62, holding costs 1 vs 6): the regime where the interrupt
/// threshold of the expensive class matters — never interrupting lets
/// expensive work pile up, interrupting for every job overloads the server
/// with changeovers.
pub fn setup_two_classes_asymmetric() -> Vec<JobClass> {
    vec![
        JobClass::new(0, 0.50, dyn_dist(Exponential::with_mean(1.0)), 1.0),
        JobClass::new(1, 0.15, dyn_dist(Exponential::with_mean(0.8)), 6.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_reproducible() {
        let a = batch_instance(6, InstanceFamily::Exponential, 1);
        let b = batch_instance(6, InstanceFamily::Exponential, 1);
        for (ja, jb) in a.jobs().iter().zip(b.jobs()) {
            assert_eq!(ja.weight, jb.weight);
        }
        let c = batch_instance(6, InstanceFamily::Exponential, 2);
        assert!(a
            .jobs()
            .iter()
            .zip(c.jobs())
            .any(|(x, y)| x.weight != y.weight));
    }

    #[test]
    fn standard_instances_are_stable() {
        let classes = mg1_three_classes(1.0);
        let rho: f64 = classes.iter().map(|c| c.load()).sum();
        assert!(rho < 1.0);
        assert!(klimov_three_class().total_load() < 1.0);
    }
}

//! Deterministic event calendar.
//!
//! Events are ordered by `(time, sequence)`, where the sequence number is
//! assigned at insertion.  This makes simultaneous events (common in
//! preemptive schedulers and in deterministic-service models) resolve in a
//! deterministic first-scheduled-first-served order, so every simulation in
//! the workspace is exactly reproducible from its seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    time: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering so the BinaryHeap (a max-heap) pops the earliest
        // time first; ties broken by insertion sequence.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty calendar.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `event` at absolute time `time` (must be finite, not NaN).
    pub fn schedule(&mut self, time: f64, event: E) {
        assert!(time.is_finite(), "event time must be finite, got {time}");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Remove and return the earliest event as `(time, event)`.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Remove and return the earliest event only if it occurs at or before
    /// `horizon`; otherwise leave the calendar untouched and return `None`.
    ///
    /// This is the horizon-respecting pop [`crate::engine::Engine::run`] is
    /// built on: an event past the horizon stays scheduled, so a run can be
    /// resumed later with a larger horizon without losing events.
    pub fn pop_at_or_before(&mut self, horizon: f64) -> Option<(f64, E)> {
        match self.heap.peek() {
            Some(e) if e.time <= horizon => self.pop(),
            _ => None,
        }
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_broken_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        q.schedule(1.0, 2);
        q.schedule(1.0, 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        assert_eq!(q.peek_time(), Some(5.0));
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic]
    fn rejects_nan_times() {
        let mut q = EventQueue::new();
        q.schedule(f64::NAN, ());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(1.0, ());
        q.schedule(2.0, ());
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn many_events_sorted() {
        let mut q = EventQueue::new();
        // Insert pseudo-random times and verify the pop order is sorted.
        let mut t = 0.5f64;
        for _ in 0..1000 {
            t = (t * 997.0 + 0.123).fract() * 100.0;
            q.schedule(t, t);
        }
        let mut prev = f64::NEG_INFINITY;
        while let Some((time, _)) = q.pop() {
            assert!(time >= prev);
            prev = time;
        }
    }
}

//! Output-analysis statistics: online moments, confidence intervals,
//! time-weighted averages and batch means.

use ss_distributions::special::std_normal_inv_cdf;

/// Welford online mean/variance accumulator.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Accumulate a whole sample at once (convenience for oracle checks
    /// and tests that already hold their observations in a slice).
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut s = Self::new();
        for &x in xs {
            s.push(x);
        }
        s
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Minimum observation.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Half-width of a normal-approximation confidence interval at the given
    /// level (e.g. `0.95`).
    pub fn ci_half_width(&self, level: f64) -> f64 {
        assert!(level > 0.0 && level < 1.0);
        if self.n < 2 {
            return f64::INFINITY;
        }
        let z = std_normal_inv_cdf(0.5 + level / 2.0);
        z * self.std_error()
    }

    /// Half-width of a **Student-t** confidence interval at the given level.
    ///
    /// For small replication counts the normal quantile of
    /// [`OnlineStats::ci_half_width`] under-covers (e.g. true coverage
    /// ~96% for a nominal 99% interval at n = 6).  This variant uses the
    /// exact closed-form t quantiles at 1 and 2 degrees of freedom (where
    /// a `1/dof` expansion diverges badly) and the Peiser / Cornish–Fisher
    /// expansion above that — a few percent low at dof 3, well under 1%
    /// for dof >= 4, converging to the normal quantile as `n` grows.  The
    /// oracle cross-validation gate (ss-verify) uses it for its
    /// few-replication CI slack.
    pub fn ci_half_width_t(&self, level: f64) -> f64 {
        assert!(level > 0.0 && level < 1.0);
        if self.n < 2 {
            return f64::INFINITY;
        }
        let t = match self.n - 1 {
            // dof 1 (Cauchy): Q(p) = tan(pi (p - 1/2)) = tan(pi level / 2).
            1 => (std::f64::consts::PI * level / 2.0).tan(),
            // dof 2: Q(p) = (2p - 1) sqrt(2 / (1 - (2p - 1)^2)).
            2 => level * (2.0 / (1.0 - level * level)).sqrt(),
            _ => {
                let dof = (self.n - 1) as f64;
                let z = std_normal_inv_cdf(0.5 + level / 2.0);
                let (z3, z5, z7) = (z.powi(3), z.powi(5), z.powi(7));
                z + (z3 + z) / (4.0 * dof)
                    + (5.0 * z5 + 16.0 * z3 + 3.0 * z) / (96.0 * dof * dof)
                    + (3.0 * z7 + 19.0 * z5 + 17.0 * z3 - 15.0 * z) / (384.0 * dof.powi(3))
            }
        };
        t * self.std_error()
    }
}

/// Deterministic fixed-bucket quantile sketch for latency tails.
///
/// Values are counted into geometrically spaced buckets spanning
/// `[floor, cap]`; a quantile query returns the **upper edge** of the
/// bucket where the cumulative count crosses the rank.  Two properties
/// matter for the service-fabric harness:
///
/// * the answer depends only on the multiset of recorded values — not on
///   insertion order, thread schedule or allocation state — so P50/P95/P99
///   lines diff byte-for-byte across `SS_THREADS`;
/// * the relative error is bounded by the bucket growth factor
///   (`growth - 1`, e.g. 2% at 512 buckets over four decades), which is
///   a resolution statement the report can carry, unlike a sampled
///   reservoir's run-dependent noise.
///
/// Values at or below `floor` land in the first bucket; values beyond
/// `cap` land in a dedicated overflow bucket, whose quantile is reported
/// as the exact observed maximum.
#[derive(Debug, Clone)]
pub struct QuantileSketch {
    floor: f64,
    inv_log_growth: f64,
    counts: Vec<u64>,
    total: u64,
    sum: f64,
    max: f64,
}

impl QuantileSketch {
    /// Sketch spanning `[floor, cap]` with `buckets` geometric buckets
    /// (plus an overflow bucket).  `floor` must be positive and `cap`
    /// larger than `floor`.
    pub fn new(floor: f64, cap: f64, buckets: usize) -> Self {
        assert!(floor > 0.0 && cap > floor && buckets >= 1);
        let growth = (cap / floor).powf(1.0 / buckets as f64);
        Self {
            floor,
            inv_log_growth: 1.0 / growth.ln(),
            counts: vec![0; buckets + 1],
            total: 0,
            sum: 0.0,
            max: 0.0,
        }
    }

    /// Default latency sketch: four decades of dynamic range (`1e-3` to
    /// `1e1` time units) at 512 buckets, ~1.8% relative resolution.
    pub fn latency_default() -> Self {
        Self::new(1e-3, 10.0, 512)
    }

    /// Record one observation (must be finite and nonnegative).
    ///
    /// The bin mapping is **total** over that domain: `0.0`, `-0.0`
    /// (which passes `x >= 0.0`), and every subnormal fall under
    /// `x <= floor` and land in bucket 0 without ever reaching the
    /// logarithm, so no sub-floor value can produce a NaN ratio or an
    /// out-of-range bucket; values beyond the cap saturate into the
    /// overflow bucket.  Mean and max stay exact regardless of bucketing.
    pub fn record(&mut self, x: f64) {
        assert!(
            x.is_finite() && x >= 0.0,
            "sketch value must be finite, got {x}"
        );
        let overflow = self.counts.len() - 1;
        let idx = if x <= self.floor {
            0
        } else {
            // Bucket b covers (floor·g^b, floor·g^(b+1)]; ceil of the log
            // ratio minus one floors exactly onto the covering bucket.
            (((x / self.floor).ln() * self.inv_log_growth).ceil() as usize)
                .saturating_sub(1)
                .min(overflow)
        };
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += x;
        self.max = self.max.max(x);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of the recorded observations (exact, not bucketed).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Largest recorded observation (exact).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The `q`-quantile (`0 < q <= 1`) as the upper edge of the bucket
    /// containing the rank-`ceil(q·n)` observation; `0.0` when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(q > 0.0 && q <= 1.0);
        if self.total == 0 {
            return 0.0;
        }
        let rank = (q * self.total as f64).ceil() as u64;
        let mut seen = 0u64;
        let overflow = self.counts.len() - 1;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if b == overflow {
                    // Overflow bucket: the cap understates the tail, so
                    // report the exact observed maximum instead.
                    self.max
                } else {
                    self.floor * ((b + 1) as f64 / self.inv_log_growth).exp()
                };
            }
        }
        self.max
    }

    /// Merge another sketch (must share the same geometry).
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert_eq!(self.counts.len(), other.counts.len());
        assert_eq!(self.floor.to_bits(), other.floor.to_bits());
        assert_eq!(
            self.inv_log_growth.to_bits(),
            other.inv_log_growth.to_bits()
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

/// Time-weighted average of a piecewise-constant process (queue lengths,
/// number-in-system, busy servers).
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    last_time: f64,
    last_value: f64,
    area: f64,
    start_time: f64,
    max_value: f64,
}

impl TimeWeighted {
    /// Start observing at `time` with initial value `value`.
    pub fn new(time: f64, value: f64) -> Self {
        Self {
            last_time: time,
            last_value: value,
            area: 0.0,
            start_time: time,
            max_value: value,
        }
    }

    /// Record that the process changed to `value` at `time`.
    pub fn update(&mut self, time: f64, value: f64) {
        assert!(
            time + 1e-12 >= self.last_time,
            "time went backwards: {} -> {}",
            self.last_time,
            time
        );
        self.area += self.last_value * (time - self.last_time).max(0.0);
        self.last_time = time;
        self.last_value = value;
        self.max_value = self.max_value.max(value);
    }

    /// Time-average of the process over `[start, time]`, closing the last
    /// segment at `time`.
    pub fn time_average(&self, time: f64) -> f64 {
        let span = time - self.start_time;
        if span <= 0.0 {
            return self.last_value;
        }
        (self.area + self.last_value * (time - self.last_time).max(0.0)) / span
    }

    /// Accumulated area under the curve up to the last update.
    pub fn area(&self) -> f64 {
        self.area
    }

    /// Largest value observed.
    pub fn max_value(&self) -> f64 {
        self.max_value
    }

    /// Current value of the process.
    pub fn current(&self) -> f64 {
        self.last_value
    }

    /// Discard history and restart the integration at `time` keeping the
    /// current value (used to delete a warm-up period).
    pub fn reset(&mut self, time: f64) {
        self.area = 0.0;
        self.start_time = time;
        self.last_time = time;
        self.max_value = self.last_value;
    }
}

/// Batch-means estimator for steady-state output analysis of a single long
/// run: observations are grouped into `num_batches` contiguous batches and
/// the batch averages are treated as (approximately) i.i.d.
#[derive(Debug, Clone)]
pub struct BatchMeans {
    batch_size: usize,
    current_sum: f64,
    current_count: usize,
    batch_averages: Vec<f64>,
}

impl BatchMeans {
    /// Create with a fixed batch size (number of observations per batch).
    pub fn new(batch_size: usize) -> Self {
        assert!(batch_size > 0);
        Self {
            batch_size,
            current_sum: 0.0,
            current_count: 0,
            batch_averages: Vec::new(),
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.current_sum += x;
        self.current_count += 1;
        if self.current_count == self.batch_size {
            self.batch_averages
                .push(self.current_sum / self.batch_size as f64);
            self.current_sum = 0.0;
            self.current_count = 0;
        }
    }

    /// Number of completed batches.
    pub fn num_batches(&self) -> usize {
        self.batch_averages.len()
    }

    /// Grand mean over completed batches.
    pub fn mean(&self) -> f64 {
        if self.batch_averages.is_empty() {
            return 0.0;
        }
        self.batch_averages.iter().sum::<f64>() / self.batch_averages.len() as f64
    }

    /// Confidence-interval half width over the completed batch means.
    pub fn ci_half_width(&self, level: f64) -> f64 {
        let mut stats = OnlineStats::new();
        for &b in &self.batch_averages {
            stats.push(b);
        }
        stats.ci_half_width(level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance with n-1 denominator: 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn from_slice_equals_pushes() {
        let xs = [1.0, 2.5, -3.0, 4.25];
        let s = OnlineStats::from_slice(&xs);
        let mut t = OnlineStats::new();
        for &x in &xs {
            t.push(x);
        }
        assert_eq!(s.count(), t.count());
        assert_eq!(s.mean().to_bits(), t.mean().to_bits());
        assert_eq!(s.variance().to_bits(), t.variance().to_bits());
    }

    #[test]
    fn merge_equals_single_pass() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 3.0 + 5.0).collect();
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..40] {
            a.push(x);
        }
        for &x in &xs[40..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-10);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let mut small = OnlineStats::new();
        let mut large = OnlineStats::new();
        let mut x = 0.37f64;
        for i in 0..10_000 {
            x = (x * 997.3).fract();
            if i < 100 {
                small.push(x);
            }
            large.push(x);
        }
        assert!(large.ci_half_width(0.95) < small.ci_half_width(0.95));
    }

    #[test]
    fn t_interval_matches_tabulated_quantiles() {
        // Normalising the half-width by the computed standard error leaves
        // exactly the t quantile, whatever the sample's spread — any
        // nondegenerate sample works, so use alternating +/-1.
        let quantile = |n: usize, level: f64| {
            let mut s = OnlineStats::new();
            for i in 0..n {
                s.push(if i % 2 == 0 { 1.0 } else { -1.0 });
            }
            s.ci_half_width_t(level) / s.std_error()
        };
        // Tabulated Student-t critical values.
        assert!((quantile(2, 0.99) - 63.657).abs() < 0.01); // dof 1, exact
        assert!((quantile(3, 0.99) - 9.925).abs() < 0.01); // dof 2, exact
        assert!((quantile(4, 0.99) - 5.841).abs() < 0.25); // dof 3, ~3% low
        assert!((quantile(6, 0.99) - 4.032).abs() < 0.05); // dof 5
        assert!((quantile(11, 0.95) - 2.228).abs() < 0.01); // dof 10
        assert!((quantile(31, 0.95) - 2.042).abs() < 0.005); // dof 30
                                                             // Large n: converges to the normal quantile.
        assert!((quantile(10_001, 0.95) - 1.960).abs() < 0.001);
        // Always at least as wide as the normal interval.
        let mut s = OnlineStats::new();
        for x in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0] {
            s.push(x);
        }
        assert!(s.ci_half_width_t(0.99) > s.ci_half_width(0.99));
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new(0.0, 0.0);
        tw.update(1.0, 2.0); // value 0 on [0,1)
        tw.update(3.0, 1.0); // value 2 on [1,3)
                             // value 1 on [3,5]
        let avg = tw.time_average(5.0);
        // (0*1 + 2*2 + 1*2) / 5 = 6/5
        assert!((avg - 1.2).abs() < 1e-12);
        assert_eq!(tw.max_value(), 2.0);
        assert_eq!(tw.current(), 1.0);
    }

    #[test]
    fn time_weighted_reset_discards_warmup() {
        let mut tw = TimeWeighted::new(0.0, 10.0);
        tw.update(5.0, 1.0);
        tw.reset(5.0);
        tw.update(10.0, 1.0);
        let avg = tw.time_average(10.0);
        assert!((avg - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sketch_quantiles_bound_true_quantiles() {
        let mut s = QuantileSketch::new(0.01, 100.0, 400);
        // 1..=1000 scaled: true p50 = 5.0, p99 = 9.9 (of 0.01..=10.0).
        for i in 1..=1000 {
            s.record(i as f64 * 0.01);
        }
        assert_eq!(s.count(), 1000);
        let growth = (100.0f64 / 0.01).powf(1.0 / 400.0);
        for &(q, truth) in &[(0.5, 5.0), (0.95, 9.5), (0.99, 9.9)] {
            let est = s.quantile(q);
            assert!(
                est >= truth * 0.999 && est <= truth * growth * 1.001,
                "q={q}: est {est} vs truth {truth}"
            );
        }
        assert!((s.mean() - 5.005).abs() < 1e-9);
        assert_eq!(s.max(), 10.0);
    }

    #[test]
    fn sketch_is_insertion_order_invariant() {
        let xs: Vec<f64> = (0..500)
            .map(|i| 0.002 + (i as f64 * 0.7919).fract() * 8.0)
            .collect();
        let mut fwd = QuantileSketch::latency_default();
        let mut rev = QuantileSketch::latency_default();
        for &x in &xs {
            fwd.record(x);
        }
        for &x in xs.iter().rev() {
            rev.record(x);
        }
        for &q in &[0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(fwd.quantile(q).to_bits(), rev.quantile(q).to_bits());
        }
    }

    #[test]
    fn sketch_merge_equals_single_sketch() {
        let xs: Vec<f64> = (0..300).map(|i| 0.01 + i as f64 * 0.03).collect();
        let mut whole = QuantileSketch::latency_default();
        let mut a = QuantileSketch::latency_default();
        let mut b = QuantileSketch::latency_default();
        for (i, &x) in xs.iter().enumerate() {
            whole.record(x);
            if i % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        for &q in &[0.5, 0.95, 0.99] {
            assert_eq!(a.quantile(q).to_bits(), whole.quantile(q).to_bits());
        }
    }

    #[test]
    fn sketch_overflow_reports_observed_max() {
        let mut s = QuantileSketch::new(0.1, 1.0, 8);
        s.record(0.5);
        s.record(250.0);
        assert_eq!(s.quantile(1.0), 250.0);
        assert!(s.quantile(0.5) <= 1.0);
    }

    #[test]
    fn empty_sketch_is_zero() {
        let s = QuantileSketch::latency_default();
        assert_eq!(s.quantile(0.99), 0.0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.count(), 0);
    }

    /// The bin mapping is total at the bottom of the domain: zero,
    /// negative zero, subnormals, and exactly-at-floor samples all land
    /// in bucket 0 (they never reach the log), and the exact-moment
    /// accumulators remain exact.
    #[test]
    fn sketch_zero_subnormal_and_at_floor_samples_land_in_bucket_zero() {
        let floor = 1e-3;
        let samples = [0.0, -0.0, f64::MIN_POSITIVE, 1e-310, floor];
        let mut s = QuantileSketch::new(floor, 10.0, 512);
        for &x in &samples {
            s.record(x);
        }
        assert_eq!(s.count(), samples.len() as u64);
        // All five sit in the first bucket, so every quantile reports its
        // upper edge: floor · growth.
        let growth = (10.0f64 / floor).powf(1.0 / 512.0);
        for q in [0.01, 0.5, 1.0] {
            assert!(
                (s.quantile(q) - floor * growth).abs() < 1e-12,
                "q{q} left bucket 0"
            );
        }
        // Mean and max are exact, not bucketed: the subnormals and zeros
        // contribute their true values.
        let sum: f64 = samples.iter().sum();
        assert_eq!(s.mean().to_bits(), (sum / 5.0).to_bits());
        assert_eq!(s.max().to_bits(), floor.to_bits());
    }

    /// Just-above-floor samples stay adjacent to the floor bucket rather
    /// than underflowing the `saturating_sub`: the mapping is monotone
    /// across the floor boundary.
    #[test]
    fn sketch_mapping_is_monotone_across_the_floor_boundary() {
        let floor = 1e-3;
        let mut below = QuantileSketch::new(floor, 10.0, 512);
        let mut above = QuantileSketch::new(floor, 10.0, 512);
        below.record(floor);
        above.record(floor * (1.0 + 1e-12));
        assert!(above.quantile(1.0) >= below.quantile(1.0));
    }

    #[test]
    fn batch_means_groups_correctly() {
        let mut bm = BatchMeans::new(10);
        for i in 0..100 {
            bm.push(i as f64);
        }
        assert_eq!(bm.num_batches(), 10);
        assert!((bm.mean() - 49.5).abs() < 1e-12);
        assert!(bm.ci_half_width(0.95).is_finite());
    }
}

//! A minimal generic discrete-event driver.
//!
//! Most simulators in the workspace are specialised hand-written loops (the
//! hot path matters for the heavy-traffic sweeps), but the generic
//! [`Engine`] is convenient for quick models, examples and tests: implement
//! [`EventHandler`] and the engine owns the clock and the calendar.

use crate::events::EventQueue;

/// Model callback invoked for every event.
pub trait EventHandler {
    /// Event payload type.
    type Event;

    /// Handle `event` occurring at `time`; schedule follow-up events through
    /// `queue` (absolute times).
    fn handle(&mut self, time: f64, event: Self::Event, queue: &mut EventQueue<Self::Event>);

    /// Optional termination test checked after each event (default: never).
    fn should_stop(&self, _time: f64) -> bool {
        false
    }
}

/// The simulation driver: a clock plus a calendar.
pub struct Engine<H: EventHandler> {
    /// Current simulation time.
    pub clock: f64,
    /// Future event list.
    pub queue: EventQueue<H::Event>,
    /// Number of events processed so far.
    pub events_processed: u64,
}

impl<H: EventHandler> Default for Engine<H> {
    fn default() -> Self {
        Self::new()
    }
}

impl<H: EventHandler> Engine<H> {
    /// Fresh engine at time zero with an empty calendar.
    pub fn new() -> Self {
        Self {
            clock: 0.0,
            queue: EventQueue::new(),
            events_processed: 0,
        }
    }

    /// Schedule an initial event at absolute time `time`.
    pub fn schedule(&mut self, time: f64, event: H::Event) {
        self.queue.schedule(time, event);
    }

    /// Run until the calendar empties, the handler requests a stop, or the
    /// clock passes `horizon`.  Returns the final clock value.
    pub fn run(&mut self, handler: &mut H, horizon: f64) -> f64 {
        while let Some((time, event)) = self.queue.pop() {
            if time > horizon {
                // Leave the event un-processed; the clock stops at the horizon.
                self.clock = horizon;
                break;
            }
            debug_assert!(time + 1e-12 >= self.clock, "time must be nondecreasing");
            self.clock = time;
            handler.handle(time, event, &mut self.queue);
            self.events_processed += 1;
            if handler.should_stop(time) {
                break;
            }
        }
        self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A birth process: each event schedules the next one `1.0` later and
    /// counts arrivals.
    struct Counter {
        arrivals: u64,
        limit: u64,
    }

    impl EventHandler for Counter {
        type Event = ();

        fn handle(&mut self, time: f64, _event: (), queue: &mut EventQueue<()>) {
            self.arrivals += 1;
            if self.arrivals < self.limit {
                queue.schedule(time + 1.0, ());
            }
        }

        fn should_stop(&self, _time: f64) -> bool {
            self.arrivals >= self.limit
        }
    }

    #[test]
    fn runs_until_stop_condition() {
        let mut engine: Engine<Counter> = Engine::new();
        let mut handler = Counter {
            arrivals: 0,
            limit: 5,
        };
        engine.schedule(0.0, ());
        let end = engine.run(&mut handler, f64::INFINITY);
        assert_eq!(handler.arrivals, 5);
        assert_eq!(end, 4.0);
        assert_eq!(engine.events_processed, 5);
    }

    #[test]
    fn respects_horizon() {
        let mut engine: Engine<Counter> = Engine::new();
        let mut handler = Counter {
            arrivals: 0,
            limit: u64::MAX,
        };
        engine.schedule(0.0, ());
        let end = engine.run(&mut handler, 10.5);
        assert_eq!(end, 10.5);
        assert_eq!(handler.arrivals, 11); // events at t = 0..=10
    }
}

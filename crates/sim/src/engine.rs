//! A minimal generic discrete-event driver.
//!
//! Most simulators in the workspace are specialised hand-written loops (the
//! hot path matters for the heavy-traffic sweeps), but the generic
//! [`Engine`] is convenient for quick models, examples and tests: implement
//! [`EventHandler`] and the engine owns the clock and the calendar.

use crate::events::EventQueue;

/// Model callback invoked for every event.
pub trait EventHandler {
    /// Event payload type.
    type Event;

    /// Handle `event` occurring at `time`; schedule follow-up events through
    /// `queue` (absolute times).
    fn handle(&mut self, time: f64, event: Self::Event, queue: &mut EventQueue<Self::Event>);

    /// Optional termination test checked after each event (default: never).
    fn should_stop(&self, _time: f64) -> bool {
        false
    }
}

/// The simulation driver: a clock plus a calendar.
pub struct Engine<H: EventHandler> {
    /// Current simulation time.
    pub clock: f64,
    /// Future event list.
    pub queue: EventQueue<H::Event>,
    /// Number of events processed so far.
    pub events_processed: u64,
}

impl<H: EventHandler> Default for Engine<H> {
    fn default() -> Self {
        Self::new()
    }
}

impl<H: EventHandler> Engine<H> {
    /// Fresh engine at time zero with an empty calendar.
    pub fn new() -> Self {
        Self {
            clock: 0.0,
            queue: EventQueue::new(),
            events_processed: 0,
        }
    }

    /// Schedule an initial event at absolute time `time`.
    pub fn schedule(&mut self, time: f64, event: H::Event) {
        self.queue.schedule(time, event);
    }

    /// Run until the calendar empties, the handler requests a stop, or the
    /// clock passes `horizon`.  Returns the final clock value.
    ///
    /// Events scheduled past `horizon` are left **on the calendar**, so the
    /// run can be resumed with a larger horizon without losing events — the
    /// sliding-window pattern (`run(h1)` then `run(h2 > h1)`) processes
    /// exactly the events a single `run(h2)` would.
    ///
    /// # Panics
    ///
    /// Panics (in release builds too) if the next event's time precedes the
    /// current clock: scheduling an event in the past is a model bug, and a
    /// calendar that travels backwards silently corrupts every
    /// time-weighted statistic downstream.
    pub fn run(&mut self, handler: &mut H, horizon: f64) -> f64 {
        loop {
            let Some((time, event)) = self.queue.pop_at_or_before(horizon) else {
                // Calendar empty, or the next event lies past the horizon
                // (it stays scheduled for a future resumed run).  The clock
                // advances to the horizon only when something remains to
                // wait for; it never moves backwards and never becomes
                // infinite.
                if self.queue.peek_time().is_some() && horizon > self.clock {
                    self.clock = horizon;
                }
                break;
            };
            assert!(
                time + 1e-12 >= self.clock,
                "event time {time} precedes the clock {}: an event was scheduled in the past",
                self.clock
            );
            self.clock = time;
            handler.handle(time, event, &mut self.queue);
            self.events_processed += 1;
            if handler.should_stop(time) {
                break;
            }
        }
        self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A birth process: each event schedules the next one `1.0` later and
    /// counts arrivals.
    struct Counter {
        arrivals: u64,
        limit: u64,
    }

    impl EventHandler for Counter {
        type Event = ();

        fn handle(&mut self, time: f64, _event: (), queue: &mut EventQueue<()>) {
            self.arrivals += 1;
            if self.arrivals < self.limit {
                queue.schedule(time + 1.0, ());
            }
        }

        fn should_stop(&self, _time: f64) -> bool {
            self.arrivals >= self.limit
        }
    }

    #[test]
    fn runs_until_stop_condition() {
        let mut engine: Engine<Counter> = Engine::new();
        let mut handler = Counter {
            arrivals: 0,
            limit: 5,
        };
        engine.schedule(0.0, ());
        let end = engine.run(&mut handler, f64::INFINITY);
        assert_eq!(handler.arrivals, 5);
        assert_eq!(end, 4.0);
        assert_eq!(engine.events_processed, 5);
    }

    #[test]
    fn respects_horizon() {
        let mut engine: Engine<Counter> = Engine::new();
        let mut handler = Counter {
            arrivals: 0,
            limit: u64::MAX,
        };
        engine.schedule(0.0, ());
        let end = engine.run(&mut handler, 10.5);
        assert_eq!(end, 10.5);
        assert_eq!(handler.arrivals, 11); // events at t = 0..=10
    }

    #[test]
    fn over_horizon_event_stays_on_calendar() {
        let mut engine: Engine<Counter> = Engine::new();
        let mut handler = Counter {
            arrivals: 0,
            limit: u64::MAX,
        };
        engine.schedule(0.0, ());
        engine.run(&mut handler, 10.5);
        // The event at t = 11 was past the horizon: it must still be
        // scheduled, not silently discarded.
        assert_eq!(engine.queue.len(), 1);
        assert_eq!(engine.queue.peek_time(), Some(11.0));
    }

    #[test]
    fn resumed_run_with_larger_horizon_loses_no_events() {
        // Regression test for the over-horizon event drop: `run` used to
        // pop-and-discard the first event past the horizon, so resuming
        // with a larger horizon found an empty calendar and the birth
        // process died at 11 arrivals instead of reaching 21.
        let mut engine: Engine<Counter> = Engine::new();
        let mut handler = Counter {
            arrivals: 0,
            limit: u64::MAX,
        };
        engine.schedule(0.0, ());
        engine.run(&mut handler, 10.5);
        assert_eq!(handler.arrivals, 11);
        let end = engine.run(&mut handler, 20.5);
        assert_eq!(end, 20.5);
        assert_eq!(handler.arrivals, 21); // events at t = 0..=20, none lost
        assert_eq!(engine.events_processed, 21);
    }

    #[test]
    fn resumed_runs_match_a_single_long_run() {
        let mut windowed: Engine<Counter> = Engine::new();
        let mut wh = Counter {
            arrivals: 0,
            limit: u64::MAX,
        };
        windowed.schedule(0.0, ());
        for k in 1..=8 {
            windowed.run(&mut wh, 2.5 * k as f64);
        }
        let mut single: Engine<Counter> = Engine::new();
        let mut sh = Counter {
            arrivals: 0,
            limit: u64::MAX,
        };
        single.schedule(0.0, ());
        single.run(&mut sh, 20.0);
        assert_eq!(wh.arrivals, sh.arrivals);
        assert_eq!(windowed.events_processed, single.events_processed);
    }

    #[test]
    fn shrinking_the_horizon_does_not_rewind_the_clock() {
        let mut engine: Engine<Counter> = Engine::new();
        let mut handler = Counter {
            arrivals: 0,
            limit: u64::MAX,
        };
        engine.schedule(0.0, ());
        engine.run(&mut handler, 10.5);
        let end = engine.run(&mut handler, 5.0);
        assert_eq!(end, 10.5);
        assert_eq!(handler.arrivals, 11);
    }

    /// A handler that schedules its follow-up in the past.
    struct TimeTraveller;

    impl EventHandler for TimeTraveller {
        type Event = ();

        fn handle(&mut self, time: f64, _event: (), queue: &mut EventQueue<()>) {
            if time > 0.5 {
                queue.schedule(time - 1.0, ());
            }
        }
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_fails_loudly() {
        // The nondecreasing-time check is a hard `assert!` so release-mode
        // CI jobs catch this model bug too, not only debug test builds.
        let mut engine: Engine<TimeTraveller> = Engine::new();
        engine.schedule(1.0, ());
        engine.run(&mut TimeTraveller, f64::INFINITY);
    }
}

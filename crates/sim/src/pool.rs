//! Explicit controls over the workspace execution pool.
//!
//! The parallel replication runners (and every `par_iter()` call site in the
//! workspace) schedule onto the pool implemented in the vendored `rayon`
//! crate.  Most code never needs to touch it — the global pool sizes itself
//! from `SS_THREADS` or the host's available parallelism — but code that
//! wants explicit control (benchmarks sweeping thread counts, servers
//! partitioning cores between subsystems) gets it here:
//!
//! * [`num_threads`] — the thread count parallel calls will currently use;
//! * [`ThreadPool`] + [`install`](ThreadPool::install) — build a pool of an
//!   exact size and scope it over a closure;
//! * [`with_threads`] — the one-line version of build-and-install;
//! * [`join`] — scoped two-way join on the current pool;
//! * [`parallel_indexed`] — order-preserving parallel map over `0..n`.
//!
//! ## Determinism contract
//!
//! The pool only decides *where* each index runs.  Results are always
//! collected in index order and every replication draws from its own
//! [`crate::rng::RngStreams`] stream keyed by the replication index, so any
//! thread count — including 1 — produces bit-for-bit identical output.  CI
//! enforces this by running the simulation suites under both `SS_THREADS=1`
//! and `SS_THREADS=4`.

pub use rayon::pool::{current_num_threads, default_threads, join, ThreadPool};

use rayon::prelude::*;

/// Thread count parallel calls on this thread will use right now (the
/// innermost installed pool, or the global pool).
pub fn num_threads() -> usize {
    current_num_threads()
}

/// Run `f` with a dedicated pool of exactly `threads` threads installed on
/// the calling thread. Useful for thread-count sweeps and for forcing serial
/// execution (`threads = 1`) regardless of `SS_THREADS`.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    ThreadPool::new(threads).install(f)
}

/// Evaluate `f(i)` for every `i in 0..n` on the current pool and return the
/// results in index order — the raw primitive underneath the replication
/// runners, exposed for workloads that are not replication-shaped.
pub fn parallel_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    (0..n).into_par_iter().map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_threads_controls_num_threads() {
        assert_eq!(with_threads(3, num_threads), 3);
        assert_eq!(with_threads(1, num_threads), 1);
    }

    #[test]
    fn parallel_indexed_preserves_order() {
        let out = with_threads(4, || parallel_indexed(100, |i| i * 3));
        let expected: Vec<usize> = (0..100).map(|i| i * 3).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = with_threads(2, || join(|| 6 * 7, || "ok"));
        assert_eq!((a, b), (42, "ok"));
    }

    #[test]
    fn num_threads_is_at_least_one() {
        assert!(num_threads() >= 1);
    }
}

//! Minimal JSON helpers shared by the workspace's harness binaries
//! (`experiments`, `sweeps`, `parallel_replications` in ss-bench and
//! `verify` in ss-verify).
//!
//! The workspace builds offline with no serde (see `vendor/README.md`), and
//! the JSON the binaries emit is flat enough that hand-assembled bodies plus
//! this escaper and the shared preamble fields are all that is needed.  The
//! helpers live here — rather than in ss-bench, where they started — because
//! every harness crate already depends on ss-sim, and the
//! `host_env_fields` preamble reports the `SS_THREADS` contract this crate
//! owns; keeping one escaper prevents the emitted JSON from drifting
//! between binaries.

/// Escape `s` for inclusion inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Seconds since the unix epoch (0 if the clock is set before it).
pub fn unix_time() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// The `host_logical_cpus` / `ss_threads_env` preamble fields every
/// hand-assembled writer records, two-space indented and comma-terminated.
///
/// On hosts with fewer than 4 logical CPUs an explicit `scaling_caveat`
/// field is added, so committed artifacts recorded on small containers
/// cannot be misread: a `speedup_vs_serial` of ≈1× there measures the
/// host's parallelism, not the engine's scaling curve.
pub fn host_env_fields() -> String {
    let host = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut out = format!("  \"host_logical_cpus\": {host},\n");
    match std::env::var("SS_THREADS") {
        Ok(v) => out.push_str(&format!("  \"ss_threads_env\": \"{}\",\n", escape(&v))),
        Err(_) => out.push_str("  \"ss_threads_env\": null,\n"),
    }
    if host < 4 {
        out.push_str(&format!(
            "  \"scaling_caveat\": \"recorded on a {host}-CPU host: speedup_vs_serial \\u2248 1x reflects host parallelism, not the engine's scaling headroom; regenerate on >= 4 cores for the real curve\",\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_env_fields_are_valid_json_lines() {
        let fields = host_env_fields();
        assert!(fields.contains("\"host_logical_cpus\": "));
        assert!(fields.contains("\"ss_threads_env\": "));
        assert!(fields.ends_with(",\n"));
        // The scaling caveat appears exactly when the host is too small to
        // measure a real speedup curve.
        let host = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        assert_eq!(fields.contains("\"scaling_caveat\""), host < 4);
    }

    #[test]
    fn escapes_quotes_backslashes_and_control_characters() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\\b"), "a\\\\b");
        assert_eq!(escape("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(escape("a\rb"), "a\\rb");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}

//! Independent-replication runners.
//!
//! Every heuristic-vs-optimal comparison in the experiment harness is a
//! Monte-Carlo estimate over independent replications.  The runners here
//! take a closure `f(replication_index, &mut rng) -> f64`, give each
//! replication its own reproducible RNG stream, and return summary
//! statistics.  The parallel variants fan replications out over the
//! workspace thread pool (chunked self-scheduling over the replication
//! indices; see [`crate::pool`]); because each replication owns its stream
//! and results are collected in replication order, parallel and serial runs
//! produce identical per-replication values and therefore identical
//! summaries — for any thread count.
//!
//! [`run_replications_chunked`] additionally groups the replications into
//! fixed-size batches and summarizes each batch, which gives convergence
//! diagnostics (batch-to-batch spread) without a second pass over the data.

use crate::rng::RngStreams;
use crate::stats::OnlineStats;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// Summary of a set of independent replications.
#[derive(Debug, Clone)]
pub struct ReplicationSummary {
    /// Per-replication outputs in replication order.
    pub values: Vec<f64>,
    /// Mean over replications.
    pub mean: f64,
    /// Unbiased standard deviation over replications.
    pub std_dev: f64,
    /// Half-width of the 95% confidence interval for the mean.
    pub ci95: f64,
}

impl ReplicationSummary {
    fn from_values(values: Vec<f64>) -> Self {
        let mut stats = OnlineStats::new();
        for &v in &values {
            stats.push(v);
        }
        Self {
            mean: stats.mean(),
            std_dev: stats.std_dev(),
            ci95: stats.ci_half_width(0.95),
            values,
        }
    }

    /// Relative half-width (CI95 / |mean|), a convergence diagnostic.
    pub fn relative_precision(&self) -> f64 {
        if self.mean.abs() < 1e-300 {
            f64::INFINITY
        } else {
            self.ci95 / self.mean.abs()
        }
    }
}

/// Run `n` replications serially.
///
/// # Panics
///
/// Panics if `n == 0` — a summary of zero replications has no mean.  All
/// replication runners share this contract.
pub fn run_replications<F>(n: usize, seed: u64, mut f: F) -> ReplicationSummary
where
    F: FnMut(usize, &mut ChaCha8Rng) -> f64,
{
    assert!(n > 0, "need at least one replication");
    let streams = RngStreams::new(seed);
    let mut values = Vec::with_capacity(n);
    for i in 0..n {
        let mut rng = streams.stream(i as u64);
        values.push(f(i, &mut rng));
    }
    ReplicationSummary::from_values(values)
}

/// Run `n` replications in parallel on the workspace thread pool.
///
/// The closure must be `Sync` because it is shared across worker threads;
/// all mutable state must live inside the closure invocation.  Results are
/// bit-for-bit identical to [`run_replications`] regardless of the thread
/// count (see [`crate::pool`] for the determinism contract and the
/// `SS_THREADS` override).
///
/// # Panics
///
/// Panics if `n == 0` — a summary of zero replications has no mean.  All
/// replication runners share this contract.
pub fn run_replications_parallel<F>(n: usize, seed: u64, f: F) -> ReplicationSummary
where
    F: Fn(usize, &mut ChaCha8Rng) -> f64 + Sync,
{
    assert!(n > 0, "need at least one replication");
    ReplicationSummary::from_values(parallel_replication_values(n, seed, &f))
}

/// The shared parallel core: per-replication values in replication order.
fn parallel_replication_values<F>(n: usize, seed: u64, f: &F) -> Vec<f64>
where
    F: Fn(usize, &mut ChaCha8Rng) -> f64 + Sync,
{
    let streams = RngStreams::new(seed);
    (0..n)
        .into_par_iter()
        .map(|i| {
            let mut rng = streams.stream(i as u64);
            f(i, &mut rng)
        })
        .collect()
}

/// Replications grouped into fixed-size batches, each with its own summary.
///
/// Memory note: every batch summary retains its slice of the values (a
/// [`ReplicationSummary`] always carries `values`), so the flat results are
/// held twice — fine for the 10²–10⁶ replication counts the harness runs;
/// for larger streams, summarize incrementally with
/// [`crate::stats::BatchMeans`] instead.
#[derive(Debug, Clone)]
pub struct ChunkedReplications {
    /// Replications per batch (the final batch may be smaller).
    pub chunk_size: usize,
    /// One summary per batch, in replication order.
    pub chunks: Vec<ReplicationSummary>,
    /// Summary over all `n` replications (identical to what
    /// [`run_replications`] returns for the same `(n, seed, f)`).
    pub overall: ReplicationSummary,
}

impl ChunkedReplications {
    /// Largest absolute deviation of a batch mean from the overall mean — a
    /// cheap stationarity / convergence diagnostic.
    pub fn max_chunk_mean_deviation(&self) -> f64 {
        self.chunks
            .iter()
            .map(|c| (c.mean - self.overall.mean).abs())
            .fold(0.0, f64::max)
    }
}

/// Run `n` replications in parallel and summarize them both overall and in
/// consecutive batches of `chunk_size`.
///
/// Batch boundaries are fixed by `chunk_size` alone — they are **not** the
/// pool's scheduling chunks — so every field of the result is deterministic
/// for any thread count, and `overall.values` is bit-for-bit identical to
/// the serial runner's output.
///
/// # Panics
///
/// Panics if `n == 0` (all replication runners share this contract) or if
/// `chunk_size == 0`.
pub fn run_replications_chunked<F>(
    n: usize,
    seed: u64,
    chunk_size: usize,
    f: F,
) -> ChunkedReplications
where
    F: Fn(usize, &mut ChaCha8Rng) -> f64 + Sync,
{
    assert!(n > 0, "need at least one replication");
    assert!(chunk_size > 0, "need a positive chunk size");
    let values = parallel_replication_values(n, seed, &f);
    let chunks = values
        .chunks(chunk_size)
        .map(|c| ReplicationSummary::from_values(c.to_vec()))
        .collect();
    ChunkedReplications {
        chunk_size,
        chunks,
        overall: ReplicationSummary::from_values(values),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn serial_and_parallel_agree_exactly() {
        let f = |_i: usize, rng: &mut ChaCha8Rng| -> f64 {
            (0..100).map(|_| rng.gen::<f64>()).sum::<f64>()
        };
        let serial = run_replications(64, 42, f);
        let parallel = run_replications_parallel(64, 42, f);
        assert_eq!(serial.values, parallel.values);
        assert!((serial.mean - parallel.mean).abs() < 1e-12);
    }

    #[test]
    fn summary_statistics_are_consistent() {
        let summary = run_replications(200, 7, |i, _rng| i as f64);
        assert!((summary.mean - 99.5).abs() < 1e-9);
        assert!(summary.ci95 > 0.0);
        assert_eq!(summary.values.len(), 200);
    }

    #[test]
    fn estimates_uniform_mean() {
        let summary = run_replications_parallel(500, 11, |_i, rng| rng.gen::<f64>());
        assert!((summary.mean - 0.5).abs() < 0.05);
        assert!(summary.relative_precision() < 0.2);
    }

    #[test]
    fn different_seeds_give_different_estimates() {
        let a = run_replications(20, 1, |_i, rng| rng.gen::<f64>());
        let b = run_replications(20, 2, |_i, rng| rng.gen::<f64>());
        assert_ne!(a.values, b.values);
    }

    #[test]
    fn parallel_agrees_with_serial_for_every_thread_count() {
        let f = |i: usize, rng: &mut ChaCha8Rng| -> f64 {
            (0..50).map(|_| rng.gen::<f64>()).sum::<f64>() + i as f64
        };
        let serial = run_replications(97, 5, f);
        for threads in [1usize, 2, 4, 16] {
            let parallel =
                crate::pool::with_threads(threads, || run_replications_parallel(97, 5, f));
            assert_eq!(
                serial.values, parallel.values,
                "diverged at {threads} threads"
            );
            assert_eq!(serial.mean.to_bits(), parallel.mean.to_bits());
        }
    }

    #[test]
    fn chunked_matches_serial_and_summarizes_batches() {
        let f = |_i: usize, rng: &mut ChaCha8Rng| rng.gen::<f64>();
        let serial = run_replications(103, 9, f);
        let chunked = run_replications_chunked(103, 9, 25, f);
        assert_eq!(chunked.overall.values, serial.values);
        // ceil(103 / 25) = 5 batches, last one of size 3.
        assert_eq!(chunked.chunks.len(), 5);
        assert_eq!(chunked.chunks[4].values.len(), 3);
        // Each batch summarizes the matching slice of the flat values.
        for (b, chunk) in chunked.chunks.iter().enumerate() {
            let lo = b * 25;
            let hi = (lo + 25).min(103);
            assert_eq!(chunk.values, serial.values[lo..hi].to_vec());
        }
        assert!(chunked.max_chunk_mean_deviation() < 0.5);
    }

    #[test]
    fn chunked_is_thread_count_invariant() {
        let f = |_i: usize, rng: &mut ChaCha8Rng| rng.gen::<f64>();
        let one = crate::pool::with_threads(1, || run_replications_chunked(64, 3, 10, f));
        let many = crate::pool::with_threads(8, || run_replications_chunked(64, 3, 10, f));
        assert_eq!(one.overall.values, many.overall.values);
        assert_eq!(one.chunks.len(), many.chunks.len());
        for (a, b) in one.chunks.iter().zip(&many.chunks) {
            assert_eq!(a.values, b.values);
            assert_eq!(a.mean.to_bits(), b.mean.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "need at least one replication")]
    fn serial_rejects_zero_replications() {
        run_replications(0, 1, |_i, _rng| 0.0);
    }

    #[test]
    #[should_panic(expected = "need at least one replication")]
    fn parallel_rejects_zero_replications() {
        run_replications_parallel(0, 1, |_i, _rng| 0.0);
    }

    #[test]
    #[should_panic(expected = "need at least one replication")]
    fn chunked_rejects_zero_replications() {
        run_replications_chunked(0, 1, 8, |_i, _rng| 0.0);
    }

    #[test]
    fn panic_in_replication_propagates() {
        let result = std::panic::catch_unwind(|| {
            crate::pool::with_threads(4, || {
                run_replications_parallel(100, 1, |i, _rng| {
                    assert!(i != 37, "replication 37 exploded");
                    0.0
                })
            })
        });
        assert!(result.is_err());
    }
}

//! Independent-replication runners.
//!
//! Every heuristic-vs-optimal comparison in the experiment harness is a
//! Monte-Carlo estimate over independent replications.  The runners here
//! take a closure `f(replication_index, &mut rng) -> f64`, give each
//! replication its own reproducible RNG stream, and return summary
//! statistics.  The parallel variant fans replications out with Rayon
//! (work-stealing over the replication indices); because each replication
//! owns its stream, parallel and serial runs produce identical per-
//! replication values and therefore identical summaries.

use crate::rng::RngStreams;
use crate::stats::OnlineStats;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// Summary of a set of independent replications.
#[derive(Debug, Clone)]
pub struct ReplicationSummary {
    /// Per-replication outputs in replication order.
    pub values: Vec<f64>,
    /// Mean over replications.
    pub mean: f64,
    /// Unbiased standard deviation over replications.
    pub std_dev: f64,
    /// Half-width of the 95% confidence interval for the mean.
    pub ci95: f64,
}

impl ReplicationSummary {
    fn from_values(values: Vec<f64>) -> Self {
        let mut stats = OnlineStats::new();
        for &v in &values {
            stats.push(v);
        }
        Self { mean: stats.mean(), std_dev: stats.std_dev(), ci95: stats.ci_half_width(0.95), values }
    }

    /// Relative half-width (CI95 / |mean|), a convergence diagnostic.
    pub fn relative_precision(&self) -> f64 {
        if self.mean.abs() < 1e-300 {
            f64::INFINITY
        } else {
            self.ci95 / self.mean.abs()
        }
    }
}

/// Run `n` replications serially.
pub fn run_replications<F>(n: usize, seed: u64, mut f: F) -> ReplicationSummary
where
    F: FnMut(usize, &mut ChaCha8Rng) -> f64,
{
    assert!(n > 0, "need at least one replication");
    let streams = RngStreams::new(seed);
    let mut values = Vec::with_capacity(n);
    for i in 0..n {
        let mut rng = streams.stream(i as u64);
        values.push(f(i, &mut rng));
    }
    ReplicationSummary::from_values(values)
}

/// Run `n` replications in parallel with Rayon.
///
/// The closure must be `Sync` because it is shared across worker threads;
/// all mutable state must live inside the closure invocation.
pub fn run_replications_parallel<F>(n: usize, seed: u64, f: F) -> ReplicationSummary
where
    F: Fn(usize, &mut ChaCha8Rng) -> f64 + Sync,
{
    assert!(n > 0, "need at least one replication");
    let streams = RngStreams::new(seed);
    let values: Vec<f64> = (0..n)
        .into_par_iter()
        .map(|i| {
            let mut rng = streams.stream(i as u64);
            f(i, &mut rng)
        })
        .collect();
    ReplicationSummary::from_values(values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn serial_and_parallel_agree_exactly() {
        let f = |_i: usize, rng: &mut ChaCha8Rng| -> f64 {
            (0..100).map(|_| rng.gen::<f64>()).sum::<f64>()
        };
        let serial = run_replications(64, 42, f);
        let parallel = run_replications_parallel(64, 42, f);
        assert_eq!(serial.values, parallel.values);
        assert!((serial.mean - parallel.mean).abs() < 1e-12);
    }

    #[test]
    fn summary_statistics_are_consistent() {
        let summary = run_replications(200, 7, |i, _rng| i as f64);
        assert!((summary.mean - 99.5).abs() < 1e-9);
        assert!(summary.ci95 > 0.0);
        assert_eq!(summary.values.len(), 200);
    }

    #[test]
    fn estimates_uniform_mean() {
        let summary = run_replications_parallel(500, 11, |_i, rng| rng.gen::<f64>());
        assert!((summary.mean - 0.5).abs() < 0.05);
        assert!(summary.relative_precision() < 0.2);
    }

    #[test]
    fn different_seeds_give_different_estimates() {
        let a = run_replications(20, 1, |_i, rng| rng.gen::<f64>());
        let b = run_replications(20, 2, |_i, rng| rng.gen::<f64>());
        assert_ne!(a.values, b.values);
    }
}

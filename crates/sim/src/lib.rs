//! # ss-sim — discrete-event simulation engine
//!
//! The survey observes that "computer simulation remains the most widely
//! used tool in applications of these models"; this crate is that tool for
//! the workspace.  It provides:
//!
//! * [`events`] — a deterministic event calendar (binary heap keyed by
//!   `(time, sequence)`, so simultaneous events are processed in insertion
//!   order and runs are exactly reproducible);
//! * [`engine`] — a small generic driver for event-oriented models;
//! * [`rng`] — reproducible per-replication random-number streams derived
//!   from a single master seed (ChaCha8, stream-split by replication index);
//! * [`stats`] — Welford online moments, confidence intervals,
//!   time-weighted averages for queue-length processes, and batch means for
//!   steady-state output analysis;
//! * [`replication`] — serial, parallel and chunked replication runners
//!   that return summary statistics with confidence intervals;
//! * [`pool`] — explicit controls over the multi-threaded execution pool
//!   the parallel runners schedule on (thread count via `SS_THREADS`,
//!   scoped pools, join), with a bit-for-bit serial/parallel determinism
//!   contract;
//! * [`json`] — the one JSON escaper + host/`SS_THREADS` preamble shared
//!   by every harness binary's hand-assembled output (no serde offline).
//!
//! The queueing and batch-scheduling simulators in `ss-queueing` and
//! `ss-batch` are built on these primitives.

pub mod engine;
pub mod events;
pub mod json;
pub mod pool;
pub mod replication;
pub mod rng;
pub mod stats;

pub use engine::{Engine, EventHandler};
pub use events::EventQueue;
pub use replication::{
    run_replications, run_replications_chunked, run_replications_parallel, ChunkedReplications,
    ReplicationSummary,
};
pub use rng::RngStreams;
pub use stats::{BatchMeans, OnlineStats, TimeWeighted};

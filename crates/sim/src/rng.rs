//! Reproducible random-number streams.
//!
//! Every replication of every experiment draws from its own ChaCha8 stream,
//! derived deterministically from `(master_seed, stream_id)` via SplitMix64
//! mixing.  Two consequences:
//!
//! * results are bit-for-bit reproducible given the master seed recorded in
//!   EXPERIMENTS.md;
//! * parallel replication runners can hand independent streams to worker
//!   threads without any shared mutable state.

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// SplitMix64 step, used to decorrelate (seed, stream) pairs.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A factory of independent, reproducible RNG streams.
#[derive(Debug, Clone, Copy)]
pub struct RngStreams {
    master_seed: u64,
}

impl RngStreams {
    /// Create a factory from a master seed.
    pub fn new(master_seed: u64) -> Self {
        Self { master_seed }
    }

    /// The master seed this factory was created with.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// The RNG for stream `stream_id` (e.g. the replication index).
    pub fn stream(&self, stream_id: u64) -> ChaCha8Rng {
        let mixed = splitmix64(self.master_seed ^ splitmix64(stream_id.wrapping_add(0xA5A5_5A5A)));
        ChaCha8Rng::seed_from_u64(mixed)
    }

    /// A sub-stream of a stream, for models that need several independent
    /// generators within one replication (e.g. one per job class, so that
    /// common random numbers can be used across policies).
    pub fn substream(&self, stream_id: u64, sub_id: u64) -> ChaCha8Rng {
        let mixed = splitmix64(
            self.master_seed
                ^ splitmix64(stream_id.wrapping_add(0x0123_4567_89AB_CDEF))
                ^ splitmix64(sub_id.wrapping_mul(0x9E37_79B9).wrapping_add(17)),
        );
        ChaCha8Rng::seed_from_u64(mixed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_reproducible() {
        let f1 = RngStreams::new(123);
        let f2 = RngStreams::new(123);
        let mut a = f1.stream(7);
        let mut b = f2.stream(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_streams_differ() {
        let f = RngStreams::new(99);
        let mut a = f.stream(1);
        let mut b = f.stream(2);
        let same = (0..50).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = RngStreams::new(1).stream(0);
        let mut b = RngStreams::new(2).stream(0);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn substreams_are_independent_of_each_other() {
        let f = RngStreams::new(5);
        let mut a = f.substream(0, 0);
        let mut b = f.substream(0, 1);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn uniformity_smoke_test() {
        // Cheap sanity check that the stream behaves like U(0,1) on average.
        let f = RngStreams::new(2024);
        let mut rng = f.stream(0);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }
}

//! Integration tests of the execution pool's determinism contract: for any
//! replication count, seed, chunk size and thread count, the parallel
//! runners produce output bit-for-bit identical to the serial runner.

use proptest::prelude::*;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use ss_sim::pool;
use ss_sim::replication::{run_replications, run_replications_chunked, run_replications_parallel};

/// A replication body with enough RNG consumption to expose any stream
/// misalignment: draw a variable number of uniforms keyed off the index.
fn workload(i: usize, rng: &mut ChaCha8Rng) -> f64 {
    let draws = 5 + (i % 7);
    (0..draws).map(|_| rng.gen::<f64>()).sum::<f64>() - i as f64 * 0.25
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pool output order always matches serial order — bitwise, for every
    /// generated (n, seed, threads) combination.
    #[test]
    fn pool_output_order_matches_serial(
        n in 1usize..200,
        seed in 0u64..1_000_000,
        threads in 1usize..12,
    ) {
        let serial = run_replications(n, seed, workload);
        let parallel =
            pool::with_threads(threads, || run_replications_parallel(n, seed, workload));
        prop_assert_eq!(&serial.values, &parallel.values);
        prop_assert_eq!(serial.mean.to_bits(), parallel.mean.to_bits());
        prop_assert_eq!(serial.std_dev.to_bits(), parallel.std_dev.to_bits());
        prop_assert_eq!(serial.ci95.to_bits(), parallel.ci95.to_bits());
    }

    /// Chunked batching never changes the flat values, and batch boundaries
    /// depend only on chunk_size — not on the thread count.
    #[test]
    fn chunked_batches_are_schedule_invariant(
        n in 1usize..150,
        seed in 0u64..1_000_000,
        chunk_size in 1usize..40,
        threads in 1usize..10,
    ) {
        let serial = run_replications(n, seed, workload);
        let chunked = pool::with_threads(threads, || {
            run_replications_chunked(n, seed, chunk_size, workload)
        });
        prop_assert_eq!(&chunked.overall.values, &serial.values);
        prop_assert_eq!(chunked.chunks.len(), n.div_ceil(chunk_size));
        let reassembled: Vec<f64> = chunked
            .chunks
            .iter()
            .flat_map(|c| c.values.iter().copied())
            .collect();
        prop_assert_eq!(&reassembled, &serial.values);
    }

    /// `parallel_indexed` is an order-preserving map for arbitrary sizes and
    /// thread counts, including n < threads and heavy oversubscription.
    #[test]
    fn parallel_indexed_matches_serial_map(
        n in 0usize..300,
        threads in 1usize..32,
    ) {
        let out = pool::with_threads(threads, || {
            pool::parallel_indexed(n, |i| (i as f64).sqrt() * 3.5)
        });
        let expected: Vec<f64> = (0..n).map(|i| (i as f64).sqrt() * 3.5).collect();
        prop_assert_eq!(out, expected);
    }
}

#[test]
fn n_smaller_than_thread_count_is_exact() {
    let serial = run_replications(3, 77, workload);
    let parallel = pool::with_threads(16, || run_replications_parallel(3, 77, workload));
    assert_eq!(serial.values, parallel.values);
}

#[test]
fn oversubscription_is_exact() {
    // Far more threads than this machine has cores.
    let serial = run_replications(500, 4242, workload);
    let parallel = pool::with_threads(64, || run_replications_parallel(500, 4242, workload));
    assert_eq!(serial.values, parallel.values);
}

#[test]
fn installed_pools_nest_and_restore() {
    let outer = pool::num_threads();
    let (inner_a, inner_b) = pool::with_threads(2, || {
        let a = pool::num_threads();
        let b = pool::with_threads(5, pool::num_threads);
        (a, b)
    });
    assert_eq!(inner_a, 2);
    assert_eq!(inner_b, 5);
    assert_eq!(pool::num_threads(), outer);
}

//! Property tests of the event calendar's determinism contract.
//!
//! The service fabric (and every hand-written simulator) rests on two
//! calendar invariants: events always pop in `(time, sequence)` order
//! whatever the interleaving of schedules and pops, and simultaneous
//! events resolve in first-scheduled-first-served order however many of
//! them pile up.  These tests pin both under generated workloads.

use proptest::prelude::*;
use ss_sim::events::EventQueue;

/// Decode one raw op word: low bits pick the coarse time bucket (so time
/// collisions are common), bit 31 decides pop vs schedule (biased 1:3
/// towards scheduling so the queue actually fills up).
fn decode(raw: u32, buckets: u32) -> (bool, f64) {
    let do_pop = raw.is_multiple_of(4);
    let time = ((raw >> 2) % buckets) as f64 * 0.5;
    (do_pop, time)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Interleaved schedule/pop sequences always pop in `(time, seq)`
    /// order: within any run of pops (no intervening schedules), times are
    /// nondecreasing, and equal times pop in increasing payload (insertion)
    /// order.
    #[test]
    fn interleaved_ops_pop_in_time_then_seq_order(
        ops in prop::collection::vec(0u32..u32::MAX, 1..300),
        buckets in 1u32..25,
    ) {
        let mut q = EventQueue::new();
        let mut payload = 0u64;
        let mut scheduled_at: Vec<f64> = Vec::new();
        let mut last: Option<(f64, u64)> = None;
        for &raw in &ops {
            let (do_pop, time) = decode(raw, buckets);
            if do_pop {
                if let Some((t, p)) = q.pop() {
                    // The popped event really was scheduled at that time.
                    prop_assert_eq!(scheduled_at[p as usize].to_bits(), t.to_bits());
                    if let Some((lt, lp)) = last {
                        prop_assert!(
                            t > lt || (t == lt && p > lp),
                            "pop order violated: ({}, {}) then ({}, {})", lt, lp, t, p
                        );
                    }
                    last = Some((t, p));
                }
            } else {
                q.schedule(time, payload);
                scheduled_at.push(time);
                payload += 1;
                // A schedule may introduce an earlier event; the intra-run
                // monotonicity chain restarts.
                last = None;
            }
        }
        // Draining the rest is globally sorted by (time, seq).
        let mut drained = Vec::new();
        while let Some(pair) = q.pop() {
            drained.push(pair);
        }
        for w in drained.windows(2) {
            let ((t1, p1), (t2, p2)) = (w[0], w[1]);
            prop_assert!(t1 < t2 || (t1 == t2 && p1 < p2));
        }
    }

    /// Every scheduled event is popped exactly once, whatever the
    /// interleaving: the calendar neither loses nor duplicates events.
    #[test]
    fn no_event_is_lost_or_duplicated(
        ops in prop::collection::vec(0u32..u32::MAX, 1..200),
        buckets in 1u32..12,
    ) {
        let mut q = EventQueue::new();
        let mut payload = 0u64;
        let mut popped: Vec<u64> = Vec::new();
        for &raw in &ops {
            let (do_pop, time) = decode(raw, buckets);
            if do_pop {
                if let Some((_, p)) = q.pop() {
                    popped.push(p);
                }
            } else {
                q.schedule(time, payload);
                payload += 1;
            }
        }
        while let Some((_, p)) = q.pop() {
            popped.push(p);
        }
        popped.sort_unstable();
        prop_assert_eq!(popped, (0..payload).collect::<Vec<_>>());
    }

    /// Tie-break stability under mass simultaneity: hundreds of events at
    /// the same instant pop in exactly insertion order, even interleaved
    /// with events at other times.
    #[test]
    fn simultaneous_events_pop_in_insertion_order(
        n_ties in 50usize..400,
        tie_time in 0u32..10,
        spread in prop::collection::vec(0u32..10, 0..50),
    ) {
        let mut q = EventQueue::new();
        let tie = tie_time as f64;
        let mut payload = 0u64;
        let mut tied: Vec<u64> = Vec::new();
        let mut spread_it = spread.iter();
        for i in 0..n_ties {
            q.schedule(tie, payload);
            tied.push(payload);
            payload += 1;
            // Interleave unrelated events so heap sift ordering is stressed.
            if i % 3 == 0 {
                if let Some(&s) = spread_it.next() {
                    q.schedule(s as f64, payload);
                    payload += 1;
                }
            }
        }
        let tied_set: std::collections::HashSet<u64> = tied.iter().copied().collect();
        let mut got: Vec<u64> = Vec::new();
        while let Some((t, p)) = q.pop() {
            if t == tie && tied_set.contains(&p) {
                got.push(p);
            }
        }
        prop_assert_eq!(got, tied);
    }

    /// `pop_at_or_before` never loses events: popping everything through a
    /// staircase of growing horizons equals popping with no horizon at all.
    #[test]
    fn horizon_staircase_equals_unbounded_pop(
        times in prop::collection::vec(0u32..40, 1..150),
        step in 1u32..7,
    ) {
        let mut bounded = EventQueue::new();
        let mut unbounded = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            bounded.schedule(t as f64 * 0.25, i);
            unbounded.schedule(t as f64 * 0.25, i);
        }
        let mut via_horizons = Vec::new();
        let mut horizon = 0.0f64;
        while !bounded.is_empty() {
            while let Some(pair) = bounded.pop_at_or_before(horizon) {
                via_horizons.push(pair);
            }
            horizon += step as f64 * 0.25;
        }
        let mut direct = Vec::new();
        while let Some(pair) = unbounded.pop() {
            direct.push(pair);
        }
        prop_assert_eq!(via_horizons, direct);
    }
}

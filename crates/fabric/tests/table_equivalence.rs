//! The rewiring contract of the `ss-index` serving layer: every scenario
//! simulated through table-backed disciplines produces **byte-identical**
//! reports to the per-call solver adapters the tables replaced.
//!
//! The legacy constructors (`Fifo`, `cmu_discipline`, `gittins_discipline`,
//! `WhittleQueueDiscipline::new`) are re-instantiated here exactly as
//! `FabricConfig::build_discipline` used to wire them, so any drift in the
//! tabulation arithmetic — a reordered solve, a different saturation
//! boundary, a lost `-∞` pin — shows up as a report diff rather than a
//! silently re-blessed fixture.

use std::sync::Arc;

use ss_bandits::discipline::WhittleQueueDiscipline;
use ss_batch::discipline::{gittins_discipline, GittinsGrid};
use ss_core::discipline::{Discipline, Fifo};
use ss_fabric::config::{DisciplineKind, FabricConfig, WHITTLE_TRUNCATION};
use ss_fabric::scenarios::{scenario_list, Budget, DEFAULT_SEED};
use ss_fabric::sim::run_fabric_with;

/// The pre-`ss-index` wiring, verbatim.
fn legacy_disciplines(cfg: &FabricConfig) -> Vec<Arc<dyn Discipline>> {
    (0..cfg.tiers.len())
        .map(|t| -> Arc<dyn Discipline> {
            let classes = cfg.job_classes(t);
            match cfg.tiers[t].discipline {
                DisciplineKind::Fifo => Arc::new(Fifo),
                DisciplineKind::Cmu => Arc::new(ss_queueing::discipline::cmu_discipline(&classes)),
                DisciplineKind::Gittins => {
                    Arc::new(gittins_discipline(&classes, GittinsGrid::default()))
                }
                DisciplineKind::Whittle => {
                    Arc::new(WhittleQueueDiscipline::new(&classes, WHITTLE_TRUNCATION))
                }
            }
        })
        .collect()
}

#[test]
fn table_backed_reports_bit_match_legacy_disciplines() {
    let budget = Budget::check();
    for (s, cfg) in scenario_list(&budget).iter().enumerate() {
        let legacy = legacy_disciplines(cfg);
        let tables = cfg.build_disciplines();
        for rep in 0..2u64 {
            let seed = DEFAULT_SEED ^ (s as u64) << 8 ^ rep;
            let old = run_fabric_with(cfg, &legacy, seed);
            let new = run_fabric_with(cfg, &tables, seed);
            assert_eq!(
                old.report_lines(&cfg.name),
                new.report_lines(&cfg.name),
                "scenario {} rep {rep} diverged under table-backed disciplines",
                cfg.name
            );
        }
    }
}

/// The table path must also agree decision-by-decision, not just in
/// aggregate: every `(class, queue_len)` the simulator can present —
/// including lengths far past the Whittle truncation — returns the same
/// bits through the table as through the legacy trait object.
#[test]
fn table_lookups_bit_match_legacy_class_index_per_call() {
    let budget = Budget::check();
    for cfg in scenario_list(&budget) {
        let legacy = legacy_disciplines(&cfg);
        let tables = cfg.build_disciplines();
        for (t, (old, new)) in legacy.iter().zip(&tables).enumerate() {
            assert_eq!(old.name(), new.name(), "tier {t} of {}", cfg.name);
            for class in 0..cfg.classes.len() {
                for len in (0..=WHITTLE_TRUNCATION + 20).chain([10_000]) {
                    let a = old.class_index(class, len);
                    let b = new.class_index(class, len);
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{} tier {t} class {class} len {len}: {a} vs {b}",
                        cfg.name
                    );
                }
            }
        }
    }
}

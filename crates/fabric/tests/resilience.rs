//! Integration tests of the overload-resilience layer: the graceful-
//! degradation acceptance gate (the metastable retry storm collapses
//! without protection and recovers with it), substream purity of the new
//! chaos/probe RNG families, outage thread-invariance, and the
//! failure-semantics regression (a server failure aborts only the request
//! in service; queued requests survive to be served after repair).

use ss_distributions::{dyn_dist, Exponential};
use ss_fabric::scenarios::{aggregate, retry_storm_config, Budget, DEFAULT_SEED};
use ss_fabric::sim::{replication_seed, run_fabric};
use ss_fabric::{
    ArrivalProcess, BreakerConfig, ClassConfig, DisciplineKind, FabricConfig, FabricReport,
    FailureConfig, LbPolicy, OutageConfig, RetryPolicy, SlowdownConfig, TierConfig,
};
use ss_sim::pool;
use ss_sim::rng::RngStreams;

fn exp(mean: f64) -> ss_distributions::DynDist {
    dyn_dist(Exponential::with_mean(mean))
}

/// A single-tier bounded-queue baseline under overload, so breakers (when
/// attached) actually record failure outcomes.
fn bounded_baseline() -> FabricConfig {
    FabricConfig {
        name: "resilience-baseline".into(),
        classes: vec![ClassConfig {
            arrivals: ArrivalProcess::Poisson { rate: 2.0 },
            holding_cost: 1.0,
        }],
        tiers: vec![TierConfig {
            servers: 2,
            queue_capacity: Some(4),
            service: vec![exp(1.2)],
            discipline: DisciplineKind::Fifo,
            lb: LbPolicy::CentralQueue,
            hop_delay: 0.0,
            failure: None,
            breaker: None,
            slowdown: None,
            outage: None,
        }],
        retry: RetryPolicy {
            max_retries: 2,
            base_backoff: 0.4,
            multiplier: 2.0,
        },
        warmup: 100.0,
        horizon: 1_100.0,
        deadlines: None,
        shedder: None,
        sla_window: None,
    }
}

/// Bitwise comparison of everything except the event count (chaos epochs
/// legitimately add their own start/end events to the calendar).
fn assert_same_run(a: &FabricReport, b: &FabricReport, what: &str) {
    assert_eq!(a.arrivals, b.arrivals, "{what}: arrivals diverged");
    assert_eq!(a.completed, b.completed, "{what}: completed diverged");
    assert_eq!(a.lost, b.lost, "{what}: lost diverged");
    assert_eq!(a.retries, b.retries, "{what}: retries diverged");
    assert_eq!(a.shed, b.shed, "{what}: shed diverged");
    assert_eq!(a.timed_out, b.timed_out, "{what}: timed_out diverged");
    assert_eq!(
        a.rtt_mean().to_bits(),
        b.rtt_mean().to_bits(),
        "{what}: RTT diverged"
    );
    assert_eq!(a.tiers.len(), b.tiers.len());
    for (ta, tb) in a.tiers.iter().zip(&b.tiers) {
        assert_eq!(ta.served, tb.served, "{what}: served diverged");
        assert_eq!(ta.dropped, tb.dropped, "{what}: dropped diverged");
        assert_eq!(ta.fast_failed, tb.fast_failed, "{what}: fastfail diverged");
        assert_eq!(
            ta.mean_wait.to_bits(),
            tb.mean_wait.to_bits(),
            "{what}: wait diverged"
        );
        assert_eq!(
            ta.utilization.to_bits(),
            tb.utilization.to_bits(),
            "{what}: utilization diverged"
        );
    }
}

/// The committed graceful-degradation gate: one slowdown epoch tips the
/// unprotected system into the metastable retry-storm equilibrium (zero
/// goodput sustained long after the slowdown ends, because past-deadline
/// completions waste full service times and every timeout re-arms a
/// retry), while deadlines + shedding + breakers keep the protected system
/// at its good equilibrium.  Thresholds follow the acceptance criteria:
/// final SLA window under 50% goodput unprotected, above 90% goodput with
/// bounded windowed P99 protected.
#[test]
fn retry_storm_collapses_unprotected_and_recovers_protected() {
    let budget = Budget::check();
    let streams = RngStreams::new(DEFAULT_SEED);
    // Scenario id 7 = the retry-storm slot in the committed suite, so this
    // test replays exactly the replications `fabric --check` reports.
    let run_arm = |protected: bool| {
        let cfg = retry_storm_config(protected, &budget);
        let reports: Vec<FabricReport> = (0..budget.replications)
            .map(|rep| run_fabric(&cfg, replication_seed(&streams, 7, rep)))
            .collect();
        aggregate(&reports)
    };

    let unprotected = run_arm(false);
    let protected = run_arm(true);

    // Both arms face the identical arrival sample (same substreams), so
    // the comparison is a pure A/B on the protection mechanisms.
    assert_eq!(unprotected.arrivals, protected.arrivals);

    let last_u = unprotected.windows.last().expect("storm has SLA windows");
    let last_p = protected.windows.last().expect("storm has SLA windows");
    assert!(
        last_u.goodput() < 0.50,
        "unprotected arm did not collapse: final-window goodput {:.4}",
        last_u.goodput()
    );
    assert!(
        last_p.goodput() > 0.90,
        "protected arm did not recover: final-window goodput {:.4}",
        last_p.goodput()
    );
    // Bounded tail latency: twice the 6.0 request deadline.
    let p99 = last_p.rtt.quantile(0.99);
    assert!(
        p99 <= 12.0,
        "protected final-window P99 {p99:.3} exceeds 2x deadline"
    );
    // The collapse is metastable, not transient: the slowdown epoch is over
    // well before the horizon, yet the unprotected arm never recovers.
    assert!(unprotected.completed < protected.completed / 10);
    // Every protection mechanism participated.
    assert!(protected.shed > 0, "shedder never engaged");
    assert!(protected.timed_out > 0, "deadlines never fired");
    assert!(protected.tiers[0].fast_failed > 0, "breaker never opened");
}

/// The storm aggregate (both arms) is bit-identical across thread counts —
/// the new slowdown/probe substream families do not leak scheduling order
/// into results.
#[test]
fn retry_storm_is_thread_count_invariant() {
    let budget = Budget::check();
    for protected in [false, true] {
        let cfg = retry_storm_config(protected, &budget);
        let run_all = || {
            let streams = RngStreams::new(DEFAULT_SEED);
            let reports: Vec<FabricReport> =
                pool::parallel_indexed(budget.replications as usize, |rep| {
                    run_fabric(&cfg, replication_seed(&streams, 7, rep as u64))
                });
            aggregate(&reports)
        };
        let serial = pool::with_threads(1, run_all);
        let parallel = pool::with_threads(4, run_all);
        assert_same_run(&serial, &parallel, &cfg.name);
        assert_eq!(serial.events, parallel.events, "{} diverged", cfg.name);
        for (wa, wb) in serial.windows.iter().zip(&parallel.windows) {
            assert_eq!(wa.goodput().to_bits(), wb.goodput().to_bits());
            assert_eq!(
                wa.rtt.quantile(0.99).to_bits(),
                wb.rtt.quantile(0.99).to_bits()
            );
        }
    }
}

/// An inert breaker (min_samples above the window size can never trip)
/// consumes no randomness and schedules no events: the run is bit-identical
/// to the breaker-free baseline, event count included.  This is the
/// substream-purity contract of the PROBE family — probe jitter is drawn
/// only on an actual trip.
#[test]
fn inert_breaker_leaves_the_run_untouched() {
    let base = bounded_baseline();
    let mut with_breaker = bounded_baseline();
    with_breaker.tiers[0].breaker = Some(BreakerConfig {
        window: 8,
        failure_threshold: 0.9,
        min_samples: 1_000,
        open_duration: 5.0,
        half_open_probes: 2,
    });
    for seed in [1u64, 0xDEAD_BEEF, 42] {
        let a = run_fabric(&base, seed);
        let b = run_fabric(&with_breaker, seed);
        assert_same_run(&a, &b, "inert breaker");
        assert_eq!(a.events, b.events, "inert breaker scheduled events");
        // The baseline is genuinely lossy, so outcomes were being recorded.
        assert!(a.tiers[0].dropped > 0, "baseline produced no failures");
    }
}

/// A no-op slowdown (rate multiplier 1.0) adds its epoch events but must
/// not perturb arrivals, services or retries: the SLOWDOWN family draws
/// from its own substream, and dividing a service sample by 1.0 is exact.
#[test]
fn noop_slowdown_only_adds_epoch_events() {
    let base = bounded_baseline();
    let mut with_slowdown = bounded_baseline();
    with_slowdown.tiers[0].slowdown = Some(SlowdownConfig {
        mean_time_to_slowdown: 90.0,
        mean_slowdown_duration: 40.0,
        rate_multiplier: 1.0,
        max_epochs: 0,
    });
    for seed in [3u64, 0xFEED_F00D] {
        let a = run_fabric(&base, seed);
        let b = run_fabric(&with_slowdown, seed);
        assert_same_run(&a, &b, "no-op slowdown");
        assert!(
            b.events > a.events,
            "slowdown epochs scheduled no events at all"
        );
    }
}

/// An outage whose mean inter-arrival time lies far past the horizon never
/// fires: the OUTAGE family owns its substream, so merely configuring it
/// leaves every statistic bit-identical.
#[test]
fn far_future_outage_leaves_the_run_untouched() {
    let base = bounded_baseline();
    let mut with_outage = bounded_baseline();
    with_outage.tiers[0].outage = Some(OutageConfig {
        mean_time_to_outage: 1e12,
        mean_outage_duration: 5.0,
        max_epochs: 0,
    });
    for seed in [9u64, 777] {
        let a = run_fabric(&base, seed);
        let b = run_fabric(&with_outage, seed);
        assert_same_run(&a, &b, "far-future outage");
    }
}

/// Tier-wide outages abort in-service work but the central queue holds
/// waiting requests through the outage; the whole thing is bit-identical
/// across thread counts (the OUTAGE substream family is pool-independent).
#[test]
fn outages_abort_in_service_work_and_stay_deterministic() {
    let mut cfg = bounded_baseline();
    cfg.name = "outage-chaos".into();
    cfg.tiers[0].queue_capacity = None;
    cfg.tiers[0].outage = Some(OutageConfig {
        mean_time_to_outage: 120.0,
        mean_outage_duration: 15.0,
        max_epochs: 0,
    });
    let run_all = || {
        let streams = RngStreams::new(DEFAULT_SEED);
        let reports: Vec<FabricReport> = pool::parallel_indexed(4, |rep| {
            run_fabric(&cfg, replication_seed(&streams, 99, rep as u64))
        });
        aggregate(&reports)
    };
    let serial = pool::with_threads(1, run_all);
    let parallel = pool::with_threads(4, run_all);
    assert_same_run(&serial, &parallel, "outage-chaos");
    assert_eq!(serial.events, parallel.events);
    // Outages actually struck: in-service aborts show up as tier drops,
    // and service resumed afterwards (completions dwarf the aborts).
    assert!(serial.tiers[0].dropped > 0, "no outage ever aborted work");
    assert!(serial.completed > serial.tiers[0].dropped * 5);
}

/// Regression for the failure semantics: a server failure aborts only the
/// request *in service* on the failed server; requests waiting in the
/// queue survive the repair and are served afterwards.  With retries
/// disabled every abort is a loss, so the loss count is bounded by the
/// failure count — if failures ever started flushing the queue, `lost`
/// would jump by an order of magnitude.
#[test]
fn server_failure_aborts_only_the_in_service_request() {
    let cfg = FabricConfig {
        name: "fail-repair".into(),
        classes: vec![ClassConfig {
            arrivals: ArrivalProcess::Poisson { rate: 0.5 },
            holding_cost: 1.0,
        }],
        tiers: vec![TierConfig {
            servers: 1,
            queue_capacity: None,
            service: vec![exp(0.5)],
            discipline: DisciplineKind::Fifo,
            lb: LbPolicy::CentralQueue,
            hop_delay: 0.0,
            failure: Some(FailureConfig {
                mean_time_to_failure: 50.0,
                mean_time_to_repair: 4.0,
            }),
            breaker: None,
            slowdown: None,
            outage: None,
        }],
        retry: RetryPolicy::none(),
        warmup: 0.0,
        horizon: 4_000.0,
        deadlines: None,
        shedder: None,
        sla_window: None,
    };
    let r = run_fabric(&cfg, 0x5EED);
    assert!(r.lost > 0, "no failure ever aborted a request");
    // Expected failures ~ horizon / MTTF = 80; each aborts at most the one
    // request in service.  Give generous slack, but stay far below the
    // ~2000 arrivals a queue-flushing bug would start losing.
    assert!(
        r.lost <= 160,
        "lost {} requests — failures are killing queued work",
        r.lost
    );
    // Queued requests survived repairs: almost everything completes.
    let resolved = r.completed + r.lost;
    assert!(r.arrivals >= resolved, "conservation violated");
    assert!(
        r.arrivals - resolved <= 30,
        "too many requests unaccounted at the horizon: {} of {}",
        r.arrivals - resolved,
        r.arrivals
    );
    assert!(r.completed as f64 >= 0.85 * r.arrivals as f64);
}

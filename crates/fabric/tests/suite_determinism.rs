//! Tier-1 integration test: the fabric scenario suite must be bit-identical
//! across thread counts and a pure function of the seed (the same contract
//! CI enforces by diffing `fabric --check` output across `SS_THREADS`).

use ss_fabric::{run_suite, scenario_list, suite_lines, Budget, DEFAULT_SEED};
use ss_sim::pool;

#[test]
fn suite_is_thread_count_invariant() {
    let budget = Budget::check();
    let serial = pool::with_threads(1, || run_suite(DEFAULT_SEED, &budget));
    let parallel = pool::with_threads(4, || run_suite(DEFAULT_SEED, &budget));

    assert_eq!(serial.len(), parallel.len());
    for ((name_a, a), (name_b, b)) in serial.iter().zip(&parallel) {
        assert_eq!(name_a, name_b);
        // Compare the raw bits of every numeric field, not formatted
        // strings, so -0.0 vs 0.0 or a last-ulp drift cannot hide.
        assert_eq!(a.arrivals, b.arrivals, "{name_a} diverged");
        assert_eq!(a.completed, b.completed, "{name_a} diverged");
        assert_eq!(a.lost, b.lost, "{name_a} diverged");
        assert_eq!(a.retries, b.retries, "{name_a} diverged");
        assert_eq!(a.shed, b.shed, "{name_a} diverged");
        assert_eq!(a.timed_out, b.timed_out, "{name_a} diverged");
        assert_eq!(a.events, b.events, "{name_a} diverged");
        assert_eq!(
            a.rtt_mean().to_bits(),
            b.rtt_mean().to_bits(),
            "{name_a} RTT diverged across thread counts"
        );
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(a.rtt.quantile(q).to_bits(), b.rtt.quantile(q).to_bits());
        }
        assert_eq!(a.tiers.len(), b.tiers.len());
        for (ta, tb) in a.tiers.iter().zip(&b.tiers) {
            assert_eq!(ta.served, tb.served);
            assert_eq!(ta.dropped, tb.dropped);
            assert_eq!(ta.fast_failed, tb.fast_failed);
            assert_eq!(ta.mean_wait.to_bits(), tb.mean_wait.to_bits());
            assert_eq!(ta.utilization.to_bits(), tb.utilization.to_bits());
        }
        // SLA windows are part of the deterministic surface too.
        assert_eq!(a.windows.len(), b.windows.len(), "{name_a} diverged");
        for (wa, wb) in a.windows.iter().zip(&b.windows) {
            assert_eq!(wa.arrivals, wb.arrivals);
            assert_eq!(wa.completed, wb.completed);
            assert_eq!(wa.timed_out, wb.timed_out);
            assert_eq!(wa.shed, wb.shed);
            assert_eq!(wa.goodput().to_bits(), wb.goodput().to_bits());
            assert_eq!(
                wa.rtt.quantile(0.99).to_bits(),
                wb.rtt.quantile(0.99).to_bits()
            );
        }
    }
}

#[test]
fn report_lines_are_a_pure_function_of_the_seed() {
    let budget = Budget::check();
    let first = suite_lines(DEFAULT_SEED, &budget);
    let again = suite_lines(DEFAULT_SEED, &budget);
    assert_eq!(first, again, "same seed must reproduce the exact report");

    let other = suite_lines(DEFAULT_SEED ^ 1, &budget);
    assert_eq!(other.len(), first.len());
    assert_ne!(
        other, first,
        "a different seed must actually change the run"
    );
}

#[test]
fn every_discipline_and_every_axis_appears_in_the_suite() {
    // The committed suite is the coverage surface of the CI gate: losing a
    // discipline kind, the MMPP source, failures or bounded queues would
    // silently shrink what `fabric --check` exercises.
    let scenarios = scenario_list(&Budget::check());
    assert!(scenarios.len() >= 8, "suite shrank to {}", scenarios.len());
    for key in ["fifo", "cmu", "gittins", "whittle"] {
        assert!(
            scenarios
                .iter()
                .flat_map(|s| &s.tiers)
                .any(|t| t.discipline.key() == key),
            "no scenario uses the {key} discipline"
        );
    }
    assert!(
        scenarios
            .iter()
            .flat_map(|s| &s.classes)
            .any(|c| matches!(c.arrivals, ss_fabric::ArrivalProcess::Mmpp { .. })),
        "no MMPP source left in the suite"
    );
    assert!(
        scenarios
            .iter()
            .flat_map(|s| &s.tiers)
            .any(|t| t.failure.is_some()),
        "no failure/recovery scenario left in the suite"
    );
    assert!(
        scenarios
            .iter()
            .flat_map(|s| &s.tiers)
            .any(|t| t.queue_capacity.is_some()),
        "no bounded-queue scenario left in the suite"
    );
    assert!(
        scenarios.iter().any(|s| s.retry.max_retries > 0),
        "no retry scenario left in the suite"
    );
    assert!(
        scenarios.iter().any(|s| s.tiers.len() >= 2),
        "no multi-tier scenario left in the suite"
    );
    // The overload-resilience axes added with the retry-storm scenario.
    assert!(
        scenarios
            .iter()
            .flat_map(|s| &s.tiers)
            .any(|t| t.breaker.is_some()),
        "no circuit-breaker scenario left in the suite"
    );
    assert!(
        scenarios
            .iter()
            .flat_map(|s| &s.tiers)
            .any(|t| t.slowdown.is_some()),
        "no slowdown-chaos scenario left in the suite"
    );
    assert!(
        scenarios.iter().any(|s| s.deadlines.is_some()),
        "no deadline scenario left in the suite"
    );
    assert!(
        scenarios.iter().any(|s| s.shedder.is_some()),
        "no load-shedder scenario left in the suite"
    );
    assert!(
        scenarios.iter().any(|s| s.sla_window.is_some()),
        "no SLA-window scenario left in the suite"
    );
}

#[test]
fn central_queue_mmc_converges_to_erlang_c() {
    // The single-tier FIFO central-queue fabric IS an M/M/c queue; on a
    // long horizon its mean wait must approach the Erlang-C value.  (The
    // verify crate's fabric-vs-erlangc pair gates this with CI-aware
    // tolerances; this is the in-crate smoke version.)
    use ss_distributions::{dyn_dist, Exponential};
    use ss_fabric::{
        run_fabric, ArrivalProcess, ClassConfig, DisciplineKind, FabricConfig, LbPolicy,
        RetryPolicy, TierConfig,
    };
    let cfg = FabricConfig {
        name: "mm3".into(),
        classes: vec![ClassConfig {
            arrivals: ArrivalProcess::Poisson { rate: 2.4 },
            holding_cost: 1.0,
        }],
        tiers: vec![TierConfig {
            servers: 3,
            queue_capacity: None,
            service: vec![dyn_dist(Exponential::with_mean(1.0))],
            discipline: DisciplineKind::Fifo,
            lb: LbPolicy::CentralQueue,
            hop_delay: 0.0,
            failure: None,
            breaker: None,
            slowdown: None,
            outage: None,
        }],
        retry: RetryPolicy::none(),
        warmup: 2_000.0,
        horizon: 40_000.0,
        deadlines: None,
        shedder: None,
        sla_window: None,
    };
    let mean = (0..4u64)
        .map(|seed| run_fabric(&cfg, 0xABC0 + seed).tiers[0].mean_wait)
        .sum::<f64>()
        / 4.0;
    let erlang = ss_queueing::parallel_servers::mmc_mean_wait(3, 2.4, 1.0);
    assert!(
        (mean - erlang).abs() / erlang < 0.06,
        "central-queue M/M/3 wait {mean} vs Erlang-C {erlang}"
    );
}

#[test]
fn failure_and_backpressure_scenarios_exercise_drops_and_retries() {
    let budget = Budget::check();
    let suite = run_suite(DEFAULT_SEED, &budget);
    let by_name = |n: &str| {
        &suite
            .iter()
            .find(|(name, _)| name == n)
            .unwrap_or_else(|| panic!("scenario {n} missing"))
            .1
    };
    let failures = by_name("failures-retries");
    assert!(failures.retries > 0, "failure scenario produced no retries");
    assert!(
        failures.tiers[0].dropped > 0,
        "failure scenario produced no drops"
    );
    let bounded = by_name("bounded-backpressure");
    assert!(
        bounded.tiers[0].dropped > 0,
        "bounded queues produced no backpressure drops"
    );
    // The unbounded, failure-free baseline must stay loss-free.
    let baseline = by_name("mm3-fifo-baseline");
    assert_eq!(baseline.lost, 0);
    assert_eq!(baseline.tiers[0].dropped, 0);
}

//! The named scenario suite of the `fabric` binary.
//!
//! Each scenario exercises one axis of the fabric (load-balancer policy,
//! discipline, MMPP burstiness, failures, bounded queues + retries,
//! overload resilience); the runner fans `(scenario, replication)` cells
//! over [`ss_sim::pool::parallel_indexed`], each cell owning a seed derived
//! from `substream(FABRIC_SIM_STREAM, scenario · 2^16 + rep)`, and
//! aggregates in scenario order — so the report is bit-for-bit identical
//! for any `SS_THREADS`.

use ss_distributions::{dyn_dist, Erlang, Exponential, HyperExponential};
use ss_sim::pool::parallel_indexed;
use ss_sim::rng::RngStreams;

use crate::config::{
    ArrivalProcess, ClassConfig, DisciplineKind, FabricConfig, FailureConfig, LbPolicy,
    RetryPolicy, TierConfig,
};
use crate::metrics::{FabricReport, SlaWindowReport, TierReport};
use crate::resilience::{BreakerConfig, DeadlineConfig, ShedderConfig, SlowdownConfig};
use crate::sim::{replication_seed, run_fabric_with};

/// Master seed of the committed scenario suite.
pub const DEFAULT_SEED: u64 = 0xFAB0_5EED;

/// Time/replication budget of a suite run.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    pub warmup: f64,
    pub horizon: f64,
    pub replications: u64,
}

impl Budget {
    /// Full reporting budget.
    pub fn full() -> Self {
        Self {
            warmup: 500.0,
            horizon: 4500.0,
            replications: 6,
        }
    }

    /// Fast deterministic budget for the CI `--check` gate.
    pub fn check() -> Self {
        Self {
            warmup: 100.0,
            horizon: 700.0,
            replications: 2,
        }
    }
}

fn exp(mean: f64) -> ss_distributions::DynDist {
    dyn_dist(Exponential::with_mean(mean))
}

/// The metastable retry-storm scenario, in both arms of the experiment.
///
/// A single M/M/4 central-queue tier runs at ρ = 0.85 with a deep finite
/// queue, a 6-time-unit request deadline, and clients that re-submit
/// timed-out work aggressively.  One injected slowdown epoch (service
/// rate × 0.25) fills the queue past the point where *every* admitted
/// request finishes after its deadline — and because a timed-out
/// completion still consumed a full service, the wasted work plus the
/// timeout-triggered retries keep the effective arrival rate far above
/// capacity after the trigger clears.  The collapse is metastable: the
/// overloaded state sustains itself although the fresh load (3.4 < 4) is
/// comfortably below capacity.
///
/// The `protected` arm adds the resilience layer — queue reneging, a
/// front-tier token-bucket shedder capping admissions just under
/// capacity, and a windowed-failure-rate circuit breaker — which drains
/// the wasted work and returns the tier to the good equilibrium.
pub fn retry_storm_config(protected: bool, budget: &Budget) -> FabricConfig {
    let b = budget;
    FabricConfig {
        name: if protected {
            "retry-storm-recovery".into()
        } else {
            "retry-storm-unprotected".into()
        },
        classes: vec![ClassConfig {
            arrivals: ArrivalProcess::Poisson { rate: 3.4 },
            holding_cost: 1.0,
        }],
        tiers: vec![TierConfig {
            servers: 4,
            queue_capacity: Some(64),
            service: vec![exp(1.0)],
            discipline: DisciplineKind::Fifo,
            lb: LbPolicy::CentralQueue,
            hop_delay: 0.0,
            failure: None,
            breaker: protected.then_some(BreakerConfig {
                window: 40,
                failure_threshold: 0.5,
                min_samples: 20,
                open_duration: 4.0,
                half_open_probes: 5,
            }),
            slowdown: Some(SlowdownConfig {
                mean_time_to_slowdown: 150.0,
                mean_slowdown_duration: 120.0,
                rate_multiplier: 0.25,
                max_epochs: 1,
            }),
            outage: None,
        }],
        retry: RetryPolicy {
            max_retries: 4,
            base_backoff: 0.5,
            multiplier: 1.5,
        },
        deadlines: Some(DeadlineConfig {
            deadline: vec![6.0],
            renege: protected,
            retry_on_timeout: true,
        }),
        shedder: protected.then_some(ShedderConfig {
            rate: 3.8,
            burst: 12.0,
        }),
        sla_window: Some((b.horizon - b.warmup) / 6.0),
        warmup: b.warmup,
        horizon: b.horizon,
    }
}

/// The committed scenario list (order is part of the report format).
pub fn scenario_list(budget: &Budget) -> Vec<FabricConfig> {
    let b = budget;
    vec![
        // 1. Single-tier M/M/3 FIFO central queue at rho = 0.8 — exactly
        //    the model family the Erlang-C oracle pair cross-validates.
        FabricConfig {
            name: "mm3-fifo-baseline".into(),
            classes: vec![ClassConfig {
                arrivals: ArrivalProcess::Poisson { rate: 2.4 },
                holding_cost: 1.0,
            }],
            tiers: vec![TierConfig {
                servers: 3,
                queue_capacity: None,
                service: vec![exp(1.0)],
                discipline: DisciplineKind::Fifo,
                lb: LbPolicy::CentralQueue,
                hop_delay: 0.0,
                failure: None,
                breaker: None,
                slowdown: None,
                outage: None,
            }],
            retry: RetryPolicy::none(),
            deadlines: None,
            shedder: None,
            sla_window: None,
            warmup: b.warmup,
            horizon: b.horizon,
        },
        // 2. Two tiers with network hops: end-to-end RTT accounting.
        FabricConfig {
            name: "two-tier-rtt".into(),
            classes: vec![
                ClassConfig {
                    arrivals: ArrivalProcess::Poisson { rate: 1.1 },
                    holding_cost: 1.0,
                },
                ClassConfig {
                    arrivals: ArrivalProcess::Poisson { rate: 0.6 },
                    holding_cost: 3.0,
                },
            ],
            tiers: vec![
                TierConfig {
                    servers: 4,
                    queue_capacity: None,
                    service: vec![exp(1.0), exp(0.7)],
                    discipline: DisciplineKind::Cmu,
                    lb: LbPolicy::JoinShortestQueue,
                    hop_delay: 0.05,
                    failure: None,
                    breaker: None,
                    slowdown: None,
                    outage: None,
                },
                TierConfig {
                    servers: 3,
                    queue_capacity: None,
                    service: vec![exp(0.8), exp(0.5)],
                    discipline: DisciplineKind::Fifo,
                    lb: LbPolicy::RoundRobin,
                    hop_delay: 0.05,
                    failure: None,
                    breaker: None,
                    slowdown: None,
                    outage: None,
                },
            ],
            retry: RetryPolicy::none(),
            deadlines: None,
            shedder: None,
            sla_window: None,
            warmup: b.warmup,
            horizon: b.horizon,
        },
        // 3. cµ priority under asymmetric holding costs, round-robin LB.
        FabricConfig {
            name: "cmu-priority".into(),
            classes: vec![
                ClassConfig {
                    arrivals: ArrivalProcess::Poisson { rate: 0.9 },
                    holding_cost: 1.0,
                },
                ClassConfig {
                    arrivals: ArrivalProcess::Poisson { rate: 0.5 },
                    holding_cost: 5.0,
                },
                ClassConfig {
                    arrivals: ArrivalProcess::Poisson { rate: 0.4 },
                    holding_cost: 2.0,
                },
            ],
            tiers: vec![TierConfig {
                servers: 2,
                queue_capacity: None,
                service: vec![exp(0.8), exp(0.6), exp(0.9)],
                discipline: DisciplineKind::Cmu,
                lb: LbPolicy::RoundRobin,
                hop_delay: 0.0,
                failure: None,
                breaker: None,
                slowdown: None,
                outage: None,
            }],
            retry: RetryPolicy::none(),
            deadlines: None,
            shedder: None,
            sla_window: None,
            warmup: b.warmup,
            horizon: b.horizon,
        },
        // 4. Gittins discipline with high-variance (hyperexponential) and
        //    low-variance (Erlang) service side by side.
        FabricConfig {
            name: "gittins-mixed-scv".into(),
            classes: vec![
                ClassConfig {
                    arrivals: ArrivalProcess::Poisson { rate: 0.7 },
                    holding_cost: 1.0,
                },
                ClassConfig {
                    arrivals: ArrivalProcess::Poisson { rate: 0.7 },
                    holding_cost: 1.0,
                },
            ],
            tiers: vec![TierConfig {
                servers: 2,
                queue_capacity: None,
                service: vec![
                    dyn_dist(HyperExponential::with_mean_scv(1.0, 4.0)),
                    dyn_dist(Erlang::with_mean(4, 1.0)),
                ],
                discipline: DisciplineKind::Gittins,
                lb: LbPolicy::JoinShortestQueue,
                hop_delay: 0.0,
                failure: None,
                breaker: None,
                slowdown: None,
                outage: None,
            }],
            retry: RetryPolicy::none(),
            deadlines: None,
            shedder: None,
            sla_window: None,
            warmup: b.warmup,
            horizon: b.horizon,
        },
        // 5. Bursty MMPP sources under the Whittle queue discipline.
        FabricConfig {
            name: "whittle-mmpp-bursty".into(),
            classes: vec![
                ClassConfig {
                    arrivals: ArrivalProcess::Mmpp {
                        rates: vec![0.2, 1.4],
                        switch_rate: 0.05,
                    },
                    holding_cost: 2.0,
                },
                ClassConfig {
                    arrivals: ArrivalProcess::Poisson { rate: 0.6 },
                    holding_cost: 1.0,
                },
            ],
            tiers: vec![TierConfig {
                servers: 2,
                queue_capacity: None,
                service: vec![exp(0.7), exp(0.9)],
                discipline: DisciplineKind::Whittle,
                lb: LbPolicy::JoinShortestQueue,
                hop_delay: 0.0,
                failure: None,
                breaker: None,
                slowdown: None,
                outage: None,
            }],
            retry: RetryPolicy::none(),
            deadlines: None,
            shedder: None,
            sla_window: None,
            warmup: b.warmup,
            horizon: b.horizon,
        },
        // 6. Failures + recovery with weighted balancing, bounded queues
        //    and clients that retry with exponential backoff.
        FabricConfig {
            name: "failures-retries".into(),
            classes: vec![ClassConfig {
                arrivals: ArrivalProcess::Poisson { rate: 1.6 },
                holding_cost: 1.0,
            }],
            tiers: vec![TierConfig {
                servers: 3,
                queue_capacity: Some(8),
                service: vec![exp(1.0)],
                discipline: DisciplineKind::Fifo,
                lb: LbPolicy::Weighted(vec![2.0, 1.0, 1.0]),
                hop_delay: 0.0,
                failure: Some(FailureConfig {
                    mean_time_to_failure: 120.0,
                    mean_time_to_repair: 15.0,
                }),
                breaker: None,
                slowdown: None,
                outage: None,
            }],
            retry: RetryPolicy {
                max_retries: 3,
                base_backoff: 0.5,
                multiplier: 2.0,
            },
            deadlines: None,
            shedder: None,
            sla_window: None,
            warmup: b.warmup,
            horizon: b.horizon,
        },
        // 7. Tight bounded queues: backpressure drops without failures.
        FabricConfig {
            name: "bounded-backpressure".into(),
            classes: vec![
                ClassConfig {
                    arrivals: ArrivalProcess::Poisson { rate: 1.3 },
                    holding_cost: 1.0,
                },
                ClassConfig {
                    arrivals: ArrivalProcess::Mmpp {
                        rates: vec![0.3, 1.2],
                        switch_rate: 0.1,
                    },
                    holding_cost: 2.0,
                },
            ],
            tiers: vec![TierConfig {
                servers: 2,
                queue_capacity: Some(4),
                service: vec![exp(0.7), exp(0.8)],
                discipline: DisciplineKind::Cmu,
                lb: LbPolicy::JoinShortestQueue,
                hop_delay: 0.02,
                failure: None,
                breaker: None,
                slowdown: None,
                outage: None,
            }],
            retry: RetryPolicy {
                max_retries: 2,
                base_backoff: 0.4,
                multiplier: 2.0,
            },
            deadlines: None,
            shedder: None,
            sla_window: None,
            warmup: b.warmup,
            horizon: b.horizon,
        },
        // 8. The metastable retry storm, protected arm: deadlines +
        //    reneging + breaker + shedder ride out an injected slowdown
        //    epoch.  The unprotected arm (same physics, resilience off)
        //    collapses — the committed comparison lives in the
        //    graceful-degradation test and experiment E22.
        retry_storm_config(true, b),
    ]
}

/// Merge per-replication reports of one scenario into a suite-level report:
/// counters add, sketches merge, waits combine service-count-weighted,
/// utilization averages over the (equal-length) replication windows, and
/// SLA windows merge index-by-index.
pub fn aggregate(reports: &[FabricReport]) -> FabricReport {
    assert!(!reports.is_empty());
    let mut rtt = reports[0].rtt.clone();
    for r in &reports[1..] {
        rtt.merge(&r.rtt);
    }
    let tiers = (0..reports[0].tiers.len())
        .map(|t| {
            let served: u64 = reports.iter().map(|r| r.tiers[t].served).sum();
            let wait_sum: f64 = reports
                .iter()
                .map(|r| r.tiers[t].mean_wait * r.tiers[t].served as f64)
                .sum();
            TierReport {
                served,
                mean_wait: if served > 0 {
                    wait_sum / served as f64
                } else {
                    0.0
                },
                utilization: reports.iter().map(|r| r.tiers[t].utilization).sum::<f64>()
                    / reports.len() as f64,
                dropped: reports.iter().map(|r| r.tiers[t].dropped).sum(),
                fast_failed: reports.iter().map(|r| r.tiers[t].fast_failed).sum(),
            }
        })
        .collect();
    let windows = (0..reports[0].windows.len())
        .map(|k| {
            let mut rtt = reports[0].windows[k].rtt.clone();
            for r in &reports[1..] {
                rtt.merge(&r.windows[k].rtt);
            }
            SlaWindowReport {
                start: reports[0].windows[k].start,
                end: reports[0].windows[k].end,
                arrivals: reports.iter().map(|r| r.windows[k].arrivals).sum(),
                completed: reports.iter().map(|r| r.windows[k].completed).sum(),
                timed_out: reports.iter().map(|r| r.windows[k].timed_out).sum(),
                dropped: reports.iter().map(|r| r.windows[k].dropped).sum(),
                shed: reports.iter().map(|r| r.windows[k].shed).sum(),
                fast_failed: reports.iter().map(|r| r.windows[k].fast_failed).sum(),
                retries: reports.iter().map(|r| r.windows[k].retries).sum(),
                rtt,
            }
        })
        .collect();
    FabricReport {
        arrivals: reports.iter().map(|r| r.arrivals).sum(),
        completed: reports.iter().map(|r| r.completed).sum(),
        lost: reports.iter().map(|r| r.lost).sum(),
        retries: reports.iter().map(|r| r.retries).sum(),
        shed: reports.iter().map(|r| r.shed).sum(),
        timed_out: reports.iter().map(|r| r.timed_out).sum(),
        rtt,
        tiers,
        windows,
        events: reports.iter().map(|r| r.events).sum(),
    }
}

/// Run the whole suite: every `(scenario, replication)` cell in parallel,
/// aggregated per scenario in suite order.
pub fn run_suite(seed: u64, budget: &Budget) -> Vec<(String, FabricReport)> {
    let scenarios = scenario_list(budget);
    let streams = RngStreams::new(seed);
    let reps = budget.replications as usize;
    // Index tables (Gittins/Whittle) are deterministic per scenario; build
    // them once here rather than per replication.
    let disciplines: Vec<_> = scenarios.iter().map(|s| s.build_disciplines()).collect();
    let cells = parallel_indexed(scenarios.len() * reps, |i| {
        let (s, rep) = (i / reps, i % reps);
        run_fabric_with(
            &scenarios[s],
            &disciplines[s],
            replication_seed(&streams, s as u64, rep as u64),
        )
    });
    scenarios
        .iter()
        .enumerate()
        .map(|(s, cfg)| {
            (
                cfg.name.clone(),
                aggregate(&cells[s * reps..(s + 1) * reps]),
            )
        })
        .collect()
}

/// The deterministic report of a suite run, one line block per scenario —
/// the text the CI determinism job diffs across `SS_THREADS` values.
pub fn suite_lines(seed: u64, budget: &Budget) -> Vec<String> {
    run_suite(seed, budget)
        .iter()
        .flat_map(|(name, report)| report.report_lines(name))
        .collect()
}

/// Render already-computed suite results exactly as the `fabric` binary
/// prints them (per-scenario report blocks plus the footer, no wall-clock).
/// Shared with the `ss-conform` subsystem so the binary's `--check` output
/// and the conformance replicas can never drift apart.
pub fn render_suite_report(seed: u64, results: &[(String, FabricReport)]) -> String {
    let mut out = String::new();
    for (name, report) in results {
        for line in report.report_lines(name) {
            out.push_str(&line);
            out.push('\n');
        }
    }
    out.push_str(&format!(
        "fabric: {} scenarios simulated (seed {seed})\n",
        results.len()
    ));
    out
}

//! Event taxonomy of the service-fabric simulator.

/// One client request attempt flowing through the fabric.  `Copy` on
/// purpose: requests live inside calendar events, and the calendar is the
/// only owner of in-flight state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Request class (index into the scenario's class list).
    pub class: usize,
    /// Unique id in admission order (diagnostics only; never drives logic).
    pub id: u64,
    /// Time the request first arrived at the fabric — retries keep it, so
    /// recorded round-trip times include all backoff and re-service.
    pub born: f64,
    /// Attempt number: 0 for the first try, incremented per retry.
    pub attempt: u32,
    /// Time the request joined its current tier queue (set on enqueue;
    /// the tier wait is measured from here to service start).
    pub enqueued: f64,
}

/// Calendar payload of the fabric simulation.
#[derive(Debug, Clone)]
pub enum FabricEvent {
    /// The next arrival of `class` is due.  `epoch` guards against stale
    /// events after an MMPP phase switch: the switch reschedules the next
    /// arrival at the new rate and bumps the class's arrival epoch, so the
    /// superseded event is ignored when it fires.
    NextArrival { class: usize, epoch: u64 },
    /// The modulating phase of `class`'s MMPP advances.
    PhaseSwitch { class: usize },
    /// `req` arrives at tier `tier` (forward path) and must be balanced
    /// onto a server queue.
    ArriveAtTier { tier: usize, req: Request },
    /// The request in service at `(tier, server)` completes — unless
    /// `epoch` no longer matches the server's epoch, in which case the
    /// service was aborted by a failure and the event is stale.
    Complete {
        tier: usize,
        server: usize,
        epoch: u64,
    },
    /// Server `(tier, server)` fails.
    Fail { tier: usize, server: usize },
    /// Server `(tier, server)` comes back up.
    Recover { tier: usize, server: usize },
    /// The response for `req` reaches tier `tier` on the way back to the
    /// client; at tier 0 the round trip completes.
    ReturnHop { tier: usize, req: Request },
    /// A backed-off client re-submits `req` at tier 0.
    Retry { req: Request },
    /// A tier-wide slowdown epoch begins at `tier`: service times sampled
    /// while degraded are stretched by the tier's configured multiplier.
    SlowdownStart { tier: usize },
    /// The slowdown epoch at `tier` ends.
    SlowdownEnd { tier: usize },
    /// A correlated tier-wide outage begins at `tier`: all in-service
    /// requests abort and no server starts work until the outage ends.
    OutageStart { tier: usize },
    /// The outage at `tier` ends; idle servers pull queued work again.
    OutageEnd { tier: usize },
    /// The open period `generation` of `tier`'s circuit breaker elapsed;
    /// the breaker transitions to half-open unless it has tripped again
    /// since (stale generation — ignored, like a stale `Complete`).
    BreakerHalfOpen { tier: usize, generation: u64 },
}

//! # ss-fabric — a service-fabric discrete-event simulator
//!
//! The survey's queueing-control chapter studies index disciplines one
//! station at a time; this crate assembles them into the system they are
//! used in practice: a **service fabric** — open arrival sources feeding a
//! chain of load-balanced multi-server tiers, with bounded queues, server
//! failures and client retries, reporting true end-to-end round-trip
//! latency percentiles.
//!
//! | piece | module |
//! |---|---|
//! | Scenario schema: classes, tiers, LB policies, failures, retries | [`config`] |
//! | Event taxonomy + the request record | [`events`] |
//! | The event handler on `ss_sim::Engine` and the replication runner | [`sim`] |
//! | Per-run metrics: counters, waits, utilization, RTT quantile sketch | [`metrics`] |
//! | Overload resilience: deadlines, breakers, shedding, chaos epochs | [`resilience`] |
//! | The committed scenario suite and the parallel deterministic runner | [`scenarios`] |
//!
//! Queue disciplines are pluggable through
//! [`ss_core::discipline::Discipline`]: global FIFO, the cµ rule
//! (`ss_queueing::discipline`), the Gittins service index
//! (`ss_batch::discipline`) and the Whittle rule
//! (`ss_bandits::discipline`) all drive the same server loop.
//!
//! Everything is deterministic by construction: each replication owns an
//! `RngStreams` family keyed by `(scenario, rep)`, the calendar breaks
//! ties in schedule order, and the suite runner aggregates in scenario
//! order whatever the thread count — `fabric --check` output is diffed
//! byte-for-byte across `SS_THREADS` values in CI.
//!
//! The single-tier FIFO M/M/c corner of this simulator is cross-validated
//! against the Erlang-C mean-wait formula by `ss-verify`'s
//! `fabric-vs-erlangc` oracle pair, and the finite-queue corner against
//! the M/M/c/K blocking formula by `fabric-vs-mmck`.

pub mod config;
pub mod events;
pub mod metrics;
pub mod resilience;
pub mod scenarios;
pub mod sim;

pub use config::{
    ArrivalProcess, ClassConfig, DisciplineKind, FabricConfig, FailureConfig, LbPolicy,
    RetryPolicy, TierConfig,
};
pub use metrics::{FabricReport, SlaWindowReport, TierReport};
pub use resilience::{
    BreakerConfig, BreakerState, CircuitBreaker, DeadlineConfig, OutageConfig, ShedderConfig,
    SlowdownConfig, TokenBucket,
};
pub use scenarios::{
    aggregate, render_suite_report, retry_storm_config, run_suite, scenario_list, suite_lines,
    Budget, DEFAULT_SEED,
};
pub use sim::{replication_seed, run_fabric, run_fabric_with, FABRIC_SIM_STREAM};

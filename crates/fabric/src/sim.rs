//! The fabric simulator: an [`EventHandler`] on the generic `ss-sim`
//! engine, plus the replication entry point [`run_fabric`].
//!
//! ## Determinism
//!
//! One replication owns one [`RngStreams`] factory (seeded from the
//! caller-supplied `seed`), and every stochastic ingredient draws from its
//! own substream family so the sampled processes are independent and the
//! schedule of draws is a pure function of the seed:
//!
//! | family | keyed by | drives |
//! |---|---|---|
//! | `ARRIVAL_FAMILY` | class | interarrival times |
//! | `PHASE_FAMILY` | class | MMPP phase sojourns |
//! | `SERVICE_FAMILY` | `tier · 2^16 + server` | service times |
//! | `LB_FAMILY` | tier | weighted load-balancer draws |
//! | `FAIL_FAMILY` | `tier · 2^16 + server` | failure/repair cycles |
//! | `RETRY_FAMILY` | class | backoff jitter |
//! | `SLOWDOWN_FAMILY` | tier | slowdown-epoch onsets/durations |
//! | `OUTAGE_FAMILY` | tier | correlated-outage onsets/durations |
//! | `PROBE_FAMILY` | tier | circuit-breaker open-period jitter |
//!
//! The resilience features (deadlines, breakers, shedding) consume no
//! randomness at all except the breaker's open-period jitter, and the
//! chaos epochs draw only from their own families — so switching any of
//! them on cannot perturb the arrival or service processes of an
//! otherwise-identical scenario.
//!
//! Ties on the calendar resolve in schedule order (the `(time, seq)`
//! contract of `ss_sim::events::EventQueue`), and every same-index decision
//! (load balancing, discipline selection) breaks ties by the lowest id /
//! earliest enqueue, so a replication is bit-for-bit reproducible and
//! independent of how many replications run concurrently elsewhere.

use std::collections::VecDeque;
use std::sync::Arc;

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use ss_core::discipline::Discipline;
use ss_sim::engine::{Engine, EventHandler};
use ss_sim::events::EventQueue;
use ss_sim::rng::RngStreams;
use ss_sim::stats::QuantileSketch;

use crate::config::{ArrivalProcess, FabricConfig, LbPolicy};
use crate::events::{FabricEvent, Request};
use crate::metrics::{FabricReport, SlaWindowReport, TierReport};
use crate::resilience::{CircuitBreaker, TokenBucket};

/// Stream id of the fabric scenario runner's per-replication seeds
/// (`"FABR"`): replication `rep` of scenario `s` derives its simulation
/// seed from `substream(FABRIC_SIM_STREAM, s * 2^16 + rep)`.  Disjoint
/// from every other stream family in DESIGN.md's stream-id table.
pub const FABRIC_SIM_STREAM: u64 = 0x4641_4252;

// Substream families *within* one replication's own `RngStreams`.
const ARRIVAL_FAMILY: u64 = 0x4641_0001;
const PHASE_FAMILY: u64 = 0x4641_0002;
const SERVICE_FAMILY: u64 = 0x4641_0003;
const LB_FAMILY: u64 = 0x4641_0004;
const FAIL_FAMILY: u64 = 0x4641_0005;
const RETRY_FAMILY: u64 = 0x4641_0006;
const SLOWDOWN_FAMILY: u64 = 0x4641_0007;
const OUTAGE_FAMILY: u64 = 0x4641_0008;
const PROBE_FAMILY: u64 = 0x4641_0009;

/// The per-replication simulation seed of `(scenario, rep)` under the
/// shared scheme used by the `fabric` binary and the determinism tests.
pub fn replication_seed(streams: &RngStreams, scenario_id: u64, rep: u64) -> u64 {
    streams
        .substream(FABRIC_SIM_STREAM, scenario_id * 0x1_0000 + rep)
        .gen::<u64>()
}

fn sample_exp(rng: &mut ChaCha8Rng, rate: f64) -> f64 {
    // Release-mode check (ss-lint L003): a zero/negative/NaN rate would
    // silently produce inf/NaN event times in release and corrupt the
    // calendar far from the cause.
    assert!(
        rate > 0.0,
        "sample_exp requires a positive rate, got {rate}"
    );
    -(1.0 - rng.gen::<f64>()).ln() / rate
}

struct ClassState {
    arrival_epoch: u64,
    phase: usize,
    rng_arrival: ChaCha8Rng,
    rng_phase: ChaCha8Rng,
    rng_retry: ChaCha8Rng,
}

struct Server {
    up: bool,
    /// Bumped on every failure (or outage onset); `Complete` events carry
    /// the epoch they were scheduled under, so completions of aborted
    /// services are recognised as stale and ignored.
    epoch: u64,
    queues: Vec<VecDeque<Request>>,
    /// Total waiting requests across classes (excludes the one in service).
    queued: usize,
    in_service: Option<Request>,
    service_start: f64,
    /// Post-warmup busy time.
    busy: f64,
    rng_service: ChaCha8Rng,
    rng_fail: ChaCha8Rng,
}

impl Server {
    fn occupancy(&self) -> usize {
        self.queued + usize::from(self.in_service.is_some())
    }
}

struct Tier {
    servers: Vec<Server>,
    discipline: Arc<dyn Discipline>,
    rr_next: usize,
    rng_lb: ChaCha8Rng,
    /// Tier-wide per-class queues, used instead of the per-server queues
    /// under [`LbPolicy::CentralQueue`].
    shared_queues: Vec<VecDeque<Request>>,
    shared_queued: usize,
    served: u64,
    wait_sum: f64,
    dropped: u64,
    fast_failed: u64,
    breaker: Option<CircuitBreaker>,
    rng_probe: Option<ChaCha8Rng>,
    /// A tier-wide slowdown epoch is in force.
    degraded: bool,
    slowdown_epochs: u64,
    rng_slowdown: Option<ChaCha8Rng>,
    /// A correlated tier-wide outage is in force.
    outage: bool,
    outage_epochs: u64,
    rng_outage: Option<ChaCha8Rng>,
}

/// Discipline selection over a bank of per-class queues: highest index
/// wins; ties go to the earliest head-of-line arrival, then the lowest
/// class id (ascending scan + strict comparisons).
///
/// A NaN index is clamped to `-∞` *before* any comparison.  The old code
/// only `debug_assert!`ed: in release a NaN silently lost every strict
/// `>` — unless it sat in the *first* nonempty class, which is selected
/// unconditionally, so the outcome depended on class position.  Clamping
/// makes a poisoned index position-independent (lowest priority, FIFO
/// tie-break against other `-∞` entries); `ss-index` additionally rejects
/// NaN at table-build time, so a tabulated discipline can never get here.
fn select_class(discipline: &dyn Discipline, queues: &[VecDeque<Request>]) -> Option<usize> {
    let mut best: Option<(usize, f64, f64)> = None; // (class, index, head enqueue time)
    for (j, q) in queues.iter().enumerate() {
        let Some(head) = q.front() else { continue };
        let raw = discipline.class_index(j, q.len());
        let idx = if raw.is_nan() { f64::NEG_INFINITY } else { raw };
        let better = match best {
            None => true,
            Some((_, bi, bt)) => idx > bi || (idx == bi && head.enqueued < bt),
        };
        if better {
            best = Some((j, idx, head.enqueued));
        }
    }
    best.map(|(class, _, _)| class)
}

/// Per-window SLA accumulators (mirrors [`SlaWindowReport`]).
struct WindowAcc {
    arrivals: u64,
    completed: u64,
    timed_out: u64,
    dropped: u64,
    shed: u64,
    fast_failed: u64,
    retries: u64,
    rtt: QuantileSketch,
}

impl WindowAcc {
    fn new() -> Self {
        Self {
            arrivals: 0,
            completed: 0,
            timed_out: 0,
            dropped: 0,
            shed: 0,
            fast_failed: 0,
            retries: 0,
            rtt: QuantileSketch::new(1e-3, 1e3, 1024),
        }
    }
}

struct FabricSim<'a> {
    cfg: &'a FabricConfig,
    tiers: Vec<Tier>,
    classes: Vec<ClassState>,
    shedder: Option<TokenBucket>,
    next_id: u64,
    arrivals: u64,
    completed: u64,
    lost: u64,
    retries: u64,
    shed: u64,
    timed_out: u64,
    rtt: QuantileSketch,
    windows: Vec<WindowAcc>,
}

impl<'a> FabricSim<'a> {
    fn new(
        cfg: &'a FabricConfig,
        disciplines: &[Arc<dyn Discipline>],
        streams: &RngStreams,
    ) -> Self {
        assert_eq!(disciplines.len(), cfg.tiers.len());
        let classes = (0..cfg.classes.len())
            .map(|j| ClassState {
                arrival_epoch: 0,
                phase: 0,
                rng_arrival: streams.substream(ARRIVAL_FAMILY, j as u64),
                rng_phase: streams.substream(PHASE_FAMILY, j as u64),
                rng_retry: streams.substream(RETRY_FAMILY, j as u64),
            })
            .collect();
        let tiers = cfg
            .tiers
            .iter()
            .enumerate()
            .map(|(t, tier)| Tier {
                servers: (0..tier.servers)
                    .map(|s| Server {
                        up: true,
                        epoch: 0,
                        queues: vec![VecDeque::new(); cfg.classes.len()],
                        queued: 0,
                        in_service: None,
                        service_start: 0.0,
                        busy: 0.0,
                        rng_service: streams
                            .substream(SERVICE_FAMILY, (t as u64) * 0x1_0000 + s as u64),
                        rng_fail: streams.substream(FAIL_FAMILY, (t as u64) * 0x1_0000 + s as u64),
                    })
                    .collect(),
                discipline: Arc::clone(&disciplines[t]),
                rr_next: 0,
                rng_lb: streams.substream(LB_FAMILY, t as u64),
                shared_queues: vec![VecDeque::new(); cfg.classes.len()],
                shared_queued: 0,
                served: 0,
                wait_sum: 0.0,
                dropped: 0,
                fast_failed: 0,
                breaker: tier.breaker.map(CircuitBreaker::new),
                rng_probe: tier
                    .breaker
                    .map(|_| streams.substream(PROBE_FAMILY, t as u64)),
                degraded: false,
                slowdown_epochs: 0,
                rng_slowdown: tier
                    .slowdown
                    .map(|_| streams.substream(SLOWDOWN_FAMILY, t as u64)),
                outage: false,
                outage_epochs: 0,
                rng_outage: tier
                    .outage
                    .map(|_| streams.substream(OUTAGE_FAMILY, t as u64)),
            })
            .collect();
        let windows = match cfg.sla_window {
            Some(w) => {
                let span = cfg.horizon - cfg.warmup;
                // The 1e-9 slack keeps a width that divides the span
                // exactly from spawning a sliver seventh window.
                let n = ((span / w) - 1e-9).ceil().max(1.0) as usize;
                (0..n).map(|_| WindowAcc::new()).collect()
            }
            None => Vec::new(),
        };
        Self {
            cfg,
            tiers,
            classes,
            shedder: cfg.shedder.map(TokenBucket::new),
            next_id: 0,
            arrivals: 0,
            completed: 0,
            lost: 0,
            retries: 0,
            shed: 0,
            timed_out: 0,
            // Wide geometric sketch: 1.35% relative bucket width over
            // [1e-3, 1e3], so P50/P95/P99 stay meaningful even with long
            // retry/backoff tails.
            rtt: QuantileSketch::new(1e-3, 1e3, 1024),
            windows,
        }
    }

    fn arrival_rate(&self, class: usize) -> f64 {
        match &self.cfg.classes[class].arrivals {
            ArrivalProcess::Poisson { rate } => *rate,
            ArrivalProcess::Mmpp { rates, .. } => rates[self.classes[class].phase],
        }
    }

    fn schedule_next_arrival(
        &mut self,
        class: usize,
        now: f64,
        queue: &mut EventQueue<FabricEvent>,
    ) {
        let rate = self.arrival_rate(class);
        let dt = sample_exp(&mut self.classes[class].rng_arrival, rate);
        let epoch = self.classes[class].arrival_epoch;
        queue.schedule(now + dt, FabricEvent::NextArrival { class, epoch });
    }

    /// The SLA window containing post-warmup instant `t` (`None` during
    /// warmup or when windows are disabled).
    fn window_index(&self, t: f64) -> Option<usize> {
        if self.windows.is_empty() || t <= self.cfg.warmup {
            return None;
        }
        let width = self.cfg.sla_window.expect("windows imply a width");
        let k = ((t - self.cfg.warmup) / width) as usize;
        Some(k.min(self.windows.len() - 1))
    }

    /// The configured deadline of `class`, if any.
    fn deadline_of(&self, class: usize) -> Option<f64> {
        self.cfg.deadlines.as_ref().map(|d| d.deadline[class])
    }

    /// Whether `req` has outlived its deadline at `now`.
    fn expired(&self, req: &Request, now: f64) -> bool {
        self.deadline_of(req.class)
            .is_some_and(|d| now > req.born + d)
    }

    /// Add the in-service interval `[start, end]` of one server to its
    /// post-warmup busy time.
    fn credit_busy(&mut self, tier: usize, server: usize, start: f64, end: f64) {
        let lo = start.max(self.cfg.warmup);
        let hi = end.min(self.cfg.horizon);
        if hi > lo {
            self.tiers[tier].servers[server].busy += hi - lo;
        }
    }

    /// Load-balance `req` onto a server queue of `tier` (or the tier's
    /// shared queue under [`LbPolicy::CentralQueue`]), or reject it — in
    /// admission order: deadline renege, front-tier shedder, circuit
    /// breaker, then the capacity/availability checks.
    fn enqueue_at_tier(
        &mut self,
        tier: usize,
        mut req: Request,
        now: f64,
        queue: &mut EventQueue<FabricEvent>,
    ) {
        // Client-side renege: an already-expired request never enters the
        // tier (and burns no shedder token).  Not the tier's fault — the
        // breaker is not charged.
        if self.cfg.deadlines.as_ref().is_some_and(|d| d.renege) && self.expired(&req, now) {
            self.time_out_request(None, req, now, queue);
            return;
        }
        if tier == 0 {
            if let Some(bucket) = self.shedder.as_mut() {
                if !bucket.try_admit(now) {
                    self.shed_request(req, now, queue);
                    return;
                }
            }
        }
        if let Some(br) = self.tiers[tier].breaker.as_mut() {
            if !br.admit() {
                self.fast_fail(tier, req, now, queue);
                return;
            }
        }
        if matches!(self.cfg.tiers[tier].lb, LbPolicy::CentralQueue) {
            if let Some(cap) = self.cfg.tiers[tier].queue_capacity {
                if self.tiers[tier].shared_queued >= cap {
                    self.drop_request(tier, req, now, queue);
                    return;
                }
            }
            req.enqueued = now;
            let t = &mut self.tiers[tier];
            t.shared_queues[req.class].push_back(req);
            t.shared_queued += 1;
            // Hand the work to the lowest-id idle up server, if any
            // (nobody pulls during a tier-wide outage).
            let idle = if t.outage {
                None
            } else {
                t.servers
                    .iter()
                    .position(|s| s.up && s.in_service.is_none())
            };
            if let Some(server) = idle {
                self.try_start(tier, server, now, queue);
            }
            return;
        }
        let chosen = self.pick_server(tier, req.class);
        let Some(server) = chosen else {
            // Every server of the tier is down (or the tier is out).
            self.drop_request(tier, req, now, queue);
            return;
        };
        if let Some(cap) = self.cfg.tiers[tier].queue_capacity {
            if self.tiers[tier].servers[server].queued >= cap {
                self.drop_request(tier, req, now, queue);
                return;
            }
        }
        req.enqueued = now;
        let s = &mut self.tiers[tier].servers[server];
        s.queues[req.class].push_back(req);
        s.queued += 1;
        self.try_start(tier, server, now, queue);
    }

    /// The load-balancer decision: an up server of `tier`, or `None` when
    /// the whole tier is down.
    fn pick_server(&mut self, tier: usize, _class: usize) -> Option<usize> {
        if self.tiers[tier].outage {
            return None;
        }
        let n = self.tiers[tier].servers.len();
        let any_up = self.tiers[tier].servers.iter().any(|s| s.up);
        if !any_up {
            return None;
        }
        match &self.cfg.tiers[tier].lb {
            LbPolicy::RoundRobin => {
                let t = &mut self.tiers[tier];
                for k in 0..n {
                    let cand = (t.rr_next + k) % n;
                    if t.servers[cand].up {
                        t.rr_next = (cand + 1) % n;
                        return Some(cand);
                    }
                }
                unreachable!("an up server exists");
            }
            LbPolicy::JoinShortestQueue => self.tiers[tier]
                .servers
                .iter()
                .enumerate()
                .filter(|(_, s)| s.up)
                .min_by_key(|(i, s)| (s.occupancy(), *i))
                .map(|(i, _)| i),
            LbPolicy::Weighted(weights) => {
                let t = &mut self.tiers[tier];
                let total: f64 = weights
                    .iter()
                    .zip(&t.servers)
                    .filter(|(_, s)| s.up)
                    .map(|(w, _)| *w)
                    .sum();
                let mut u = t.rng_lb.gen::<f64>() * total;
                let mut last_up = 0;
                for (i, (w, s)) in weights.iter().zip(&t.servers).enumerate() {
                    if !s.up {
                        continue;
                    }
                    last_up = i;
                    if u < *w {
                        return Some(i);
                    }
                    u -= *w;
                }
                Some(last_up) // floating-point slack lands on the last up server
            }
            LbPolicy::CentralQueue => {
                unreachable!("central-queue tiers never pick a server at arrival")
            }
        }
    }

    /// If `(tier, server)` is up and idle, start serving the
    /// highest-priority waiting request per the tier's discipline — from
    /// the server's own queues, or from the tier's shared queue under
    /// [`LbPolicy::CentralQueue`].  Under reneging, expired requests are
    /// discarded for free here (timeout, pick again) instead of wasting a
    /// service.
    fn try_start(
        &mut self,
        tier: usize,
        server: usize,
        now: f64,
        queue: &mut EventQueue<FabricEvent>,
    ) {
        let central = matches!(self.cfg.tiers[tier].lb, LbPolicy::CentralQueue);
        let renege = self.cfg.deadlines.as_ref().is_some_and(|d| d.renege);
        loop {
            let t = &mut self.tiers[tier];
            if t.outage || !t.servers[server].up || t.servers[server].in_service.is_some() {
                return;
            }
            let (class, req) = if central {
                let Some(class) = select_class(t.discipline.as_ref(), &t.shared_queues) else {
                    return;
                };
                t.shared_queued -= 1;
                let req = t.shared_queues[class]
                    .pop_front()
                    .expect("chosen queue is nonempty");
                (class, req)
            } else {
                if t.servers[server].queued == 0 {
                    return;
                }
                let class = select_class(t.discipline.as_ref(), &t.servers[server].queues)
                    .expect("queued > 0 implies a nonempty class queue");
                let s = &mut t.servers[server];
                s.queued -= 1;
                let req = s.queues[class]
                    .pop_front()
                    .expect("chosen queue is nonempty");
                (class, req)
            };
            if renege && self.expired(&req, now) {
                // It waited past its deadline in this tier's queue: the
                // client is gone.  Charge the tier's breaker and look for
                // the next live request.
                self.time_out_request(Some(tier), req, now, queue);
                continue;
            }
            let t = &mut self.tiers[tier];
            if now > self.cfg.warmup {
                t.served += 1;
                t.wait_sum += now - req.enqueued;
            }
            let degraded = t.degraded;
            let s = &mut t.servers[server];
            let mut service = self.cfg.tiers[tier].service[class].sample(&mut s.rng_service);
            if degraded {
                let m = self.cfg.tiers[tier]
                    .slowdown
                    .expect("degraded tier has a slowdown config")
                    .rate_multiplier;
                service /= m;
            }
            s.in_service = Some(req);
            s.service_start = now;
            queue.schedule(
                now + service,
                FabricEvent::Complete {
                    tier,
                    server,
                    epoch: s.epoch,
                },
            );
            return;
        }
    }

    /// Common client reaction to any rejection: schedule a backed-off
    /// retry while the attempt budget lasts, else give the request up.
    fn retry_or_lose(
        &mut self,
        req: Request,
        now: f64,
        queue: &mut EventQueue<FabricEvent>,
        allow_retry: bool,
    ) {
        let after_warmup = now > self.cfg.warmup;
        let retry = &self.cfg.retry;
        if allow_retry && req.attempt < retry.max_retries {
            let attempt = req.attempt + 1;
            let jitter = 0.5 + self.classes[req.class].rng_retry.gen::<f64>();
            let backoff = retry.base_backoff * retry.multiplier.powi(attempt as i32 - 1) * jitter;
            if after_warmup {
                self.retries += 1;
                if let Some(k) = self.window_index(now) {
                    self.windows[k].retries += 1;
                }
            }
            queue.schedule(
                now + backoff,
                FabricEvent::Retry {
                    req: Request { attempt, ..req },
                },
            );
        } else if after_warmup {
            self.lost += 1;
        }
    }

    /// Account a drop at `tier` (queue overflow, dead tier, aborted
    /// service) and run the client retry path.
    fn drop_request(
        &mut self,
        tier: usize,
        req: Request,
        now: f64,
        queue: &mut EventQueue<FabricEvent>,
    ) {
        if now > self.cfg.warmup {
            self.tiers[tier].dropped += 1;
            if let Some(k) = self.window_index(now) {
                self.windows[k].dropped += 1;
            }
        }
        self.breaker_outcome(tier, true, now, queue);
        self.retry_or_lose(req, now, queue, true);
    }

    /// The breaker at `tier` rejected the arrival without touching a queue.
    fn fast_fail(
        &mut self,
        tier: usize,
        req: Request,
        now: f64,
        queue: &mut EventQueue<FabricEvent>,
    ) {
        if now > self.cfg.warmup {
            self.tiers[tier].fast_failed += 1;
            if let Some(k) = self.window_index(now) {
                self.windows[k].fast_failed += 1;
            }
        }
        self.retry_or_lose(req, now, queue, true);
    }

    /// The front-tier token bucket rejected the arrival.
    fn shed_request(&mut self, req: Request, now: f64, queue: &mut EventQueue<FabricEvent>) {
        if now > self.cfg.warmup {
            self.shed += 1;
            if let Some(k) = self.window_index(now) {
                self.windows[k].shed += 1;
            }
        }
        self.retry_or_lose(req, now, queue, true);
    }

    /// `req` outlived its deadline.  `breaker_tier` charges the tier whose
    /// queue the request expired in (reneges); client-side detections
    /// (admission-time renege, discarded completion) charge nobody here —
    /// the serving tier already recorded the past-deadline completion.
    fn time_out_request(
        &mut self,
        breaker_tier: Option<usize>,
        req: Request,
        now: f64,
        queue: &mut EventQueue<FabricEvent>,
    ) {
        if now > self.cfg.warmup {
            self.timed_out += 1;
            if let Some(k) = self.window_index(now) {
                self.windows[k].timed_out += 1;
            }
        }
        if let Some(tier) = breaker_tier {
            self.breaker_outcome(tier, true, now, queue);
        }
        let allow = self
            .cfg
            .deadlines
            .as_ref()
            .is_some_and(|d| d.retry_on_timeout);
        self.retry_or_lose(req, now, queue, allow);
    }

    /// Feed one request outcome to `tier`'s breaker (if any); on a trip,
    /// schedule the half-open timer at the jittered open period.
    fn breaker_outcome(
        &mut self,
        tier: usize,
        failure: bool,
        now: f64,
        queue: &mut EventQueue<FabricEvent>,
    ) {
        let t = &mut self.tiers[tier];
        let Some(br) = t.breaker.as_mut() else { return };
        let Some(generation) = br.record(failure) else {
            return;
        };
        let open = br.config().open_duration;
        let jitter = 0.75
            + 0.5
                * t.rng_probe
                    .as_mut()
                    .expect("a breaker implies a probe rng")
                    .gen::<f64>();
        queue.schedule(
            now + open * jitter,
            FabricEvent::BreakerHalfOpen { tier, generation },
        );
    }
}

impl EventHandler for FabricSim<'_> {
    type Event = FabricEvent;

    fn handle(&mut self, time: f64, event: FabricEvent, queue: &mut EventQueue<FabricEvent>) {
        match event {
            FabricEvent::NextArrival { class, epoch } => {
                if epoch != self.classes[class].arrival_epoch {
                    return; // superseded by an MMPP phase switch
                }
                let req = Request {
                    class,
                    id: self.next_id,
                    born: time,
                    attempt: 0,
                    enqueued: time,
                };
                self.next_id += 1;
                if time > self.cfg.warmup {
                    self.arrivals += 1;
                    if let Some(k) = self.window_index(time) {
                        self.windows[k].arrivals += 1;
                    }
                }
                self.enqueue_at_tier(0, req, time, queue);
                self.schedule_next_arrival(class, time, queue);
            }
            FabricEvent::PhaseSwitch { class } => {
                let ArrivalProcess::Mmpp { rates, switch_rate } =
                    self.cfg.classes[class].arrivals.clone()
                else {
                    unreachable!("phase switches only exist for MMPP classes")
                };
                let st = &mut self.classes[class];
                st.phase = (st.phase + 1) % rates.len();
                // The pending arrival was sampled at the old rate; bump the
                // epoch so it dies on arrival and draw a fresh one at the
                // new rate (exponential memorylessness makes this exact).
                st.arrival_epoch += 1;
                self.schedule_next_arrival(class, time, queue);
                let dt = sample_exp(&mut self.classes[class].rng_phase, switch_rate);
                queue.schedule(time + dt, FabricEvent::PhaseSwitch { class });
            }
            FabricEvent::ArriveAtTier { tier, req } => {
                self.enqueue_at_tier(tier, req, time, queue);
            }
            FabricEvent::Complete {
                tier,
                server,
                epoch,
            } => {
                if epoch != self.tiers[tier].servers[server].epoch {
                    return; // service was aborted by a failure
                }
                let start = self.tiers[tier].servers[server].service_start;
                self.credit_busy(tier, server, start, time);
                let req = self.tiers[tier].servers[server]
                    .in_service
                    .take()
                    .expect("a live Complete implies a request in service");
                // The tier did its work; whether in time is the breaker's
                // success/failure signal (always a success without
                // deadlines).
                let missed = self.expired(&req, time);
                self.breaker_outcome(tier, missed, time, queue);
                if tier + 1 < self.tiers.len() {
                    queue.schedule(
                        time + self.cfg.tiers[tier].hop_delay,
                        FabricEvent::ArriveAtTier {
                            tier: tier + 1,
                            req,
                        },
                    );
                } else {
                    // Service chain done: route the response back.
                    queue.schedule(time, FabricEvent::ReturnHop { tier, req });
                }
                self.try_start(tier, server, time, queue);
            }
            FabricEvent::Fail { tier, server } => {
                let s = &mut self.tiers[tier].servers[server];
                // Release-mode check: a double failure would double-bump the
                // epoch and silently mis-filter stale completions.
                assert!(s.up, "Fail events are only scheduled while up");
                s.up = false;
                s.epoch += 1;
                let start = s.service_start;
                let aborted = s.in_service.take();
                let failure = self.cfg.tiers[tier]
                    .failure
                    .expect("failing tier has a failure config");
                let dt = sample_exp(
                    &mut self.tiers[tier].servers[server].rng_fail,
                    1.0 / failure.mean_time_to_repair,
                );
                queue.schedule(time + dt, FabricEvent::Recover { tier, server });
                if let Some(req) = aborted {
                    self.credit_busy(tier, server, start, time);
                    self.drop_request(tier, req, time, queue);
                }
            }
            FabricEvent::Recover { tier, server } => {
                let failure = self.cfg.tiers[tier]
                    .failure
                    .expect("recovering tier has a failure config");
                let s = &mut self.tiers[tier].servers[server];
                assert!(!s.up, "Recover events are only scheduled while down");
                s.up = true;
                let dt = sample_exp(&mut s.rng_fail, 1.0 / failure.mean_time_to_failure);
                queue.schedule(time + dt, FabricEvent::Fail { tier, server });
                self.try_start(tier, server, time, queue);
            }
            FabricEvent::ReturnHop { tier, req } => {
                if tier == 0 {
                    let missed = self.expired(&req, time);
                    if time > self.cfg.warmup {
                        // Every finished trip lands in the sketch — a
                        // collapsed window must show its honest P99.
                        self.rtt.record(time - req.born);
                        if !missed {
                            self.completed += 1;
                        }
                        if let Some(k) = self.window_index(time) {
                            self.windows[k].rtt.record(time - req.born);
                            if !missed {
                                self.windows[k].completed += 1;
                            }
                        }
                    }
                    if missed {
                        // Finished past deadline: the client already gave
                        // up, the completion is discarded.
                        self.time_out_request(None, req, time, queue);
                    }
                } else {
                    queue.schedule(
                        time + self.cfg.tiers[tier - 1].hop_delay,
                        FabricEvent::ReturnHop {
                            tier: tier - 1,
                            req,
                        },
                    );
                }
            }
            FabricEvent::Retry { req } => {
                self.enqueue_at_tier(0, req, time, queue);
            }
            FabricEvent::SlowdownStart { tier } => {
                let s = self.cfg.tiers[tier]
                    .slowdown
                    .expect("slowdown event implies a slowdown config");
                let t = &mut self.tiers[tier];
                t.degraded = true;
                t.slowdown_epochs += 1;
                let dt = sample_exp(
                    t.rng_slowdown.as_mut().expect("slowdown rng exists"),
                    1.0 / s.mean_slowdown_duration,
                );
                queue.schedule(time + dt, FabricEvent::SlowdownEnd { tier });
            }
            FabricEvent::SlowdownEnd { tier } => {
                let s = self.cfg.tiers[tier]
                    .slowdown
                    .expect("slowdown event implies a slowdown config");
                let t = &mut self.tiers[tier];
                t.degraded = false;
                if s.max_epochs == 0 || t.slowdown_epochs < s.max_epochs {
                    let dt = sample_exp(
                        t.rng_slowdown.as_mut().expect("slowdown rng exists"),
                        1.0 / s.mean_time_to_slowdown,
                    );
                    queue.schedule(time + dt, FabricEvent::SlowdownStart { tier });
                }
            }
            FabricEvent::OutageStart { tier } => {
                let o = self.cfg.tiers[tier]
                    .outage
                    .expect("outage event implies an outage config");
                self.tiers[tier].outage = true;
                self.tiers[tier].outage_epochs += 1;
                // The whole tier goes dark at once: every in-service
                // request aborts (its Complete goes stale via the epoch
                // bump) and the clients see correlated drops.
                for server in 0..self.tiers[tier].servers.len() {
                    let s = &mut self.tiers[tier].servers[server];
                    if let Some(req) = s.in_service.take() {
                        s.epoch += 1;
                        let start = s.service_start;
                        self.credit_busy(tier, server, start, time);
                        self.drop_request(tier, req, time, queue);
                    }
                }
                let dt = sample_exp(
                    self.tiers[tier].rng_outage.as_mut().expect("outage rng"),
                    1.0 / o.mean_outage_duration,
                );
                queue.schedule(time + dt, FabricEvent::OutageEnd { tier });
            }
            FabricEvent::OutageEnd { tier } => {
                let o = self.cfg.tiers[tier]
                    .outage
                    .expect("outage event implies an outage config");
                let t = &mut self.tiers[tier];
                t.outage = false;
                if o.max_epochs == 0 || t.outage_epochs < o.max_epochs {
                    let dt = sample_exp(
                        t.rng_outage.as_mut().expect("outage rng"),
                        1.0 / o.mean_time_to_outage,
                    );
                    queue.schedule(time + dt, FabricEvent::OutageStart { tier });
                }
                for server in 0..self.tiers[tier].servers.len() {
                    self.try_start(tier, server, time, queue);
                }
            }
            FabricEvent::BreakerHalfOpen { tier, generation } => {
                if let Some(br) = self.tiers[tier].breaker.as_mut() {
                    br.half_open(generation);
                }
            }
        }
    }
}

/// Run one fabric replication to the configured horizon.  The result is a
/// pure function of `(config, seed)`.
///
/// Builds the tier disciplines from scratch; when running many
/// replications of one scenario, build them once with
/// [`FabricConfig::build_disciplines`] and use [`run_fabric_with`].
pub fn run_fabric(config: &FabricConfig, seed: u64) -> FabricReport {
    run_fabric_with(config, &config.build_disciplines(), seed)
}

/// [`run_fabric`] with prebuilt tier disciplines (index tabulation can
/// dwarf the simulation itself; build once per scenario, share across
/// replications).
pub fn run_fabric_with(
    config: &FabricConfig,
    disciplines: &[Arc<dyn Discipline>],
    seed: u64,
) -> FabricReport {
    config.validate();
    let streams = RngStreams::new(seed);
    let mut sim = FabricSim::new(config, disciplines, &streams);
    let mut engine: Engine<FabricSim> = Engine::new();

    for class in 0..config.classes.len() {
        let rate = sim.arrival_rate(class);
        let dt = sample_exp(&mut sim.classes[class].rng_arrival, rate);
        engine.schedule(dt, FabricEvent::NextArrival { class, epoch: 0 });
        if let ArrivalProcess::Mmpp { switch_rate, .. } = config.classes[class].arrivals {
            let dt = sample_exp(&mut sim.classes[class].rng_phase, switch_rate);
            engine.schedule(dt, FabricEvent::PhaseSwitch { class });
        }
    }
    for (t, tier) in config.tiers.iter().enumerate() {
        if let Some(f) = tier.failure {
            for s in 0..tier.servers {
                let dt = sample_exp(
                    &mut sim.tiers[t].servers[s].rng_fail,
                    1.0 / f.mean_time_to_failure,
                );
                engine.schedule(dt, FabricEvent::Fail { tier: t, server: s });
            }
        }
        if let Some(s) = tier.slowdown {
            let dt = sample_exp(
                sim.tiers[t].rng_slowdown.as_mut().expect("slowdown rng"),
                1.0 / s.mean_time_to_slowdown,
            );
            engine.schedule(dt, FabricEvent::SlowdownStart { tier: t });
        }
        if let Some(o) = tier.outage {
            let dt = sample_exp(
                sim.tiers[t].rng_outage.as_mut().expect("outage rng"),
                1.0 / o.mean_time_to_outage,
            );
            engine.schedule(dt, FabricEvent::OutageStart { tier: t });
        }
    }

    engine.run(&mut sim, config.horizon);

    // Servers still busy at the horizon accrue their partial service.
    for t in 0..sim.tiers.len() {
        for s in 0..sim.tiers[t].servers.len() {
            if sim.tiers[t].servers[s].in_service.is_some() {
                let start = sim.tiers[t].servers[s].service_start;
                sim.credit_busy(t, s, start, config.horizon);
            }
        }
    }

    let window = config.horizon - config.warmup;
    let tiers = sim
        .tiers
        .iter()
        .map(|t| TierReport {
            served: t.served,
            mean_wait: if t.served > 0 {
                t.wait_sum / t.served as f64
            } else {
                0.0
            },
            utilization: t.servers.iter().map(|s| s.busy).sum::<f64>()
                / (window * t.servers.len() as f64),
            dropped: t.dropped,
            fast_failed: t.fast_failed,
        })
        .collect();
    let width = config.sla_window.unwrap_or(0.0);
    let windows = sim
        .windows
        .into_iter()
        .enumerate()
        .map(|(k, w)| SlaWindowReport {
            start: config.warmup + k as f64 * width,
            end: (config.warmup + (k + 1) as f64 * width).min(config.horizon),
            arrivals: w.arrivals,
            completed: w.completed,
            timed_out: w.timed_out,
            dropped: w.dropped,
            shed: w.shed,
            fast_failed: w.fast_failed,
            retries: w.retries,
            rtt: w.rtt,
        })
        .collect();
    FabricReport {
        arrivals: sim.arrivals,
        completed: sim.completed,
        lost: sim.lost,
        retries: sim.retries,
        shed: sim.shed,
        timed_out: sim.timed_out,
        rtt: sim.rtt,
        tiers,
        windows,
        events: engine.events_processed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// The positive-rate guard must hold in release builds too (promoted
    /// from `debug_assert!` by the ss-lint L003 audit): a zero rate would
    /// schedule an event at `t = inf` and corrupt the calendar far from
    /// the cause.
    #[test]
    #[should_panic(expected = "positive rate")]
    fn sample_exp_rejects_nonpositive_rate() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        sample_exp(&mut rng, 0.0);
    }

    /// A deliberately poisoned discipline: class `nan_class` reports NaN,
    /// every other class reports its (positive) class id.
    struct NanAt {
        nan_class: usize,
    }

    impl Discipline for NanAt {
        fn name(&self) -> &str {
            "nan-at"
        }

        fn class_index(&self, class: usize, _waiting: usize) -> f64 {
            if class == self.nan_class {
                f64::NAN
            } else {
                1.0 + class as f64
            }
        }
    }

    fn queues_with_heads(n: usize) -> Vec<VecDeque<Request>> {
        (0..n)
            .map(|class| {
                let mut q = VecDeque::new();
                q.push_back(Request {
                    class,
                    id: class as u64,
                    born: 0.0,
                    attempt: 0,
                    // Earlier enqueue at the poisoned class, so a tie-break
                    // in its favour would expose NaN leaking into `best`.
                    enqueued: class as f64,
                });
                q
            })
            .collect()
    }

    /// Fails pre-fix: a NaN index in the *first* nonempty class was
    /// selected unconditionally (while one anywhere else could never win),
    /// so selection depended on class position.  Post-fix a NaN clamps to
    /// `-∞` and a real-indexed class wins wherever the NaN sits.
    #[test]
    fn nan_index_never_outranks_a_real_index_regardless_of_position() {
        for nan_class in 0..3 {
            let queues = queues_with_heads(3);
            let picked = select_class(&NanAt { nan_class }, &queues)
                .expect("nonempty queues select something");
            assert_ne!(
                picked, nan_class,
                "NaN at class {nan_class} was selected over finite indices"
            );
            // Highest finite index wins: class 2 (index 3.0) unless it is
            // the poisoned one, then class 1 (index 2.0).
            let expect = if nan_class == 2 { 1 } else { 2 };
            assert_eq!(picked, expect, "NaN at class {nan_class}");
        }
    }

    /// With every index NaN the clamp makes them all `-∞`-equal, so the
    /// earliest head-of-line arrival wins — deterministic, position-free.
    #[test]
    fn all_nan_indices_fall_back_to_fifo_order() {
        struct AllNan;
        impl Discipline for AllNan {
            fn name(&self) -> &str {
                "all-nan"
            }
            fn class_index(&self, _class: usize, _waiting: usize) -> f64 {
                f64::NAN
            }
        }
        let mut queues = queues_with_heads(3);
        queues[1].front_mut().expect("head").enqueued = -1.0;
        assert_eq!(select_class(&AllNan, &queues), Some(1));
    }
}

//! Service-fabric scenario-suite binary.
//!
//! ```text
//! cargo run --release -p ss-fabric --bin fabric
//!     # full-budget suite: report lines + wall-clock
//! cargo run --release -p ss-fabric --bin fabric -- --check
//!     # fast budget, deterministic output only (no wall-clock); the CI
//!     # determinism job diffs this byte-for-byte across SS_THREADS values
//! cargo run --release -p ss-fabric --bin fabric -- --jobs 4
//!     # run the suite on a dedicated 4-thread pool
//! cargo run --release -p ss-fabric --bin fabric -- --json out.json
//!     # also write a JSON summary (timings included; not diff-stable)
//! cargo run --release -p ss-fabric --bin fabric -- --list
//!     # print the scenario suite without running it
//! cargo run --release -p ss-fabric --bin fabric -- --seed 7
//!     # run the suite from another master seed
//! ```
//!
//! Report lines are bit-identical for any thread count: each
//! `(scenario, replication)` cell owns an RNG stream keyed by
//! `(FABRIC_SIM_STREAM, scenario · 2^16 + rep)` and cells aggregate in
//! suite order.

use ss_fabric::scenarios::{render_suite_report, run_suite, scenario_list, Budget, DEFAULT_SEED};
use ss_fabric::FabricReport;
use ss_sim::json;

fn usage_error(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!("usage: fabric [--check] [--jobs N] [--json PATH] [--seed S] [--list]");
    std::process::exit(1);
}

fn write_json(
    path: &str,
    seed: u64,
    results: &[(String, FabricReport)],
    wall_ms: f64,
) -> std::io::Result<()> {
    let mut body = String::from("{\n");
    body.push_str("  \"harness\": \"fabric\",\n");
    body.push_str(&format!("  \"seed\": {seed},\n"));
    body.push_str(&json::host_env_fields());
    body.push_str(&format!("  \"wall_ms\": {wall_ms:.3},\n"));
    body.push_str("  \"scenarios\": [\n");
    for (i, (name, r)) in results.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"name\": \"{}\", \"offered\": {}, \"completed\": {}, \"lost\": {}, \
             \"retries\": {}, \"shed\": {}, \"timed_out\": {}, \
             \"rtt_mean\": {:.9}, \"rtt_p50\": {:.9}, \"rtt_p95\": {:.9}, \"rtt_p99\": {:.9}, \
             \"events\": {}}}{}\n",
            json::escape(name),
            r.arrivals,
            r.completed,
            r.lost,
            r.retries,
            r.shed,
            r.timed_out,
            r.rtt.mean(),
            r.rtt.quantile(0.50),
            r.rtt.quantile(0.95),
            r.rtt.quantile(0.99),
            r.events,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    body.push_str("  ]\n}\n");
    std::fs::write(path, body)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut check_mode = false;
    let mut list_mode = false;
    let mut jobs: Option<usize> = None;
    let mut json_path: Option<String> = None;
    let mut seed = DEFAULT_SEED;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => check_mode = true,
            "--list" => list_mode = true,
            "--jobs" => {
                let value = it
                    .next()
                    .unwrap_or_else(|| usage_error("--jobs needs a value"));
                match value.parse::<usize>() {
                    Ok(n) if n >= 1 => jobs = Some(n),
                    _ => usage_error(&format!("invalid --jobs value {value:?}")),
                }
            }
            "--json" => match it.next() {
                Some(path) if !path.starts_with("--") => json_path = Some(path.clone()),
                _ => usage_error("--json needs an output path"),
            },
            "--seed" => {
                let value = it
                    .next()
                    .unwrap_or_else(|| usage_error("--seed needs a value"));
                match value.parse::<u64>() {
                    Ok(s) => seed = s,
                    _ => usage_error(&format!("invalid --seed value {value:?}")),
                }
            }
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }
    if check_mode && json_path.is_some() {
        usage_error("--check output must stay deterministic; use --json without --check");
    }

    let budget = if check_mode {
        Budget::check()
    } else {
        Budget::full()
    };
    if list_mode {
        let scenarios = scenario_list(&budget);
        for (i, s) in scenarios.iter().enumerate() {
            let disciplines: Vec<&str> = s.tiers.iter().map(|t| t.discipline.key()).collect();
            println!(
                "#{i:<3} {:<24} classes={} tiers={} disciplines={}",
                s.name,
                s.classes.len(),
                s.tiers.len(),
                disciplines.join(",")
            );
        }
        println!("[{} scenarios]", scenarios.len());
        return;
    }

    let start = std::time::Instant::now();
    let results = match jobs {
        Some(n) => ss_sim::pool::with_threads(n, || run_suite(seed, &budget)),
        None => run_suite(seed, &budget),
    };
    let wall = start.elapsed();

    // Rendered by the same function the ss-conform subsystem replays across
    // thread counts (`ss_fabric::scenarios::render_suite_report`).
    print!("{}", render_suite_report(seed, &results));
    if !check_mode {
        // Wall-clock is informational and varies run to run; keep it out of
        // the deterministic --check output that CI diffs across SS_THREADS.
        println!("[suite finished in {wall:.1?}]");
    }
    if let Some(path) = &json_path {
        if let Err(e) = write_json(path, seed, &results, wall.as_secs_f64() * 1e3) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(2);
        }
        println!("[wrote {path}]");
    }
}

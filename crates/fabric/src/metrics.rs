//! Per-run fabric metrics and their deterministic report rendering.

use ss_sim::stats::QuantileSketch;

/// Counters and waits of one tier, over the post-warmup window.
#[derive(Debug, Clone)]
pub struct TierReport {
    /// Services started after warmup.
    pub served: u64,
    /// Mean queueing wait (tier arrival → service start) of those services.
    pub mean_wait: f64,
    /// Fraction of post-warmup server-time spent serving
    /// (busy time / (window × servers)); failed time counts as idle.
    pub utilization: f64,
    /// Post-warmup drops at this tier: queue overflows, arrivals while no
    /// server was up, and services aborted by a failure.
    pub dropped: u64,
}

/// End-to-end result of one fabric replication.
#[derive(Debug, Clone)]
pub struct FabricReport {
    /// Round trips completed in the post-warmup window.
    pub completed: u64,
    /// Requests abandoned after exhausting their retry budget.
    pub lost: u64,
    /// Retry attempts scheduled (post-warmup).
    pub retries: u64,
    /// Deterministic sketch of completed round-trip times.
    pub rtt: QuantileSketch,
    pub tiers: Vec<TierReport>,
    /// Calendar events processed (all of them, including warmup).
    pub events: u64,
}

impl FabricReport {
    /// Mean round-trip time of completed requests.
    pub fn rtt_mean(&self) -> f64 {
        self.rtt.mean()
    }

    /// Deterministic report lines (one header line plus one per tier),
    /// stable enough to diff byte-for-byte across thread counts.
    pub fn report_lines(&self, scenario: &str) -> Vec<String> {
        let mut lines = vec![format!(
            "{scenario}  completed={} lost={} retries={} rtt_mean={:.6} p50={:.6} p95={:.6} p99={:.6}",
            self.completed,
            self.lost,
            self.retries,
            self.rtt.mean(),
            self.rtt.quantile(0.50),
            self.rtt.quantile(0.95),
            self.rtt.quantile(0.99),
        )];
        for (t, tier) in self.tiers.iter().enumerate() {
            lines.push(format!(
                "{scenario}  tier{t}: served={} wait={:.6} util={:.4} dropped={}",
                tier.served, tier.mean_wait, tier.utilization, tier.dropped
            ));
        }
        lines
    }
}

//! Per-run fabric metrics and their deterministic report rendering.

use ss_sim::stats::QuantileSketch;

/// Counters and waits of one tier, over the post-warmup window.
#[derive(Debug, Clone)]
pub struct TierReport {
    /// Services started after warmup.
    pub served: u64,
    /// Mean queueing wait (tier arrival → service start) of those services.
    pub mean_wait: f64,
    /// Fraction of post-warmup server-time spent serving
    /// (busy time / (window × servers)); failed time counts as idle.
    pub utilization: f64,
    /// Post-warmup drops at this tier: queue overflows, arrivals while no
    /// server was up, and services aborted by a failure or outage.
    pub dropped: u64,
    /// Post-warmup arrivals fast-failed by the tier's circuit breaker
    /// (while open, or half-open past the probe budget).
    pub fast_failed: u64,
}

/// One SLA sliding window: fixed-width slice of the post-warmup run with
/// its own offered/served counters and RTT sketch.
#[derive(Debug, Clone)]
pub struct SlaWindowReport {
    /// Window bounds `(start, end]` in simulation time.
    pub start: f64,
    pub end: f64,
    /// Fresh requests born in the window (offered load; excludes retries).
    pub arrivals: u64,
    /// Round trips finished in the window within their deadline.
    pub completed: u64,
    /// Timeouts detected in the window (reneges and discarded
    /// past-deadline completions).
    pub timed_out: u64,
    /// Drops in the window, summed over tiers.
    pub dropped: u64,
    /// Arrivals shed by the front-tier token bucket in the window.
    pub shed: u64,
    /// Breaker fast-fails in the window, summed over tiers.
    pub fast_failed: u64,
    /// Retry attempts scheduled in the window.
    pub retries: u64,
    /// Round-trip times of every trip finished in the window (including
    /// past-deadline ones, so a collapsed window shows an honest P99).
    pub rtt: QuantileSketch,
}

impl SlaWindowReport {
    /// Fraction of the window's offered load served within deadline;
    /// an empty window reports 0.
    pub fn goodput(&self) -> f64 {
        if self.arrivals == 0 {
            0.0
        } else {
            self.completed as f64 / self.arrivals as f64
        }
    }
}

/// End-to-end result of one fabric replication.
#[derive(Debug, Clone)]
pub struct FabricReport {
    /// Fresh requests born in the post-warmup window (offered load).
    pub arrivals: u64,
    /// Round trips completed in the post-warmup window (within deadline,
    /// when the scenario configures deadlines).
    pub completed: u64,
    /// Requests abandoned after exhausting their retry budget.
    pub lost: u64,
    /// Retry attempts scheduled (post-warmup).
    pub retries: u64,
    /// Arrivals shed by the front-tier token bucket (post-warmup).
    pub shed: u64,
    /// Timeouts detected (post-warmup): queue reneges plus completions
    /// discarded for finishing past their deadline.  A request that times
    /// out on several attempts counts once per detection.
    pub timed_out: u64,
    /// Deterministic sketch of finished round-trip times (past-deadline
    /// completions included; they finished, they just did not count).
    pub rtt: QuantileSketch,
    pub tiers: Vec<TierReport>,
    /// SLA sliding windows tiling `(warmup, horizon]`; empty unless the
    /// scenario sets `sla_window`.
    pub windows: Vec<SlaWindowReport>,
    /// Calendar events processed (all of them, including warmup).
    pub events: u64,
}

impl FabricReport {
    /// Mean round-trip time of finished requests.
    pub fn rtt_mean(&self) -> f64 {
        self.rtt.mean()
    }

    /// Deterministic report lines (one header line, one per tier, one per
    /// SLA window), stable enough to diff byte-for-byte across thread
    /// counts.
    pub fn report_lines(&self, scenario: &str) -> Vec<String> {
        let mut lines = vec![format!(
            "{scenario}  offered={} completed={} lost={} retries={} shed={} timedout={} \
             rtt_mean={:.6} p50={:.6} p95={:.6} p99={:.6}",
            self.arrivals,
            self.completed,
            self.lost,
            self.retries,
            self.shed,
            self.timed_out,
            self.rtt.mean(),
            self.rtt.quantile(0.50),
            self.rtt.quantile(0.95),
            self.rtt.quantile(0.99),
        )];
        for (t, tier) in self.tiers.iter().enumerate() {
            lines.push(format!(
                "{scenario}  tier{t}: served={} wait={:.6} util={:.4} dropped={} fastfail={}",
                tier.served, tier.mean_wait, tier.utilization, tier.dropped, tier.fast_failed
            ));
        }
        for (k, w) in self.windows.iter().enumerate() {
            lines.push(format!(
                "{scenario}  sla[{k}]: offered={} goodput={:.4} p50={:.6} p99={:.6} \
                 shed={} timedout={} dropped={} fastfail={}",
                w.arrivals,
                w.goodput(),
                w.rtt.quantile(0.50),
                w.rtt.quantile(0.99),
                w.shed,
                w.timed_out,
                w.dropped,
                w.fast_failed,
            ));
        }
        lines
    }
}

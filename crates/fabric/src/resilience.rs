//! Overload-resilience primitives for the service fabric: request
//! deadlines, per-tier circuit breakers, token-bucket load shedding, and
//! chaos epochs (degraded servers, correlated tier-wide outages).
//!
//! The types here are pure state machines — no clock, no RNG, no event
//! queue — so they unit-test in isolation.  `sim.rs` owns the wiring:
//! it feeds the breaker request outcomes, asks it for admission verdicts,
//! schedules the open→half-open timer (jittered from the `PROBE_FAMILY`
//! substream), and drives the chaos epochs from their own substream
//! families so enabling any of these features never perturbs the arrival
//! or service processes of an otherwise-identical scenario.
//!
//! ## Circuit breaker
//!
//! Classic three-state machine, evaluated over a sliding count window of
//! per-request outcomes at the tier (completion within deadline = success;
//! drop, renege, or past-deadline completion = failure):
//!
//! ```text
//!            failure rate >= threshold
//!   Closed ---------------------------------> Open
//!     ^                                        |
//!     | all probes succeed        open_duration (jittered) elapses
//!     |                                        v
//!     +------------- HalfOpen <---------------+
//!          any probe failure reopens (new generation)
//! ```
//!
//! While `Open`, every arrival at the tier is fast-failed (counted as
//! `fast_failed`, routed to the client retry path).  While `HalfOpen`,
//! exactly `half_open_probes` arrivals are admitted (deterministically:
//! the first ones to arrive) and the rest fast-fail; if all admitted
//! probes succeed the breaker closes, the first failure trips it open
//! again.  Trips are numbered by a `generation` counter so a stale
//! half-open timer (scheduled for an earlier open period) is ignored —
//! the same epoch-stale-event pattern the server failure path uses.

use std::collections::VecDeque;

/// Per-class request deadlines measured from first birth (`Request::born`),
/// shared across retry attempts: a retry does not reset the budget.
#[derive(Debug, Clone)]
pub struct DeadlineConfig {
    /// Deadline per class id; a request older than its deadline is
    /// abandoned and counted as timed out (never as completed or dropped).
    pub deadline: Vec<f64>,
    /// Renege: expired requests are discarded for free at tier admission
    /// and at service start, instead of occupying a server only to have
    /// the completion discarded at the client.
    pub renege: bool,
    /// Whether the client re-submits a timed-out request (subject to the
    /// scenario's [`RetryPolicy`](crate::config::RetryPolicy) attempt
    /// budget).  This is the "retry storm" ingredient.
    pub retry_on_timeout: bool,
}

impl DeadlineConfig {
    pub(crate) fn validate(&self, classes: usize) {
        assert_eq!(
            self.deadline.len(),
            classes,
            "need one deadline per request class"
        );
        assert!(self.deadline.iter().all(|d| *d > 0.0 && d.is_finite()));
    }
}

/// Windowed failure-rate circuit breaker of one tier.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Sliding outcome-window length (requests, not time).
    pub window: usize,
    /// Trip open when `failures / outcomes >= failure_threshold` with at
    /// least `min_samples` outcomes in the window.
    pub failure_threshold: f64,
    /// Outcomes required before the failure rate is evaluated at all.
    /// May exceed `window`, which makes the breaker inert — useful for
    /// isolating its RNG footprint in tests.
    pub min_samples: usize,
    /// Base open period before probing; the simulator jitters it by
    /// `U(0.75, 1.25)` from the probe substream family.
    pub open_duration: f64,
    /// Probes admitted while half-open; all must succeed to close.
    pub half_open_probes: usize,
}

impl BreakerConfig {
    pub(crate) fn validate(&self) {
        assert!(self.window >= 1);
        assert!(self.failure_threshold > 0.0 && self.failure_threshold <= 1.0);
        assert!(self.min_samples >= 1);
        assert!(self.open_duration > 0.0 && self.open_duration.is_finite());
        assert!(self.half_open_probes >= 1);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    Closed,
    Open,
    HalfOpen,
}

/// Runtime state of one tier's circuit breaker.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    outcomes: VecDeque<bool>, // true = failure
    failures: usize,
    probes_remaining: usize,
    successes_needed: usize,
    generation: u64,
}

impl CircuitBreaker {
    pub fn new(cfg: BreakerConfig) -> Self {
        cfg.validate();
        Self {
            cfg,
            state: BreakerState::Closed,
            outcomes: VecDeque::with_capacity(cfg.window),
            failures: 0,
            probes_remaining: 0,
            successes_needed: 0,
            generation: 0,
        }
    }

    pub fn state(&self) -> BreakerState {
        self.state
    }

    pub fn config(&self) -> &BreakerConfig {
        &self.cfg
    }

    /// Admission verdict for one arrival at the tier.
    pub fn admit(&mut self) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => false,
            BreakerState::HalfOpen => {
                if self.probes_remaining > 0 {
                    self.probes_remaining -= 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Record the outcome of one request processed at the tier.  Returns
    /// `Some(generation)` when this outcome trips the breaker open — the
    /// caller must schedule the half-open timer for that generation.
    pub fn record(&mut self, failure: bool) -> Option<u64> {
        match self.state {
            // Outcomes of work admitted before the trip carry no new
            // information while open; ignore them.
            BreakerState::Open => None,
            BreakerState::Closed => {
                if self.outcomes.len() == self.cfg.window && self.outcomes.pop_front() == Some(true)
                {
                    self.failures -= 1;
                }
                self.outcomes.push_back(failure);
                if failure {
                    self.failures += 1;
                }
                let n = self.outcomes.len();
                if n >= self.cfg.min_samples
                    && self.failures as f64 >= self.cfg.failure_threshold * n as f64
                {
                    Some(self.trip())
                } else {
                    None
                }
            }
            BreakerState::HalfOpen => {
                if failure {
                    Some(self.trip())
                } else {
                    self.successes_needed -= 1;
                    if self.successes_needed == 0 {
                        self.state = BreakerState::Closed;
                        self.outcomes.clear();
                        self.failures = 0;
                    }
                    None
                }
            }
        }
    }

    /// The half-open timer of open period `generation` fired.  A stale
    /// generation (the breaker has tripped again since) is ignored.
    /// Returns whether the breaker transitioned to half-open.
    pub fn half_open(&mut self, generation: u64) -> bool {
        if self.state == BreakerState::Open && self.generation == generation {
            self.state = BreakerState::HalfOpen;
            self.probes_remaining = self.cfg.half_open_probes;
            self.successes_needed = self.cfg.half_open_probes;
            true
        } else {
            false
        }
    }

    fn trip(&mut self) -> u64 {
        self.state = BreakerState::Open;
        self.generation += 1;
        self.outcomes.clear();
        self.failures = 0;
        self.generation
    }
}

/// Token-bucket admission control at the fabric's front tier.
#[derive(Debug, Clone, Copy)]
pub struct ShedderConfig {
    /// Token refill rate (sustained admissions per unit time).
    pub rate: f64,
    /// Bucket capacity (admissible burst size).
    pub burst: f64,
}

impl ShedderConfig {
    pub(crate) fn validate(&self) {
        assert!(self.rate > 0.0 && self.rate.is_finite());
        assert!(self.burst >= 1.0 && self.burst.is_finite());
    }
}

/// Runtime token bucket: lazily refilled at each admission attempt, so it
/// needs no timer events and consumes no randomness.
#[derive(Debug, Clone, Copy)]
pub struct TokenBucket {
    cfg: ShedderConfig,
    tokens: f64,
    last: f64,
}

impl TokenBucket {
    /// A bucket that starts full at time zero.
    pub fn new(cfg: ShedderConfig) -> Self {
        cfg.validate();
        Self {
            cfg,
            tokens: cfg.burst,
            last: 0.0,
        }
    }

    /// Spend one token if available at `now`; `false` = shed.
    pub fn try_admit(&mut self, now: f64) -> bool {
        // Release-mode check (ss-lint L003): an out-of-order admission
        // would *refund* tokens via a negative elapsed interval — in
        // release the bucket would silently over-admit.
        assert!(now >= self.last, "admission attempts are time-ordered");
        self.tokens = (self.tokens + self.cfg.rate * (now - self.last)).min(self.cfg.burst);
        self.last = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// Degraded-server chaos: tier-wide slowdown epochs during which every
/// service time sampled at the tier is stretched by `1 / rate_multiplier`.
/// Onset and duration are exponential, drawn from the tier's
/// `SLOWDOWN_FAMILY` substream.  The multiplier in force at service
/// *start* applies for the whole service.
#[derive(Debug, Clone, Copy)]
pub struct SlowdownConfig {
    pub mean_time_to_slowdown: f64,
    pub mean_slowdown_duration: f64,
    /// Service-rate multiplier in `(0, 1]` during the epoch (`1.0` = a
    /// no-op epoch, useful for RNG-isolation tests).
    pub rate_multiplier: f64,
    /// Number of slowdown epochs to inject; `0` = unbounded recurring
    /// epochs.  Chaos experiments usually inject exactly one.
    pub max_epochs: u64,
}

impl SlowdownConfig {
    pub(crate) fn validate(&self) {
        assert!(self.mean_time_to_slowdown > 0.0);
        assert!(self.mean_slowdown_duration > 0.0);
        assert!(self.rate_multiplier > 0.0 && self.rate_multiplier <= 1.0);
    }
}

/// Correlated tier-wide outage chaos: during an outage epoch the whole
/// tier is down at once — every in-service request is aborted at onset
/// (the clients see drops) and no server starts work until the epoch
/// ends.  Under [`LbPolicy::CentralQueue`](crate::config::LbPolicy) queued
/// requests wait the outage out at the balancer; under per-server
/// policies arrivals during the outage are dropped, matching the
/// existing all-servers-down semantics.  Onset and duration are
/// exponential, drawn from the tier's `OUTAGE_FAMILY` substream.
#[derive(Debug, Clone, Copy)]
pub struct OutageConfig {
    pub mean_time_to_outage: f64,
    pub mean_outage_duration: f64,
    /// Number of outage epochs to inject; `0` = unbounded.
    pub max_epochs: u64,
}

impl OutageConfig {
    pub(crate) fn validate(&self) {
        assert!(self.mean_time_to_outage > 0.0);
        assert!(self.mean_outage_duration > 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            window: 10,
            failure_threshold: 0.5,
            min_samples: 4,
            open_duration: 5.0,
            half_open_probes: 3,
        })
    }

    #[test]
    fn breaker_trips_at_the_windowed_failure_rate() {
        let mut b = breaker();
        assert_eq!(b.state(), BreakerState::Closed);
        // Three failures stay below min_samples.
        for _ in 0..3 {
            assert_eq!(b.record(true), None);
        }
        // Fourth outcome reaches min_samples with 100% failures: trip.
        assert_eq!(b.record(true), Some(1));
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.admit());
    }

    #[test]
    fn breaker_needs_min_samples_and_threshold() {
        let mut b = breaker();
        // 3 failures in 8 outcomes = 37.5% < 50%, and no prefix of length
        // >= min_samples reaches 50% either: stays closed throughout.
        for failure in [false, false, true, false, true, false, true, false] {
            assert_eq!(b.record(failure), None);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.admit());
    }

    #[test]
    fn sliding_window_evicts_old_outcomes() {
        let mut b = breaker();
        // Fill the 10-wide window with successes, then 9 failures: the
        // failure rate climbs as successes are evicted and crosses 50%
        // only when the window holds 5 failures.
        for _ in 0..10 {
            assert_eq!(b.record(false), None);
        }
        for _ in 0..4 {
            assert_eq!(b.record(true), None);
        }
        assert_eq!(b.record(true), Some(1));
    }

    #[test]
    fn half_open_admits_exactly_the_probe_budget() {
        let mut b = breaker();
        for _ in 0..4 {
            b.record(true);
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.half_open(1));
        for _ in 0..3 {
            assert!(b.admit());
        }
        assert!(!b.admit(), "probe budget exhausted");
        // All three probes succeed: closed, window reset.
        assert_eq!(b.record(false), None);
        assert_eq!(b.record(false), None);
        assert_eq!(b.record(false), None);
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.admit());
    }

    #[test]
    fn probe_failure_reopens_with_a_new_generation() {
        let mut b = breaker();
        for _ in 0..4 {
            b.record(true);
        }
        assert!(b.half_open(1));
        assert!(b.admit());
        assert_eq!(b.record(true), Some(2), "reopen bumps the generation");
        assert_eq!(b.state(), BreakerState::Open);
        // The stale generation-1 timer must not half-open generation 2.
        assert!(!b.half_open(1));
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.half_open(2));
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn outcomes_while_open_are_ignored() {
        let mut b = breaker();
        for _ in 0..4 {
            b.record(true);
        }
        assert_eq!(b.state(), BreakerState::Open);
        // Stragglers admitted pre-trip complete; no state change.
        assert_eq!(b.record(false), None);
        assert_eq!(b.record(true), None);
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn inert_breaker_never_trips() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            window: 4,
            failure_threshold: 0.5,
            min_samples: 1000, // > window: rate is never evaluated
            open_duration: 1.0,
            half_open_probes: 1,
        });
        for _ in 0..100 {
            assert_eq!(b.record(true), None);
        }
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn token_bucket_sheds_when_empty_and_refills_over_time() {
        let mut tb = TokenBucket::new(ShedderConfig {
            rate: 2.0,
            burst: 3.0,
        });
        // The burst drains immediately...
        assert!(tb.try_admit(0.0));
        assert!(tb.try_admit(0.0));
        assert!(tb.try_admit(0.0));
        assert!(!tb.try_admit(0.0), "bucket empty");
        // ...and refills at 2 tokens per unit time.
        assert!(!tb.try_admit(0.25), "only half a token back");
        assert!(tb.try_admit(0.5 + 0.25));
        // Idle time caps at the burst, not beyond.
        assert!(tb.try_admit(100.0));
        assert!(tb.try_admit(100.0));
        assert!(tb.try_admit(100.0));
        assert!(!tb.try_admit(100.0));
    }

    /// The time-ordering guard must hold in release builds too (promoted
    /// from `debug_assert!` by the ss-lint L003 audit): an out-of-order
    /// admission would refund tokens through a negative elapsed interval
    /// and silently over-admit.
    #[test]
    #[should_panic(expected = "time-ordered")]
    fn token_bucket_rejects_time_travel() {
        let mut tb = TokenBucket::new(ShedderConfig {
            rate: 2.0,
            burst: 3.0,
        });
        assert!(tb.try_admit(1.0));
        tb.try_admit(0.5); // earlier than the last admission: must panic
    }
}

//! Scenario configuration for the service fabric.
//!
//! A fabric is a chain of **tiers** (think edge proxies → application
//! servers → storage).  Each tier is a bank of parallel servers, each with
//! its own bounded multi-class queue; a load balancer assigns requests
//! arriving at the tier to a server, and a pluggable index
//! [`Discipline`](ss_core::discipline::Discipline) decides which class a
//! freed server picks next.  Requests traverse the tiers forward, then the
//! response is routed back through the same chain hop by hop, so the
//! recorded round-trip time is a true end-to-end latency.

use std::sync::Arc;

use ss_batch::discipline::GittinsGrid;
use ss_core::discipline::Discipline;
use ss_core::job::JobClass;
use ss_distributions::DynDist;
use ss_index::{IndexService, TableKind, TierSpec};

use crate::resilience::{
    BreakerConfig, DeadlineConfig, OutageConfig, ShedderConfig, SlowdownConfig,
};

/// Queue-length truncation used when tabulating Whittle indices for the
/// [`DisciplineKind::Whittle`] discipline.
pub const WHITTLE_TRUNCATION: usize = 40;

/// Open arrival process of one request class.
#[derive(Debug, Clone)]
pub enum ArrivalProcess {
    /// Poisson arrivals at constant rate.
    Poisson { rate: f64 },
    /// Markov-modulated Poisson process: the class cycles through the
    /// phases `0 → 1 → ... → 0`, holding each for an `Exp(switch_rate)`
    /// sojourn and emitting Poisson arrivals at the phase's rate.
    Mmpp { rates: Vec<f64>, switch_rate: f64 },
}

impl ArrivalProcess {
    /// Long-run mean arrival rate.  The cyclic equal-sojourn phase chain
    /// spends `1/k` of the time in each of its `k` phases, so the MMPP mean
    /// is the plain average of the phase rates.
    pub fn mean_rate(&self) -> f64 {
        match self {
            Self::Poisson { rate } => *rate,
            Self::Mmpp { rates, .. } => rates.iter().sum::<f64>() / rates.len() as f64,
        }
    }

    fn validate(&self) {
        match self {
            Self::Poisson { rate } => assert!(*rate > 0.0 && rate.is_finite()),
            Self::Mmpp { rates, switch_rate } => {
                assert!(rates.len() >= 2, "an MMPP needs >= 2 phases");
                assert!(rates.iter().all(|r| *r > 0.0 && r.is_finite()));
                assert!(*switch_rate > 0.0 && switch_rate.is_finite());
            }
        }
    }
}

/// One request class: its arrival process and the holding-cost rate the
/// index disciplines weight it by.
#[derive(Debug, Clone)]
pub struct ClassConfig {
    pub arrivals: ArrivalProcess,
    pub holding_cost: f64,
}

/// Client retry behaviour after a drop (queue overflow, dead tier, or a
/// service aborted by a server failure).
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries allowed per request beyond the first attempt; 0 disables
    /// retries entirely.
    pub max_retries: u32,
    /// Backoff before attempt `k` (1-based retry count) is
    /// `base_backoff * multiplier^(k-1) * U(0.5, 1.5)` — exponential
    /// backoff with multiplicative jitter.
    pub base_backoff: f64,
    pub multiplier: f64,
}

impl RetryPolicy {
    /// No retries: a dropped request is lost.
    pub fn none() -> Self {
        Self {
            max_retries: 0,
            base_backoff: 1.0,
            multiplier: 2.0,
        }
    }
}

/// How a tier's load balancer assigns an arriving request to a server.
#[derive(Debug, Clone)]
pub enum LbPolicy {
    /// Cyclic assignment over the up servers.
    RoundRobin,
    /// Join the up server with the fewest requests present (queued +
    /// in service); ties go to the lowest server id.
    JoinShortestQueue,
    /// Random assignment over the up servers, proportional to fixed
    /// weights (one per server).
    Weighted(Vec<f64>),
    /// No per-server queues at all: the tier keeps one shared queue and
    /// any server that frees up pulls the next request per the tier's
    /// discipline.  With FIFO and exponential service this is *exactly*
    /// the M/M/c central queue — the configuration the Erlang-C oracle
    /// pair cross-validates.  `queue_capacity` bounds the shared queue,
    /// and requests keep queueing through a full-tier outage (they wait
    /// at the balancer rather than being dropped).
    CentralQueue,
}

/// Server failure/recovery cycle: exponential time to failure while up,
/// exponential repair time while down.  A failing server aborts its
/// in-service request (the client sees a drop and may retry); its queued
/// requests survive the outage.
#[derive(Debug, Clone, Copy)]
pub struct FailureConfig {
    pub mean_time_to_failure: f64,
    pub mean_time_to_repair: f64,
}

/// Which index discipline orders a tier's per-server queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DisciplineKind {
    /// Global first-in-first-out across classes.
    Fifo,
    /// The cµ rule (holding cost × service rate).
    Cmu,
    /// Gittins service index at zero attained service.
    Gittins,
    /// Whittle indices of the per-class queue-length birth–death projects.
    Whittle,
}

impl DisciplineKind {
    pub fn key(&self) -> &'static str {
        match self {
            Self::Fifo => "fifo",
            Self::Cmu => "cmu",
            Self::Gittins => "gittins",
            Self::Whittle => "whittle",
        }
    }
}

/// One tier: a bank of `servers` parallel servers behind a load balancer.
#[derive(Debug, Clone)]
pub struct TierConfig {
    pub servers: usize,
    /// Queue bound in waiting requests, excluding those in service
    /// (per server, or tier-wide under [`LbPolicy::CentralQueue`]);
    /// `None` = unbounded.  An arrival to a full queue is dropped (and
    /// the client may retry).
    pub queue_capacity: Option<usize>,
    /// Service-time distribution per class (indexed by class id).
    pub service: Vec<DynDist>,
    pub discipline: DisciplineKind,
    pub lb: LbPolicy,
    /// One-way network delay of the hop *leaving* this tier (charged on
    /// the forward hop to the next tier and again on the return hop).
    pub hop_delay: f64,
    pub failure: Option<FailureConfig>,
    /// Windowed failure-rate circuit breaker guarding admissions to this
    /// tier; `None` = no breaker.
    pub breaker: Option<BreakerConfig>,
    /// Tier-wide degraded-service chaos epochs; `None` = never degraded.
    pub slowdown: Option<SlowdownConfig>,
    /// Correlated tier-wide outage chaos epochs; `None` = no outages.
    pub outage: Option<OutageConfig>,
}

/// A full fabric scenario.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    pub name: String,
    pub classes: Vec<ClassConfig>,
    pub tiers: Vec<TierConfig>,
    pub retry: RetryPolicy,
    /// Per-class request deadlines; `None` = requests never time out.
    pub deadlines: Option<DeadlineConfig>,
    /// Token-bucket load shedder at the front tier (fresh arrivals and
    /// client retries both pass through it); `None` = admit everything.
    pub shedder: Option<ShedderConfig>,
    /// Width of the SLA sliding windows tiling `(warmup, horizon]`;
    /// `None` disables windowed reporting.
    pub sla_window: Option<f64>,
    /// Statistics-collection window is `(warmup, horizon]`.
    pub warmup: f64,
    pub horizon: f64,
}

impl FabricConfig {
    /// Validate the cross-references (panics on an inconsistent scenario).
    pub fn validate(&self) {
        assert!(!self.classes.is_empty(), "need >= 1 class");
        assert!(!self.tiers.is_empty(), "need >= 1 tier");
        assert!(
            self.warmup >= 0.0 && self.horizon > self.warmup,
            "need 0 <= warmup < horizon"
        );
        assert!(self.retry.base_backoff > 0.0 && self.retry.multiplier >= 1.0);
        for class in &self.classes {
            class.arrivals.validate();
            assert!(class.holding_cost > 0.0 && class.holding_cost.is_finite());
        }
        for (t, tier) in self.tiers.iter().enumerate() {
            assert!(tier.servers >= 1, "tier {t} has no servers");
            assert_eq!(
                tier.service.len(),
                self.classes.len(),
                "tier {t} must give a service distribution per class"
            );
            assert!(tier.hop_delay >= 0.0);
            if let LbPolicy::Weighted(w) = &tier.lb {
                assert_eq!(w.len(), tier.servers, "tier {t}: one weight per server");
                assert!(w.iter().all(|x| *x > 0.0 && x.is_finite()));
            }
            if let Some(f) = &tier.failure {
                assert!(f.mean_time_to_failure > 0.0 && f.mean_time_to_repair > 0.0);
            }
            if let Some(b) = &tier.breaker {
                b.validate();
            }
            if let Some(s) = &tier.slowdown {
                s.validate();
            }
            if let Some(o) = &tier.outage {
                o.validate();
            }
        }
        if let Some(d) = &self.deadlines {
            d.validate(self.classes.len());
        }
        if let Some(s) = &self.shedder {
            s.validate();
        }
        if let Some(w) = self.sla_window {
            assert!(w > 0.0 && w.is_finite(), "sla_window must be positive");
        }
    }

    /// The [`JobClass`] view of this fabric's classes at tier `tier`
    /// (mean arrival rate, the tier's service distribution, holding cost) —
    /// the shape the index-discipline constructors consume.
    pub fn job_classes(&self, tier: usize) -> Vec<JobClass> {
        self.classes
            .iter()
            .enumerate()
            .map(|(j, c)| {
                JobClass::new(
                    j,
                    c.arrivals.mean_rate(),
                    self.tiers[tier].service[j].clone(),
                    c.holding_cost,
                )
            })
            .collect()
    }

    /// The `ss-index` tabulation spec of tier `tier` — what the index
    /// service builds this tier's SoA table from.
    pub fn tier_spec(&self, tier: usize) -> TierSpec {
        TierSpec {
            kind: match self.tiers[tier].discipline {
                DisciplineKind::Fifo => TableKind::Fifo,
                DisciplineKind::Cmu => TableKind::Cmu,
                DisciplineKind::Gittins => TableKind::Gittins(GittinsGrid::default()),
                DisciplineKind::Whittle => TableKind::Whittle {
                    truncation: WHITTLE_TRUNCATION,
                },
            },
            classes: self.job_classes(tier),
        }
    }

    /// Instantiate tier `tier`'s discipline as a flat `ss-index` SoA table
    /// (bit-identical indices to the per-call solver adapters it
    /// replaced).  Index tabulation (Gittins, Whittle) can be expensive —
    /// build once per scenario via [`FabricConfig::build_disciplines`] and
    /// share the result across replications.
    pub fn build_discipline(&self, tier: usize) -> Arc<dyn Discipline> {
        Arc::new(ss_index::build_table(&self.tier_spec(tier)))
    }

    /// All tier disciplines of this scenario, built once through a shared
    /// [`IndexService`] so tiers with identical class parameters reuse
    /// each other's converged solver state.
    pub fn build_disciplines(&self) -> Vec<Arc<dyn Discipline>> {
        let mut service = IndexService::new();
        (0..self.tiers.len())
            .map(|t| service.build_arc(&self.tier_spec(t)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_distributions::{dyn_dist, Exponential};

    fn tiny() -> FabricConfig {
        FabricConfig {
            name: "tiny".into(),
            classes: vec![ClassConfig {
                arrivals: ArrivalProcess::Poisson { rate: 0.8 },
                holding_cost: 1.0,
            }],
            tiers: vec![TierConfig {
                servers: 2,
                queue_capacity: Some(16),
                service: vec![dyn_dist(Exponential::with_mean(1.0))],
                discipline: DisciplineKind::Fifo,
                lb: LbPolicy::RoundRobin,
                hop_delay: 0.0,
                failure: None,
                breaker: None,
                slowdown: None,
                outage: None,
            }],
            retry: RetryPolicy::none(),
            deadlines: None,
            shedder: None,
            sla_window: None,
            warmup: 10.0,
            horizon: 100.0,
        }
    }

    #[test]
    fn tiny_config_validates() {
        tiny().validate();
    }

    #[test]
    fn mmpp_mean_rate_averages_phases() {
        let a = ArrivalProcess::Mmpp {
            rates: vec![0.2, 1.0],
            switch_rate: 0.5,
        };
        assert!((a.mean_rate() - 0.6).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "service distribution per class")]
    fn mismatched_service_table_is_rejected() {
        let mut c = tiny();
        c.tiers[0].service.clear();
        c.validate();
    }

    #[test]
    fn disciplines_build_for_every_kind() {
        let mut c = tiny();
        for kind in [
            DisciplineKind::Fifo,
            DisciplineKind::Cmu,
            DisciplineKind::Gittins,
            DisciplineKind::Whittle,
        ] {
            c.tiers[0].discipline = kind;
            let d = c.build_discipline(0);
            assert_eq!(d.name(), kind.key());
        }
    }
}

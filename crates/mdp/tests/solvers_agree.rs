//! Cross-solver suite: policy iteration and value iteration must agree on
//! random chains, and the average-reward solver must match hand-computed
//! two-state examples.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use ss_mdp::average::average_reward_of_policy;
use ss_mdp::{
    policy_iteration, relative_value_iteration, value_iteration, Mdp, MdpBuilder,
    ValueIterationOptions,
};

/// A random MDP: `n` states, 2-3 actions per state, dense random
/// transitions (every state reachable), rewards uniform on [0, 1].
fn random_mdp(n: usize, rng: &mut ChaCha8Rng) -> Mdp {
    let mut b = MdpBuilder::new(n);
    for s in 0..n {
        let num_actions = 2 + (rng.gen::<u32>() % 2) as usize;
        for _ in 0..num_actions {
            let reward = rng.gen::<f64>();
            let weights: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() + 1e-3).collect();
            let total: f64 = weights.iter().sum();
            let transitions: Vec<(usize, f64)> = weights
                .iter()
                .enumerate()
                .map(|(j, w)| (j, w / total))
                .collect();
            b.add_action(s, reward, transitions);
        }
    }
    b.build()
}

#[test]
fn policy_iteration_agrees_with_value_iteration_on_random_chains() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x4D4450); // "MDP"
    for trial in 0..10 {
        let n = 3 + trial % 4;
        let mdp = random_mdp(n, &mut rng);
        for &beta in &[0.7, 0.9, 0.95] {
            let pi = policy_iteration(&mdp, beta);
            let vi = value_iteration(
                &mdp,
                &ValueIterationOptions {
                    discount: beta,
                    tolerance: 1e-12,
                    max_iterations: 500_000,
                },
            );
            for s in 0..n {
                assert!(
                    (pi.values[s] - vi.values[s]).abs() < 1e-6,
                    "trial {trial} beta {beta} state {s}: PI {} vs VI {}",
                    pi.values[s],
                    vi.values[s]
                );
            }
            // Both greedy policies must be optimal: evaluating either
            // exactly reproduces the optimal value function.
            let v_pi = mdp.evaluate_policy_discounted(&pi.policy, beta);
            let v_vi = mdp.evaluate_policy_discounted(&vi.policy, beta);
            for s in 0..n {
                assert!((v_pi[s] - v_vi[s]).abs() < 1e-6);
                assert!((v_pi[s] - pi.values[s]).abs() < 1e-6);
            }
        }
    }
}

#[test]
fn value_iteration_is_an_upper_bound_over_random_fixed_policies() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xBE11);
    let mdp = random_mdp(5, &mut rng);
    let beta = 0.85;
    let opt = value_iteration(
        &mdp,
        &ValueIterationOptions {
            discount: beta,
            tolerance: 1e-12,
            max_iterations: 500_000,
        },
    );
    for _ in 0..20 {
        let policy: Vec<usize> = (0..5)
            .map(|s| (rng.gen::<u32>() as usize) % mdp.num_actions(s))
            .collect();
        let v = mdp.evaluate_policy_discounted(&policy, beta);
        for s in 0..5 {
            assert!(
                v[s] <= opt.values[s] + 1e-6,
                "fixed policy beats the optimum at state {s}"
            );
        }
    }
}

/// Hand-computed oracle: a two-state single-action chain with
/// `P(0->1) = p`, `P(1->0) = q` has stationary distribution
/// `(q, p) / (p+q)` and gain `(q r0 + p r1) / (p+q)`.
fn two_state_gain(p: f64, q: f64, r0: f64, r1: f64) -> f64 {
    (q * r0 + p * r1) / (p + q)
}

#[test]
fn average_reward_matches_hand_computed_two_state_chains() {
    for &(p, q, r0, r1) in &[
        (0.5, 1.0, 1.0, 0.0),
        (0.25, 0.75, 2.0, -1.0),
        (0.9, 0.1, 0.0, 3.0),
        (1.0, 1.0, 1.0, 3.0), // deterministic alternation: gain 2
    ] {
        let mut b = MdpBuilder::new(2);
        if p < 1.0 {
            b.add_action(0, r0, vec![(0, 1.0 - p), (1, p)]);
        } else {
            b.add_action(0, r0, vec![(1, 1.0)]);
        }
        if q < 1.0 {
            b.add_action(1, r1, vec![(1, 1.0 - q), (0, q)]);
        } else {
            b.add_action(1, r1, vec![(0, 1.0)]);
        }
        let mdp = b.build();
        let expected = two_state_gain(p, q, r0, r1);
        let sol = relative_value_iteration(&mdp, 1e-11, 500_000);
        assert!(
            (sol.gain - expected).abs() < 1e-6,
            "(p={p}, q={q}): gain {} vs hand-computed {expected}",
            sol.gain
        );
        // The stationary-distribution evaluation agrees too.
        let fixed = average_reward_of_policy(&mdp, &[0, 0]);
        assert!((fixed - expected).abs() < 1e-9);
    }
}

#[test]
fn average_reward_solver_picks_the_better_of_two_actions() {
    // State 0 chooses between two self-describing lifestyles:
    //   action 0: stay put, earn 1.2 forever          -> gain 1.2
    //   action 1: cycle 0 -> 1 -> 0 earning 0 then 3  -> gain 1.5
    let mut b = MdpBuilder::new(2);
    b.add_action(0, 1.2, vec![(0, 1.0)]);
    b.add_action(0, 0.0, vec![(1, 1.0)]);
    b.add_action(1, 3.0, vec![(0, 1.0)]);
    let mdp = b.build();
    let sol = relative_value_iteration(&mdp, 1e-11, 500_000);
    assert_eq!(sol.policy[0], 1);
    assert!((sol.gain - 1.5).abs() < 1e-6, "gain {}", sol.gain);
    // And the rejected lifestyle really is worse.
    assert!((average_reward_of_policy(&mdp, &[0, 0]) - 1.2).abs() < 1e-9);
}

#[test]
fn discounted_values_approach_gain_over_one_minus_beta() {
    // Abelian/Tauberian sanity: (1-β) V_β(s) -> gain as β -> 1 for a
    // unichain MDP; checks the discounted and average solvers against each
    // other on a random chain.
    let mut rng = ChaCha8Rng::seed_from_u64(0xABE1);
    let mdp = random_mdp(4, &mut rng);
    let avg = relative_value_iteration(&mdp, 1e-11, 500_000);
    let vi = value_iteration(
        &mdp,
        &ValueIterationOptions {
            discount: 0.999,
            tolerance: 1e-12,
            max_iterations: 2_000_000,
        },
    );
    for s in 0..4 {
        let scaled = (1.0 - 0.999) * vi.values[s];
        assert!(
            (scaled - avg.gain).abs() < 0.01 * avg.gain.abs().max(1.0),
            "state {s}: (1-b)V = {scaled} vs gain {}",
            avg.gain
        );
    }
}

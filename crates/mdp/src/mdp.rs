//! Finite MDP representation.

/// A single transition `(next_state, probability)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transition {
    /// Destination state index.
    pub next: usize,
    /// Transition probability.
    pub prob: f64,
}

/// A finite Markov decision process with reward maximisation semantics.
///
/// * `num_states` states indexed `0..num_states`;
/// * each state has one or more actions;
/// * each action has an immediate expected reward and a transition list
///   whose probabilities sum to one (enforced by [`MdpBuilder`]).
///
/// Cost-minimisation problems are expressed by negating rewards.
#[derive(Debug, Clone)]
pub struct Mdp {
    pub(crate) num_states: usize,
    /// `actions[s]` = list of (reward, transitions) for state `s`.
    pub(crate) actions: Vec<Vec<(f64, Vec<Transition>)>>,
}

impl Mdp {
    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Number of actions available in state `s`.
    pub fn num_actions(&self, s: usize) -> usize {
        self.actions[s].len()
    }

    /// Total number of state-action pairs.
    pub fn num_state_actions(&self) -> usize {
        self.actions.iter().map(|a| a.len()).sum()
    }

    /// Immediate expected reward of `(s, a)`.
    pub fn reward(&self, s: usize, a: usize) -> f64 {
        self.actions[s][a].0
    }

    /// Transition list of `(s, a)`.
    pub fn transitions(&self, s: usize, a: usize) -> &[Transition] {
        &self.actions[s][a].1
    }

    /// Expected value of `values` after taking action `a` in state `s`.
    pub fn expected_next_value(&self, s: usize, a: usize, values: &[f64]) -> f64 {
        self.transitions(s, a)
            .iter()
            .map(|t| t.prob * values[t.next])
            .sum()
    }

    /// One-step Bellman backup for `(s, a)` with discount `beta`.
    pub fn q_value(&self, s: usize, a: usize, values: &[f64], beta: f64) -> f64 {
        self.reward(s, a) + beta * self.expected_next_value(s, a, values)
    }

    /// Evaluate a stationary deterministic policy exactly (discounted) by
    /// solving `(I - beta P_pi) v = r_pi` with Gaussian elimination.
    pub fn evaluate_policy_discounted(&self, policy: &[usize], beta: f64) -> Vec<f64> {
        assert_eq!(policy.len(), self.num_states);
        assert!((0.0..1.0).contains(&beta), "discount must be in [0,1)");
        let n = self.num_states;
        // Build dense system A v = b with A = I - beta P, b = r.
        let mut a = vec![vec![0.0; n]; n];
        let mut b = vec![0.0; n];
        for s in 0..n {
            let act = policy[s];
            a[s][s] = 1.0;
            for t in self.transitions(s, act) {
                a[s][t.next] -= beta * t.prob;
            }
            b[s] = self.reward(s, act);
        }
        solve_dense(a, b)
    }
}

/// Gaussian elimination with partial pivoting; panics on singular systems.
pub(crate) fn solve_dense(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let mut piv = col;
        for r in col + 1..n {
            if a[r][col].abs() > a[piv][col].abs() {
                piv = r;
            }
        }
        assert!(a[piv][col].abs() > 1e-12, "singular linear system");
        a.swap(col, piv);
        b.swap(col, piv);
        // Eliminate below.
        for r in col + 1..n {
            let f = a[r][col] / a[col][col];
            if f != 0.0 {
                for c in col..n {
                    a[r][c] -= f * a[col][c];
                }
                b[r] -= f * b[col];
            }
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for r in (0..n).rev() {
        let mut acc = b[r];
        for c in r + 1..n {
            acc -= a[r][c] * x[c];
        }
        x[r] = acc / a[r][r];
    }
    x
}

/// Incremental builder validating transition probabilities.
#[derive(Debug, Clone)]
pub struct MdpBuilder {
    num_states: usize,
    actions: Vec<Vec<(f64, Vec<Transition>)>>,
}

impl MdpBuilder {
    /// Start building an MDP with `num_states` states.
    pub fn new(num_states: usize) -> Self {
        assert!(num_states > 0, "MDP needs at least one state");
        Self {
            num_states,
            actions: vec![Vec::new(); num_states],
        }
    }

    /// Add an action to state `s` with immediate reward `reward` and the
    /// given transition distribution (probabilities must sum to 1).
    pub fn add_action(
        &mut self,
        s: usize,
        reward: f64,
        transitions: Vec<(usize, f64)>,
    ) -> &mut Self {
        assert!(s < self.num_states, "state {s} out of range");
        assert!(
            !transitions.is_empty(),
            "action must have at least one transition"
        );
        let total: f64 = transitions.iter().map(|(_, p)| p).sum();
        assert!(
            (total - 1.0).abs() < 1e-8,
            "transition probabilities must sum to 1 (got {total})"
        );
        for &(next, p) in &transitions {
            assert!(next < self.num_states, "next state {next} out of range");
            assert!(p >= -1e-12, "probabilities must be nonnegative");
        }
        let list = transitions
            .into_iter()
            .filter(|(_, p)| *p > 0.0)
            .map(|(next, prob)| Transition { next, prob })
            .collect();
        self.actions[s].push((reward, list));
        self
    }

    /// Finalise. Panics if some state has no action.
    pub fn build(self) -> Mdp {
        for (s, acts) in self.actions.iter().enumerate() {
            assert!(!acts.is_empty(), "state {s} has no actions");
        }
        Mdp {
            num_states: self.num_states,
            actions: self.actions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state_mdp() -> Mdp {
        // State 0: action 0 stays (reward 1), action 1 moves to 1 (reward 0).
        // State 1: single action stays (reward 2).
        let mut b = MdpBuilder::new(2);
        b.add_action(0, 1.0, vec![(0, 1.0)]);
        b.add_action(0, 0.0, vec![(1, 1.0)]);
        b.add_action(1, 2.0, vec![(1, 1.0)]);
        b.build()
    }

    #[test]
    fn builder_and_accessors() {
        let m = two_state_mdp();
        assert_eq!(m.num_states(), 2);
        assert_eq!(m.num_actions(0), 2);
        assert_eq!(m.num_actions(1), 1);
        assert_eq!(m.num_state_actions(), 3);
        assert_eq!(m.reward(0, 0), 1.0);
        assert_eq!(m.transitions(0, 1)[0].next, 1);
    }

    #[test]
    fn policy_evaluation_geometric_series() {
        let m = two_state_mdp();
        let beta = 0.5;
        // Policy: stay in 0 forever -> value = 1 / (1 - 0.5) = 2.
        let v = m.evaluate_policy_discounted(&[0, 0], beta);
        assert!((v[0] - 2.0).abs() < 1e-10);
        // Value of state 1 under its only action: 2 / 0.5 = 4.
        assert!((v[1] - 4.0).abs() < 1e-10);
        // Policy: jump to 1 -> value = 0 + 0.5 * 4 = 2.
        let v2 = m.evaluate_policy_discounted(&[1, 0], beta);
        assert!((v2[0] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn q_values() {
        let m = two_state_mdp();
        let v = vec![10.0, 20.0];
        assert!((m.q_value(0, 0, &v, 0.9) - (1.0 + 9.0)).abs() < 1e-12);
        assert!((m.q_value(0, 1, &v, 0.9) - 18.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn bad_probabilities_rejected() {
        let mut b = MdpBuilder::new(1);
        b.add_action(0, 0.0, vec![(0, 0.5)]);
    }

    #[test]
    fn dense_solver() {
        // 2x + y = 5, x + 3y = 10 -> x = 1, y = 3.
        let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let b = vec![5.0, 10.0];
        let x = solve_dense(a, b);
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }
}

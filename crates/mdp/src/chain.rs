//! Markov-chain utilities: stationary distributions, absorption analysis,
//! expected discounted occupancy.
//!
//! Klimov's algorithm and the exact bandit evaluations need the fundamental
//! matrix `(I - Q)^{-1}` of substochastic matrices and stationary
//! distributions of irreducible chains; both are computed by dense Gaussian
//! elimination, which is ample for the instance sizes in this workspace.

use crate::mdp::solve_dense;

/// A finite discrete-time Markov chain given by a dense transition matrix.
#[derive(Debug, Clone)]
pub struct MarkovChain {
    p: Vec<Vec<f64>>,
}

impl MarkovChain {
    /// Create from a row-stochastic matrix (rows must sum to 1 within 1e-8).
    pub fn new(p: Vec<Vec<f64>>) -> Self {
        let n = p.len();
        assert!(n > 0, "chain needs at least one state");
        for (i, row) in p.iter().enumerate() {
            assert_eq!(row.len(), n, "row {i} has wrong length");
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-8, "row {i} sums to {s}, expected 1");
            assert!(
                row.iter().all(|&x| x >= -1e-12),
                "negative probability in row {i}"
            );
        }
        Self { p }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.p.len()
    }

    /// Transition matrix.
    pub fn matrix(&self) -> &[Vec<f64>] {
        &self.p
    }

    /// Stationary distribution of an irreducible chain, solved from
    /// `pi P = pi`, `sum pi = 1` by replacing one balance equation with the
    /// normalisation constraint.
    pub fn stationary_distribution(&self) -> Vec<f64> {
        let n = self.p.len();
        // Build (P^T - I) with the last row replaced by all-ones = 1.
        let mut a = vec![vec![0.0; n]; n];
        let mut b = vec![0.0; n];
        for i in 0..n {
            for j in 0..n {
                a[i][j] = self.p[j][i] - if i == j { 1.0 } else { 0.0 };
            }
        }
        for j in 0..n {
            a[n - 1][j] = 1.0;
        }
        b[n - 1] = 1.0;
        let pi = solve_dense(a, b);
        pi.into_iter().map(|x| x.max(0.0)).collect()
    }

    /// Expected total discounted occupancy matrix `(I - beta P)^{-1}`,
    /// returned row by row: entry `(i, j)` is the expected discounted number
    /// of visits to `j` starting from `i`.
    pub fn discounted_occupancy(&self, beta: f64) -> Vec<Vec<f64>> {
        assert!((0.0..1.0).contains(&beta));
        let n = self.p.len();
        let mut result = vec![vec![0.0; n]; n];
        for start in 0..n {
            // Solve (I - beta P)^T ? No: occupancy row solves
            // N[start][.] = e_start + beta * N[start][.] P  =>
            // N = e (I - beta P)^{-1}; equivalently solve (I - beta P)^T x = e_start
            // for the column vector x = N[start][.]^T.
            let mut a = vec![vec![0.0; n]; n];
            for i in 0..n {
                for j in 0..n {
                    a[i][j] = (if i == j { 1.0 } else { 0.0 }) - beta * self.p[j][i];
                }
            }
            let mut b = vec![0.0; n];
            b[start] = 1.0;
            let x = solve_dense(a, b);
            result[start] = x;
        }
        result
    }

    /// For a chain with transient states `0..k` and absorbing states
    /// `k..n`, returns the expected number of visits to each transient state
    /// before absorption, starting from each transient state (the
    /// fundamental matrix `N = (I - Q)^{-1}`).
    pub fn fundamental_matrix(&self, num_transient: usize) -> Vec<Vec<f64>> {
        let k = num_transient;
        assert!(k <= self.p.len());
        let mut result = vec![vec![0.0; k]; k];
        for start in 0..k {
            let mut a = vec![vec![0.0; k]; k];
            for i in 0..k {
                for j in 0..k {
                    a[i][j] = (if i == j { 1.0 } else { 0.0 }) - self.p[j][i];
                }
            }
            let mut b = vec![0.0; k];
            b[start] = 1.0;
            let x = solve_dense(a, b);
            result[start] = x;
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stationary_of_two_state_chain() {
        // P = [[0.9, 0.1], [0.5, 0.5]] -> pi = (5/6, 1/6).
        let c = MarkovChain::new(vec![vec![0.9, 0.1], vec![0.5, 0.5]]);
        let pi = c.stationary_distribution();
        assert!((pi[0] - 5.0 / 6.0).abs() < 1e-10);
        assert!((pi[1] - 1.0 / 6.0).abs() < 1e-10);
    }

    #[test]
    fn stationary_of_uniform_cycle() {
        let c = MarkovChain::new(vec![
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
            vec![1.0, 0.0, 0.0],
        ]);
        let pi = c.stationary_distribution();
        for &p in &pi {
            assert!((p - 1.0 / 3.0).abs() < 1e-10);
        }
    }

    #[test]
    fn discounted_occupancy_identity_chain() {
        // Absorbing single state: occupancy = 1 / (1 - beta).
        let c = MarkovChain::new(vec![vec![1.0]]);
        let n = c.discounted_occupancy(0.8);
        assert!((n[0][0] - 5.0).abs() < 1e-10);
    }

    #[test]
    fn discounted_occupancy_rows_sum_to_geometric_total() {
        let c = MarkovChain::new(vec![vec![0.3, 0.7], vec![0.6, 0.4]]);
        let beta = 0.9;
        let n = c.discounted_occupancy(beta);
        for row in &n {
            let total: f64 = row.iter().sum();
            assert!((total - 1.0 / (1.0 - beta)).abs() < 1e-8);
        }
    }

    #[test]
    fn fundamental_matrix_gambler() {
        // Transient states 0,1 each move to the absorbing state 2 w.p. 0.5
        // or to the other transient state w.p. 0.5.
        let c = MarkovChain::new(vec![
            vec![0.0, 0.5, 0.5],
            vec![0.5, 0.0, 0.5],
            vec![0.0, 0.0, 1.0],
        ]);
        let n = c.fundamental_matrix(2);
        // N = (I - Q)^{-1} with Q = [[0,.5],[.5,0]] -> N = [[4/3, 2/3],[2/3, 4/3]].
        assert!((n[0][0] - 4.0 / 3.0).abs() < 1e-10);
        assert!((n[0][1] - 2.0 / 3.0).abs() < 1e-10);
        assert!((n[1][0] - 2.0 / 3.0).abs() < 1e-10);
        assert!((n[1][1] - 4.0 / 3.0).abs() < 1e-10);
    }
}

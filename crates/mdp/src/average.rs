//! Average-reward (long-run) MDPs via relative value iteration.
//!
//! The Whittle index for restless bandits is defined through a family of
//! *average-reward* single-project subsidy problems (Whittle 1988); this
//! module provides the unichain relative value iteration used to solve them
//! and to evaluate time-average performance of fixed policies.

use crate::mdp::Mdp;

/// Result of relative value iteration.
#[derive(Debug, Clone)]
pub struct AverageSolution {
    /// Optimal long-run average reward (gain).
    pub gain: f64,
    /// Relative value (bias) function, normalised so `h[reference] = 0`.
    pub bias: Vec<f64>,
    /// An optimal stationary deterministic policy.
    pub policy: Vec<usize>,
    /// Sweeps performed.
    pub iterations: usize,
}

/// Relative value iteration for unichain average-reward MDPs
/// (reward-maximisation).
///
/// Uses the standard span-based stopping rule; the reference state is 0.
pub fn relative_value_iteration(
    mdp: &Mdp,
    tolerance: f64,
    max_iterations: usize,
) -> AverageSolution {
    let n = mdp.num_states();
    let mut h = vec![0.0; n];
    let mut next = vec![0.0; n];
    let mut iterations = 0;
    let mut gain = 0.0;
    // Aperiodicity transformation: mix each action's transition with a
    // self-loop of weight (1 - tau) to guarantee convergence on periodic
    // chains without changing the optimal policy or gain.
    let tau = 0.9;
    while iterations < max_iterations {
        for s in 0..n {
            let mut best = f64::NEG_INFINITY;
            for a in 0..mdp.num_actions(s) {
                let q =
                    mdp.reward(s, a) + tau * mdp.expected_next_value(s, a, &h) + (1.0 - tau) * h[s];
                if q > best {
                    best = q;
                }
            }
            next[s] = best;
        }
        let diffs: Vec<f64> = (0..n).map(|s| next[s] - h[s]).collect();
        let max_d = diffs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min_d = diffs.iter().cloned().fold(f64::INFINITY, f64::min);
        gain = 0.5 * (max_d + min_d);
        let offset = next[0];
        for s in 0..n {
            h[s] = next[s] - offset;
        }
        iterations += 1;
        if (max_d - min_d) < tolerance {
            break;
        }
    }
    // Greedy policy w.r.t. the bias.
    let mut policy = vec![0usize; n];
    for s in 0..n {
        let mut best = f64::NEG_INFINITY;
        let mut best_a = 0;
        for a in 0..mdp.num_actions(s) {
            let q = mdp.reward(s, a) + tau * mdp.expected_next_value(s, a, &h) + (1.0 - tau) * h[s];
            if q > best {
                best = q;
                best_a = a;
            }
        }
        policy[s] = best_a;
    }
    AverageSolution {
        gain,
        bias: h,
        policy,
        iterations,
    }
}

/// Long-run average reward of a fixed stationary deterministic policy,
/// computed from the stationary distribution of the induced chain.
pub fn average_reward_of_policy(mdp: &Mdp, policy: &[usize]) -> f64 {
    use crate::chain::MarkovChain;
    let n = mdp.num_states();
    let mut rows = Vec::with_capacity(n);
    for s in 0..n {
        let mut row = vec![0.0; n];
        for t in mdp.transitions(s, policy[s]) {
            row[t.next] += t.prob;
        }
        rows.push(row);
    }
    let chain = MarkovChain::new(rows);
    let pi = chain.stationary_distribution();
    (0..n).map(|s| pi[s] * mdp.reward(s, policy[s])).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mdp::MdpBuilder;

    #[test]
    fn two_state_alternating_chain() {
        // Single action per state, deterministic cycle 0 -> 1 -> 0 with
        // rewards 1 and 3: gain = 2.
        let mut b = MdpBuilder::new(2);
        b.add_action(0, 1.0, vec![(1, 1.0)]);
        b.add_action(1, 3.0, vec![(0, 1.0)]);
        let m = b.build();
        let sol = relative_value_iteration(&m, 1e-10, 100_000);
        assert!((sol.gain - 2.0).abs() < 1e-6, "gain {}", sol.gain);
        assert!((average_reward_of_policy(&m, &sol.policy) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn picks_action_maximising_average() {
        // State 0 has two actions: stay with reward 1, or move to state 1
        // (reward 0) where the reward is 5 but it must come back through 0.
        // Cycle via 1: average (0 + 5)/2 = 2.5 > 1, so moving is optimal.
        let mut b = MdpBuilder::new(2);
        b.add_action(0, 1.0, vec![(0, 1.0)]);
        b.add_action(0, 0.0, vec![(1, 1.0)]);
        b.add_action(1, 5.0, vec![(0, 1.0)]);
        let m = b.build();
        let sol = relative_value_iteration(&m, 1e-10, 100_000);
        assert_eq!(sol.policy[0], 1);
        assert!((sol.gain - 2.5).abs() < 1e-6);
    }

    #[test]
    fn stochastic_chain_gain() {
        // Single action: from 0 go to 1 w.p. 0.5 / stay w.p. 0.5, reward 1;
        // from 1 always go to 0, reward 0.
        // Stationary distribution: pi0 = 2/3, pi1 = 1/3, gain = 2/3.
        let mut b = MdpBuilder::new(2);
        b.add_action(0, 1.0, vec![(0, 0.5), (1, 0.5)]);
        b.add_action(1, 0.0, vec![(0, 1.0)]);
        let m = b.build();
        let sol = relative_value_iteration(&m, 1e-11, 200_000);
        assert!((sol.gain - 2.0 / 3.0).abs() < 1e-6, "gain {}", sol.gain);
    }
}

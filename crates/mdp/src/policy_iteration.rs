//! Howard's policy iteration for discounted MDPs.

use crate::mdp::Mdp;
use crate::value_iteration::DiscountedSolution;

/// Solve a discounted reward-maximisation MDP by policy iteration.
///
/// Each iteration evaluates the current policy exactly (linear solve) and
/// then improves greedily; convergence is finite for finite MDPs.
pub fn policy_iteration(mdp: &Mdp, discount: f64) -> DiscountedSolution {
    assert!((0.0..1.0).contains(&discount), "discount must be in [0,1)");
    let n = mdp.num_states();
    let mut policy: Vec<usize> = vec![0; n];
    let mut values = vec![0.0; n];
    let mut iterations = 0;
    loop {
        iterations += 1;
        values = mdp.evaluate_policy_discounted(&policy, discount);
        let mut stable = true;
        for s in 0..n {
            let mut best_a = policy[s];
            let mut best_q = mdp.q_value(s, policy[s], &values, discount);
            for a in 0..mdp.num_actions(s) {
                let q = mdp.q_value(s, a, &values, discount);
                if q > best_q + 1e-12 {
                    best_q = q;
                    best_a = a;
                }
            }
            if best_a != policy[s] {
                policy[s] = best_a;
                stable = false;
            }
        }
        if stable || iterations > 10_000 {
            break;
        }
    }
    DiscountedSolution {
        values,
        policy,
        iterations,
        residual: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mdp::MdpBuilder;
    use crate::value_iteration::{value_iteration, ValueIterationOptions};

    #[test]
    fn agrees_with_value_iteration() {
        let mut b = MdpBuilder::new(5);
        for s in 0..5 {
            b.add_action(
                s,
                (s as f64).sin().abs(),
                vec![((s + 1) % 5, 0.6), (s, 0.4)],
            );
            b.add_action(s, 0.3 * s as f64, vec![((s + 2) % 5, 1.0)]);
            b.add_action(s, 0.1, vec![(0, 0.5), (4, 0.5)]);
        }
        let m = b.build();
        let pi_sol = policy_iteration(&m, 0.9);
        let vi_sol = value_iteration(
            &m,
            &ValueIterationOptions {
                discount: 0.9,
                tolerance: 1e-12,
                max_iterations: 200_000,
            },
        );
        for s in 0..5 {
            assert!(
                (pi_sol.values[s] - vi_sol.values[s]).abs() < 1e-6,
                "state {s}: PI {} vs VI {}",
                pi_sol.values[s],
                vi_sol.values[s]
            );
        }
    }

    #[test]
    fn terminates_quickly_on_trivial_mdp() {
        let mut b = MdpBuilder::new(1);
        b.add_action(0, 1.0, vec![(0, 1.0)]);
        let m = b.build();
        let sol = policy_iteration(&m, 0.5);
        assert!(sol.iterations <= 3);
        assert!((sol.values[0] - 2.0).abs() < 1e-10);
    }
}

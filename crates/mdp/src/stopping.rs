//! Optimal stopping problems (the "retirement" formulation).
//!
//! Whittle's retirement interpretation of the Gittins index defines the
//! index of state `i` as the retirement reward `M` that makes the decision
//! maker indifferent between retiring immediately and continuing optimally.
//! The calibration algorithm in `ss-bandits` solves a sequence of these
//! stopping problems by bisection on `M`.

use crate::mdp::Mdp;

/// A discounted optimal stopping problem over an underlying Markov reward
/// process: at each state you may *stop* (collect `stop_reward[s]` once and
/// end) or *continue* (collect the continuation reward and move according to
/// the chain).
#[derive(Debug, Clone)]
pub struct StoppingProblem {
    /// Continuation rewards per state.
    pub continue_reward: Vec<f64>,
    /// Transition rows of the underlying chain (each sums to 1).
    pub transitions: Vec<Vec<(usize, f64)>>,
    /// One-off reward collected upon stopping in each state.
    pub stop_reward: Vec<f64>,
    /// Discount factor in `[0, 1)`.
    pub discount: f64,
}

/// Solution of a stopping problem.
#[derive(Debug, Clone)]
pub struct StoppingSolution {
    /// Optimal value per state.
    pub values: Vec<f64>,
    /// `true` where stopping is optimal.
    pub stop: Vec<bool>,
    /// Sweeps of value iteration used.
    pub iterations: usize,
}

/// Solve the stopping problem by value iteration on the equivalent
/// two-action MDP.
pub fn optimal_stopping(problem: &StoppingProblem) -> StoppingSolution {
    let n = problem.continue_reward.len();
    assert_eq!(problem.transitions.len(), n);
    assert_eq!(problem.stop_reward.len(), n);
    let beta = problem.discount;
    assert!((0.0..1.0).contains(&beta));

    let mut values: Vec<f64> = problem.stop_reward.clone();
    let mut next = vec![0.0; n];
    let mut iterations = 0;
    loop {
        let mut residual = 0.0f64;
        for s in 0..n {
            let cont: f64 = problem.continue_reward[s]
                + beta
                    * problem.transitions[s]
                        .iter()
                        .map(|&(j, p)| p * values[j])
                        .sum::<f64>();
            let v = cont.max(problem.stop_reward[s]);
            residual = residual.max((v - values[s]).abs());
            next[s] = v;
        }
        std::mem::swap(&mut values, &mut next);
        iterations += 1;
        if residual < 1e-12 || iterations > 200_000 {
            break;
        }
    }
    let stop = (0..n)
        .map(|s| {
            let cont: f64 = problem.continue_reward[s]
                + beta
                    * problem.transitions[s]
                        .iter()
                        .map(|&(j, p)| p * values[j])
                        .sum::<f64>();
            problem.stop_reward[s] >= cont - 1e-12
        })
        .collect();
    StoppingSolution {
        values,
        stop,
        iterations,
    }
}

/// Build the equivalent two-action MDP (action 0 = continue, action 1 =
/// stop into an absorbing zero-reward state appended at index `n`).
pub fn stopping_as_mdp(problem: &StoppingProblem) -> Mdp {
    let n = problem.continue_reward.len();
    let mut b = crate::mdp::MdpBuilder::new(n + 1);
    for s in 0..n {
        b.add_action(
            s,
            problem.continue_reward[s],
            problem.transitions[s].clone(),
        );
        b.add_action(s, problem.stop_reward[s], vec![(n, 1.0)]);
    }
    b.add_action(n, 0.0, vec![(n, 1.0)]);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value_iteration::{value_iteration, ValueIterationOptions};

    fn simple_problem(stop_at: f64) -> StoppingProblem {
        // Two states; continuing in state 0 pays 1 and moves to state 1,
        // continuing in state 1 pays 0 and stays.  Stopping pays `stop_at`.
        StoppingProblem {
            continue_reward: vec![1.0, 0.0],
            transitions: vec![vec![(1, 1.0)], vec![(1, 1.0)]],
            stop_reward: vec![stop_at, stop_at],
            discount: 0.9,
        }
    }

    #[test]
    fn stops_when_retirement_is_generous() {
        let sol = optimal_stopping(&simple_problem(100.0));
        assert!(sol.stop.iter().all(|&s| s));
        assert!((sol.values[0] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn continues_then_stops_when_moderate() {
        // Continuing once from state 0 yields 1 + 0.9 * stop; with stop = 2
        // that's 2.8 > 2, so continue in 0 but stop in 1.
        let sol = optimal_stopping(&simple_problem(2.0));
        assert!(!sol.stop[0]);
        assert!(sol.stop[1]);
        assert!((sol.values[0] - 2.8).abs() < 1e-9);
        assert!((sol.values[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn matches_generic_mdp_solver() {
        let p = simple_problem(1.5);
        let sol = optimal_stopping(&p);
        let mdp = stopping_as_mdp(&p);
        let vi = value_iteration(
            &mdp,
            &ValueIterationOptions {
                discount: 0.9,
                tolerance: 1e-12,
                max_iterations: 200_000,
            },
        );
        for s in 0..2 {
            assert!((sol.values[s] - vi.values[s]).abs() < 1e-7);
        }
    }
}

//! # ss-mdp — finite Markov decision process solvers
//!
//! The survey repeatedly contrasts index policies with the "curse of
//! dimensionality" of straightforward dynamic programming.  This crate
//! supplies that dynamic-programming substrate so the workspace can
//! *verify* the index-policy optimality claims exactly on small instances:
//!
//! * discounted value iteration and policy iteration
//!   ([`value_iteration`], [`policy_iteration`]) — used to compute the
//!   optimal value of small multi-armed bandit problems (experiment E7) and
//!   switching-cost bandits (E9);
//! * average-cost relative value iteration ([`average`]) — used for the
//!   restless-bandit subsidy problems behind the Whittle index (E10);
//! * optimal stopping ([`stopping`]) — the retirement formulation used by
//!   the calibration method for the Gittins index (E8);
//! * Markov-chain utilities ([`chain`]) — stationary distributions,
//!   absorption probabilities and expected occupancy, used by Klimov's
//!   algorithm and the exact parallel-machine recursions.
//!
//! The MDP representation is deliberately simple (dense per-action rows of
//! `(next_state, probability)` pairs): every exact model in this workspace
//! has at most a few hundred thousand state-action pairs.

pub mod average;
pub mod chain;
pub mod mdp;
pub mod policy_iteration;
pub mod stopping;
pub mod value_iteration;

pub use average::{relative_value_iteration, AverageSolution};
pub use chain::MarkovChain;
pub use mdp::{Mdp, MdpBuilder, Transition};
pub use policy_iteration::policy_iteration;
pub use stopping::{optimal_stopping, StoppingProblem, StoppingSolution};
pub use value_iteration::{value_iteration, DiscountedSolution, ValueIterationOptions};

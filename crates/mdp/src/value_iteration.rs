//! Discounted value iteration.

use crate::mdp::Mdp;

/// Options controlling the value-iteration loop.
#[derive(Debug, Clone, Copy)]
pub struct ValueIterationOptions {
    /// Discount factor in `[0, 1)`.
    pub discount: f64,
    /// Convergence threshold on the sup-norm of successive value functions.
    pub tolerance: f64,
    /// Hard cap on sweeps.
    pub max_iterations: usize,
}

impl Default for ValueIterationOptions {
    fn default() -> Self {
        Self {
            discount: 0.95,
            tolerance: 1e-10,
            max_iterations: 100_000,
        }
    }
}

/// Result of discounted value iteration.
#[derive(Debug, Clone)]
pub struct DiscountedSolution {
    /// Optimal value function (up to the stated tolerance).
    pub values: Vec<f64>,
    /// A greedy (optimal) deterministic policy.
    pub policy: Vec<usize>,
    /// Number of sweeps performed.
    pub iterations: usize,
    /// Final sup-norm change.
    pub residual: f64,
}

/// Solve a discounted reward-maximisation MDP by value iteration.
pub fn value_iteration(mdp: &Mdp, opts: &ValueIterationOptions) -> DiscountedSolution {
    let beta = opts.discount;
    assert!((0.0..1.0).contains(&beta), "discount must be in [0,1)");
    let n = mdp.num_states();
    let mut values = vec![0.0; n];
    let mut next = vec![0.0; n];
    let mut iterations = 0;
    let mut residual = f64::INFINITY;
    while iterations < opts.max_iterations {
        residual = 0.0f64;
        for s in 0..n {
            let mut best = f64::NEG_INFINITY;
            for a in 0..mdp.num_actions(s) {
                let q = mdp.q_value(s, a, &values, beta);
                if q > best {
                    best = q;
                }
            }
            next[s] = best;
            residual = residual.max((next[s] - values[s]).abs());
        }
        std::mem::swap(&mut values, &mut next);
        iterations += 1;
        // Standard stopping rule guaranteeing an eps-optimal value function.
        if residual < opts.tolerance * (1.0 - beta) / (2.0 * beta.max(1e-12)) || residual == 0.0 {
            break;
        }
    }
    // Greedy policy extraction.
    let mut policy = vec![0usize; n];
    for s in 0..n {
        let mut best = f64::NEG_INFINITY;
        let mut best_a = 0;
        for a in 0..mdp.num_actions(s) {
            let q = mdp.q_value(s, a, &values, beta);
            if q > best {
                best = q;
                best_a = a;
            }
        }
        policy[s] = best_a;
    }
    DiscountedSolution {
        values,
        policy,
        iterations,
        residual,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mdp::MdpBuilder;

    #[test]
    fn single_state_geometric_series() {
        let mut b = MdpBuilder::new(1);
        b.add_action(0, 1.0, vec![(0, 1.0)]);
        let m = b.build();
        let sol = value_iteration(
            &m,
            &ValueIterationOptions {
                discount: 0.9,
                ..Default::default()
            },
        );
        assert!(
            (sol.values[0] - 10.0).abs() < 1e-6,
            "value {}",
            sol.values[0]
        );
    }

    #[test]
    fn chooses_better_action() {
        // State 0: action 0 gives reward 0 and stays; action 1 gives 1 and stays.
        let mut b = MdpBuilder::new(1);
        b.add_action(0, 0.0, vec![(0, 1.0)]);
        b.add_action(0, 1.0, vec![(0, 1.0)]);
        let m = b.build();
        let sol = value_iteration(
            &m,
            &ValueIterationOptions {
                discount: 0.5,
                ..Default::default()
            },
        );
        assert_eq!(sol.policy[0], 1);
        assert!((sol.values[0] - 2.0).abs() < 1e-8);
    }

    #[test]
    fn deferred_reward_tradeoff() {
        // State 0: "cash in" -> reward 5, go to absorbing 2 (no reward);
        //          "wait"    -> reward 0, go to state 1.
        // State 1: reward 10, go to absorbing 2.
        // State 2: absorbing, reward 0.
        // With beta = 0.9 waiting is better (0 + 0.9*10 = 9 > 5).
        // With beta = 0.4 cashing in is better (5 > 4).
        let build = || {
            let mut b = MdpBuilder::new(3);
            b.add_action(0, 5.0, vec![(2, 1.0)]);
            b.add_action(0, 0.0, vec![(1, 1.0)]);
            b.add_action(1, 10.0, vec![(2, 1.0)]);
            b.add_action(2, 0.0, vec![(2, 1.0)]);
            b.build()
        };
        let patient = value_iteration(
            &build(),
            &ValueIterationOptions {
                discount: 0.9,
                ..Default::default()
            },
        );
        assert_eq!(patient.policy[0], 1);
        let impatient = value_iteration(
            &build(),
            &ValueIterationOptions {
                discount: 0.4,
                ..Default::default()
            },
        );
        assert_eq!(impatient.policy[0], 0);
    }

    #[test]
    fn matches_exact_policy_evaluation() {
        // Random-ish 4-state MDP: check VI optimal value >= value of any
        // fixed policy and equals the value of its own greedy policy.
        let mut b = MdpBuilder::new(4);
        for s in 0..4 {
            b.add_action(s, s as f64, vec![((s + 1) % 4, 0.7), (s, 0.3)]);
            b.add_action(s, 0.5, vec![((s + 2) % 4, 1.0)]);
        }
        let m = b.build();
        let opts = ValueIterationOptions {
            discount: 0.8,
            tolerance: 1e-12,
            ..Default::default()
        };
        let sol = value_iteration(&m, &opts);
        let v_greedy = m.evaluate_policy_discounted(&sol.policy, 0.8);
        for s in 0..4 {
            assert!((sol.values[s] - v_greedy[s]).abs() < 1e-6);
        }
        // Any other stationary policy is weakly worse.
        for alt in [[0usize, 0, 0, 0], [1, 1, 1, 1], [0, 1, 0, 1]] {
            let v_alt = m.evaluate_policy_discounted(&alt, 0.8);
            for s in 0..4 {
                assert!(v_alt[s] <= sol.values[s] + 1e-6);
            }
        }
    }
}

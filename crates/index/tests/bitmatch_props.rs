//! Property tests of the tabulation contract: for **every** table kind and
//! randomized class sets, the SoA table returns bit-for-bit the same index
//! as the per-call legacy discipline it replaced — inside the tabulated
//! range and (via the saturating lookup) arbitrarily far beyond it.
//!
//! The index layer consumes **no randomness of its own** (no RNG streams,
//! no iteration over unordered containers on the value path), so these
//! properties double as the seed-purity check: two services fed the same
//! specs in any order must emit bit-identical tables.

use proptest::prelude::*;
use ss_bandits::discipline::WhittleQueueDiscipline;
use ss_batch::discipline::{gittins_discipline, GittinsGrid};
use ss_core::discipline::{Discipline, Fifo};
use ss_core::job::JobClass;
use ss_distributions::{dyn_dist, DynDist, Erlang, Exponential, HyperExponential};
use ss_index::{IndexService, TableKind, TierSpec};
use ss_queueing::discipline::cmu_discipline;

const TRUNCATION: usize = 40;

/// Decode one u32 into a service distribution: low bits pick the family,
/// the rest the (coarsely bucketed) mean, so meaningful collisions and
/// meaningful diversity both occur.
fn decode_dist(raw: u32) -> DynDist {
    let mean = 0.25 + ((raw >> 4) % 32) as f64 * 0.22;
    match raw % 3 {
        0 => dyn_dist(Exponential::with_mean(mean)),
        1 => dyn_dist(Erlang::with_mean(2 + (raw >> 2) % 3, mean)),
        _ => dyn_dist(HyperExponential::with_mean_scv(
            mean,
            2.0 + (raw % 7) as f64,
        )),
    }
}

/// Decode a flat word stream into classes, three words per class:
/// distribution, arrival rate, holding cost.
fn decode_classes(raws: &[u32]) -> Vec<JobClass> {
    raws.chunks_exact(3)
        .enumerate()
        .map(|(j, w)| {
            let arrival = 0.05 + (w[1] % 64) as f64 * 0.02;
            let cost = 0.125 + (w[2] % 48) as f64 * 0.25;
            JobClass::new(j, arrival, decode_dist(w[0]), cost)
        })
        .collect()
}

/// Queue lengths probed per class: the whole tabulated range, the
/// saturation boundary's neighbourhood, and far past it.
fn probe_lens() -> impl Iterator<Item = usize> {
    (0..=TRUNCATION + 5).chain([100, 4096, usize::MAX])
}

fn assert_bitmatch(table: &dyn Discipline, legacy: &dyn Discipline, classes: usize) {
    for j in 0..classes {
        for len in probe_lens() {
            let t = table.class_index(j, len);
            let l = legacy.class_index(j, len);
            assert_eq!(
                t.to_bits(),
                l.to_bits(),
                "kind {} class {j} len {len}: table {t} vs legacy {l}",
                legacy.name()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every `TableKind` bit-matches its legacy discipline on randomized
    /// class sets, in and beyond the tabulated range.
    #[test]
    fn tables_bit_match_legacy_disciplines(
        raws in prop::collection::vec(0u32..u32::MAX, 3..15),
    ) {
        let classes = decode_classes(&raws);
        let mut service = IndexService::new();
        let grid = GittinsGrid::default();

        let kinds: Vec<(TableKind, Box<dyn Discipline>)> = vec![
            (TableKind::Fifo, Box::new(Fifo)),
            (TableKind::Cmu, Box::new(cmu_discipline(&classes))),
            (TableKind::Gittins(grid), Box::new(gittins_discipline(&classes, grid))),
            (
                TableKind::Whittle { truncation: TRUNCATION },
                Box::new(WhittleQueueDiscipline::new(&classes, TRUNCATION)),
            ),
        ];
        for (kind, legacy) in kinds {
            let spec = TierSpec { kind, classes: classes.clone() };
            let table = service.build(&spec);
            prop_assert_eq!(table.name(), legacy.name());
            assert_bitmatch(&table, legacy.as_ref(), classes.len());
        }
    }

    /// Seed purity / order independence: a warm service that already
    /// digested arbitrary other specs still emits bit-identical tables to
    /// a cold one — cache state affects speed, never values.
    #[test]
    fn warm_service_is_bit_pure_whatever_it_saw_before(
        first in prop::collection::vec(0u32..u32::MAX, 3..12),
        second in prop::collection::vec(0u32..u32::MAX, 3..12),
    ) {
        let grid = GittinsGrid::default();
        let specs: Vec<TierSpec> = [decode_classes(&first), decode_classes(&second)]
            .into_iter()
            .flat_map(|classes| {
                [
                    TableKind::Whittle { truncation: TRUNCATION },
                    TableKind::Gittins(grid),
                    TableKind::Cmu,
                ]
                .map(|kind| TierSpec { kind, classes: classes.clone() })
            })
            .collect();

        // Cold: each spec in a fresh service.
        let cold: Vec<Vec<f64>> = specs
            .iter()
            .map(|s| IndexService::new().build(s).slab().to_vec())
            .collect();
        // Warm: one service digests them all, then rebuilds in reverse.
        let mut warm = IndexService::new();
        for s in &specs {
            warm.build(s);
        }
        for (s, cold_slab) in specs.iter().zip(&cold).rev() {
            let rebuilt = warm.build(s);
            for (a, b) in rebuilt.slab().iter().zip(cold_slab) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}

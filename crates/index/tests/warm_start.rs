//! Warm-start rebuild semantics of [`IndexService`]: a rebuild after
//! parameter drift is **bit-identical** to a cold build of the drifted
//! spec, and the [`RebuildStats`] counters prove the intended reuse class
//! actually happened (row copy, idle-solve warm start, or cached Gittins
//! rate) instead of silently falling back to cold work.

use ss_batch::discipline::GittinsGrid;
use ss_core::job::JobClass;
use ss_distributions::{dyn_dist, Erlang, Exponential};
use ss_index::{IndexService, TableKind, TierSpec};

fn classes(costs: &[f64]) -> Vec<JobClass> {
    costs
        .iter()
        .enumerate()
        .map(|(j, &c)| {
            let service = if j % 2 == 0 {
                dyn_dist(Exponential::with_mean(0.8 + j as f64 * 0.1))
            } else {
                dyn_dist(Erlang::with_mean(3, 1.1))
            };
            JobClass::new(j, 0.3 + j as f64 * 0.05, service, c)
        })
        .collect()
}

fn whittle_spec(costs: &[f64]) -> TierSpec {
    TierSpec {
        kind: TableKind::Whittle { truncation: 40 },
        classes: classes(costs),
    }
}

fn gittins_spec(costs: &[f64]) -> TierSpec {
    TierSpec {
        kind: TableKind::Gittins(GittinsGrid::default()),
        classes: classes(costs),
    }
}

fn assert_same_bits(a: &ss_index::IndexTable, b: &ss_index::IndexTable) {
    assert_eq!(a.classes(), b.classes());
    assert_eq!(a.stride(), b.stride());
    for (x, y) in a.slab().iter().zip(b.slab()) {
        assert_eq!(x.to_bits(), y.to_bits(), "warm rebuild drifted from cold");
    }
}

#[test]
fn identical_respec_copies_every_whittle_row() {
    let spec = whittle_spec(&[1.0, 2.0, 0.5]);
    let mut svc = IndexService::new();
    let cold = svc.build(&spec);
    assert_eq!(svc.stats().whittle_rows_cold, 3);
    assert_eq!(svc.stats().whittle_rows_reused, 0);

    let rebuilt = svc.build(&spec);
    assert_same_bits(&cold, &rebuilt);
    let s = svc.stats();
    assert_eq!(s.whittle_rows_reused, 3, "unchanged rows must be copied");
    assert_eq!(s.whittle_rows_cold, 3, "no new cold work on respec");
    assert_eq!(s.whittle_rows_warm, 0);
    assert_eq!(s.tables_built, 2);
}

#[test]
fn holding_cost_drift_reuses_idle_solves_and_stays_bit_identical_to_cold() {
    let before = whittle_spec(&[1.0, 2.0, 0.5]);
    let after = whittle_spec(&[1.0, 2.75, 0.5]); // class 1's cost drifts

    let mut svc = IndexService::new();
    svc.build(&before);
    let warm = svc.build(&after);
    let s = svc.stats();
    // Classes 0 and 2 are untouched: verbatim row copies.  Class 1 shares
    // its chain (a, d, truncation, beta) with its old self, so the drift
    // re-runs only the cost half of the solves against cached idle solves.
    assert_eq!(s.whittle_rows_reused, 2);
    assert_eq!(s.whittle_rows_warm, 1, "cost drift must warm-start");
    assert_eq!(s.whittle_rows_cold, 3, "only the initial build was cold");

    let cold = IndexService::new().build(&after);
    assert_same_bits(&cold, &warm);
}

#[test]
fn arrival_rate_drift_is_cold_for_the_drifted_class_only() {
    // Class 1 owns the uniformization clock (λ + µ = 0.5 + 2.5) in both
    // arms, so drifting class 0's arrival rate leaves class 1's key (and
    // the clock itself) untouched.
    let mk = |arrival0: f64| TierSpec {
        kind: TableKind::Whittle { truncation: 40 },
        classes: vec![
            JobClass::new(0, arrival0, dyn_dist(Exponential::with_mean(0.8)), 1.0),
            JobClass::new(1, 0.5, dyn_dist(Exponential::with_mean(0.4)), 2.0),
        ],
    };
    let mut svc = IndexService::new();
    svc.build(&mk(0.3));
    let before = mk(0.21);
    let warm = svc.build(&before);
    let s = svc.stats();
    assert_eq!(s.whittle_rows_reused, 1, "undrifted class copies its row");
    assert_eq!(s.whittle_rows_cold, 3, "drifted chain cannot warm-start");
    assert_eq!(s.whittle_rows_warm, 0);

    assert_same_bits(&IndexService::new().build(&before), &warm);
}

#[test]
fn gittins_cost_drift_reuses_cached_grid_suprema() {
    let before = gittins_spec(&[1.0, 2.0, 0.5]);
    let after = gittins_spec(&[4.0, 2.0, 0.125]);

    let mut svc = IndexService::new();
    svc.build(&before);
    assert_eq!(svc.stats().gittins_rates_computed, 3);

    let warm = svc.build(&after);
    let s = svc.stats();
    // The grid supremum is weight-independent: every drifted cost is a
    // cache hit repriced with one multiply.
    assert_eq!(s.gittins_rates_reused, 3);
    assert_eq!(s.gittins_rates_computed, 3);

    assert_same_bits(&IndexService::new().build(&after), &warm);
}

#[test]
fn static_kinds_build_single_column_tables() {
    let mut svc = IndexService::new();
    let fifo = svc.build(&TierSpec {
        kind: TableKind::Fifo,
        classes: classes(&[1.0, 2.0]),
    });
    assert_eq!((fifo.classes(), fifo.stride()), (2, 1));
    assert_eq!(fifo.lookup(0, 10_000).to_bits(), 0.0f64.to_bits());

    let cmu = svc.build(&TierSpec {
        kind: TableKind::Cmu,
        classes: classes(&[1.0, 2.0]),
    });
    assert_eq!((cmu.classes(), cmu.stride()), (2, 1));
    // cµ is static in queue length: saturation returns the same index.
    assert_eq!(
        cmu.lookup(1, 0).to_bits(),
        cmu.lookup(1, usize::MAX).to_bits()
    );
    assert_eq!(svc.stats().tables_built, 2);
}

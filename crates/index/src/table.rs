//! The flat SoA index table and its lookup paths.

use ss_core::discipline::Discipline;

/// A tier's priority indices, tabulated into one contiguous slab.
///
/// Layout is class-major: entry `(class, len)` lives at
/// `class * stride + min(len, stride - 1)`.  The stride is the number of
/// tabulated queue lengths per class (truncation boundary + 1 for dynamic
/// disciplines, 1 for static ones, whose index ignores the backlog).
///
/// ## Saturation contract
///
/// Lookups never fail on the length axis: any `len >= stride` clamps to
/// the boundary entry `stride - 1`, which the builder guarantees holds the
/// boundary index of the underlying solver (for Whittle, the ironed index
/// of the truncated chain's last state; for static tables, the class's
/// only index).  The class axis is *not* saturating — a class id outside
/// the tier's class list is a caller bug and panics on the bounds check.
///
/// ## NaN policy
///
/// Construction rejects NaN entries outright.  ±∞ is allowed: `-∞` is the
/// deliberate "never compete" pin on empty-state Whittle rows, and `+∞`
/// is the Gittins "numerically complete" top priority.
#[derive(Debug, Clone)]
pub struct IndexTable {
    name: String,
    classes: usize,
    stride: usize,
    slab: Vec<f64>,
}

impl IndexTable {
    /// Build from per-class rows (all the same length).  Hard-errors on
    /// empty input, ragged rows, or any NaN entry.
    pub fn from_rows(name: impl Into<String>, rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "index table must cover >= 1 class");
        let stride = rows[0].len();
        assert!(stride >= 1, "index table rows must hold >= 1 entry");
        let mut slab = Vec::with_capacity(rows.len() * stride);
        for (class, row) in rows.iter().enumerate() {
            assert_eq!(
                row.len(),
                stride,
                "class {class}: ragged row ({} entries, expected {stride})",
                row.len()
            );
            for (len, &v) in row.iter().enumerate() {
                assert!(
                    !v.is_nan(),
                    "class {class}, queue length {len}: NaN priority index rejected at build time"
                );
                slab.push(v);
            }
        }
        Self {
            name: name.into(),
            classes: rows.len(),
            stride,
            slab,
        }
    }

    /// Number of classes (rows).
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Tabulated entries per class (truncation boundary + 1).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// One class's row, by queue length `0..stride`.
    pub fn row(&self, class: usize) -> &[f64] {
        &self.slab[class * self.stride..(class + 1) * self.stride]
    }

    /// The whole slab (class-major), e.g. for bit-level comparisons.
    pub fn slab(&self) -> &[f64] {
        &self.slab
    }

    /// Single lookup: the index of `(class, len)`, saturating on the
    /// length axis.  Zero-allocation and branch-light — this is the hot
    /// path the fabric's `select_class` scan drives.
    #[inline]
    pub fn lookup(&self, class: usize, len: usize) -> f64 {
        self.slab[class * self.stride + len.min(self.stride - 1)]
    }

    /// Batched lookup: resolve every `(class, len)` query into `out`
    /// (cleared first) and return the filled slice.  Reusing one buffer
    /// across calls makes the steady state allocation-free; the loop is a
    /// straight scan over the query stream with no per-query dispatch.
    pub fn lookup_batch<'a>(&self, queries: &[(u32, u32)], out: &'a mut Vec<f64>) -> &'a [f64] {
        out.clear();
        out.reserve(queries.len());
        let cap = self.stride - 1;
        for &(class, len) in queries {
            out.push(self.slab[class as usize * self.stride + (len as usize).min(cap)]);
        }
        out.as_slice()
    }
}

impl Discipline for IndexTable {
    fn name(&self) -> &str {
        &self.name
    }

    fn class_index(&self, class: usize, waiting: usize) -> f64 {
        self.lookup(class, waiting)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> IndexTable {
        IndexTable::from_rows(
            "test",
            &[
                vec![f64::NEG_INFINITY, 1.0, 2.0, 2.5],
                vec![0.0, 4.0, 4.0, 4.0],
            ],
        )
    }

    #[test]
    fn lookup_addresses_class_major_and_saturates() {
        let t = table();
        assert_eq!((t.classes(), t.stride()), (2, 4));
        assert_eq!(t.lookup(0, 2), 2.0);
        assert_eq!(t.lookup(1, 1), 4.0);
        // Saturation: at and beyond the boundary, exactly the boundary
        // entry — pinned by bits, not approximate equality.
        let boundary = t.lookup(0, 3).to_bits();
        for len in [3usize, 4, 40, usize::MAX] {
            assert_eq!(t.lookup(0, len).to_bits(), boundary);
        }
    }

    #[test]
    fn batch_matches_single_lookups_bit_for_bit() {
        let t = table();
        let queries: Vec<(u32, u32)> = (0..2u32)
            .flat_map(|c| (0..9u32).map(move |l| (c, l)))
            .collect();
        let mut buf = Vec::new();
        let got = t.lookup_batch(&queries, &mut buf);
        assert_eq!(got.len(), queries.len());
        for (&(c, l), &v) in queries.iter().zip(got) {
            assert_eq!(v.to_bits(), t.lookup(c as usize, l as usize).to_bits());
            assert_eq!(v.to_bits(), t.class_index(c as usize, l as usize).to_bits());
        }
    }

    #[test]
    fn batch_buffer_is_reused_without_growth() {
        let t = table();
        let queries = vec![(0u32, 1u32); 64];
        let mut buf = Vec::new();
        t.lookup_batch(&queries, &mut buf);
        let cap = buf.capacity();
        for _ in 0..10 {
            t.lookup_batch(&queries, &mut buf);
        }
        assert_eq!(
            buf.capacity(),
            cap,
            "steady-state batches must not reallocate"
        );
    }

    #[test]
    fn infinities_are_legal_entries() {
        let t = table();
        assert_eq!(t.lookup(0, 0), f64::NEG_INFINITY);
    }

    #[test]
    #[should_panic(expected = "NaN priority index rejected")]
    fn nan_entries_are_a_build_error() {
        IndexTable::from_rows("bad", &[vec![0.0, f64::NAN]]);
    }

    #[test]
    #[should_panic(expected = "ragged row")]
    fn ragged_rows_are_a_build_error() {
        IndexTable::from_rows("bad", &[vec![0.0, 1.0], vec![0.0]]);
    }
}

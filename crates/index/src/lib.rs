//! # ss-index — the low-latency index service
//!
//! The paper's central objects — priority indices (cµ, Gittins, Whittle,
//! Klimov) — are *computed* elsewhere in this workspace by bisection, DP
//! and linear solves.  This crate is the **serving layer** between those
//! solvers and the decision loops that consume their output millions of
//! times per simulated second: it tabulates every discipline's indices
//! once into flat, cache-friendly structure-of-arrays slabs, answers
//! single lookups with one bounds-checked load (zero allocation, no
//! virtual dispatch needed on the monomorphic path), answers batched
//! lookups over a caller-owned buffer, and rebuilds tables incrementally
//! when scenario parameters drift — reusing every piece of converged
//! solver state whose inputs did not change, bit-for-bit.
//!
//! ## Architecture
//!
//! * [`IndexTable`] — one immutable SoA slab per tier: `classes × stride`
//!   contiguous `f64`s, `(class, queue_len)`-addressed with explicit
//!   saturation at the truncation boundary (`len ≥ stride` clamps to the
//!   last tabulated entry, which the build guarantees is the boundary
//!   index — never a garbage read or a sentinel).  NaN entries are a hard
//!   **build-time** error: a NaN priority index must never reach a
//!   runtime comparison, where it would lose every strict `>` and make
//!   selection position-dependent.
//! * [`TierSpec`] / [`TableKind`] — the solver-agnostic description of
//!   what to tabulate (which discipline, over which job classes).
//! * [`IndexService`] — the stateful builder: owns the warm-start caches
//!   (Whittle idle-time Thomas solves keyed by exact chain bits, Gittins
//!   grid suprema keyed by a distribution fingerprint, finished rows keyed
//!   by full parameter bits) and reports what it reused via
//!   [`RebuildStats`].  A warm rebuild is **bit-identical** to a cold one
//!   by construction: caches are keyed on the exact bits of every input
//!   the cached computation consumed, so a hit replays the identical
//!   floating-point history.
//!
//! The service fabric (`ss-fabric`) builds its tier disciplines through
//! this crate; the `index_service` bench target and its committed
//! `BENCH_index_service.json` baseline (CI perf-budget gate) measure the
//! decisions/second the tables serve at realistic sizes.

pub mod service;
pub mod table;

pub use service::{IndexService, RebuildStats, TableKind, TierSpec};
pub use table::IndexTable;

/// Tabulate one tier's discipline from a cold start (no cache carried
/// across calls).  For repeated builds over drifting parameters, hold an
/// [`IndexService`] instead.
pub fn build_table(spec: &TierSpec) -> IndexTable {
    IndexService::new().build(spec)
}

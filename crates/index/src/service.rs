//! The stateful table builder: cold builds, warm-start rebuilds, and the
//! reuse accounting that makes the warm path auditable.

use std::collections::HashMap;
use std::sync::Arc;

use ss_bandits::discipline::{
    discounted_whittle_table_warm, whittle_uniformization_clock, WhittleSolveCache,
    WHITTLE_DISCOUNT,
};
use ss_batch::discipline::GittinsGrid;
use ss_batch::preemptive::gittins_service_rate;
use ss_core::discipline::Discipline;
use ss_core::job::JobClass;
use ss_distributions::DynDist;
use ss_queueing::discipline::cmu_discipline;

use crate::table::IndexTable;

/// Which discipline a tier tabulates.
#[derive(Debug, Clone, Copy)]
pub enum TableKind {
    /// Constant index 0 for every class — global FIFO via the tie-break.
    Fifo,
    /// The cµ rule: static per-class index `c_j · µ_j`.
    Cmu,
    /// Gittins service index at zero attained service, on the given grid.
    Gittins(GittinsGrid),
    /// Discounted Whittle indices of the per-class queue-length projects,
    /// truncated at `truncation` (states `0..=truncation`).
    Whittle { truncation: usize },
}

impl TableKind {
    /// Short stable key, matching the legacy disciplines' `name()`s (the
    /// report lines and conformance fixtures depend on these strings).
    pub fn key(&self) -> &'static str {
        match self {
            Self::Fifo => "fifo",
            Self::Cmu => "cmu",
            Self::Gittins(_) => "gittins",
            Self::Whittle { .. } => "whittle",
        }
    }
}

/// What one tier's table is built from: the discipline kind and the job
/// classes (arrival rate, service distribution, holding cost) it ranks.
#[derive(Clone)]
pub struct TierSpec {
    pub kind: TableKind,
    pub classes: Vec<JobClass>,
}

/// Reuse accounting of an [`IndexService`]'s lifetime, for tests and
/// rebuild telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RebuildStats {
    /// Tables built (cold or warm).
    pub tables_built: u64,
    /// Whittle rows copied verbatim from the row cache (nothing drifted).
    pub whittle_rows_reused: u64,
    /// Whittle rows rebuilt with cached idle solves (only the holding
    /// cost drifted: half the Thomas solves skipped).
    pub whittle_rows_warm: u64,
    /// Whittle rows built entirely from scratch.
    pub whittle_rows_cold: u64,
    /// Gittins grid suprema served from cache (one multiply per row).
    pub gittins_rates_reused: u64,
    /// Gittins grid suprema computed fresh.
    pub gittins_rates_computed: u64,
}

/// Exact-bits key of one Whittle row: `(a, d, cost, truncation)` plus the
/// discount.  The uniformization clock is folded into `a` and `d`, so a
/// drift anywhere in the class set that moves the clock changes every key
/// — stale reuse is structurally impossible.
type WhittleRowKey = (u64, u64, u64, usize, u64);

/// Key of one cached Gittins grid supremum: the distribution fingerprint
/// plus the grid's exact parameter bits.
type GittinsRateKey = (String, [u64; 10], (u64, u64, usize));

/// Fingerprint of a service distribution as consumed by the Gittins grid
/// supremum: its family/parameter description, its mean, and its survival
/// function probed on a geometric ladder spanning the grid's quantum
/// range — all by exact bits.  Two distributions that collide on every
/// probe yet differ between them could alias; the distribution families
/// this workspace ships are parameterized by strictly fewer degrees of
/// freedom than the probe count, so the fingerprint pins them exactly
/// (property-tested in `tests/bitmatch_props.rs`).
fn dist_fingerprint(dist: &DynDist, grid: &GittinsGrid) -> (String, [u64; 10]) {
    let mut probes = [0u64; 10];
    probes[0] = dist.mean().to_bits();
    let ratio = (grid.horizon / grid.min_quantum).powf(1.0 / 8.0);
    let mut s = grid.min_quantum;
    for p in probes.iter_mut().skip(1) {
        *p = dist.sf(s).to_bits();
        s *= ratio;
    }
    (dist.describe(), probes)
}

fn grid_key(grid: &GittinsGrid) -> (u64, u64, usize) {
    (
        grid.min_quantum.to_bits(),
        grid.horizon.to_bits(),
        grid.grid_points,
    )
}

/// The index service: builds [`IndexTable`]s and carries warm-start state
/// across builds.
///
/// ## Warm-start policy
///
/// Every cache is keyed on the **exact bits** of every input the cached
/// computation consumed, so a hit replays the identical floating-point
/// history and a warm rebuild is bit-identical to a cold one:
///
/// * finished Whittle rows, keyed by `(a, d, cost, truncation, β)` — a
///   scenario whose class didn't drift at all costs one hash lookup and a
///   row copy;
/// * Whittle idle-time Thomas solves, keyed by `(a, d, truncation, β)` —
///   a pure holding-cost drift reuses them and re-runs only the
///   cost-to-go half of the solves;
/// * Gittins grid suprema, keyed by distribution fingerprint + grid — a
///   holding-cost drift reprices the row with one multiply.
///
/// Static cµ rows are a multiply each and are always recomputed.
#[derive(Default)]
pub struct IndexService {
    whittle_idle: WhittleSolveCache,
    whittle_rows: HashMap<WhittleRowKey, Vec<f64>>,
    gittins_rates: HashMap<GittinsRateKey, f64>,
    stats: RebuildStats,
}

impl IndexService {
    /// An empty service (all caches cold).
    pub fn new() -> Self {
        Self::default()
    }

    /// Lifetime reuse counters.
    pub fn stats(&self) -> RebuildStats {
        self.stats
    }

    /// Tabulate one tier per its spec, warm-starting from whatever cached
    /// state still applies.  The result is a pure function of `spec` —
    /// cache state can only change how fast it is produced.
    pub fn build(&mut self, spec: &TierSpec) -> IndexTable {
        assert!(!spec.classes.is_empty(), "need >= 1 class");
        let rows: Vec<Vec<f64>> = match &spec.kind {
            TableKind::Fifo => spec.classes.iter().map(|_| vec![0.0]).collect(),
            TableKind::Cmu => cmu_discipline(&spec.classes)
                .indices()
                .iter()
                .map(|&v| vec![v])
                .collect(),
            TableKind::Gittins(grid) => spec
                .classes
                .iter()
                .map(|c| vec![self.gittins_index(c, grid)])
                .collect(),
            TableKind::Whittle { truncation } => {
                assert!(*truncation >= 2, "truncation below 2 states is degenerate");
                let clock = whittle_uniformization_clock(&spec.classes);
                spec.classes
                    .iter()
                    .map(|c| self.whittle_row(c, clock, *truncation))
                    .collect()
            }
        };
        self.stats.tables_built += 1;
        IndexTable::from_rows(spec.kind.key(), &rows)
    }

    /// [`IndexService::build`] boxed as a fabric discipline.
    pub fn build_arc(&mut self, spec: &TierSpec) -> Arc<dyn Discipline> {
        Arc::new(self.build(spec))
    }

    /// One class's Gittins index at zero attained service — the same
    /// `weight · rate` (or passed-through `+∞`) arithmetic as
    /// `ss_batch::discipline::gittins_discipline`, with the grid supremum
    /// cached across builds.
    fn gittins_index(&mut self, class: &JobClass, grid: &GittinsGrid) -> f64 {
        let (describe, probes) = dist_fingerprint(&class.service, grid);
        let key = (describe, probes, grid_key(grid));
        let rate = match self.gittins_rates.get(&key) {
            Some(&rate) => {
                self.stats.gittins_rates_reused += 1;
                rate
            }
            None => {
                let rate = gittins_service_rate(
                    class.service.as_ref(),
                    0.0,
                    grid.min_quantum,
                    grid.horizon,
                    grid.grid_points,
                );
                self.stats.gittins_rates_computed += 1;
                self.gittins_rates.insert(key, rate);
                rate
            }
        };
        if rate.is_infinite() {
            f64::INFINITY
        } else {
            class.holding_cost * rate
        }
    }

    /// One class's Whittle row (states `0..=truncation`, empty state
    /// pinned to `-∞`), replaying exactly the arithmetic of
    /// `WhittleQueueDiscipline::new` with row- and idle-solve-level reuse.
    fn whittle_row(&mut self, class: &JobClass, clock: f64, truncation: usize) -> Vec<f64> {
        let a = class.arrival_rate / clock;
        let d = class.service_rate() / clock;
        let key = (
            a.to_bits(),
            d.to_bits(),
            class.holding_cost.to_bits(),
            truncation,
            WHITTLE_DISCOUNT.to_bits(),
        );
        if let Some(row) = self.whittle_rows.get(&key) {
            self.stats.whittle_rows_reused += 1;
            return row.clone();
        }
        let before = self.whittle_idle.hits;
        let idle = self
            .whittle_idle
            .idle_solves(a, d, truncation, WHITTLE_DISCOUNT);
        let mut row = discounted_whittle_table_warm(
            a,
            d,
            class.holding_cost,
            truncation,
            WHITTLE_DISCOUNT,
            idle,
        );
        row[0] = f64::NEG_INFINITY;
        if self.whittle_idle.hits > before {
            self.stats.whittle_rows_warm += 1;
        } else {
            self.stats.whittle_rows_cold += 1;
        }
        self.whittle_rows.insert(key, row.clone());
        row
    }
}

//! Gittins-index adapter onto the common fabric [`Discipline`] trait.
//!
//! For a nonpreemptive server the relevant Gittins quantity is the service
//! index *at zero attained service*: once a request starts it runs to
//! completion, so the only decision is which class to start, and the index
//! of a fresh class-`j` request is `G_j(0)` from
//! [`crate::preemptive::gittins_service_index`].  That makes the adapter a
//! static per-class table — for exponential service it collapses to cµ
//! (memorylessness), while DHR/IHR service produces genuinely different
//! priorities than the mean-based cµ rule.

use ss_core::discipline::StaticIndex;
use ss_core::job::JobClass;

use crate::preemptive::gittins_service_index;

/// Resolution knobs for the quantile grid behind the Gittins index
/// computation; the defaults match the preemptive simulator's oracle tests.
#[derive(Debug, Clone, Copy)]
pub struct GittinsGrid {
    /// Smallest stopping quantum considered in the sup over stopping times.
    pub min_quantum: f64,
    /// Truncation horizon for the service distributions.
    pub horizon: f64,
    /// Number of candidate stopping points on `[min_quantum, horizon]`.
    pub grid_points: usize,
}

impl Default for GittinsGrid {
    fn default() -> Self {
        Self {
            min_quantum: 1e-3,
            horizon: 60.0,
            grid_points: 400,
        }
    }
}

/// The Gittins rule as a nonpreemptive fabric discipline: classes ranked by
/// their weighted Gittins service index at zero attained service.
pub fn gittins_discipline(classes: &[JobClass], grid: GittinsGrid) -> StaticIndex {
    let indices = classes
        .iter()
        .map(|c| {
            gittins_service_index(
                c.service.as_ref(),
                c.holding_cost,
                0.0,
                grid.min_quantum,
                grid.horizon,
                grid.grid_points,
            )
        })
        .collect();
    StaticIndex::new("gittins", indices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_core::discipline::Discipline;
    use ss_distributions::{dyn_dist, Exponential, HyperExponential};

    #[test]
    fn exponential_service_recovers_the_cmu_order() {
        // Memoryless service: Gittins-at-zero is proportional to cµ, so the
        // priority ORDER must match exactly.
        let classes = vec![
            JobClass::new(0, 0.1, dyn_dist(Exponential::with_mean(1.0)), 1.0), // cµ = 1
            JobClass::new(1, 0.1, dyn_dist(Exponential::with_mean(0.25)), 1.0), // cµ = 4
            JobClass::new(2, 0.1, dyn_dist(Exponential::with_mean(1.0)), 2.5), // cµ = 2.5
        ];
        let d = gittins_discipline(&classes, GittinsGrid::default());
        assert_eq!(d.name(), "gittins");
        assert!(d.class_index(1, 1) > d.class_index(2, 1));
        assert!(d.class_index(2, 1) > d.class_index(0, 1));
    }

    #[test]
    fn index_is_static_in_queue_length() {
        let classes = vec![JobClass::new(
            0,
            0.2,
            dyn_dist(HyperExponential::new(vec![0.5, 0.5], vec![2.0, 0.25])),
            1.0,
        )];
        let d = gittins_discipline(&classes, GittinsGrid::default());
        assert_eq!(
            d.class_index(0, 1).to_bits(),
            d.class_index(0, 77).to_bits()
        );
        assert!(d.class_index(0, 1).is_finite());
    }
}

//! Stochastic flow shops: `m` machines in series (Wie–Pinedo 1986).
//!
//! Every job visits machine 1, then machine 2, …, then machine `m`;
//! a permutation schedule processes the jobs in the same order on every
//! machine (with unlimited intermediate buffers).  The module provides
//!
//! * a permutation-schedule simulator (expected makespan / flowtime by
//!   Monte Carlo),
//! * the classical deterministic recursion used per realisation,
//! * Johnson-type and Talwar-type orderings for two-machine shops
//!   (for exponential processing times Talwar's rule — sort by
//!   nonincreasing `λ1 - λ2`, i.e. the index `λ_{i,1} - λ_{i,2}` — minimises
//!   the expected makespan), and
//! * an exhaustive search over permutations for small instances, used by
//!   the tests to confirm Talwar's rule on exponential two-machine shops.

use rand::RngCore;
use ss_distributions::DynDist;

/// A stochastic flow-shop instance: `stage_dists[i][k]` is the processing
/// time distribution of job `i` on machine (stage) `k`.
#[derive(Debug, Clone)]
pub struct FlowShopInstance {
    /// Per-job, per-stage distributions.
    pub stage_dists: Vec<Vec<DynDist>>,
}

impl FlowShopInstance {
    /// Create an instance; all jobs must have the same number of stages.
    pub fn new(stage_dists: Vec<Vec<DynDist>>) -> Self {
        assert!(!stage_dists.is_empty(), "need at least one job");
        let stages = stage_dists[0].len();
        assert!(stages >= 1, "need at least one stage");
        assert!(
            stage_dists.iter().all(|row| row.len() == stages),
            "ragged stage matrix"
        );
        Self { stage_dists }
    }

    /// Number of jobs.
    pub fn num_jobs(&self) -> usize {
        self.stage_dists.len()
    }

    /// Number of machines (stages).
    pub fn num_stages(&self) -> usize {
        self.stage_dists[0].len()
    }
}

/// Deterministic permutation-flow-shop recursion on realised durations:
/// `C[i][k] = max(C[i-1][k], C[i][k-1]) + p[i][k]` in permutation order.
/// Returns (makespan, total flowtime) for the realisation.
pub fn realised_permutation_schedule(durations: &[Vec<f64>], order: &[usize]) -> (f64, f64) {
    let stages = durations[0].len();
    let mut prev_row = vec![0.0f64; stages];
    let mut total_flowtime = 0.0;
    for &job in order {
        let mut row = vec![0.0f64; stages];
        for k in 0..stages {
            let ready_machine = prev_row[k];
            let ready_job = if k == 0 { 0.0 } else { row[k - 1] };
            row[k] = ready_machine.max(ready_job) + durations[job][k];
        }
        total_flowtime += row[stages - 1];
        prev_row = row;
    }
    (prev_row[stages - 1], total_flowtime)
}

/// Simulate one realisation of a permutation schedule; returns
/// `(makespan, total flowtime)`.
pub fn simulate_permutation(
    instance: &FlowShopInstance,
    order: &[usize],
    rng: &mut dyn RngCore,
) -> (f64, f64) {
    assert_eq!(order.len(), instance.num_jobs());
    let durations: Vec<Vec<f64>> = instance
        .stage_dists
        .iter()
        .map(|row| row.iter().map(|d| d.sample(rng)).collect())
        .collect();
    realised_permutation_schedule(&durations, order)
}

/// Monte-Carlo estimate of the expected makespan of a permutation schedule.
pub fn expected_makespan(
    instance: &FlowShopInstance,
    order: &[usize],
    replications: usize,
    rng: &mut dyn RngCore,
) -> f64 {
    let mut acc = 0.0;
    for _ in 0..replications {
        acc += simulate_permutation(instance, order, rng).0;
    }
    acc / replications as f64
}

/// Talwar's rule for two-machine shops with exponential processing times:
/// order jobs by nonincreasing `λ_{i,1} - λ_{i,2}` (rate on machine 1 minus
/// rate on machine 2).  For exponential stages this minimises the expected
/// makespan over permutation schedules.
pub fn talwar_order(rates_stage1: &[f64], rates_stage2: &[f64]) -> Vec<usize> {
    assert_eq!(rates_stage1.len(), rates_stage2.len());
    let mut order: Vec<usize> = (0..rates_stage1.len()).collect();
    order.sort_by(|&a, &b| {
        let ka = rates_stage1[a] - rates_stage2[a];
        let kb = rates_stage1[b] - rates_stage2[b];
        kb.partial_cmp(&ka).unwrap()
    });
    order
}

/// Johnson's rule applied to the *mean* processing times (a natural
/// deterministic heuristic for stochastic shops): job `i` goes early if
/// `E[p_{i,1}] < E[p_{i,2}]`, sorted ascending by `E[p_{i,1}]`; the rest go
/// late sorted descending by `E[p_{i,2}]`.
pub fn johnson_order_on_means(instance: &FlowShopInstance) -> Vec<usize> {
    assert_eq!(
        instance.num_stages(),
        2,
        "Johnson's rule applies to 2-machine shops"
    );
    let means: Vec<(f64, f64)> = instance
        .stage_dists
        .iter()
        .map(|row| (row[0].mean(), row[1].mean()))
        .collect();
    let mut early: Vec<usize> = (0..means.len())
        .filter(|&i| means[i].0 <= means[i].1)
        .collect();
    let mut late: Vec<usize> = (0..means.len())
        .filter(|&i| means[i].0 > means[i].1)
        .collect();
    early.sort_by(|&a, &b| means[a].0.partial_cmp(&means[b].0).unwrap());
    late.sort_by(|&a, &b| means[b].1.partial_cmp(&means[a].1).unwrap());
    early.extend(late);
    early
}

/// Exhaustive search over permutations minimising the Monte-Carlo expected
/// makespan (common random numbers across permutations); returns
/// `(best_order, best_value)`.  Intended for `n <= 7`.
pub fn exhaustive_best_permutation(
    instance: &FlowShopInstance,
    replications: usize,
    rng: &mut dyn RngCore,
) -> (Vec<usize>, f64) {
    let n = instance.num_jobs();
    assert!(n <= 8, "exhaustive permutation search limited to 8 jobs");
    // Pre-sample realisations so every permutation sees the same durations
    // (common random numbers make the comparison exact in distribution).
    let samples: Vec<Vec<Vec<f64>>> = (0..replications)
        .map(|_| {
            instance
                .stage_dists
                .iter()
                .map(|row| row.iter().map(|d| d.sample(rng)).collect())
                .collect()
        })
        .collect();
    let evaluate = |order: &[usize]| -> f64 {
        samples
            .iter()
            .map(|durations| realised_permutation_schedule(durations, order).0)
            .sum::<f64>()
            / replications as f64
    };
    let mut perm: Vec<usize> = (0..n).collect();
    let mut best_order = perm.clone();
    let mut best_value = evaluate(&perm);
    let mut c = vec![0usize; n];
    let mut i = 0;
    while i < n {
        if c[i] < i {
            if i % 2 == 0 {
                perm.swap(0, i);
            } else {
                perm.swap(c[i], i);
            }
            let value = evaluate(&perm);
            if value < best_value {
                best_value = value;
                best_order = perm.clone();
            }
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    (best_order, best_value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use ss_distributions::{dyn_dist, Deterministic, Exponential};

    fn det_shop() -> FlowShopInstance {
        // Two jobs, two machines, deterministic: p = [[3, 2], [1, 4]].
        FlowShopInstance::new(vec![
            vec![
                dyn_dist(Deterministic::new(3.0)),
                dyn_dist(Deterministic::new(2.0)),
            ],
            vec![
                dyn_dist(Deterministic::new(1.0)),
                dyn_dist(Deterministic::new(4.0)),
            ],
        ])
    }

    #[test]
    fn deterministic_recursion_matches_hand_computation() {
        let shop = det_shop();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        // Order [0, 1]: machine1 completions 3, 4; machine2: 5, 9.
        let (mk, flow) = simulate_permutation(&shop, &[0, 1], &mut rng);
        assert!((mk - 9.0).abs() < 1e-12);
        assert!((flow - 14.0).abs() < 1e-12);
        // Order [1, 0]: machine1: 1, 4; machine2: 5, 7.
        let (mk2, _) = simulate_permutation(&shop, &[1, 0], &mut rng);
        assert!((mk2 - 7.0).abs() < 1e-12);
    }

    #[test]
    fn johnson_order_on_det_instance_is_optimal() {
        // Johnson's rule on the deterministic instance picks [1, 0].
        let shop = det_shop();
        assert_eq!(johnson_order_on_means(&shop), vec![1, 0]);
    }

    #[test]
    fn single_stage_flow_shop_flowtime_matches_single_machine() {
        let shop = FlowShopInstance::new(vec![
            vec![dyn_dist(Deterministic::new(2.0))],
            vec![dyn_dist(Deterministic::new(1.0))],
        ]);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let (mk, flow) = simulate_permutation(&shop, &[1, 0], &mut rng);
        assert!((mk - 3.0).abs() < 1e-12);
        assert!((flow - 4.0).abs() < 1e-12);
    }

    #[test]
    fn talwar_rule_matches_exhaustive_for_exponential_two_machine_shop() {
        // E-flow-shop claim: Talwar's index rule minimises the expected
        // makespan for exponential processing times; check against the
        // common-random-number exhaustive search on a 5-job instance.
        let r1 = [2.0, 0.8, 1.5, 3.0, 1.0];
        let r2 = [1.0, 2.0, 1.2, 0.7, 2.5];
        let jobs: Vec<Vec<DynDist>> = (0..5)
            .map(|i| {
                vec![
                    dyn_dist(Exponential::new(r1[i])),
                    dyn_dist(Exponential::new(r2[i])),
                ]
            })
            .collect();
        let shop = FlowShopInstance::new(jobs);
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let (_, best) = exhaustive_best_permutation(&shop, 4000, &mut rng);
        let talwar = talwar_order(&r1, &r2);
        let mut rng2 = ChaCha8Rng::seed_from_u64(99);
        // Evaluate Talwar on the same sample paths by regenerating them.
        let samples: Vec<Vec<Vec<f64>>> = (0..4000)
            .map(|_| {
                shop.stage_dists
                    .iter()
                    .map(|row| row.iter().map(|d| d.sample(&mut rng2)).collect())
                    .collect()
            })
            .collect();
        let talwar_value: f64 = samples
            .iter()
            .map(|d| realised_permutation_schedule(d, &talwar).0)
            .sum::<f64>()
            / samples.len() as f64;
        // Talwar should be within Monte-Carlo noise of the best permutation.
        assert!(
            talwar_value <= best * 1.02 + 1e-9,
            "Talwar {talwar_value} should be near the exhaustive best {best}"
        );
    }
}

//! Exact dynamic programming for exponential jobs on identical parallel
//! machines.
//!
//! With exponential processing times the system is Markov on the set of
//! remaining jobs: whichever subset `A` of (at most `m`) jobs is in service,
//! the next completion arrives after an `Exp(Λ)` time with
//! `Λ = Σ_{j∈A} λ_j`, and it is job `j` with probability `λ_j / Λ`
//! (memorylessness means no attained-service bookkeeping is needed).  This
//! yields closed recursions over the `2^n` subsets for
//!
//! * the expected total (or weighted) flowtime of any *priority list*
//!   policy,
//! * the expected makespan of any priority list policy,
//! * the optimal value over **all** non-idling Markov policies (minimising
//!   over the choice of served subset at every state).
//!
//! These are the ground truths for experiments E3 and E4: they verify that
//! SEPT attains the optimal flowtime (Glazebrook 1979) and LEPT the optimal
//! makespan (Bruno–Downey–Frederickson 1981) for exponential jobs, and they
//! quantify how much worse the opposite rule is.

/// An instance of exponential jobs described by their completion rates and
/// (optional) holding-cost weights.
#[derive(Debug, Clone)]
pub struct ExpParallelInstance {
    /// Completion rate `λ_i` of each job (mean processing time `1/λ_i`).
    pub rates: Vec<f64>,
    /// Holding-cost weight of each job (use 1.0 for unweighted flowtime).
    pub weights: Vec<f64>,
}

impl ExpParallelInstance {
    /// Create an unweighted instance from rates.
    pub fn unweighted(rates: Vec<f64>) -> Self {
        assert!(!rates.is_empty() && rates.iter().all(|&r| r > 0.0));
        let n = rates.len();
        Self {
            rates,
            weights: vec![1.0; n],
        }
    }

    /// Create a weighted instance.
    pub fn weighted(rates: Vec<f64>, weights: Vec<f64>) -> Self {
        assert_eq!(rates.len(), weights.len());
        assert!(!rates.is_empty() && rates.iter().all(|&r| r > 0.0));
        assert!(weights.iter().all(|&w| w >= 0.0));
        Self { rates, weights }
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// True if there are no jobs (never after construction).
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }

    fn check_size(&self) {
        assert!(self.len() <= 20, "exact DP limited to 20 jobs (2^n states)");
    }
}

/// Which jobs a priority list serves in state `mask`: the first
/// `min(m, |mask|)` list entries that are still present.
fn served_by_list(mask: u32, order: &[usize], machines: usize) -> Vec<usize> {
    let mut served = Vec::with_capacity(machines);
    for &j in order {
        if mask & (1 << j) != 0 {
            served.push(j);
            if served.len() == machines {
                break;
            }
        }
    }
    served
}

/// Expected *weighted flowtime* of the priority-list policy `order` on
/// `machines` identical machines.
///
/// Recursion: in state `R` (set of uncompleted jobs) with served set `A`,
/// all uncompleted jobs accrue holding cost until the next completion
/// (`E[Δ] = 1/Λ`), so
/// `F(R) = (Σ_{i∈R} w_i)/Λ + Σ_{j∈A} (λ_j/Λ) F(R \ {j})`.
pub fn list_policy_flowtime(
    instance: &ExpParallelInstance,
    order: &[usize],
    machines: usize,
) -> f64 {
    instance.check_size();
    assert_eq!(order.len(), instance.len());
    let n = instance.len();
    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    let mut value = vec![0.0f64; (full as usize) + 1];
    // Iterate masks in increasing popcount order implicitly: any mask's
    // successors (mask without one bit) are numerically smaller, so a plain
    // ascending loop is a valid topological order.
    for mask in 1..=full {
        let served = served_by_list(mask, order, machines);
        let lambda_total: f64 = served.iter().map(|&j| instance.rates[j]).sum();
        let weight_total: f64 = (0..n)
            .filter(|&i| mask & (1 << i) != 0)
            .map(|i| instance.weights[i])
            .sum();
        let mut v = weight_total / lambda_total;
        for &j in &served {
            v += instance.rates[j] / lambda_total * value[(mask & !(1 << j)) as usize];
        }
        value[mask as usize] = v;
    }
    value[full as usize]
}

/// Expected makespan of the priority-list policy `order`.
pub fn list_policy_makespan(
    instance: &ExpParallelInstance,
    order: &[usize],
    machines: usize,
) -> f64 {
    instance.check_size();
    assert_eq!(order.len(), instance.len());
    let n = instance.len();
    let full: u32 = (1u32 << n) - 1;
    let mut value = vec![0.0f64; (full as usize) + 1];
    for mask in 1..=full {
        let served = served_by_list(mask, order, machines);
        let lambda_total: f64 = served.iter().map(|&j| instance.rates[j]).sum();
        let mut v = 1.0 / lambda_total;
        for &j in &served {
            v += instance.rates[j] / lambda_total * value[(mask & !(1 << j)) as usize];
        }
        value[mask as usize] = v;
    }
    value[full as usize]
}

/// Enumerate all subsets of the set bits of `mask` with exactly `k`
/// elements.
fn k_subsets_of(mask: u32, k: usize) -> Vec<Vec<usize>> {
    let bits: Vec<usize> = (0..32).filter(|&i| mask & (1 << i) != 0).collect();
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(k);
    fn rec(
        bits: &[usize],
        k: usize,
        start: usize,
        current: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if current.len() == k {
            out.push(current.clone());
            return;
        }
        for i in start..bits.len() {
            current.push(bits[i]);
            rec(bits, k, i + 1, current, out);
            current.pop();
        }
    }
    rec(&bits, k, 0, &mut current, &mut out);
    out
}

/// Optimal expected weighted flowtime over all non-idling Markov policies
/// (the DP minimises over the served subset in every state).
pub fn optimal_flowtime(instance: &ExpParallelInstance, machines: usize) -> f64 {
    instance.check_size();
    let n = instance.len();
    let full: u32 = (1u32 << n) - 1;
    let mut value = vec![0.0f64; (full as usize) + 1];
    for mask in 1..=full {
        let present = mask.count_ones() as usize;
        let k = present.min(machines);
        let weight_total: f64 = (0..n)
            .filter(|&i| mask & (1 << i) != 0)
            .map(|i| instance.weights[i])
            .sum();
        let mut best = f64::INFINITY;
        for served in k_subsets_of(mask, k) {
            let lambda_total: f64 = served.iter().map(|&j| instance.rates[j]).sum();
            let mut v = weight_total / lambda_total;
            for &j in &served {
                v += instance.rates[j] / lambda_total * value[(mask & !(1 << j)) as usize];
            }
            best = best.min(v);
        }
        value[mask as usize] = best;
    }
    value[full as usize]
}

/// Optimal expected makespan over all non-idling Markov policies.
pub fn optimal_makespan(instance: &ExpParallelInstance, machines: usize) -> f64 {
    instance.check_size();
    let n = instance.len();
    let full: u32 = (1u32 << n) - 1;
    let mut value = vec![0.0f64; (full as usize) + 1];
    for mask in 1..=full {
        let present = mask.count_ones() as usize;
        let k = present.min(machines);
        let mut best = f64::INFINITY;
        for served in k_subsets_of(mask, k) {
            let lambda_total: f64 = served.iter().map(|&j| instance.rates[j]).sum();
            let mut v = 1.0 / lambda_total;
            for &j in &served {
                v += instance.rates[j] / lambda_total * value[(mask & !(1 << j)) as usize];
            }
            best = best.min(v);
        }
        value[mask as usize] = best;
    }
    value[full as usize]
}

/// The [`ss_core::instance::BatchInstance`] with the same exponential jobs
/// (rates and weights) as this exact instance — the bridge for driving the
/// [`crate::parallel`] Monte-Carlo list-schedule simulator against the DP
/// oracles above ([`list_policy_flowtime`], [`list_policy_makespan`]).
pub fn exp_batch_instance(instance: &ExpParallelInstance) -> ss_core::instance::BatchInstance {
    let mut builder = ss_core::instance::BatchInstance::builder();
    for (&rate, &weight) in instance.rates.iter().zip(&instance.weights) {
        builder = builder.job(
            weight,
            ss_distributions::dyn_dist(ss_distributions::Exponential::new(rate)),
        );
    }
    builder.build()
}

/// SEPT order for an exponential instance (largest rate = shortest mean first).
pub fn sept_order_exp(instance: &ExpParallelInstance) -> Vec<usize> {
    let mut order: Vec<usize> = (0..instance.len()).collect();
    order.sort_by(|&a, &b| instance.rates[b].partial_cmp(&instance.rates[a]).unwrap());
    order
}

/// LEPT order for an exponential instance (smallest rate first).
pub fn lept_order_exp(instance: &ExpParallelInstance) -> Vec<usize> {
    let mut order: Vec<usize> = (0..instance.len()).collect();
    order.sort_by(|&a, &b| instance.rates[a].partial_cmp(&instance.rates[b]).unwrap());
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_machine_single_job() {
        let inst = ExpParallelInstance::unweighted(vec![2.0]);
        assert!((list_policy_flowtime(&inst, &[0], 1) - 0.5).abs() < 1e-12);
        assert!((list_policy_makespan(&inst, &[0], 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_machine_flowtime_matches_closed_form() {
        // One machine: E[sum C] for order [0,1] = 1/l0 * 2? No:
        // E[C_first] = 1/l_first, E[C_second] = 1/l_first + 1/l_second.
        let inst = ExpParallelInstance::unweighted(vec![1.0, 0.5]);
        let v = list_policy_flowtime(&inst, &[0, 1], 1);
        assert!((v - (1.0 + 1.0 + 2.0)).abs() < 1e-12);
        let v2 = list_policy_flowtime(&inst, &[1, 0], 1);
        assert!((v2 - (2.0 + 2.0 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn two_machine_makespan_two_jobs() {
        // Both jobs start immediately; makespan = E[max(X1, X2)] =
        // 1/l1 + 1/l2 - 1/(l1+l2).
        let inst = ExpParallelInstance::unweighted(vec![1.0, 2.0]);
        let v = list_policy_makespan(&inst, &[0, 1], 2);
        let expected = 1.0 + 0.5 - 1.0 / 3.0;
        assert!((v - expected).abs() < 1e-12);
    }

    #[test]
    fn sept_is_optimal_for_flowtime() {
        // E3: SEPT equals the optimal non-idling Markov policy value.
        let inst = ExpParallelInstance::unweighted(vec![0.4, 2.5, 1.0, 3.0, 0.7, 1.8]);
        for machines in [2usize, 3] {
            let sept = list_policy_flowtime(&inst, &sept_order_exp(&inst), machines);
            let opt = optimal_flowtime(&inst, machines);
            assert!(
                (sept - opt).abs() < 1e-9,
                "m={machines}: SEPT {sept} vs optimal {opt}"
            );
            let lept = list_policy_flowtime(&inst, &lept_order_exp(&inst), machines);
            assert!(lept >= opt - 1e-9);
            assert!(lept > opt + 1e-6, "LEPT should be strictly worse here");
        }
    }

    #[test]
    fn lept_is_optimal_for_makespan() {
        // E4: LEPT equals the optimal non-idling Markov policy value.
        let inst = ExpParallelInstance::unweighted(vec![0.4, 2.5, 1.0, 3.0, 0.7, 1.8]);
        for machines in [2usize, 3] {
            let lept = list_policy_makespan(&inst, &lept_order_exp(&inst), machines);
            let opt = optimal_makespan(&inst, machines);
            assert!(
                (lept - opt).abs() < 1e-9,
                "m={machines}: LEPT {lept} vs optimal {opt}"
            );
            let sept = list_policy_makespan(&inst, &sept_order_exp(&inst), machines);
            assert!(sept >= opt - 1e-9);
        }
    }

    #[test]
    fn weighted_flowtime_single_machine_is_wsept() {
        // On one machine the optimal DP value must equal the WSEPT closed form.
        let inst = ExpParallelInstance::weighted(vec![1.0, 0.5, 2.0], vec![1.0, 3.0, 2.0]);
        // WSEPT order: index w*lambda = [1.0, 1.5, 4.0] -> order [2, 1, 0].
        let wsept = list_policy_flowtime(&inst, &[2, 1, 0], 1);
        let opt = optimal_flowtime(&inst, 1);
        assert!((wsept - opt).abs() < 1e-9, "WSEPT {wsept} vs opt {opt}");
    }

    #[test]
    fn k_subset_enumeration() {
        let subsets = k_subsets_of(0b1011, 2);
        assert_eq!(subsets.len(), 3);
        assert!(subsets.contains(&vec![0, 1]));
        assert!(subsets.contains(&vec![0, 3]));
        assert!(subsets.contains(&vec![1, 3]));
    }

    #[test]
    fn monte_carlo_agrees_with_exact_dp() {
        use rand::SeedableRng;
        use ss_distributions::{dyn_dist, Exponential};
        let rates = [1.0, 2.0, 0.5, 1.5];
        let inst = ExpParallelInstance::unweighted(rates.to_vec());
        let order = sept_order_exp(&inst);
        let exact = list_policy_flowtime(&inst, &order, 2);

        let mut builder = ss_core::instance::BatchInstance::builder();
        for &r in &rates {
            builder = builder.unweighted_job(dyn_dist(Exponential::new(r)));
        }
        let batch = builder.build();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(123);
        let reps = 60_000;
        let mc: f64 = (0..reps)
            .map(|_| {
                crate::parallel::simulate_list_schedule(&batch, &order, 2, &mut rng).total_flowtime
            })
            .sum::<f64>()
            / reps as f64;
        assert!(
            (mc - exact).abs() / exact < 0.02,
            "MC {mc} vs exact {exact}"
        );
    }
}

//! Single machine, nonpreemptive, expected weighted flowtime.
//!
//! This is the simplest model of §1.  For a *static list* (the survey's
//! admissible nonpreemptive nonanticipative policies reduce to static lists
//! when all jobs are present at time zero and no information accrues before
//! a job completes), linearity of expectation gives the closed form
//!
//! ```text
//! E[ Σ_i w_i C_i ]  =  Σ_j w_(j) Σ_{k <= j} E[ P_(k) ]
//! ```
//!
//! where `(j)` is the j-th job in the list.  Rothkopf (1966) showed the
//! minimiser is the WSEPT list.  The module provides the closed form, a
//! Monte-Carlo evaluator (used to validate the simulators), the exhaustive
//! optimum over all `n!` lists, and the adjacent-interchange test used by
//! the property-based tests.

use rand::RngCore;
use ss_core::instance::BatchInstance;

/// Exact expected weighted flowtime of a static list on one machine.
pub fn expected_weighted_flowtime(instance: &BatchInstance, order: &[usize]) -> f64 {
    assert_eq!(order.len(), instance.len(), "order must cover all jobs");
    let jobs = instance.jobs();
    let mut completion = 0.0;
    let mut total = 0.0;
    for &idx in order {
        completion += jobs[idx].mean_processing();
        total += jobs[idx].weight * completion;
    }
    total
}

/// Exact expected total (unweighted) flowtime of a static list.
pub fn expected_total_flowtime(instance: &BatchInstance, order: &[usize]) -> f64 {
    let jobs = instance.jobs();
    let mut completion = 0.0;
    let mut total = 0.0;
    for &idx in order {
        completion += jobs[idx].mean_processing();
        total += completion;
    }
    total
}

/// One Monte-Carlo realisation of the weighted flowtime of a static list.
pub fn sample_weighted_flowtime(
    instance: &BatchInstance,
    order: &[usize],
    rng: &mut dyn RngCore,
) -> f64 {
    let jobs = instance.jobs();
    let mut completion = 0.0;
    let mut total = 0.0;
    for &idx in order {
        completion += jobs[idx].dist.sample(rng);
        total += jobs[idx].weight * completion;
    }
    total
}

/// Exhaustive search over all `n!` static lists; returns `(best_order,
/// best_value)`.  Intended for `n <= 10`.
pub fn exhaustive_optimal_order(instance: &BatchInstance) -> (Vec<usize>, f64) {
    let n = instance.len();
    assert!(n <= 11, "exhaustive search is limited to n <= 11 (got {n})");
    let mut perm: Vec<usize> = (0..n).collect();
    let mut best_order = perm.clone();
    let mut best_value = expected_weighted_flowtime(instance, &perm);
    // Heap's algorithm, iterative.
    let mut c = vec![0usize; n];
    let mut i = 0;
    while i < n {
        if c[i] < i {
            if i % 2 == 0 {
                perm.swap(0, i);
            } else {
                perm.swap(c[i], i);
            }
            let value = expected_weighted_flowtime(instance, &perm);
            if value < best_value {
                best_value = value;
                best_order = perm.clone();
            }
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    (best_order, best_value)
}

/// The change in expected weighted flowtime from swapping the jobs at
/// positions `pos` and `pos + 1` of `order` (positive means the swap makes
/// the schedule worse).  The classical adjacent-interchange argument behind
/// Smith's rule states this is nonnegative for the WSEPT order.
pub fn adjacent_interchange_delta(instance: &BatchInstance, order: &[usize], pos: usize) -> f64 {
    assert!(pos + 1 < order.len());
    let mut swapped = order.to_vec();
    swapped.swap(pos, pos + 1);
    expected_weighted_flowtime(instance, &swapped) - expected_weighted_flowtime(instance, order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::{weight_only_order, wsept_order};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use ss_core::instance::{InstanceFamily, InstanceGenerator};
    use ss_distributions::{dyn_dist, Deterministic, Exponential};

    #[test]
    fn closed_form_matches_hand_computation() {
        // Jobs: (w=2, p=1), (w=1, p=3) in that order:
        // C1 = 1, C2 = 4 -> 2*1 + 1*4 = 6.
        let inst = BatchInstance::builder()
            .job(2.0, dyn_dist(Deterministic::new(1.0)))
            .job(1.0, dyn_dist(Deterministic::new(3.0)))
            .build();
        assert!((expected_weighted_flowtime(&inst, &[0, 1]) - 6.0).abs() < 1e-12);
        assert!((expected_weighted_flowtime(&inst, &[1, 0]) - 11.0).abs() < 1e-12);
        assert!((expected_total_flowtime(&inst, &[0, 1]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn wsept_is_exhaustively_optimal_random_instances() {
        // E1 in miniature: on random instances the WSEPT value equals the
        // exhaustive optimum (ties possible, so compare values not orders).
        let gen = InstanceGenerator::default();
        let mut rng = ChaCha8Rng::seed_from_u64(101);
        for _ in 0..20 {
            let inst = gen.generate(7, &mut rng);
            let (_, best) = exhaustive_optimal_order(&inst);
            let wsept = expected_weighted_flowtime(&inst, &wsept_order(&inst));
            assert!(
                (wsept - best).abs() < 1e-9,
                "WSEPT {wsept} should equal optimum {best}"
            );
        }
    }

    #[test]
    fn naive_policies_are_weakly_worse() {
        let gen = InstanceGenerator::with_family(InstanceFamily::HyperExponential);
        let mut rng = ChaCha8Rng::seed_from_u64(55);
        for _ in 0..10 {
            let inst = gen.generate(6, &mut rng);
            let wsept = expected_weighted_flowtime(&inst, &wsept_order(&inst));
            let naive = expected_weighted_flowtime(&inst, &weight_only_order(&inst));
            assert!(naive >= wsept - 1e-9);
        }
    }

    #[test]
    fn monte_carlo_agrees_with_closed_form() {
        let inst = BatchInstance::builder()
            .job(1.0, dyn_dist(Exponential::with_mean(2.0)))
            .job(2.0, dyn_dist(Exponential::with_mean(1.0)))
            .job(0.5, dyn_dist(Exponential::with_mean(3.0)))
            .build();
        let order = wsept_order(&inst);
        let exact = expected_weighted_flowtime(&inst, &order);
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let n = 200_000;
        let mc: f64 = (0..n)
            .map(|_| sample_weighted_flowtime(&inst, &order, &mut rng))
            .sum::<f64>()
            / n as f64;
        assert!(
            (mc - exact).abs() / exact < 0.01,
            "MC {mc} vs exact {exact}"
        );
    }

    #[test]
    fn adjacent_interchange_never_improves_wsept() {
        let gen = InstanceGenerator::default();
        let mut rng = ChaCha8Rng::seed_from_u64(303);
        for _ in 0..20 {
            let inst = gen.generate(8, &mut rng);
            let order = wsept_order(&inst);
            for pos in 0..inst.len() - 1 {
                assert!(adjacent_interchange_delta(&inst, &order, pos) >= -1e-9);
            }
        }
    }

    #[test]
    fn exhaustive_search_small_case() {
        let inst = BatchInstance::builder()
            .job(1.0, dyn_dist(Deterministic::new(2.0)))
            .job(10.0, dyn_dist(Deterministic::new(1.0)))
            .build();
        let (order, value) = exhaustive_optimal_order(&inst);
        assert_eq!(order, vec![1, 0]);
        assert!((value - (10.0 + 3.0)).abs() < 1e-12);
    }
}

//! In-tree precedence constraints (Papadimitriou–Tsitsiklis 1987).
//!
//! Jobs form an in-tree: each job has at most one successor, and a job may
//! start only after all its predecessors (children in the in-tree, i.e. the
//! jobs pointing to it) have completed.  The root is processed last.  The
//! survey cites the asymptotic optimality of simple level-based list
//! policies for expected flowtime on parallel machines in this setting; the
//! module provides the in-tree structure, a precedence-respecting list
//! scheduler, and the HLF (highest-level-first) policy used as the
//! reference heuristic.

use rand::RngCore;
use ss_core::instance::BatchInstance;

/// An in-forest over `n` jobs: `parent[i]` is the job that can only start
/// after `i` (and all other children of that job) completed; `None` marks a
/// root.
#[derive(Debug, Clone)]
pub struct InTree {
    parent: Vec<Option<usize>>,
    level: Vec<usize>,
}

impl InTree {
    /// Build from the parent array, validating acyclicity.
    pub fn new(parent: Vec<Option<usize>>) -> Self {
        let n = parent.len();
        assert!(n > 0);
        for (i, p) in parent.iter().enumerate() {
            if let Some(p) = p {
                assert!(*p < n, "parent index out of range");
                assert!(*p != i, "job cannot precede itself");
            }
        }
        // Level = distance to the root along parent links (root has level 0);
        // also detects cycles (path longer than n).
        let mut level = vec![0usize; n];
        for i in 0..n {
            let mut cur = i;
            let mut steps = 0;
            while let Some(p) = parent[cur] {
                cur = p;
                steps += 1;
                assert!(steps <= n, "cycle detected in precedence graph");
            }
            level[i] = steps;
        }
        Self { parent, level }
    }

    /// A balanced binary in-tree with `n` jobs (job 0 is the root and every
    /// job `i >= 1` has parent `(i - 1) / 2`), the standard synthetic
    /// workload for in-tree scheduling experiments.
    pub fn balanced_binary(n: usize) -> Self {
        assert!(n > 0);
        let parent = (0..n)
            .map(|i| if i == 0 { None } else { Some((i - 1) / 2) })
            .collect();
        Self::new(parent)
    }

    /// A chain `n-1 -> n-2 -> ... -> 0` (maximally serial workload).
    pub fn chain(n: usize) -> Self {
        assert!(n > 0);
        let parent = (0..n)
            .map(|i| if i == 0 { None } else { Some(i - 1) })
            .collect();
        Self::new(parent)
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if empty (never after construction).
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Level (distance to the root) of each job.
    pub fn levels(&self) -> &[usize] {
        &self.level
    }

    /// Number of uncompleted children (predecessors) per job, given a
    /// completion bitmap.
    fn open_children(&self, done: &[bool]) -> Vec<usize> {
        let mut open = vec![0usize; self.parent.len()];
        for (i, p) in self.parent.iter().enumerate() {
            if let Some(p) = p {
                if !done[i] {
                    open[*p] += 1;
                }
            }
        }
        open
    }
}

/// The HLF (highest level first) priority order: jobs sorted by
/// nonincreasing level, i.e. leaves deep in the tree first.
pub fn hlf_order(tree: &InTree) -> Vec<usize> {
    let mut order: Vec<usize> = (0..tree.len()).collect();
    order.sort_by(|&a, &b| tree.level[b].cmp(&tree.level[a]).then(a.cmp(&b)));
    order
}

/// Simulate list scheduling of `instance` on `machines` identical machines
/// under precedence constraints `tree`: at every decision epoch (a machine
/// becoming free or a job completing) the highest-priority *available* job
/// (all predecessors done) starts on a free machine.
///
/// Returns `(total flowtime, makespan)` of the realisation.
pub fn simulate_precedence_schedule(
    instance: &BatchInstance,
    tree: &InTree,
    priority: &[usize],
    machines: usize,
    rng: &mut dyn RngCore,
) -> (f64, f64) {
    let n = instance.len();
    assert_eq!(tree.len(), n);
    assert_eq!(priority.len(), n);
    let jobs = instance.jobs();

    // Priority rank per job (lower rank = higher priority).
    let mut rank = vec![0usize; n];
    for (r, &j) in priority.iter().enumerate() {
        rank[j] = r;
    }

    let mut done = vec![false; n];
    let mut started = vec![false; n];
    let mut open = tree.open_children(&done);
    // Running jobs: (completion_time, job, machine)
    let mut running: Vec<(f64, usize)> = Vec::new();
    let mut free_machines = machines;
    let mut clock = 0.0;
    let mut total_flowtime = 0.0;
    let mut makespan: f64 = 0.0;
    let mut completed = 0usize;

    while completed < n {
        // Start every available job we can.
        loop {
            if free_machines == 0 {
                break;
            }
            // Highest-priority job that is not started and has no open children.
            let candidate = (0..n)
                .filter(|&j| !started[j] && open[j] == 0)
                .min_by_key(|&j| rank[j]);
            let Some(j) = candidate else { break };
            started[j] = true;
            free_machines -= 1;
            let duration = jobs[j].dist.sample(rng);
            running.push((clock + duration, j));
        }
        // Advance to the next completion.
        assert!(
            !running.is_empty(),
            "deadlock: no running job but work remains"
        );
        let (pos, _) = running
            .iter()
            .enumerate()
            .min_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).unwrap())
            .unwrap();
        let (finish, j) = running.swap_remove(pos);
        clock = finish;
        done[j] = true;
        completed += 1;
        free_machines += 1;
        total_flowtime += finish;
        makespan = makespan.max(finish);
        open = tree.open_children(&done);
    }
    (total_flowtime, makespan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use ss_distributions::{dyn_dist, Deterministic, Exponential};

    fn det_instance(n: usize, p: f64) -> BatchInstance {
        let mut b = BatchInstance::builder();
        for _ in 0..n {
            b = b.unweighted_job(dyn_dist(Deterministic::new(p)));
        }
        b.build()
    }

    #[test]
    fn chain_forces_serial_execution() {
        let tree = InTree::chain(4);
        let inst = det_instance(4, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let (flow, mk) = simulate_precedence_schedule(&inst, &tree, &hlf_order(&tree), 3, &mut rng);
        assert!((mk - 4.0).abs() < 1e-12, "a chain cannot be parallelised");
        assert!((flow - (1.0 + 2.0 + 3.0 + 4.0)).abs() < 1e-12);
    }

    #[test]
    fn balanced_tree_levels() {
        let tree = InTree::balanced_binary(7);
        assert_eq!(tree.levels(), &[0, 1, 1, 2, 2, 2, 2]);
        let order = hlf_order(&tree);
        assert_eq!(&order[..4], &[3, 4, 5, 6]);
        assert_eq!(order[6], 0);
    }

    #[test]
    fn balanced_tree_deterministic_makespan() {
        // 7 unit jobs, 4 machines, balanced binary tree: level-by-level
        // execution takes 3 time units.
        let tree = InTree::balanced_binary(7);
        let inst = det_instance(7, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let (_, mk) = simulate_precedence_schedule(&inst, &tree, &hlf_order(&tree), 4, &mut rng);
        assert!((mk - 3.0).abs() < 1e-12);
    }

    #[test]
    fn no_precedence_matches_plain_list_scheduling() {
        // A forest of roots (every job is its own root) behaves like plain
        // list scheduling.
        let parent = vec![None; 5];
        let tree = InTree::new(parent);
        let inst = det_instance(5, 2.0);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let (_, mk) = simulate_precedence_schedule(&inst, &tree, &[0, 1, 2, 3, 4], 2, &mut rng);
        // 5 jobs of length 2 on 2 machines: makespan 6.
        assert!((mk - 6.0).abs() < 1e-12);
    }

    #[test]
    fn hlf_no_worse_than_reverse_on_random_trees() {
        // The HLF heuristic should (weakly) beat the anti-HLF order for
        // expected makespan on a balanced tree of exponential jobs.
        let tree = InTree::balanced_binary(15);
        let mut b = BatchInstance::builder();
        for _ in 0..15 {
            b = b.unweighted_job(dyn_dist(Exponential::with_mean(1.0)));
        }
        let inst = b.build();
        let hlf = hlf_order(&tree);
        let mut anti = hlf.clone();
        anti.reverse();
        let reps = 3000;
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut hlf_mk = 0.0;
        let mut anti_mk = 0.0;
        for _ in 0..reps {
            hlf_mk += simulate_precedence_schedule(&inst, &tree, &hlf, 4, &mut rng).1;
            anti_mk += simulate_precedence_schedule(&inst, &tree, &anti, 4, &mut rng).1;
        }
        assert!(
            hlf_mk <= anti_mk * 1.02,
            "HLF {hlf_mk} should not lose to anti-HLF {anti_mk}"
        );
    }

    #[test]
    #[should_panic]
    fn cycle_is_rejected() {
        let _ = InTree::new(vec![Some(1), Some(0)]);
    }
}

//! The Coffman–Hofri–Weiss regime: two-point processing times on two
//! machines, where the simple index rules stop being optimal.
//!
//! Because each job takes one of two values, an instance with `n` jobs has
//! only `2^n` equally structured realisations.  For **static list policies**
//! the performance of every list can therefore be evaluated *exactly* by
//! enumerating realisations, and the best static list found by exhaustive
//! search over permutations.  Experiment E5 uses this to exhibit parameter
//! regions where the SEPT and LEPT lists are strictly worse than the best
//! list — the survey's point that the optimality of simple policies "fails
//! to extend to models that violate the required assumptions".

use ss_core::instance::BatchInstance;
use ss_distributions::{dyn_dist, TwoPoint};

/// A batch of two-point jobs.
#[derive(Debug, Clone)]
pub struct TwoPointInstance {
    /// Per-job `(p_low, low, high)` parameters.
    pub jobs: Vec<TwoPoint>,
    /// Per-job weights (1.0 for unweighted objectives).
    pub weights: Vec<f64>,
}

impl TwoPointInstance {
    /// Create an unweighted instance.
    pub fn unweighted(jobs: Vec<TwoPoint>) -> Self {
        let n = jobs.len();
        assert!(n > 0 && n <= 16, "exact enumeration limited to 16 jobs");
        Self {
            jobs,
            weights: vec![1.0; n],
        }
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True if empty (never after construction).
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Convert to a generic [`BatchInstance`] (for the simulators).
    pub fn to_batch_instance(&self) -> BatchInstance {
        let mut b = BatchInstance::builder();
        for (tp, w) in self.jobs.iter().zip(&self.weights) {
            b = b.job(*w, dyn_dist(*tp));
        }
        b.build()
    }
}

/// Deterministic list schedule of realised durations on `machines`
/// machines; returns `(total_flowtime, weighted_flowtime, makespan)`.
fn schedule_realisation(
    durations: &[f64],
    weights: &[f64],
    order: &[usize],
    machines: usize,
) -> (f64, f64, f64) {
    let mut free_at = vec![0.0f64; machines];
    let mut total = 0.0;
    let mut weighted = 0.0;
    let mut makespan: f64 = 0.0;
    for &idx in order {
        let m = free_at
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        let completion = free_at[m] + durations[idx];
        free_at[m] = completion;
        total += completion;
        weighted += weights[idx] * completion;
        makespan = makespan.max(completion);
    }
    (total, weighted, makespan)
}

/// Exact expected `(total flowtime, weighted flowtime, makespan)` of a
/// static list on `machines` machines, by enumerating all `2^n`
/// realisations.
pub fn exact_list_performance(
    instance: &TwoPointInstance,
    order: &[usize],
    machines: usize,
) -> (f64, f64, f64) {
    let n = instance.len();
    assert_eq!(order.len(), n);
    let mut e_total = 0.0;
    let mut e_weighted = 0.0;
    let mut e_makespan = 0.0;
    let mut durations = vec![0.0f64; n];
    for mask in 0..(1u32 << n) {
        let mut prob = 1.0;
        for (j, tp) in instance.jobs.iter().enumerate() {
            if mask & (1 << j) != 0 {
                durations[j] = tp.low();
                prob *= tp.p_low();
            } else {
                durations[j] = tp.high();
                prob *= 1.0 - tp.p_low();
            }
        }
        if prob == 0.0 {
            continue;
        }
        let (t, w, m) = schedule_realisation(&durations, &instance.weights, order, machines);
        e_total += prob * t;
        e_weighted += prob * w;
        e_makespan += prob * m;
    }
    (e_total, e_weighted, e_makespan)
}

/// Search all `n!` static lists for the one minimising the chosen objective
/// (0 = total flowtime, 1 = weighted flowtime, 2 = makespan); returns
/// `(best_order, best_value)`.  Intended for `n <= 8`.
pub fn best_static_list(
    instance: &TwoPointInstance,
    machines: usize,
    objective: usize,
) -> (Vec<usize>, f64) {
    let n = instance.len();
    assert!(n <= 9, "exhaustive list search limited to 9 jobs");
    assert!(objective <= 2);
    let mut perm: Vec<usize> = (0..n).collect();
    let pick = |triple: (f64, f64, f64)| match objective {
        0 => triple.0,
        1 => triple.1,
        _ => triple.2,
    };
    let mut best_order = perm.clone();
    let mut best_value = pick(exact_list_performance(instance, &perm, machines));
    let mut c = vec![0usize; n];
    let mut i = 0;
    while i < n {
        if c[i] < i {
            if i % 2 == 0 {
                perm.swap(0, i);
            } else {
                perm.swap(c[i], i);
            }
            let value = pick(exact_list_performance(instance, &perm, machines));
            if value < best_value {
                best_value = value;
                best_order = perm.clone();
            }
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    (best_order, best_value)
}

/// SEPT list (nondecreasing mean) for a two-point instance.
pub fn sept_list(instance: &TwoPointInstance) -> Vec<usize> {
    let mut order: Vec<usize> = (0..instance.len()).collect();
    order.sort_by(|&a, &b| {
        use ss_distributions::ServiceDistribution;
        instance.jobs[a]
            .mean()
            .partial_cmp(&instance.jobs[b].mean())
            .unwrap()
    });
    order
}

/// LEPT list (nonincreasing mean) for a two-point instance.
pub fn lept_list(instance: &TwoPointInstance) -> Vec<usize> {
    let mut order = sept_list(instance);
    order.reverse();
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_distributions::ServiceDistribution;

    #[test]
    fn exact_enumeration_matches_hand_case() {
        // One job taking 1 w.p. 0.5 or 3 w.p. 0.5 on one machine.
        let inst = TwoPointInstance::unweighted(vec![TwoPoint::new(0.5, 1.0, 3.0)]);
        let (total, weighted, makespan) = exact_list_performance(&inst, &[0], 1);
        assert!((total - 2.0).abs() < 1e-12);
        assert!((weighted - 2.0).abs() < 1e-12);
        assert!((makespan - 2.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_two_point_collapses() {
        // p_low = 1 makes the jobs deterministic; the schedule is the
        // classic deterministic list schedule.
        let inst = TwoPointInstance::unweighted(vec![
            TwoPoint::new(1.0, 2.0, 5.0),
            TwoPoint::new(1.0, 1.0, 9.0),
        ]);
        let (_, _, makespan) = exact_list_performance(&inst, &[0, 1], 2);
        assert!((makespan - 2.0).abs() < 1e-12);
    }

    #[test]
    fn enumeration_matches_monte_carlo() {
        use rand::SeedableRng;
        let inst = TwoPointInstance::unweighted(vec![
            TwoPoint::new(0.7, 0.5, 4.0),
            TwoPoint::new(0.4, 1.0, 2.0),
            TwoPoint::new(0.9, 0.2, 8.0),
        ]);
        let order = [0usize, 1, 2];
        let (exact_total, _, exact_mk) = exact_list_performance(&inst, &order, 2);
        let batch = inst.to_batch_instance();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let reps = 60_000;
        let mut total = 0.0;
        let mut mk = 0.0;
        for _ in 0..reps {
            let out = crate::parallel::simulate_list_schedule(&batch, &order, 2, &mut rng);
            total += out.total_flowtime;
            mk += out.makespan;
        }
        total /= reps as f64;
        mk /= reps as f64;
        assert!((total - exact_total).abs() / exact_total < 0.02);
        assert!((mk - exact_mk).abs() / exact_mk < 0.02);
    }

    #[test]
    fn best_list_weakly_beats_index_lists() {
        // A heterogeneous two-point instance; the exhaustive best static
        // list is by definition at least as good as SEPT/LEPT.
        let inst = TwoPointInstance::unweighted(vec![
            TwoPoint::new(0.9, 0.1, 6.0),
            TwoPoint::new(0.5, 1.0, 2.0),
            TwoPoint::new(0.2, 0.5, 1.4),
            TwoPoint::new(0.8, 0.3, 7.0),
            TwoPoint::new(0.6, 0.8, 2.2),
        ]);
        let (_, best_mk) = best_static_list(&inst, 2, 2);
        let (_, _, sept_mk) = exact_list_performance(&inst, &sept_list(&inst), 2);
        let (_, _, lept_mk) = exact_list_performance(&inst, &lept_list(&inst), 2);
        assert!(best_mk <= sept_mk + 1e-12);
        assert!(best_mk <= lept_mk + 1e-12);
    }

    #[test]
    fn sept_and_lept_lists_are_mean_ordered() {
        let inst = TwoPointInstance::unweighted(vec![
            TwoPoint::new(0.5, 1.0, 3.0), // mean 2.0
            TwoPoint::new(0.5, 0.2, 1.0), // mean 0.6
            TwoPoint::new(0.5, 2.0, 6.0), // mean 4.0
        ]);
        assert_eq!(sept_list(&inst), vec![1, 0, 2]);
        assert_eq!(lept_list(&inst), vec![2, 0, 1]);
        assert!(inst.jobs[1].mean() < inst.jobs[0].mean());
    }
}

//! Asymptotic optimality of WSEPT on parallel machines (Weiss 1992).
//!
//! The survey quotes the "turnpike" result: the *additive* suboptimality gap
//! of the WSEPT list policy on `m` identical machines is bounded by a
//! constant that does not depend on the number of jobs, so the *relative*
//! gap vanishes as `n → ∞`.  Experiment E6 reproduces the shape of that
//! claim by sweeping `n` and reporting
//!
//! * the simulated WSEPT expected weighted flowtime on `m` machines,
//! * a **valid lower bound** on the optimal value,
//! * the additive and relative gaps between the two.
//!
//! ### The lower bound
//!
//! Any (nonpreemptive, nonanticipative) schedule on `m` unit-speed machines
//! can be emulated in real time on a single machine of speed `m` by
//! processor sharing, with identical completion times; the speed-`m`
//! single-machine *preemptive* optimum is therefore a lower bound on
//! `OPT_m`.  For **exponential** processing times the preemptive
//! single-machine optimum is attained by the (nonpreemptive) WSEPT list —
//! the Gittins/Sevcik index of an exponential job is the constant
//! `w_i λ_i` — so the bound has the closed form
//!
//! ```text
//! OPT_m  >=  WSEPT_1(means) / m
//! ```
//!
//! where `WSEPT_1(means)` is the exact single-machine WSEPT value computed
//! from the means.  The turnpike sweep therefore uses exponential
//! processing times (the same regime in which the classical parallel-machine
//! index results hold); the reported gap still over-states the true
//! suboptimality of WSEPT because the relaxation itself is loose by a
//! `O(n)` term, but its *relative* version vanishing is exactly the Weiss
//! shape.
//!
//! A second, pathwise Eastman–Even–Isaacs bound ([`eei_lower_bound`]) is
//! kept for per-realisation diagnostics (it bounds the clairvoyant optimum
//! and is used by the property tests).

use crate::parallel::{evaluate_list_policy, ParallelMetric};
use crate::policies::wsept_order;
use crate::single_machine::expected_weighted_flowtime;
use ss_core::instance::{BatchInstance, InstanceGenerator};
use ss_sim::rng::RngStreams;

/// Sub-id under which a point's instance generator is derived, keeping it
/// in a different [`RngStreams`] family than the replication streams
/// (`stream(0..replications)`) that the evaluator derives from the same
/// seed — replication `n` must not reuse the generator that built the
/// instance for job count `n`.
const INSTANCE_SUB_ID: u64 = 0;

/// One row of the turnpike sweep.
#[derive(Debug, Clone)]
pub struct TurnpikePoint {
    /// Number of jobs.
    pub n: usize,
    /// Number of machines.
    pub machines: usize,
    /// Simulated WSEPT expected weighted flowtime.
    pub wsept_value: f64,
    /// 95% CI half-width of the simulated WSEPT value.
    pub wsept_ci95: f64,
    /// Valid lower bound on the optimal expected weighted flowtime
    /// (speed-`m` single-machine relaxation).
    pub lower_bound: f64,
    /// `wsept_value - lower_bound`.
    pub additive_gap: f64,
    /// `additive_gap / lower_bound`.
    pub relative_gap: f64,
}

/// The speed-`m` single-machine relaxation bound `WSEPT_1(means) / m`
/// (valid lower bound on `OPT_m` for exponential processing times; see the
/// module documentation).
pub fn fast_single_machine_bound(instance: &BatchInstance, machines: usize) -> f64 {
    let order = wsept_order(instance);
    expected_weighted_flowtime(instance, &order) / machines as f64
}

/// The deterministic Eastman–Even–Isaacs lower bound for realised
/// processing times `durations` with weights `weights` on `machines`
/// machines.  Bounds the *clairvoyant* optimum of that realisation.
pub fn eei_lower_bound(durations: &[f64], weights: &[f64], machines: usize) -> f64 {
    assert_eq!(durations.len(), weights.len());
    let m = machines as f64;
    // WSPT order on the realised times.
    let mut order: Vec<usize> = (0..durations.len()).collect();
    order.sort_by(|&a, &b| {
        (weights[b] / durations[b].max(1e-300))
            .partial_cmp(&(weights[a] / durations[a].max(1e-300)))
            .unwrap()
    });
    let mut prefix = 0.0;
    let mut wspt1 = 0.0;
    for &j in &order {
        prefix += durations[j];
        wspt1 += weights[j] * prefix;
    }
    let wp: f64 = durations.iter().zip(weights).map(|(p, w)| w * p).sum();
    wspt1 / m + (m - 1.0) / (2.0 * m) * wp
}

/// Run the turnpike sweep: for each `n` in `job_counts`, generate an
/// exponential-job instance (reproducibly from `seed`), simulate WSEPT on
/// `machines` machines and compare with the relaxation lower bound.
///
/// The points are fanned out over the workspace thread pool.  Each point's
/// instance is drawn from its own [`RngStreams`] *sub*stream keyed by `n`
/// (so a given job count always sees the same instance regardless of which
/// other counts are in the sweep, and the instance generator never collides
/// with the plain replication streams the Monte-Carlo evaluation derives
/// from the same `seed`), and every point's evaluation uses the same `seed`
/// (common random numbers across points); the output is therefore
/// bit-for-bit identical for any thread count.
pub fn turnpike_sweep(
    generator: &InstanceGenerator,
    job_counts: &[usize],
    machines: usize,
    replications: usize,
    seed: u64,
) -> Vec<TurnpikePoint> {
    let streams = RngStreams::new(seed);
    ss_sim::pool::parallel_indexed(job_counts.len(), |point| {
        let n = job_counts[point];
        let mut rng = streams.substream(n as u64, INSTANCE_SUB_ID);
        let instance = generator.generate(n, &mut rng);
        let order = wsept_order(&instance);
        let summary = evaluate_list_policy(
            &instance,
            &order,
            machines,
            ParallelMetric::WeightedFlowtime,
            replications,
            seed,
        );
        let lower_bound = fast_single_machine_bound(&instance, machines);
        let additive_gap = summary.mean - lower_bound;
        TurnpikePoint {
            n,
            machines,
            wsept_value: summary.mean,
            wsept_ci95: summary.ci95,
            lower_bound,
            additive_gap,
            relative_gap: additive_gap / lower_bound,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use ss_core::instance::InstanceFamily;
    use ss_distributions::dyn_dist;
    use ss_distributions::{Deterministic, Exponential};

    #[test]
    fn eei_bound_is_tight_for_one_machine() {
        let durations = [2.0, 1.0, 4.0];
        let weights = [1.0, 3.0, 2.0];
        let lb = eei_lower_bound(&durations, &weights, 1);
        // On one machine the EEI bound reduces to the WSPT optimum itself.
        let direct = |order: &[usize]| {
            let mut prefix = 0.0;
            let mut v = 0.0;
            for &j in order {
                prefix += durations[j];
                v += weights[j] * prefix;
            }
            v
        };
        let best = direct(&[1, 2, 0]).min(direct(&[1, 0, 2]));
        assert!((lb - best).abs() < 1e-12);
    }

    #[test]
    fn eei_bound_below_deterministic_schedules() {
        let durations = [2.0, 1.0, 3.0, 1.5];
        let weights = [1.0, 2.0, 1.5, 0.5];
        let lb = eei_lower_bound(&durations, &weights, 2);
        // Evaluate the WSPT list schedule on 2 machines for this realisation.
        let inst = BatchInstance::builder()
            .job(1.0, dyn_dist(Deterministic::new(2.0)))
            .job(2.0, dyn_dist(Deterministic::new(1.0)))
            .job(1.5, dyn_dist(Deterministic::new(3.0)))
            .job(0.5, dyn_dist(Deterministic::new(1.5)))
            .build();
        let order = wsept_order(&inst);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let out = crate::parallel::simulate_list_schedule(&inst, &order, 2, &mut rng);
        assert!(
            lb <= out.weighted_flowtime + 1e-9,
            "LB {lb} vs schedule {}",
            out.weighted_flowtime
        );
    }

    #[test]
    fn fast_machine_bound_is_tight_for_one_machine() {
        let inst = BatchInstance::builder()
            .job(1.0, dyn_dist(Exponential::with_mean(1.0)))
            .job(2.0, dyn_dist(Exponential::with_mean(2.0)))
            .build();
        let lb = fast_single_machine_bound(&inst, 1);
        let exact = expected_weighted_flowtime(&inst, &wsept_order(&inst));
        assert!((lb - exact).abs() < 1e-12);
    }

    #[test]
    fn relaxation_bound_below_simulated_wsept_exponential() {
        let gen = InstanceGenerator::with_family(InstanceFamily::Exponential);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let inst = gen.generate(12, &mut rng);
        let lb = fast_single_machine_bound(&inst, 3);
        let sim = evaluate_list_policy(
            &inst,
            &wsept_order(&inst),
            3,
            ParallelMetric::WeightedFlowtime,
            4000,
            1,
        );
        assert!(
            lb <= sim.mean + sim.ci95,
            "LB {lb} must lie below WSEPT {}",
            sim.mean
        );
    }

    #[test]
    fn relative_gap_shrinks_with_n() {
        // The headline shape of E6: the relative gap at n = 160 is well below
        // the gap at n = 10.
        let gen = InstanceGenerator::with_family(InstanceFamily::Exponential);
        let points = turnpike_sweep(&gen, &[10, 160], 4, 800, 2024);
        assert_eq!(points.len(), 2);
        assert!(
            points[0].relative_gap > 0.0,
            "small-n gap should be positive"
        );
        assert!(
            points[1].relative_gap < points[0].relative_gap * 0.6,
            "relative gap should shrink: {} -> {}",
            points[0].relative_gap,
            points[1].relative_gap
        );
    }

    #[test]
    fn turnpike_sweep_is_thread_count_invariant() {
        let gen = InstanceGenerator::with_family(InstanceFamily::Exponential);
        let run = |threads: usize| {
            ss_sim::pool::with_threads(threads, || turnpike_sweep(&gen, &[10, 20, 40], 3, 200, 11))
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.n, b.n);
            assert_eq!(a.wsept_value.to_bits(), b.wsept_value.to_bits());
            assert_eq!(a.wsept_ci95.to_bits(), b.wsept_ci95.to_bits());
            assert_eq!(a.lower_bound.to_bits(), b.lower_bound.to_bits());
            assert_eq!(a.relative_gap.to_bits(), b.relative_gap.to_bits());
        }
    }

    #[test]
    fn turnpike_instances_are_stable_per_job_count() {
        // The instance behind a given n must not depend on which other
        // counts are in the sweep (streams are keyed by n, not position).
        let gen = InstanceGenerator::with_family(InstanceFamily::Exponential);
        let alone = turnpike_sweep(&gen, &[40], 3, 100, 5);
        let with_others = turnpike_sweep(&gen, &[10, 40, 80], 3, 100, 5);
        assert_eq!(
            alone[0].wsept_value.to_bits(),
            with_others[1].wsept_value.to_bits()
        );
        assert_eq!(
            alone[0].lower_bound.to_bits(),
            with_others[1].lower_bound.to_bits()
        );
    }
}

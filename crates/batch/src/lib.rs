//! # ss-batch — scheduling a batch of stochastic jobs (§1 of the survey)
//!
//! A fixed batch of `n` jobs with random processing times (known
//! distributions) must be completed by `m` machines.  This crate implements
//! every model variant the survey discusses, together with the exact
//! methods needed to verify the optimality claims:
//!
//! | Survey claim | Module |
//! |---|---|
//! | WSEPT (Smith's rule on means) is optimal for `E[Σ w C]` on one machine, nonpreemptive (Rothkopf 1966) | [`single_machine`], [`policies`] |
//! | The preemptive optimum is a Gittins-type index in attained service (Sevcik 1974) | [`preemptive`] |
//! | SEPT minimises `E[Σ C]` on identical parallel machines for exponential / common-IHR / stochastically ordered jobs | [`parallel`], [`exact_exp`] |
//! | LEPT minimises `E[max C]` for exponential / common-DHR jobs | [`parallel`], [`exact_exp`] |
//! | Two-point jobs on two machines break the simple index rules (Coffman–Hofri–Weiss 1989) | [`two_point_exact`] |
//! | Uniform (speed-scaled) machines: threshold policies | [`uniform_machines`] |
//! | Stochastic flow shops (machines in series) | [`flow_shop`] |
//! | WSEPT is asymptotically optimal on parallel machines: additive gap `O(1)`, relative gap `→ 0` (Weiss 1992) | [`turnpike`] |
//! | In-tree precedence constraints (Papadimitriou–Tsitsiklis 1987) | [`precedence`] |
//!
//! The experiment harness (`ss-bench`, experiments E1–E6) drives these
//! modules to regenerate the tables in `EXPERIMENTS.md`.

pub mod discipline;
pub mod exact_exp;
pub mod flow_shop;
pub mod parallel;
pub mod policies;
pub mod precedence;
pub mod preemptive;
pub mod single_machine;
pub mod turnpike;
pub mod two_point_exact;
pub mod uniform_machines;

pub use discipline::{gittins_discipline, GittinsGrid};
pub use policies::{lept_order, random_order, sept_order, wsept_order};
pub use single_machine::{exhaustive_optimal_order, expected_weighted_flowtime};

//! The classical static priority-index rules for batch scheduling.
//!
//! * **WSEPT** (weighted shortest expected processing time, Smith's rule on
//!   means): serve in nonincreasing order of `w_i / E[P_i]`.  Optimal for
//!   `E[Σ w_i C_i]` on a single machine among nonpreemptive nonanticipative
//!   policies (Rothkopf 1966).
//! * **SEPT**: shortest expected processing time first — the unweighted
//!   special case, optimal for `E[Σ C_i]` on identical parallel machines
//!   under the assumptions discussed in the survey.
//! * **LEPT**: longest expected processing time first — optimal for the
//!   expected makespan on identical parallel machines under exponential or
//!   common-DHR processing times.

use rand::seq::SliceRandom;
use rand::Rng;
use ss_core::index::argsort_decreasing;
use ss_core::instance::BatchInstance;
use ss_core::job::Job;
use ss_core::policy::IndexPolicy;

/// WSEPT as an [`IndexPolicy`] (index `w / E[P]`).
#[derive(Debug, Clone, Copy, Default)]
pub struct WseptPolicy;

impl IndexPolicy for WseptPolicy {
    fn name(&self) -> &str {
        "WSEPT"
    }
    fn index(&self, job: &Job, _attained: f64) -> f64 {
        job.wsept_index()
    }
}

/// SEPT as an [`IndexPolicy`] (index `1 / E[P]`, weights ignored).
#[derive(Debug, Clone, Copy, Default)]
pub struct SeptPolicy;

impl IndexPolicy for SeptPolicy {
    fn name(&self) -> &str {
        "SEPT"
    }
    fn index(&self, job: &Job, _attained: f64) -> f64 {
        1.0 / job.mean_processing()
    }
}

/// LEPT as an [`IndexPolicy`] (index `E[P]`, weights ignored).
#[derive(Debug, Clone, Copy, Default)]
pub struct LeptPolicy;

impl IndexPolicy for LeptPolicy {
    fn name(&self) -> &str {
        "LEPT"
    }
    fn index(&self, job: &Job, _attained: f64) -> f64 {
        job.mean_processing()
    }
}

/// The WSEPT order: job indices sorted by nonincreasing `w_i / E[P_i]`.
pub fn wsept_order(instance: &BatchInstance) -> Vec<usize> {
    WseptPolicy.static_order(instance)
}

/// The SEPT order: nondecreasing expected processing time.
pub fn sept_order(instance: &BatchInstance) -> Vec<usize> {
    SeptPolicy.static_order(instance)
}

/// The LEPT order: nonincreasing expected processing time.
pub fn lept_order(instance: &BatchInstance) -> Vec<usize> {
    LeptPolicy.static_order(instance)
}

/// A uniformly random order (the natural "no information" baseline).
pub fn random_order<R: Rng + ?Sized>(instance: &BatchInstance, rng: &mut R) -> Vec<usize> {
    let mut order: Vec<usize> = (0..instance.len()).collect();
    order.shuffle(rng);
    order
}

/// Order by nonincreasing weight only (ignores processing times); a
/// deliberately naive baseline used in the experiment tables.
pub fn weight_only_order(instance: &BatchInstance) -> Vec<usize> {
    let values: Vec<f64> = instance.jobs().iter().map(|j| j.weight).collect();
    argsort_decreasing(&values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_distributions::{dyn_dist, Exponential};

    fn instance() -> BatchInstance {
        BatchInstance::builder()
            .job(1.0, dyn_dist(Exponential::with_mean(4.0))) // wsept 0.25, mean 4
            .job(3.0, dyn_dist(Exponential::with_mean(1.0))) // wsept 3.0, mean 1
            .job(1.0, dyn_dist(Exponential::with_mean(2.0))) // wsept 0.5, mean 2
            .build()
    }

    #[test]
    fn wsept_sorts_by_weight_over_mean() {
        assert_eq!(wsept_order(&instance()), vec![1, 2, 0]);
    }

    #[test]
    fn sept_and_lept_are_reverses_for_distinct_means() {
        let inst = instance();
        let sept = sept_order(&inst);
        let mut lept = lept_order(&inst);
        lept.reverse();
        assert_eq!(sept, lept);
        assert_eq!(sept, vec![1, 2, 0]);
    }

    #[test]
    fn random_order_is_permutation() {
        let inst = instance();
        let mut rng = rand::rngs::mock::StepRng::new(42, 13);
        let mut order = random_order(&inst, &mut rng);
        order.sort_unstable();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn weight_only_order_ignores_means() {
        assert_eq!(weight_only_order(&instance()), vec![1, 0, 2]);
    }
}

//! Uniform (speed-scaled) parallel machines.
//!
//! Machines differ only in speed: a job with processing requirement `X`
//! takes `X / s_k` time on a machine of speed `s_k`.  The survey notes that
//! under fairly strong assumptions the optimal policies have a **threshold
//! structure**: slow machines are only used when enough jobs remain
//! (Agrawala et al. 1984 for flowtime, Coffman–Flatto–Garey–Weber 1987 for
//! makespan, Righter 1988).  This module provides:
//!
//! * a list-scheduling simulator on uniform machines (fastest-available
//!   machine first),
//! * a threshold policy: machine `k` (in decreasing speed order) is used
//!   only while more than `threshold[k]` jobs remain,
//! * an exact flowtime DP for exponential jobs on two uniform machines,
//!   used to verify the threshold structure numerically.

use rand::RngCore;
use ss_core::instance::BatchInstance;

/// Simulate list scheduling on machines with the given speeds: whenever a
/// machine frees, the next unstarted job of `order` starts on the fastest
/// idle machine.
pub fn simulate_uniform_list(
    instance: &BatchInstance,
    order: &[usize],
    speeds: &[f64],
    rng: &mut dyn RngCore,
) -> (f64, f64) {
    assert!(!speeds.is_empty() && speeds.iter().all(|&s| s > 0.0));
    assert_eq!(order.len(), instance.len());
    let jobs = instance.jobs();
    // Sort machine indices by decreasing speed so "fastest idle" is cheap.
    let mut machine_order: Vec<usize> = (0..speeds.len()).collect();
    machine_order.sort_by(|&a, &b| speeds[b].partial_cmp(&speeds[a]).unwrap());
    let mut free_at = vec![0.0f64; speeds.len()];
    let mut total_flowtime = 0.0;
    let mut makespan: f64 = 0.0;
    for &idx in order {
        // Pick the machine with the earliest free time; ties go to the
        // faster machine because machine_order is speed-sorted.
        let mut best_m = machine_order[0];
        for &m in &machine_order {
            if free_at[m] < free_at[best_m] - 1e-15 {
                best_m = m;
            }
        }
        let requirement = jobs[idx].dist.sample(rng);
        let completion = free_at[best_m] + requirement / speeds[best_m];
        free_at[best_m] = completion;
        total_flowtime += completion;
        makespan = makespan.max(completion);
    }
    (total_flowtime, makespan)
}

/// Simulate a threshold policy: the `k`-th fastest machine is only used
/// while strictly more than `thresholds[k]` jobs remain unstarted
/// (`thresholds[0]` is normally 0 so the fastest machine is always used).
///
/// Jobs are taken in `order` (e.g. SEPT).  Returns `(total flowtime,
/// makespan)` of one realisation.
pub fn simulate_threshold_policy(
    instance: &BatchInstance,
    order: &[usize],
    speeds: &[f64],
    thresholds: &[usize],
    rng: &mut dyn RngCore,
) -> (f64, f64) {
    assert_eq!(speeds.len(), thresholds.len());
    let jobs = instance.jobs();
    let n = order.len();
    // Machines sorted by decreasing speed.
    let mut ms: Vec<usize> = (0..speeds.len()).collect();
    ms.sort_by(|&a, &b| speeds[b].partial_cmp(&speeds[a]).unwrap());

    // Event-driven: track per-machine busy-until times and the completion
    // time of the job currently on each machine.
    let mut free_at = vec![0.0f64; speeds.len()];
    let mut next_job = 0usize;
    let mut total_flowtime = 0.0;
    let mut makespan: f64 = 0.0;
    let mut clock = 0.0;

    // Repeatedly advance to the next machine-free epoch and assign work.
    loop {
        // Assign jobs to idle machines allowed by their thresholds.
        for (rank, &m) in ms.iter().enumerate() {
            if next_job >= n {
                break;
            }
            let remaining = n - next_job;
            if free_at[m] <= clock + 1e-15 && remaining > thresholds[rank] {
                let idx = order[next_job];
                next_job += 1;
                let requirement = jobs[idx].dist.sample(rng);
                let completion = clock + requirement / speeds[m];
                free_at[m] = completion;
                total_flowtime += completion;
                makespan = makespan.max(completion);
            }
        }
        if next_job >= n {
            break;
        }
        // Advance the clock to the next completion among busy machines.
        let next_clock = free_at
            .iter()
            .cloned()
            .filter(|&t| t > clock + 1e-15)
            .fold(f64::INFINITY, f64::min);
        if !next_clock.is_finite() {
            // No machine is busy but jobs remain: thresholds forbid every
            // machine.  Relax by forcing the fastest machine (guards against
            // misconfigured thresholds).
            let m = ms[0];
            let idx = order[next_job];
            next_job += 1;
            let requirement = jobs[idx].dist.sample(rng);
            let completion = clock + requirement / speeds[m];
            free_at[m] = completion;
            total_flowtime += completion;
            makespan = makespan.max(completion);
            if next_job >= n {
                break;
            }
            continue;
        }
        clock = next_clock;
    }
    (total_flowtime, makespan)
}

/// Exact expected total flowtime for exponential jobs on two uniform
/// machines under the policy "always use the fast machine; use the slow
/// machine only while more than `threshold` jobs remain", serving jobs in
/// SEPT order.  Exponential rates are per unit requirement; machine speeds
/// multiply them.
pub fn exp_two_uniform_flowtime(rates: &[f64], speeds: (f64, f64), threshold: usize) -> f64 {
    let n = rates.len();
    assert!(n <= 20);
    assert!(
        speeds.0 >= speeds.1 && speeds.1 > 0.0,
        "speeds must be (fast, slow)"
    );
    // SEPT order: biggest rate first.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| rates[b].partial_cmp(&rates[a]).unwrap());

    // State = mask of remaining jobs.  Serve the first remaining job of the
    // order on the fast machine; if remaining count > threshold also serve
    // the second on the slow machine.
    let full: u32 = (1u32 << n) - 1;
    let mut value = vec![0.0f64; (full as usize) + 1];
    for mask in 1..=full {
        let remaining: Vec<usize> = order
            .iter()
            .cloned()
            .filter(|&j| mask & (1 << j) != 0)
            .collect();
        let count = remaining.len();
        let mut served: Vec<(usize, f64)> = vec![(remaining[0], rates[remaining[0]] * speeds.0)];
        if count > threshold && count >= 2 {
            served.push((remaining[1], rates[remaining[1]] * speeds.1));
        }
        let lambda_total: f64 = served.iter().map(|&(_, r)| r).sum();
        let mut v = count as f64 / lambda_total;
        for &(j, r) in &served {
            v += r / lambda_total * value[(mask & !(1 << j)) as usize];
        }
        value[mask as usize] = v;
    }
    value[full as usize]
}

/// Exact expected total flowtime for `n` *identical* exponential jobs
/// (requirement rate `lambda`) on two uniform machines in the
/// **commitment** model: once a job starts on a machine it stays there.
///
/// The policy is a threshold rule: the fast machine is used whenever it is
/// idle and unstarted jobs remain; the slow machine is used only when it is
/// idle and strictly more than `threshold` jobs are still unstarted.  This
/// is the model in which the threshold structure of Agrawala et al. (1984)
/// appears: committing the last job to a very slow machine is irreversible
/// and costly, so the optimal threshold is positive when the speed ratio is
/// large.
pub fn exp_identical_two_uniform_commit_flowtime(
    n: usize,
    lambda: f64,
    speeds: (f64, f64),
    threshold: usize,
) -> f64 {
    assert!(n >= 1 && lambda > 0.0 && speeds.0 > 0.0 && speeds.1 > 0.0);
    let (s_fast, s_slow) = speeds;
    // Memoised recursion over (unstarted, fast_busy, slow_busy).
    // Value = expected remaining total flowtime (sum over jobs of remaining
    // time in system).
    let mut memo = vec![vec![vec![f64::NAN; 2]; 2]; n + 1];

    fn solve(
        u: usize,
        fast_busy: bool,
        slow_busy: bool,
        lambda: f64,
        s_fast: f64,
        s_slow: f64,
        threshold: usize,
        memo: &mut Vec<Vec<Vec<f64>>>,
    ) -> f64 {
        // Apply the assignment policy instantaneously.
        let mut u = u;
        let mut fast_busy = fast_busy;
        let mut slow_busy = slow_busy;
        if !fast_busy && u > 0 {
            fast_busy = true;
            u -= 1;
        }
        if !slow_busy && u > threshold {
            slow_busy = true;
            u -= 1;
        }
        if !fast_busy && !slow_busy {
            debug_assert_eq!(u, 0);
            return 0.0;
        }
        let key = &memo[u][fast_busy as usize][slow_busy as usize];
        if !key.is_nan() {
            return *key;
        }
        let rate_fast = if fast_busy { lambda * s_fast } else { 0.0 };
        let rate_slow = if slow_busy { lambda * s_slow } else { 0.0 };
        let total_rate = rate_fast + rate_slow;
        let in_system = u as f64 + fast_busy as u64 as f64 + slow_busy as u64 as f64;
        let mut v = in_system / total_rate;
        if fast_busy {
            v += rate_fast / total_rate
                * solve(u, false, slow_busy, lambda, s_fast, s_slow, threshold, memo);
        }
        if slow_busy {
            v += rate_slow / total_rate
                * solve(u, fast_busy, false, lambda, s_fast, s_slow, threshold, memo);
        }
        memo[u][fast_busy as usize][slow_busy as usize] = v;
        v
    }

    solve(
        n, false, false, lambda, s_fast, s_slow, threshold, &mut memo,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use ss_distributions::{dyn_dist, Deterministic, Exponential};

    #[test]
    fn fast_machine_preferred() {
        // One deterministic job on machines with speeds (2, 1): it should
        // run on the fast machine and finish at 0.5.
        let inst = BatchInstance::builder()
            .unweighted_job(dyn_dist(Deterministic::new(1.0)))
            .build();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let (total, mk) = simulate_uniform_list(&inst, &[0], &[2.0, 1.0], &mut rng);
        assert!((total - 0.5).abs() < 1e-12);
        assert!((mk - 0.5).abs() < 1e-12);
    }

    #[test]
    fn equal_speeds_match_identical_machine_scheduler() {
        let inst = BatchInstance::builder()
            .unweighted_job(dyn_dist(Deterministic::new(3.0)))
            .unweighted_job(dyn_dist(Deterministic::new(2.0)))
            .unweighted_job(dyn_dist(Deterministic::new(1.0)))
            .build();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let (total, mk) = simulate_uniform_list(&inst, &[2, 1, 0], &[1.0, 1.0], &mut rng);
        let mut rng2 = ChaCha8Rng::seed_from_u64(2);
        let out = crate::parallel::simulate_list_schedule(&inst, &[2, 1, 0], 2, &mut rng2);
        assert!((total - out.total_flowtime).abs() < 1e-12);
        assert!((mk - out.makespan).abs() < 1e-12);
    }

    #[test]
    fn threshold_zero_uses_both_machines() {
        let inst = BatchInstance::builder()
            .unweighted_job(dyn_dist(Deterministic::new(2.0)))
            .unweighted_job(dyn_dist(Deterministic::new(2.0)))
            .build();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let (_, mk) = simulate_threshold_policy(&inst, &[0, 1], &[1.0, 1.0], &[0, 0], &mut rng);
        assert!((mk - 2.0).abs() < 1e-12);
        // With the slow machine disabled (threshold larger than n), both jobs
        // run sequentially on the fast machine.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let (_, mk_seq) =
            simulate_threshold_policy(&inst, &[0, 1], &[1.0, 1.0], &[0, 10], &mut rng);
        assert!((mk_seq - 4.0).abs() < 1e-12);
    }

    #[test]
    fn migration_model_never_hurts_from_extra_capacity() {
        // In the (migration-allowed) set DP, serving on the slow machine as
        // well can only help, whatever its speed.
        let rates = vec![1.0; 4];
        let both = exp_two_uniform_flowtime(&rates, (1.0, 0.05), 0);
        let rates3 = vec![1.0; 3];
        let both3 = exp_two_uniform_flowtime(&rates3, (1.0, 0.05), 0);
        assert!(both3 < both, "fewer jobs means less flowtime");
        // Faster slow machine helps.
        let faster = exp_two_uniform_flowtime(&rates, (1.0, 0.5), 0);
        assert!(faster < both);
    }

    #[test]
    fn commitment_model_exhibits_threshold_structure() {
        // Agrawala et al. (1984): once jobs are committed to machines, a very
        // slow machine should be reserved for situations with many jobs left.
        // Threshold 1 ("never commit the last unstarted job to the slow
        // machine") strictly beats threshold 0 when the speed ratio is large,
        // while with equal speeds threshold 0 is best.
        let n = 4;
        let slow_ratio = (1.0, 0.05);
        let always = exp_identical_two_uniform_commit_flowtime(n, 1.0, slow_ratio, 0);
        let threshold1 = exp_identical_two_uniform_commit_flowtime(n, 1.0, slow_ratio, 1);
        assert!(
            threshold1 < always - 1e-6,
            "threshold 1 ({threshold1}) should beat always-use ({always}) for a very slow machine"
        );
        let equal = (1.0, 1.0);
        let always_eq = exp_identical_two_uniform_commit_flowtime(n, 1.0, equal, 0);
        let threshold_eq = exp_identical_two_uniform_commit_flowtime(n, 1.0, equal, 1);
        assert!(always_eq <= threshold_eq + 1e-9);
    }

    #[test]
    fn commitment_single_machine_limit() {
        // With the slow machine never allowed (huge threshold) the value is
        // the single fast machine flowtime: sum_{k=1..n} k / (lambda * s).
        let n = 5;
        let v = exp_identical_two_uniform_commit_flowtime(n, 2.0, (1.0, 1.0), 100);
        let expected: f64 = (1..=n).map(|k| k as f64 / 2.0).sum();
        assert!((v - expected).abs() < 1e-9, "{v} vs {expected}");
    }

    #[test]
    fn exponential_uniform_simulation_close_to_dp() {
        // The list simulator commits jobs to machines, so compare against the
        // commitment-model DP (not the migration DP, which is strictly lower
        // because it can always keep the last job on the fast machine).
        let rates = vec![1.0, 1.0, 1.0];
        let exact = exp_identical_two_uniform_commit_flowtime(3, 1.0, (1.0, 0.5), 0);
        let mut b = BatchInstance::builder();
        for &r in &rates {
            b = b.unweighted_job(dyn_dist(Exponential::new(r)));
        }
        let inst = b.build();
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let reps = 40_000;
        let mut acc = 0.0;
        for _ in 0..reps {
            acc += simulate_threshold_policy(&inst, &[0, 1, 2], &[1.0, 0.5], &[0, 0], &mut rng).0;
        }
        acc /= reps as f64;
        assert!(
            (acc - exact).abs() / exact < 0.03,
            "sim {acc} vs dp {exact}"
        );
    }
}

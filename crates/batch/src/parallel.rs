//! Identical parallel machines: list scheduling and Monte-Carlo evaluation.
//!
//! A static list policy on `m` identical machines starts the next unstarted
//! job of the list whenever a machine becomes free (non-idling,
//! nonpreemptive).  SEPT and LEPT are list policies; the exact dynamic
//! programs in [`crate::exact_exp`] verify their optimality for exponential
//! jobs, while this module evaluates arbitrary lists on arbitrary
//! distributions by simulation.

use rand::RngCore;
use rayon::prelude::*;
use ss_core::instance::BatchInstance;
use ss_sim::replication::{
    run_replications_chunked, run_replications_parallel, ChunkedReplications, ReplicationSummary,
};

/// Realised performance of one simulated schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleOutcome {
    /// `Σ_i C_i`.
    pub total_flowtime: f64,
    /// `Σ_i w_i C_i`.
    pub weighted_flowtime: f64,
    /// `max_i C_i`.
    pub makespan: f64,
}

/// Simulate one realisation of list scheduling `order` on `machines`
/// identical machines.
pub fn simulate_list_schedule(
    instance: &BatchInstance,
    order: &[usize],
    machines: usize,
    rng: &mut dyn RngCore,
) -> ScheduleOutcome {
    assert!(machines >= 1, "need at least one machine");
    assert_eq!(order.len(), instance.len(), "order must cover all jobs");
    let jobs = instance.jobs();
    // Machine free times; the next job in the list goes to the machine that
    // frees earliest.
    let mut free_at = vec![0.0f64; machines];
    let mut total_flowtime = 0.0;
    let mut weighted_flowtime = 0.0;
    let mut makespan: f64 = 0.0;
    for &idx in order {
        // Earliest-free machine.
        let (m_idx, &start) = free_at
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let duration = jobs[idx].dist.sample(rng);
        let completion = start + duration;
        free_at[m_idx] = completion;
        total_flowtime += completion;
        weighted_flowtime += jobs[idx].weight * completion;
        makespan = makespan.max(completion);
    }
    ScheduleOutcome {
        total_flowtime,
        weighted_flowtime,
        makespan,
    }
}

/// Which statistic of the schedule to aggregate over replications.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParallelMetric {
    /// Expected total flowtime `E[Σ C]`.
    TotalFlowtime,
    /// Expected weighted flowtime `E[Σ w C]`.
    WeightedFlowtime,
    /// Expected makespan `E[max C]`.
    Makespan,
}

/// Estimate the chosen metric of a static list by independent replications
/// (parallelised over the workspace thread pool; reproducible from `seed`
/// for any thread count).
pub fn evaluate_list_policy(
    instance: &BatchInstance,
    order: &[usize],
    machines: usize,
    metric: ParallelMetric,
    replications: usize,
    seed: u64,
) -> ReplicationSummary {
    run_replications_parallel(replications, seed, |_rep, rng| {
        let out = simulate_list_schedule(instance, order, machines, rng);
        match metric {
            ParallelMetric::TotalFlowtime => out.total_flowtime,
            ParallelMetric::WeightedFlowtime => out.weighted_flowtime,
            ParallelMetric::Makespan => out.makespan,
        }
    })
}

/// Evaluate several candidate lists at once, one summary per list, fanning
/// the lists out across the pool.
///
/// Each list's inner replication loop runs serially on the worker that
/// claimed it (nested parallel calls fall back to serial), so concurrency
/// is capped at `orders.len()` — the right shape when comparing many
/// policies; to parallelize *within* a single policy's replications, call
/// [`evaluate_list_policy`] directly.
///
/// Every list is evaluated with the same `seed`, giving common random
/// numbers across policies: the summaries are exactly what
/// [`evaluate_list_policy`] returns list by list.
pub fn evaluate_list_policies(
    instance: &BatchInstance,
    orders: &[Vec<usize>],
    machines: usize,
    metric: ParallelMetric,
    replications: usize,
    seed: u64,
) -> Vec<ReplicationSummary> {
    orders
        .par_iter()
        .map(|order| evaluate_list_policy(instance, order, machines, metric, replications, seed))
        .collect()
}

/// Estimate the chosen metric with per-batch summaries on top of the flat
/// replication values — the chunked counterpart of
/// [`evaluate_list_policy`], used for convergence monitoring of long runs.
pub fn evaluate_list_policy_chunked(
    instance: &BatchInstance,
    order: &[usize],
    machines: usize,
    metric: ParallelMetric,
    replications: usize,
    chunk_size: usize,
    seed: u64,
) -> ChunkedReplications {
    run_replications_chunked(replications, seed, chunk_size, |_rep, rng| {
        let out = simulate_list_schedule(instance, order, machines, rng);
        match metric {
            ParallelMetric::TotalFlowtime => out.total_flowtime,
            ParallelMetric::WeightedFlowtime => out.weighted_flowtime,
            ParallelMetric::Makespan => out.makespan,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::{lept_order, sept_order};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use ss_distributions::{dyn_dist, Deterministic, Exponential};

    fn det_instance() -> BatchInstance {
        BatchInstance::builder()
            .unweighted_job(dyn_dist(Deterministic::new(3.0)))
            .unweighted_job(dyn_dist(Deterministic::new(2.0)))
            .unweighted_job(dyn_dist(Deterministic::new(1.0)))
            .build()
    }

    #[test]
    fn deterministic_two_machine_schedule() {
        // List [2, 1, 0] (SEPT): machine A gets job2 (1), machine B job1 (2);
        // job0 starts at 1 on A, completes at 4.
        let inst = det_instance();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let out = simulate_list_schedule(&inst, &[2, 1, 0], 2, &mut rng);
        assert!((out.makespan - 4.0).abs() < 1e-12);
        assert!((out.total_flowtime - (1.0 + 2.0 + 4.0)).abs() < 1e-12);
    }

    #[test]
    fn single_machine_reduces_to_sum_of_prefixes() {
        let inst = det_instance();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let out = simulate_list_schedule(&inst, &[0, 1, 2], 1, &mut rng);
        assert!((out.total_flowtime - (3.0 + 5.0 + 6.0)).abs() < 1e-12);
        assert!((out.makespan - 6.0).abs() < 1e-12);
    }

    #[test]
    fn sept_beats_lept_for_flowtime_exponential() {
        // E3 in miniature: SEPT should give smaller E[sum C] than LEPT on
        // two machines with exponential jobs of distinct means.
        let inst = BatchInstance::builder()
            .unweighted_job(dyn_dist(Exponential::with_mean(0.5)))
            .unweighted_job(dyn_dist(Exponential::with_mean(1.0)))
            .unweighted_job(dyn_dist(Exponential::with_mean(2.0)))
            .unweighted_job(dyn_dist(Exponential::with_mean(4.0)))
            .unweighted_job(dyn_dist(Exponential::with_mean(3.0)))
            .build();
        let sept = evaluate_list_policy(
            &inst,
            &sept_order(&inst),
            2,
            ParallelMetric::TotalFlowtime,
            6000,
            9,
        );
        let lept = evaluate_list_policy(
            &inst,
            &lept_order(&inst),
            2,
            ParallelMetric::TotalFlowtime,
            6000,
            9,
        );
        assert!(
            sept.mean + sept.ci95 < lept.mean - lept.ci95,
            "SEPT {} ± {} should beat LEPT {} ± {}",
            sept.mean,
            sept.ci95,
            lept.mean,
            lept.ci95
        );
    }

    #[test]
    fn lept_beats_sept_for_makespan_exponential() {
        // E4 in miniature.
        let inst = BatchInstance::builder()
            .unweighted_job(dyn_dist(Exponential::with_mean(0.5)))
            .unweighted_job(dyn_dist(Exponential::with_mean(1.0)))
            .unweighted_job(dyn_dist(Exponential::with_mean(2.0)))
            .unweighted_job(dyn_dist(Exponential::with_mean(4.0)))
            .unweighted_job(dyn_dist(Exponential::with_mean(3.0)))
            .build();
        let sept = evaluate_list_policy(
            &inst,
            &sept_order(&inst),
            2,
            ParallelMetric::Makespan,
            8000,
            10,
        );
        let lept = evaluate_list_policy(
            &inst,
            &lept_order(&inst),
            2,
            ParallelMetric::Makespan,
            8000,
            10,
        );
        assert!(
            lept.mean < sept.mean,
            "LEPT makespan {} should be below SEPT {}",
            lept.mean,
            sept.mean
        );
    }

    #[test]
    fn replication_summary_is_reproducible() {
        let inst = det_instance();
        let a = evaluate_list_policy(&inst, &[0, 1, 2], 2, ParallelMetric::Makespan, 100, 42);
        let b = evaluate_list_policy(&inst, &[0, 1, 2], 2, ParallelMetric::Makespan, 100, 42);
        assert_eq!(a.values, b.values);
    }

    #[test]
    fn multi_list_evaluation_matches_one_by_one() {
        let inst = BatchInstance::builder()
            .unweighted_job(dyn_dist(Exponential::with_mean(0.5)))
            .unweighted_job(dyn_dist(Exponential::with_mean(1.5)))
            .unweighted_job(dyn_dist(Exponential::with_mean(2.5)))
            .build();
        let orders = vec![sept_order(&inst), lept_order(&inst), vec![0, 1, 2]];
        let batch =
            evaluate_list_policies(&inst, &orders, 2, ParallelMetric::TotalFlowtime, 200, 13);
        assert_eq!(batch.len(), orders.len());
        for (order, summary) in orders.iter().zip(&batch) {
            let single =
                evaluate_list_policy(&inst, order, 2, ParallelMetric::TotalFlowtime, 200, 13);
            assert_eq!(summary.values, single.values);
        }
    }

    #[test]
    fn chunked_evaluation_matches_flat_evaluation() {
        let inst = det_instance();
        let flat = evaluate_list_policy(&inst, &[2, 1, 0], 2, ParallelMetric::Makespan, 120, 7);
        let chunked = evaluate_list_policy_chunked(
            &inst,
            &[2, 1, 0],
            2,
            ParallelMetric::Makespan,
            120,
            32,
            7,
        );
        assert_eq!(chunked.overall.values, flat.values);
        assert_eq!(chunked.chunks.len(), 4);
    }
}

//! Preemptive single-machine scheduling (Sevcik 1974).
//!
//! When preemption is allowed, the optimal policy for `E[Σ w_i C_i]` is a
//! priority-index rule whose index depends on the *attained service* of each
//! job: the Gittins-type index
//!
//! ```text
//! G_i(a) = w_i * sup_{s > 0}  P(P_i <= a + s | P_i > a)
//!                             -----------------------------
//!                             E[ min(P_i - a, s) | P_i > a ]
//! ```
//!
//! For exponential processing times the index is constant (`w_i λ_i`, i.e.
//! WSEPT) and preemption brings no benefit; for decreasing-hazard-rate jobs
//! the index falls as service accrues, so the optimal policy abandons jobs
//! that fail to finish quickly — the source of the strict improvement over
//! WSEPT measured in experiment E2.
//!
//! The index is computed numerically on a quantum grid; the scheduler is a
//! discrete-review simulator with a configurable review period.

use rand::RngCore;
use ss_core::instance::BatchInstance;
use ss_distributions::ServiceDistribution;

/// Numerically evaluate the Gittins/Sevcik index of a job with weight
/// `weight`, processing-time distribution `dist` and attained service `a`.
///
/// The supremum over the stopping quantum `s` is approximated over a
/// geometric grid spanning `[min_quantum, horizon]`.
pub fn gittins_service_index(
    dist: &dyn ServiceDistribution,
    weight: f64,
    attained: f64,
    min_quantum: f64,
    horizon: f64,
    grid_points: usize,
) -> f64 {
    let rate = gittins_service_rate(dist, attained, min_quantum, horizon, grid_points);
    if rate.is_infinite() {
        // The job is (numerically) sure to be complete; top priority
        // regardless of weight so the simulator finishes it off.
        return f64::INFINITY;
    }
    weight * rate
}

/// The weight-independent part of [`gittins_service_index`]: the supremum
/// of completion-probability over expected-quantum ratios, so that
/// `gittins_service_index = weight · gittins_service_rate` (with the
/// numerically-complete `+∞` case passed through unscaled).
///
/// Split out so warm-start serving layers (`ss-index`) can cache the
/// expensive grid supremum per distribution and reprice a holding-cost
/// drift with one multiply — bit-identical to a cold rebuild, because the
/// cold path is this same function followed by the same multiply.
pub fn gittins_service_rate(
    dist: &dyn ServiceDistribution,
    attained: f64,
    min_quantum: f64,
    horizon: f64,
    grid_points: usize,
) -> f64 {
    assert!(min_quantum > 0.0 && horizon > min_quantum && grid_points >= 2);
    let sa = dist.sf(attained);
    if sa <= 1e-12 {
        // The job is (numerically) sure to be complete.
        return f64::INFINITY;
    }
    let ratio = (horizon / min_quantum).powf(1.0 / (grid_points - 1) as f64);
    let mut best = 0.0f64;
    let mut s = min_quantum;
    for _ in 0..grid_points {
        let p_complete = dist.completion_rate(attained, s);
        // E[min(residual, s) | survive a] by trapezoidal integration of the
        // conditional survival function.
        let steps = 32;
        let h = s / steps as f64;
        let mut integral = 0.0;
        let mut prev = 1.0; // S(a + 0)/S(a)
        for k in 1..=steps {
            let cur = dist.sf(attained + k as f64 * h) / sa;
            integral += 0.5 * (prev + cur) * h;
            prev = cur;
        }
        if integral > 1e-12 {
            best = best.max(p_complete / integral);
        }
        s *= ratio;
    }
    best
}

/// Outcome of one simulated preemptive schedule.
#[derive(Debug, Clone, Copy)]
pub struct PreemptiveOutcome {
    /// Realised weighted flowtime `Σ w_i C_i`.
    pub weighted_flowtime: f64,
    /// Realised makespan.
    pub makespan: f64,
    /// Number of preemptions that occurred.
    pub preemptions: usize,
}

/// Configuration of the discrete-review preemptive scheduler.
#[derive(Debug, Clone, Copy)]
pub struct PreemptiveConfig {
    /// Review period (service quantum between scheduling decisions).
    pub review_period: f64,
    /// Quantum grid lower bound for the index computation.
    pub min_quantum: f64,
    /// Quantum grid upper bound (roughly the largest plausible residual).
    pub index_horizon: f64,
    /// Number of grid points for the index supremum.
    pub grid_points: usize,
}

impl Default for PreemptiveConfig {
    fn default() -> Self {
        Self {
            review_period: 0.05,
            min_quantum: 0.05,
            index_horizon: 50.0,
            grid_points: 24,
        }
    }
}

/// Simulate one realisation of the Gittins-index preemptive policy on a
/// single machine.
///
/// Processing times are sampled up front (the scheduler never sees them);
/// at each review epoch the job with the largest current index receives the
/// next quantum of service.
pub fn simulate_gittins_preemptive(
    instance: &BatchInstance,
    config: &PreemptiveConfig,
    rng: &mut dyn RngCore,
) -> PreemptiveOutcome {
    let jobs = instance.jobs();
    let n = jobs.len();
    let true_sizes: Vec<f64> = jobs.iter().map(|j| j.dist.sample(rng)).collect();
    let mut attained = vec![0.0f64; n];
    let mut done = vec![false; n];
    let mut completion = vec![0.0f64; n];
    let mut remaining = n;
    let mut clock = 0.0;
    let mut last_served: Option<usize> = None;
    let mut preemptions = 0;

    while remaining > 0 {
        // Pick the job with the highest index.
        let mut best_job = None;
        let mut best_index = f64::NEG_INFINITY;
        for i in 0..n {
            if done[i] {
                continue;
            }
            let idx = gittins_service_index(
                jobs[i].dist.as_ref(),
                jobs[i].weight,
                attained[i],
                config.min_quantum,
                config.index_horizon,
                config.grid_points,
            );
            if idx > best_index {
                best_index = idx;
                best_job = Some(i);
            }
        }
        let i = best_job.expect("remaining > 0 implies an unfinished job exists");
        if let Some(prev) = last_served {
            if prev != i && !done[prev] {
                preemptions += 1;
            }
        }
        last_served = Some(i);

        let needed = true_sizes[i] - attained[i];
        if needed <= config.review_period {
            clock += needed.max(0.0);
            attained[i] = true_sizes[i];
            done[i] = true;
            completion[i] = clock;
            remaining -= 1;
        } else {
            clock += config.review_period;
            attained[i] += config.review_period;
        }
    }

    let weighted_flowtime = (0..n).map(|i| jobs[i].weight * completion[i]).sum();
    let makespan = completion.iter().cloned().fold(0.0, f64::max);
    PreemptiveOutcome {
        weighted_flowtime,
        makespan,
        preemptions,
    }
}

/// Simulate one realisation of the *nonpreemptive* WSEPT list on the same
/// sampled processing times, for paired comparisons (common random numbers
/// are achieved by the caller reusing the RNG stream).
pub fn simulate_wsept_nonpreemptive(instance: &BatchInstance, rng: &mut dyn RngCore) -> f64 {
    let order = crate::policies::wsept_order(instance);
    crate::single_machine::sample_weighted_flowtime(instance, &order, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use ss_distributions::{dyn_dist, Deterministic, Exponential, HyperExponential};

    #[test]
    fn exponential_index_is_w_lambda() {
        let d = Exponential::new(2.0);
        for a in [0.0, 0.7, 3.0] {
            let g = gittins_service_index(&d, 1.5, a, 0.01, 20.0, 32);
            assert!((g - 3.0).abs() < 0.05, "index {g} at attained {a}");
        }
    }

    #[test]
    fn dhr_index_decreases_with_attained_service() {
        let d = HyperExponential::with_mean_scv(1.0, 8.0);
        let g0 = gittins_service_index(&d, 1.0, 0.0, 0.01, 40.0, 40);
        let g2 = gittins_service_index(&d, 1.0, 2.0, 0.01, 40.0, 40);
        assert!(g0 > g2, "DHR index should fall: {g0} -> {g2}");
    }

    #[test]
    fn deterministic_jobs_schedule_without_preemption_waste() {
        let inst = BatchInstance::builder()
            .job(1.0, dyn_dist(Deterministic::new(1.0)))
            .job(1.0, dyn_dist(Deterministic::new(2.0)))
            .build();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let out = simulate_gittins_preemptive(&inst, &PreemptiveConfig::default(), &mut rng);
        // Makespan is the total work regardless of policy.
        assert!((out.makespan - 3.0).abs() < 1e-9);
        // The short job should finish first: 1*1 + 1*3 = 4.
        assert!((out.weighted_flowtime - 4.0).abs() < 1e-6);
    }

    #[test]
    fn preemptive_matches_wsept_for_exponential_jobs() {
        // Memorylessness makes preemption worthless: the two estimates agree
        // within Monte-Carlo noise (E2, exponential row).
        let inst = BatchInstance::builder()
            .job(1.0, dyn_dist(Exponential::with_mean(1.0)))
            .job(2.0, dyn_dist(Exponential::with_mean(0.5)))
            .job(1.0, dyn_dist(Exponential::with_mean(2.0)))
            .build();
        let reps = 1500;
        let config = PreemptiveConfig {
            review_period: 0.2,
            min_quantum: 0.2,
            index_horizon: 20.0,
            grid_points: 8,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut pre = 0.0;
        let mut non = 0.0;
        for _ in 0..reps {
            pre += simulate_gittins_preemptive(&inst, &config, &mut rng).weighted_flowtime;
            non += simulate_wsept_nonpreemptive(&inst, &mut rng);
        }
        pre /= reps as f64;
        non /= reps as f64;
        let rel = (pre - non).abs() / non;
        assert!(
            rel < 0.08,
            "preemptive {pre} vs WSEPT {non} (rel diff {rel})"
        );
    }

    #[test]
    fn preemption_helps_for_dhr_jobs() {
        // Strongly DHR jobs: abandoning a job that failed to finish quickly
        // is valuable, so the Gittins preemptive policy beats WSEPT.
        let inst = BatchInstance::builder()
            .job(1.0, dyn_dist(HyperExponential::with_mean_scv(1.0, 16.0)))
            .job(1.0, dyn_dist(HyperExponential::with_mean_scv(1.0, 16.0)))
            .job(1.0, dyn_dist(HyperExponential::with_mean_scv(1.0, 16.0)))
            .job(1.0, dyn_dist(HyperExponential::with_mean_scv(1.0, 16.0)))
            .build();
        let reps = 1500;
        let config = PreemptiveConfig {
            review_period: 0.25,
            min_quantum: 0.25,
            index_horizon: 30.0,
            grid_points: 8,
        };
        let mut rng_a = ChaCha8Rng::seed_from_u64(21);
        let mut rng_b = ChaCha8Rng::seed_from_u64(21);
        let mut pre = 0.0;
        let mut non = 0.0;
        for _ in 0..reps {
            pre += simulate_gittins_preemptive(&inst, &config, &mut rng_a).weighted_flowtime;
            non += simulate_wsept_nonpreemptive(&inst, &mut rng_b);
        }
        pre /= reps as f64;
        non /= reps as f64;
        assert!(
            pre < non * 0.97,
            "expected a clear preemption gain: preemptive {pre} vs WSEPT {non}"
        );
    }
}

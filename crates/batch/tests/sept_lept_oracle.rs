//! SEPT/LEPT simulator-vs-DP oracle suite: the Monte-Carlo list-schedule
//! simulator (`ss_batch::parallel`) must reproduce the exact subset-DP
//! values (`ss_batch::exact_exp`) for exponential jobs, with seeded
//! replications that are bit-identical for any thread count — the same
//! contract the `ss-verify` pair `sept-lept-vs-dp` gates in CI.

use ss_batch::exact_exp::{
    exp_batch_instance, lept_order_exp, list_policy_flowtime, list_policy_makespan, sept_order_exp,
    ExpParallelInstance,
};
use ss_batch::parallel::{evaluate_list_policy, ParallelMetric};
use ss_sim::pool;

fn instance() -> ExpParallelInstance {
    ExpParallelInstance::unweighted(vec![0.5, 1.0, 2.0, 1.5, 0.8, 2.5])
}

#[test]
fn sept_flowtime_simulation_matches_the_exact_dp() {
    let inst = instance();
    let batch = exp_batch_instance(&inst);
    let order = sept_order_exp(&inst);
    for machines in [1usize, 2, 3] {
        let exact = list_policy_flowtime(&inst, &order, machines);
        let summary = evaluate_list_policy(
            &batch,
            &order,
            machines,
            ParallelMetric::TotalFlowtime,
            30_000,
            41,
        );
        assert!(
            (summary.mean - exact).abs() < 3.0 * summary.ci95.max(0.01 * exact),
            "m={machines}: simulated {} ± {} vs exact {exact}",
            summary.mean,
            summary.ci95
        );
    }
}

#[test]
fn lept_makespan_simulation_matches_the_exact_dp() {
    let inst = instance();
    let batch = exp_batch_instance(&inst);
    let order = lept_order_exp(&inst);
    for machines in [2usize, 3] {
        let exact = list_policy_makespan(&inst, &order, machines);
        let summary = evaluate_list_policy(
            &batch,
            &order,
            machines,
            ParallelMetric::Makespan,
            30_000,
            42,
        );
        assert!(
            (summary.mean - exact).abs() < 3.0 * summary.ci95.max(0.01 * exact),
            "m={machines}: simulated {} ± {} vs exact {exact}",
            summary.mean,
            summary.ci95
        );
    }
}

#[test]
fn weighted_flowtime_simulation_matches_the_exact_dp() {
    let inst = ExpParallelInstance::weighted(vec![1.0, 0.5, 2.0, 1.2], vec![1.0, 3.0, 2.0, 0.5]);
    let batch = exp_batch_instance(&inst);
    // WSEPT order: decreasing w * lambda.
    let mut order: Vec<usize> = (0..inst.len()).collect();
    order.sort_by(|&a, &b| {
        (inst.weights[b] * inst.rates[b])
            .partial_cmp(&(inst.weights[a] * inst.rates[a]))
            .unwrap()
    });
    let exact = list_policy_flowtime(&inst, &order, 2);
    let summary = evaluate_list_policy(
        &batch,
        &order,
        2,
        ParallelMetric::WeightedFlowtime,
        30_000,
        43,
    );
    assert!(
        (summary.mean - exact).abs() < 3.0 * summary.ci95.max(0.01 * exact),
        "simulated {} ± {} vs exact {exact}",
        summary.mean,
        summary.ci95
    );
}

#[test]
fn list_schedule_replications_are_thread_count_invariant_and_seed_pure() {
    let inst = instance();
    let batch = exp_batch_instance(&inst);
    let order = sept_order_exp(&inst);
    let run = |threads: usize, seed: u64| {
        pool::with_threads(threads, || {
            evaluate_list_policy(&batch, &order, 2, ParallelMetric::TotalFlowtime, 500, seed)
        })
    };
    let serial = run(1, 9);
    let parallel = run(4, 9);
    assert_eq!(serial.values.len(), parallel.values.len());
    for (a, b) in serial.values.iter().zip(&parallel.values) {
        assert_eq!(a.to_bits(), b.to_bits(), "thread count changed a draw");
    }
    // Seed purity.
    assert_eq!(run(2, 9).values, serial.values);
    assert_ne!(run(1, 10).values, serial.values);
}

//! Fast smoke test of the crate's headline computation: WSEPT sequencing of
//! a small batch, which must sort by `w_j / E[S_j]` and never lose to the
//! identity or reversed order.

use ss_batch::policies::wsept_order;
use ss_batch::single_machine::expected_weighted_flowtime;
use ss_core::instance::BatchInstance;
use ss_distributions::{dyn_dist, Exponential};

#[test]
fn wsept_smoke() {
    // (weight, mean): WSEPT ratios are 0.5, 4.0, 2/3 -> order [1, 2, 0].
    let instance = BatchInstance::builder()
        .job(1.0, dyn_dist(Exponential::with_mean(2.0)))
        .job(4.0, dyn_dist(Exponential::with_mean(1.0)))
        .job(2.0, dyn_dist(Exponential::with_mean(3.0)))
        .build();
    let order = wsept_order(&instance);
    assert_eq!(order, vec![1, 2, 0]);

    let wsept = expected_weighted_flowtime(&instance, &order);
    let identity = expected_weighted_flowtime(&instance, &[0, 1, 2]);
    let reversed = expected_weighted_flowtime(&instance, &[2, 1, 0]);
    assert!(wsept > 0.0);
    assert!(wsept <= identity + 1e-12);
    assert!(wsept <= reversed + 1e-12);
}

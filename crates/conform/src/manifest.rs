//! The checked-in conformance manifest (`conform.toml`).
//!
//! Targets are **declared**, not hard-coded in CI YAML: each `[[target]]`
//! names a builtin artifact producer ([`TargetKind`]), the replica matrix it
//! must be byte-identical across, the committed golden fixture, and
//! structural expectations (e.g. the oracle-pair keys `verify --check` must
//! report, so corpus shrinkage fails as a manifest violation instead of
//! relying on a hand-maintained grep loop).
//!
//! The workspace builds offline with no TOML crate (see `vendor/README.md`),
//! so this module parses the small TOML subset the manifest needs: top-level
//! `key = value` pairs, `[[target]]` array-of-tables headers, strings,
//! integers, booleans and flat arrays, with `#` comments.  Unknown keys and
//! kinds are hard errors — the manifest is self-describing and typos must
//! not silently weaken the gate.

use std::fmt;

/// Supported manifest schema version (bump on incompatible changes).
pub const SCHEMA_VERSION: i64 = 1;

/// A parsed scalar-or-array TOML value.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Int(i64),
    Bool(bool),
    List(Vec<Value>),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Bool(_) => "boolean",
            Value::List(_) => "array",
        }
    }
}

/// The builtin artifact producers a target can reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetKind {
    /// `verify --check`: the oracle cross-validation corpus report.
    Verify,
    /// `fabric --check`: the service-fabric scenario-suite report.
    Fabric,
    /// The `parallel_replications` workload's per-replication values.
    Replications,
    /// The turnpike / heavy-traffic / asymptotic sweep values.
    Sweeps,
    /// An `experiments` harness subset (wall-clock lines stripped).
    Experiments,
}

impl TargetKind {
    /// Parse a manifest `kind` string.
    pub fn from_key(key: &str) -> Option<TargetKind> {
        match key {
            "verify" => Some(TargetKind::Verify),
            "fabric" => Some(TargetKind::Fabric),
            "replications" => Some(TargetKind::Replications),
            "sweeps" => Some(TargetKind::Sweeps),
            "experiments" => Some(TargetKind::Experiments),
            _ => None,
        }
    }

    /// The manifest `kind` string.
    pub fn key(&self) -> &'static str {
        match self {
            TargetKind::Verify => "verify",
            TargetKind::Fabric => "fabric",
            TargetKind::Replications => "replications",
            TargetKind::Sweeps => "sweeps",
            TargetKind::Experiments => "experiments",
        }
    }
}

impl fmt::Display for TargetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// One declared conformance target.
#[derive(Debug, Clone)]
pub struct TargetSpec {
    /// Unique target key (`--target` selector, report label).
    pub key: String,
    /// Which builtin artifact producer to run.
    pub kind: TargetKind,
    /// Human description for `--list`.
    pub description: String,
    /// Pool sizes of the replicas (the `SS_THREADS` matrix).
    pub threads: Vec<usize>,
    /// Optional per-replica `--jobs` values (defaults to `threads`);
    /// meaningful for [`TargetKind::Experiments`].
    pub jobs: Option<Vec<usize>>,
    /// Repo-relative path of the committed golden fixture.
    pub fixture: String,
    /// Experiment ids for [`TargetKind::Experiments`].
    pub experiments: Vec<String>,
    /// Replication count for [`TargetKind::Replications`].
    pub replications: Option<usize>,
    /// Oracle-pair keys that must each appear as a `PASS <key>` line
    /// ([`TargetKind::Verify`] only).
    pub expect_pairs: Vec<String>,
    /// Expected corpus scenario count from the machine-readable trailer.
    pub expect_scenarios: Option<usize>,
    /// Expected corpus master seed from the machine-readable trailer.
    pub expect_seed: Option<u64>,
    /// Substrings the canonical artifact must contain (any kind).
    pub expect_contains: Vec<String>,
}

/// The parsed manifest.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Declared targets in manifest order.
    pub targets: Vec<TargetSpec>,
}

impl Manifest {
    /// Parse and validate manifest text.
    pub fn parse(text: &str) -> Result<Manifest, String> {
        let mut schema: Option<i64> = None;
        // (key, value, line number) per table; table 0 is the top level.
        let mut tables: Vec<Vec<(String, Value, usize)>> = vec![Vec::new()];
        let mut in_target = false;
        for (lineno, line) in logical_lines(text)? {
            let line = line.as_str();
            if line == "[[target]]" {
                tables.push(Vec::new());
                in_target = true;
                continue;
            }
            if line.starts_with('[') {
                return Err(format!(
                    "line {lineno}: unsupported table header {line:?} (only [[target]])"
                ));
            }
            let (key, value) =
                parse_assignment(line).map_err(|e| format!("line {lineno}: {e} in {line:?}"))?;
            let table = if in_target {
                tables.last_mut().expect("a [[target]] table is open")
            } else {
                &mut tables[0]
            };
            if table.iter().any(|(k, _, _)| *k == key) {
                return Err(format!("line {lineno}: duplicate key {key:?}"));
            }
            if !in_target && key == "schema" {
                match value {
                    Value::Int(v) => schema = Some(v),
                    other => {
                        return Err(format!(
                            "line {lineno}: schema must be an integer, got {}",
                            other.type_name()
                        ))
                    }
                }
                continue;
            }
            table.push((key, value, lineno));
        }
        match schema {
            Some(SCHEMA_VERSION) => {}
            Some(v) => {
                return Err(format!(
                    "unsupported manifest schema {v} (this build understands {SCHEMA_VERSION})"
                ))
            }
            None => return Err("manifest is missing the top-level `schema` key".to_string()),
        }
        if let Some((key, _, lineno)) = tables[0].first() {
            return Err(format!(
                "line {lineno}: unknown top-level key {key:?} (only `schema` and [[target]] tables)"
            ));
        }
        let targets: Vec<TargetSpec> = tables[1..]
            .iter()
            .map(|t| TargetSpec::from_table(t))
            .collect::<Result<_, _>>()?;
        if targets.is_empty() {
            return Err("manifest declares no [[target]] tables".to_string());
        }
        let mut seen = std::collections::HashSet::new();
        for t in &targets {
            if !seen.insert(t.key.clone()) {
                return Err(format!("duplicate target key {:?}", t.key));
            }
        }
        Ok(Manifest { targets })
    }
}

impl TargetSpec {
    fn from_table(table: &[(String, Value, usize)]) -> Result<TargetSpec, String> {
        let mut key = None;
        let mut kind = None;
        let mut description = None;
        let mut threads = None;
        let mut jobs = None;
        let mut fixture = None;
        let mut experiments = Vec::new();
        let mut replications = None;
        let mut expect_pairs = Vec::new();
        let mut expect_scenarios = None;
        let mut expect_seed = None;
        let mut expect_contains = Vec::new();
        for (k, v, lineno) in table {
            let fail = |what: &str| format!("line {lineno}: {k} must be {what}");
            match k.as_str() {
                "key" => key = Some(as_string(v).ok_or_else(|| fail("a string"))?),
                "kind" => {
                    let s = as_string(v).ok_or_else(|| fail("a string"))?;
                    kind = Some(TargetKind::from_key(&s).ok_or_else(|| {
                        format!(
                            "line {lineno}: unknown kind {s:?} (known: verify fabric \
                             replications sweeps experiments)"
                        )
                    })?);
                }
                "description" => description = Some(as_string(v).ok_or_else(|| fail("a string"))?),
                "threads" => {
                    threads = Some(
                        as_usize_list(v)
                            .ok_or_else(|| fail("a non-empty array of integers >= 1"))?,
                    )
                }
                "jobs" => {
                    jobs = Some(
                        as_usize_list(v)
                            .ok_or_else(|| fail("a non-empty array of integers >= 1"))?,
                    )
                }
                "fixture" => fixture = Some(as_string(v).ok_or_else(|| fail("a string"))?),
                "experiments" => {
                    experiments = as_string_list(v).ok_or_else(|| fail("an array of strings"))?
                }
                "replications" => {
                    replications = Some(as_usize(v).ok_or_else(|| fail("an integer >= 1"))?)
                }
                "expect-pairs" => {
                    expect_pairs = as_string_list(v).ok_or_else(|| fail("an array of strings"))?
                }
                "expect-scenarios" => {
                    expect_scenarios = Some(as_usize(v).ok_or_else(|| fail("an integer >= 1"))?)
                }
                "expect-seed" => match v {
                    Value::Int(i) if *i >= 0 => expect_seed = Some(*i as u64),
                    Value::Str(s) => {
                        // Seeds are often written in hex for legibility.
                        let trimmed = s.trim_start_matches("0x");
                        expect_seed = Some(u64::from_str_radix(trimmed, 16).map_err(|_| {
                            format!("line {lineno}: expect-seed string must be hex, got {s:?}")
                        })?);
                    }
                    _ => return Err(fail("a non-negative integer or a hex string")),
                },
                "expect-contains" => {
                    expect_contains =
                        as_string_list(v).ok_or_else(|| fail("an array of strings"))?
                }
                other => {
                    return Err(format!(
                        "line {lineno}: unknown target key {other:?} — the manifest is \
                         self-describing; add support in ss-conform before using new keys"
                    ))
                }
            }
        }
        let first_line = table.first().map(|(_, _, l)| *l).unwrap_or(0);
        let key = key.ok_or(format!("target at line {first_line}: missing `key`"))?;
        let require = |name: &str, ok: bool| {
            if ok {
                Ok(())
            } else {
                Err(format!("target {key:?}: missing `{name}`"))
            }
        };
        require("kind", kind.is_some())?;
        require("description", description.is_some())?;
        require("threads", threads.is_some())?;
        require("fixture", fixture.is_some())?;
        let kind = kind.expect("checked above");
        let threads: Vec<usize> = threads.expect("checked above");
        if threads.len() < 2 {
            return Err(format!(
                "target {key:?}: needs at least 2 replicas to compare (got {})",
                threads.len()
            ));
        }
        if let Some(jobs) = &jobs {
            if jobs.len() != threads.len() {
                return Err(format!(
                    "target {key:?}: `jobs` ({}) and `threads` ({}) must have equal length",
                    jobs.len(),
                    threads.len()
                ));
            }
        }
        if kind == TargetKind::Experiments && experiments.is_empty() {
            return Err(format!(
                "target {key:?}: kind = \"experiments\" requires a non-empty `experiments` list"
            ));
        }
        if kind == TargetKind::Replications && replications.is_none() {
            return Err(format!(
                "target {key:?}: kind = \"replications\" requires `replications`"
            ));
        }
        if !expect_pairs.is_empty() && kind != TargetKind::Verify {
            return Err(format!(
                "target {key:?}: `expect-pairs` only applies to kind = \"verify\""
            ));
        }
        Ok(TargetSpec {
            key,
            kind,
            description: description.expect("checked above"),
            threads,
            jobs,
            fixture: fixture.expect("checked above"),
            experiments,
            replications,
            expect_pairs,
            expect_scenarios,
            expect_seed,
            expect_contains,
        })
    }
}

/// Net `[`/`]` nesting change of a line, ignoring brackets inside strings.
fn bracket_delta(line: &str) -> i64 {
    let mut delta = 0;
    let mut in_string = false;
    let mut escaped = false;
    for c in line.chars() {
        match c {
            '\\' if in_string => escaped = !escaped,
            '"' if !escaped => in_string = !in_string,
            '[' if !in_string => delta += 1,
            ']' if !in_string => delta -= 1,
            _ => escaped = false,
        }
    }
    delta
}

/// Comment-stripped, trimmed logical lines with their starting line number.
/// Physical lines are joined while an array `[` remains open, so manifests
/// can format long arrays one element per line.
fn logical_lines(text: &str) -> Result<Vec<(usize, String)>, String> {
    let mut out = Vec::new();
    let mut pending: Option<(usize, String, i64)> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let delta = bracket_delta(line);
        match pending.take() {
            None if delta > 0 => pending = Some((lineno, line.to_string(), delta)),
            None => out.push((lineno, line.to_string())),
            Some((start, mut acc, depth)) => {
                acc.push(' ');
                acc.push_str(line);
                let depth = depth + delta;
                if depth > 0 {
                    pending = Some((start, acc, depth));
                } else {
                    out.push((start, acc));
                }
            }
        }
    }
    if let Some((start, _, _)) = pending {
        return Err(format!("line {start}: unclosed `[` in array value"));
    }
    Ok(out)
}

/// Strip a `#` comment not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_string => escaped = !escaped,
            '"' if !escaped => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => escaped = false,
        }
    }
    line
}

/// Parse `key = value`.
fn parse_assignment(line: &str) -> Result<(String, Value), String> {
    let (key, rest) = line
        .split_once('=')
        .ok_or("expected `key = value`".to_string())?;
    let key = key.trim();
    if key.is_empty()
        || !key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
    {
        return Err(format!("invalid key {key:?}"));
    }
    let (value, rest) = parse_value(rest.trim())?;
    if !rest.trim().is_empty() {
        return Err(format!("trailing content {:?} after value", rest.trim()));
    }
    Ok((key.to_string(), value))
}

/// Parse one value; returns it and the unconsumed remainder.
fn parse_value(text: &str) -> Result<(Value, &str), String> {
    let text = text.trim_start();
    if let Some(rest) = text.strip_prefix('"') {
        let mut out = String::new();
        let mut chars = rest.char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => return Ok((Value::Str(out), &rest[i + 1..])),
                '\\' => match chars.next() {
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    other => {
                        return Err(format!(
                            "unsupported string escape {:?}",
                            other.map(|o| o.1)
                        ))
                    }
                },
                c => out.push(c),
            }
        }
        return Err("unterminated string".to_string());
    }
    if let Some(mut rest) = text.strip_prefix('[') {
        let mut items = Vec::new();
        loop {
            rest = rest.trim_start();
            if let Some(after) = rest.strip_prefix(']') {
                return Ok((Value::List(items), after));
            }
            let (item, after) = parse_value(rest)?;
            items.push(item);
            rest = after.trim_start();
            if let Some(after) = rest.strip_prefix(',') {
                rest = after;
            } else if !rest.starts_with(']') {
                return Err("expected `,` or `]` in array".to_string());
            }
        }
    }
    if let Some(rest) = text.strip_prefix("true") {
        return Ok((Value::Bool(true), rest));
    }
    if let Some(rest) = text.strip_prefix("false") {
        return Ok((Value::Bool(false), rest));
    }
    let end = text
        .find(|c: char| !(c.is_ascii_digit() || c == '-' || c == '_'))
        .unwrap_or(text.len());
    let token = &text[..end];
    let cleaned: String = token.chars().filter(|&c| c != '_').collect();
    match cleaned.parse::<i64>() {
        Ok(i) => Ok((Value::Int(i), &text[end..])),
        Err(_) => Err(format!("cannot parse value starting at {text:?}")),
    }
}

fn as_string(v: &Value) -> Option<String> {
    match v {
        Value::Str(s) => Some(s.clone()),
        _ => None,
    }
}

fn as_usize(v: &Value) -> Option<usize> {
    match v {
        Value::Int(i) if *i >= 1 => Some(*i as usize),
        _ => None,
    }
}

fn as_usize_list(v: &Value) -> Option<Vec<usize>> {
    match v {
        Value::List(items) if !items.is_empty() => items.iter().map(as_usize).collect(),
        _ => None,
    }
}

fn as_string_list(v: &Value) -> Option<Vec<String>> {
    match v {
        Value::List(items) => items.iter().map(as_string).collect(),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"
        schema = 1

        [[target]] # the one target
        key = "demo"
        kind = "sweeps"
        description = "demo target" # trailing comment
        threads = [1, 2, 4]
        fixture = "fixtures/conform/demo.txt"
        expect-contains = ["sweep turnpike"]
    "#;

    #[test]
    fn parses_a_minimal_manifest() {
        let m = Manifest::parse(MINIMAL).unwrap();
        assert_eq!(m.targets.len(), 1);
        let t = &m.targets[0];
        assert_eq!(t.key, "demo");
        assert_eq!(t.kind, TargetKind::Sweeps);
        assert_eq!(t.threads, vec![1, 2, 4]);
        assert_eq!(t.jobs, None);
        assert_eq!(t.expect_contains, vec!["sweep turnpike".to_string()]);
    }

    #[test]
    fn multi_line_arrays_join_into_one_logical_line() {
        let text = MINIMAL.replace(
            "expect-contains = [\"sweep turnpike\"]",
            "expect-contains = [\n  \"sweep turnpike\", # per-line comment\n  \"sweep [x]\",\n]",
        );
        let m = Manifest::parse(&text).unwrap();
        assert_eq!(
            m.targets[0].expect_contains,
            vec!["sweep turnpike".to_string(), "sweep [x]".to_string()]
        );
        let unclosed = MINIMAL.replace(
            "expect-contains = [\"sweep turnpike\"]",
            "expect-contains = [\n  \"sweep turnpike\",",
        );
        assert!(Manifest::parse(&unclosed)
            .unwrap_err()
            .contains("unclosed `[`"));
    }

    #[test]
    fn hex_seed_strings_parse() {
        let text = MINIMAL.replace("kind = \"sweeps\"", "kind = \"verify\"")
            + "\nexpect-seed = \"0xC0DE5EED\"\n";
        let m = Manifest::parse(&text).unwrap();
        assert_eq!(m.targets[0].expect_seed, Some(0xC0DE_5EED));
    }

    #[test]
    fn rejects_unknown_keys_kinds_and_schema() {
        assert!(
            Manifest::parse(&MINIMAL.replace("schema = 1", "schema = 2"))
                .unwrap_err()
                .contains("unsupported manifest schema")
        );
        assert!(
            Manifest::parse(&MINIMAL.replace("kind = \"sweeps\"", "kind = \"nope\""))
                .unwrap_err()
                .contains("unknown kind")
        );
        assert!(Manifest::parse(&format!("{MINIMAL}\ntypo-key = 3\n"))
            .unwrap_err()
            .contains("unknown target key"));
        assert!(Manifest::parse("")
            .unwrap_err()
            .contains("missing the top-level `schema`"));
    }

    #[test]
    fn rejects_structural_mistakes() {
        // Single replica: nothing to compare.
        assert!(
            Manifest::parse(&MINIMAL.replace("threads = [1, 2, 4]", "threads = [1]"))
                .unwrap_err()
                .contains("at least 2 replicas")
        );
        // jobs/threads length mismatch.
        assert!(Manifest::parse(&format!("{MINIMAL}\njobs = [1]\n"))
            .unwrap_err()
            .contains("equal length"));
        // Duplicate keys within a table.
        assert!(Manifest::parse(&format!("{MINIMAL}\nkey = \"again\"\n"))
            .unwrap_err()
            .contains("duplicate key"));
        // expect-pairs on a non-verify target.
        assert!(
            Manifest::parse(&format!("{MINIMAL}\nexpect-pairs = [\"x\"]\n"))
                .unwrap_err()
                .contains("only applies to kind = \"verify\"")
        );
    }

    #[test]
    fn comments_inside_strings_survive() {
        let text = MINIMAL.replace("demo target", "has a # inside");
        let m = Manifest::parse(&text).unwrap();
        assert_eq!(m.targets[0].description, "has a # inside");
    }
}

//! Builtin artifact producers — one per [`TargetKind`].
//!
//! Each renderer produces, **in process**, exactly the deterministic text
//! the corresponding check binary prints (shared rendering functions in the
//! owning crates guarantee this), using whatever pool the harness installed
//! for the replica.  Running in process keeps the conformance matrix one
//! compile + one process instead of 3×5 `cargo run` invocations, and makes
//! the replica pool size exact rather than inherited through an env var.
//!
//! A panic inside a target is converted into a render error so one broken
//! target cannot take down the whole conformance run.

use crate::harness::ReplicaSpec;
use crate::manifest::{TargetKind, TargetSpec};
use ss_bench::conformance::{
    harness_subset_report, replication_values_report, sweep_values_report,
};
use ss_fabric::scenarios as fabric_scenarios;
use ss_verify::run::render_check_report;
use ss_verify::scenario::Budget as VerifyBudget;
use ss_verify::{generate_corpus, run_corpus, summarize};

/// Render the canonical artifact for a builtin target kind.
///
/// The caller (the harness) has already installed the replica's pool;
/// renderers must not install another one around their parallel fan-outs —
/// except where the real binary does (the experiments harness installs a
/// `--jobs` pool itself, which is exactly the behaviour under test).
pub fn render_builtin(spec: &TargetSpec, replica: &ReplicaSpec) -> Result<String, String> {
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match spec.kind {
        TargetKind::Verify => {
            let corpus = generate_corpus(spec.expect_seed.unwrap_or(ss_verify::DEFAULT_SEED));
            let reports = run_corpus(&corpus, &VerifyBudget::check());
            let (passed, total) = summarize(&reports);
            let report = render_check_report(&corpus, &reports);
            if passed != total {
                // A FAIL line is deterministic and would byte-diff clean
                // across replicas; correctness failures must fail the
                // target, not hide inside a "conforming" artifact.
                return Err(format!(
                    "{} oracle checks FAILED (report follows)\n{report}",
                    total - passed
                ));
            }
            Ok(report)
        }
        TargetKind::Fabric => {
            let seed = spec.expect_seed.unwrap_or(fabric_scenarios::DEFAULT_SEED);
            let results = fabric_scenarios::run_suite(seed, &fabric_scenarios::Budget::check());
            Ok(fabric_scenarios::render_suite_report(seed, &results))
        }
        TargetKind::Replications => Ok(replication_values_report(
            spec.replications.expect("manifest validation requires it"),
        )),
        TargetKind::Sweeps => Ok(sweep_values_report()),
        TargetKind::Experiments => harness_subset_report(&spec.experiments, replica.jobs),
    }));
    match run {
        Ok(result) => result,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(format!("target panicked: {msg}"))
        }
    }
}

//! Byte-level divergence localization with root-cause hints.
//!
//! Two artifacts that should be identical are compared byte-for-byte; on
//! mismatch the harness reports the **first divergent byte offset**, a
//! 16-byte hex window from each side, and a **root-cause hint** classifying
//! the most common ways determinism breaks in practice:
//!
//! * one artifact is a strict prefix of the other → truncation;
//! * the artifacts contain the same lines in a different order → hash-map /
//!   set iteration-order leakage;
//! * the diverging line smells like a clock (wall-clock suffixes, epoch
//!   seconds, ISO dates, `[`-prefixed timing lines) → timestamp leakage;
//! * the diverging numeric tokens parse to the same value → float
//!   *formatting* drift (e.g. `0.50` vs `0.5`, `1e-2` vs `0.01`);
//! * otherwise the lengths and contexts are reported without a guess.
//!
//! Hints are heuristics for the human reading the CI log — the comparison
//! itself is exact and fails on any byte difference regardless of the hint.

use std::collections::HashMap;

/// Number of context bytes shown from each artifact at the divergence.
pub const CONTEXT_BYTES: usize = 16;

/// The classified likely root cause of a divergence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RootCause {
    /// One artifact is a strict prefix of the other.
    Truncation {
        /// Length of the shorter (truncated) artifact.
        shorter: usize,
        /// Length of the longer artifact.
        longer: usize,
    },
    /// Same multiset of lines, different order.
    MapOrdering,
    /// The diverging line looks like it carries a clock value.
    Timestamp,
    /// The diverging numeric tokens are the same number formatted
    /// differently.
    FloatFormatting,
    /// No heuristic matched; byte lengths are reported for orientation.
    Unknown {
        /// Length of the left artifact.
        left_len: usize,
        /// Length of the right artifact.
        right_len: usize,
    },
}

impl RootCause {
    /// One-line human-readable hint.
    pub fn hint(&self) -> String {
        match self {
            RootCause::Truncation { shorter, longer } => format!(
                "truncation: one replica's artifact is a strict prefix of the other \
                 ({shorter} vs {longer} bytes) — an early exit, a lost write, or a \
                 dropped tail"
            ),
            RootCause::MapOrdering => "map ordering: both artifacts contain the same lines in a \
                                       different order — iteration over a HashMap/HashSet is \
                                       leaking into the output; collect and sort, or use an \
                                       order-preserving structure (statically caught by \
                                       ss-lint L001)"
                .to_string(),
            RootCause::Timestamp => "timestamp leakage: the diverging line carries a wall-clock \
                                     value (epoch seconds, a date, or a timing line) — route it \
                                     through the artifact preamble or strip it from the \
                                     deterministic report (statically caught by ss-lint L002)"
                .to_string(),
            RootCause::FloatFormatting => "float formatting: the diverging tokens parse to the \
                                           same number — formatting (not the value) drifted; pin \
                                           one rendering (e.g. `{:.17e}` or raw bits) at the \
                                           artifact boundary (statically caught by ss-lint L005)"
                .to_string(),
            RootCause::Unknown {
                left_len,
                right_len,
            } => format!(
                "no heuristic matched ({left_len} vs {right_len} bytes) — the replicas computed \
                 genuinely different values; suspect an unseeded RNG, thread-order-dependent \
                 accumulation, or shared mutable state"
            ),
        }
    }
}

/// A localized mismatch between two artifacts that should be identical.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Label of the left replica (e.g. `threads=1`).
    pub left_label: String,
    /// Label of the right replica (e.g. `threads=4`).
    pub right_label: String,
    /// First byte offset at which the artifacts differ (equal to the
    /// shorter length when one is a prefix of the other).
    pub offset: usize,
    /// Hex + ASCII window of [`CONTEXT_BYTES`] from the left artifact.
    pub left_context: String,
    /// Hex + ASCII window of [`CONTEXT_BYTES`] from the right artifact.
    pub right_context: String,
    /// The classified root cause.
    pub cause: RootCause,
}

impl Divergence {
    /// Multi-line report block for logs.
    pub fn report(&self) -> String {
        let width = self.left_label.len().max(self.right_label.len());
        format!(
            "first divergence at byte offset {} (0x{:x})\n  {:<width$}  {}\n  {:<width$}  {}\n  hint: {}",
            self.offset,
            self.offset,
            self.left_label,
            self.left_context,
            self.right_label,
            self.right_context,
            self.cause.hint(),
            width = width,
        )
    }
}

/// Render `CONTEXT_BYTES` of `buf` starting at `offset` as hex pairs plus an
/// ASCII gloss (non-printable bytes shown as `.`).
pub fn hex_context(buf: &[u8], offset: usize) -> String {
    if offset >= buf.len() {
        return format!("<end of artifact at {} bytes>", buf.len());
    }
    let window = &buf[offset..buf.len().min(offset + CONTEXT_BYTES)];
    let hex: Vec<String> = window.iter().map(|b| format!("{b:02x}")).collect();
    let ascii: String = window
        .iter()
        .map(|&b| {
            if (0x20..0x7f).contains(&b) {
                b as char
            } else {
                '.'
            }
        })
        .collect();
    format!("{:<47} |{}|", hex.join(" "), ascii)
}

/// Whether `b` can be part of a numeric token.
fn is_numeric_byte(b: u8) -> bool {
    b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-')
}

/// The maximal numeric token overlapping `offset` (expanding left from
/// `offset` even when the byte at `offset` itself is non-numeric, so the
/// shorter rendering of `0.50`-vs-`0.5` still yields `0.5`).
fn numeric_token_at(buf: &[u8], offset: usize) -> Option<&str> {
    let mut start = offset.min(buf.len());
    while start > 0 && is_numeric_byte(buf[start - 1]) {
        start -= 1;
    }
    let mut end = offset;
    while end < buf.len() && is_numeric_byte(buf[end]) {
        end += 1;
    }
    if start == end {
        return None;
    }
    std::str::from_utf8(&buf[start..end]).ok()
}

/// The full line of `buf` containing `offset` (without the newline).
fn line_at(buf: &[u8], offset: usize) -> &[u8] {
    let offset = offset.min(buf.len().saturating_sub(1));
    let start = buf[..offset]
        .iter()
        .rposition(|&b| b == b'\n')
        .map_or(0, |p| p + 1);
    let end = buf[offset..]
        .iter()
        .position(|&b| b == b'\n')
        .map_or(buf.len(), |p| offset + p);
    &buf[start..end]
}

/// Whether a line smells like it carries a clock value.
fn looks_like_timestamp(line: &[u8]) -> bool {
    let text = String::from_utf8_lossy(line);
    if text.trim_start().starts_with('[') {
        // The harness convention: `[`-prefixed lines are wall-clock chatter.
        return true;
    }
    let lower = text.to_ascii_lowercase();
    if [
        "unix_time",
        "wall",
        "elapsed",
        "finished in",
        "timestamp",
        "_ms",
        "wall_ms",
    ]
    .iter()
    .any(|m| lower.contains(m))
    {
        return true;
    }
    // Epoch seconds (a 10+ digit integer run) or an ISO date (dddd-dd-dd).
    let bytes = text.as_bytes();
    let mut digits = 0usize;
    for (i, &b) in bytes.iter().enumerate() {
        if b.is_ascii_digit() {
            digits += 1;
            if digits >= 10 {
                return true;
            }
            if digits == 4
                && bytes.get(i + 1) == Some(&b'-')
                && bytes.get(i + 2).is_some_and(u8::is_ascii_digit)
                && bytes.get(i + 3).is_some_and(u8::is_ascii_digit)
                && bytes.get(i + 4) == Some(&b'-')
            {
                return true;
            }
        } else {
            digits = 0;
        }
    }
    false
}

/// Whether the two artifacts contain the same multiset of lines.
fn same_line_multiset(left: &[u8], right: &[u8]) -> bool {
    fn count(buf: &[u8]) -> HashMap<&[u8], usize> {
        let mut map: HashMap<&[u8], usize> = HashMap::new();
        for line in buf.split(|&b| b == b'\n') {
            *map.entry(line).or_insert(0) += 1;
        }
        map
    }
    count(left) == count(right)
}

/// Classify the root cause of a divergence at `offset`.
fn classify(left: &[u8], right: &[u8], offset: usize) -> RootCause {
    let prefix_len = left.len().min(right.len());
    if offset == prefix_len && left.len() != right.len() {
        return RootCause::Truncation {
            shorter: prefix_len,
            longer: left.len().max(right.len()),
        };
    }
    if same_line_multiset(left, right) {
        return RootCause::MapOrdering;
    }
    if looks_like_timestamp(line_at(left, offset)) || looks_like_timestamp(line_at(right, offset)) {
        return RootCause::Timestamp;
    }
    if let (Some(a), Some(b)) = (
        numeric_token_at(left, offset),
        numeric_token_at(right, offset),
    ) {
        if let (Ok(x), Ok(y)) = (a.parse::<f64>(), b.parse::<f64>()) {
            let scale = x.abs().max(y.abs());
            if x == y || (scale > 0.0 && (x - y).abs() / scale < 1e-9) {
                return RootCause::FloatFormatting;
            }
        }
    }
    RootCause::Unknown {
        left_len: left.len(),
        right_len: right.len(),
    }
}

/// Compare two artifacts byte-for-byte.  Returns `None` when identical,
/// otherwise the localized first divergence with hex context and hint.
pub fn first_divergence(
    left_label: &str,
    left: &[u8],
    right_label: &str,
    right: &[u8],
) -> Option<Divergence> {
    let prefix_len = left.len().min(right.len());
    let offset = (0..prefix_len)
        .find(|&i| left[i] != right[i])
        .unwrap_or(prefix_len);
    if offset == prefix_len && left.len() == right.len() {
        return None;
    }
    Some(Divergence {
        left_label: left_label.to_string(),
        right_label: right_label.to_string(),
        offset,
        left_context: hex_context(left, offset),
        right_context: hex_context(right, offset),
        cause: classify(left, right, offset),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_artifacts_have_no_divergence() {
        assert!(first_divergence("a", b"same\n", "b", b"same\n").is_none());
        assert!(first_divergence("a", b"", "b", b"").is_none());
    }

    #[test]
    fn hex_context_renders_hex_and_ascii() {
        let ctx = hex_context(b"abc\x01def and more bytes here", 0);
        assert!(ctx.starts_with("61 62 63 01 64 65 66"), "{ctx}");
        assert!(ctx.contains("|abc.def and more|"), "{ctx}");
        assert_eq!(hex_context(b"ab", 5), "<end of artifact at 2 bytes>");
    }

    #[test]
    fn numeric_token_expands_in_both_directions() {
        let buf = b"x = 12.50e-1;";
        // Offset in the middle of the token.
        assert_eq!(numeric_token_at(buf, 7), Some("12.50e-1"));
        // Offset just past the token (the `;`): expands left only.
        assert_eq!(numeric_token_at(buf, 12), Some("12.50e-1"));
        assert_eq!(numeric_token_at(b"abc", 1), None);
    }

    #[test]
    fn timestamp_heuristics() {
        assert!(looks_like_timestamp(b"[E3 finished in 1.2s]"));
        assert!(looks_like_timestamp(b"generated_unix_time: 1700000000"));
        assert!(looks_like_timestamp(b"date: 2026-08-07"));
        assert!(looks_like_timestamp(b"wall_ms: 12.5"));
        assert!(!looks_like_timestamp(b"mean wait 1.25 over 400 jobs"));
    }
}

//! Multi-replica determinism conformance binary.
//!
//! ```text
//! cargo run --release -p ss-conform --bin conform -- --all
//!     # every manifest target: N replicas each, byte-compared against each
//!     # other and the committed golden fixture; exits nonzero on any
//!     # divergence, expectation failure or stale fixture
//! cargo run --release -p ss-conform --bin conform -- --target verify-check
//!     # restrict to named targets (repeatable) for local iteration
//! cargo run --release -p ss-conform --bin conform -- --bless
//!     # rewrite the golden fixtures from fresh canonical artifacts;
//!     # refuses to bless a target whose replicas disagree
//! cargo run --release -p ss-conform --bin conform -- --list
//!     # print the manifest without running anything
//! cargo run --release -p ss-conform --bin conform -- --root PATH
//!     # resolve conform.toml and fixtures under PATH (default: the
//!     # workspace root this binary was compiled in)
//! ```

use ss_conform::harness::{run_target, RunMode};
use ss_conform::targets::render_builtin;
use ss_conform::{default_root, load_manifest, replica_specs};

fn usage_error(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!("usage: conform [--all] [--target KEY]... [--bless] [--list] [--root PATH]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut all = false;
    let mut bless = false;
    let mut list = false;
    let mut targets: Vec<String> = Vec::new();
    let mut root = default_root();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--all" => all = true,
            "--bless" => bless = true,
            "--list" => list = true,
            "--target" => {
                let value = it
                    .next()
                    .unwrap_or_else(|| usage_error("--target needs a target key"));
                targets.push(value.clone());
            }
            "--root" => {
                let value = it
                    .next()
                    .unwrap_or_else(|| usage_error("--root needs a path"));
                root = value.into();
            }
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }
    if all && !targets.is_empty() {
        usage_error("--all and --target are mutually exclusive");
    }

    let manifest = match load_manifest(&root) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("conform: {e}");
            std::process::exit(2);
        }
    };
    for key in &targets {
        if !manifest.targets.iter().any(|t| t.key == *key) {
            usage_error(&format!(
                "unknown target {key:?}; known targets: {}",
                manifest
                    .targets
                    .iter()
                    .map(|t| t.key.as_str())
                    .collect::<Vec<_>>()
                    .join(" ")
            ));
        }
    }
    let selected: Vec<_> = manifest
        .targets
        .iter()
        .filter(|t| targets.is_empty() || targets.contains(&t.key))
        .collect();

    if list {
        for t in &selected {
            let replicas: Vec<String> = replica_specs(t).iter().map(|r| r.label()).collect();
            println!(
                "{:<20} kind={:<13} replicas=[{}] fixture={}",
                t.key,
                t.kind.key(),
                replicas.join(" "),
                t.fixture
            );
            println!("{:<20} {}", "", t.description);
        }
        println!("[{} targets]", selected.len());
        return;
    }

    let mode = if bless {
        RunMode::Bless
    } else {
        RunMode::Check
    };
    let mut failed = 0usize;
    for spec in &selected {
        let outcome = run_target(spec, &|replica| render_builtin(spec, replica), &root, mode);
        print!("{}", outcome.report());
        if !outcome.pass() {
            failed += 1;
        }
    }
    println!(
        "conform: {}/{} targets conform{}",
        selected.len() - failed,
        selected.len(),
        if bless { " (bless mode)" } else { "" }
    );
    if failed > 0 {
        eprintln!("conform FAILED: {failed} target(s) diverged");
        std::process::exit(1);
    }
}

//! # ss-conform — multi-replica determinism conformance
//!
//! The workspace's core correctness claim is the **determinism contract**:
//! every artifact-producing check target emits bit-identical output for any
//! `SS_THREADS` / `--jobs` value.  This crate turns that claim from a pile
//! of per-binary CI shell into a first-class subsystem:
//!
//! * a checked-in **manifest** (`conform.toml`, parsed by [`manifest`])
//!   declares every conformance target: which builtin artifact producer to
//!   run ([`targets`]), the replica matrix (`threads = [1, 2, 4]`), the
//!   committed golden fixture, and structural expectations (the oracle-pair
//!   keys `verify` must report, the corpus scenario count and master seed
//!   read from the machine-readable trailer);
//! * the **harness** ([`harness`]) runs N independent replicas of each
//!   target — each on a dedicated pool of the declared size — and compares
//!   every artifact byte-for-byte, against the other replicas *and* against
//!   the committed golden fixture under `fixtures/conform/`;
//! * on mismatch, [`divergence`] reports the **first divergent byte
//!   offset** with a 16-byte hex window from each side and a **root-cause
//!   hint** (float-formatting drift, hash-map ordering, timestamp leakage,
//!   truncation);
//! * `conform --bless` is the single audited path for updating fixtures;
//!   CI re-runs it and fails if the tree changes (bless-drift gate), so a
//!   stale fixture cannot survive review unnoticed.
//!
//! ```text
//! cargo run --release -p ss-conform --bin conform -- --all
//!     # run every manifest target, compare replicas + golden fixtures
//! cargo run --release -p ss-conform --bin conform -- --target verify-check
//!     # one target, for local iteration
//! cargo run --release -p ss-conform --bin conform -- --bless
//!     # rewrite golden fixtures (refuses if replicas diverge)
//! cargo run --release -p ss-conform --bin conform -- --list
//!     # print the manifest
//! ```
//!
//! Every future scaling PR (index service, lab runner, async backends)
//! adds a `[[target]]` block and a fixture instead of re-proving the
//! determinism guarantee in YAML.

pub mod divergence;
pub mod harness;
pub mod manifest;
pub mod targets;

pub use divergence::{first_divergence, Divergence, RootCause};
pub use harness::{replica_specs, run_target, FixtureStatus, ReplicaSpec, RunMode, TargetOutcome};
pub use manifest::{Manifest, TargetKind, TargetSpec};

use std::path::PathBuf;

/// Repo-relative path of the manifest.
pub const MANIFEST_PATH: &str = "conform.toml";

/// The workspace root this crate was compiled in — the default `--root` for
/// resolving the manifest and fixture paths, correct for `cargo run` and
/// `cargo test` from anywhere inside the workspace.
pub fn default_root() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

/// Load and parse the manifest under `root`.
pub fn load_manifest(root: &std::path::Path) -> Result<Manifest, String> {
    let path = root.join(MANIFEST_PATH);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Manifest::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}
